// bench_diff: compare a freshly generated BENCH_serving.json against the
// checked-in baseline and fail when serving quality regressed.
//
// Usage:
//   bench_diff <baseline.json> <fresh.json> [--out report.txt]
//              [--ratio-tol 0.10] [--p99-tol 0.50] [--p99-slack-ms 5.0]
//
// Gates (only when both files were produced in the same mode):
//   * achieved/offered ratio must not drop more than --ratio-tol (absolute)
//     below the baseline,
//   * per-op p99 latency must not exceed baseline * (1 + --p99-tol) once
//     past an absolute slack of --p99-slack-ms (tiny baselines are noise),
//   * the fresh run's own gates (`gates_ok`, `inference.ok`) must hold and
//     serving error counts must stay zero.
//
// When the two files disagree on "mode" (e.g. checked-in full vs CI smoke)
// absolute numbers are not comparable: the tool prints a report-only diff
// and exits 0 so CI smoke runs never fight the reference-machine baseline.
// The report is always written (stdout, plus --out for a CI artifact).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/status.h"
#include "store/json.h"
#include "store/value.h"

namespace {

using newsdiff::DefaultFileIo;
using newsdiff::FileIo;
using newsdiff::StatusOr;
using newsdiff::store::ParseJson;
using newsdiff::store::Value;

struct Options {
  std::string baseline_path;
  std::string fresh_path;
  std::string out_path;
  double ratio_tol = 0.10;    // absolute drop in achieved/offered ratio
  double p99_tol = 0.50;      // relative p99 growth beyond the slack
  double p99_slack_ms = 5.0;  // absolute p99 noise floor
};

struct Report {
  std::string text;
  bool comparable = true;  // same mode on both sides
  std::vector<std::string> failures;

  void Line(const std::string& s) {
    text += s;
    text += '\n';
  }
  void Fail(const std::string& s) {
    failures.push_back(s);
    Line("FAIL  " + s);
  }
  void Ok(const std::string& s) { Line("  ok  " + s); }
};

double Field(const Value& doc, const std::string& key, double fallback) {
  const Value* v = doc.Find(key);
  return v == nullptr ? fallback : v->AsDouble(fallback);
}

std::string Fmt(const char* fmt, double a) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a);
  return buf;
}

std::string Fmt(const char* fmt, double a, double b) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

StatusOr<Value> Load(FileIo& io, const std::string& path) {
  StatusOr<std::string> bytes = io.ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  return ParseJson(*bytes);
}

/// Finds the per_class row for `op`, or nullptr.
const Value* FindOpRow(const Value& doc, const std::string& op) {
  const Value* rows = doc.Find("per_class");
  if (rows == nullptr || !rows->is_array()) return nullptr;
  for (const Value& row : rows->array()) {
    const Value* name = row.Find("op");
    if (name != nullptr && name->AsString() == op) return &row;
  }
  return nullptr;
}

void Compare(const Value& base, const Value& fresh, const Options& opt,
             Report* report) {
  const std::string base_mode =
      base.Find("mode") ? base.Find("mode")->AsString() : "?";
  const std::string fresh_mode =
      fresh.Find("mode") ? fresh.Find("mode")->AsString() : "?";
  report->Line("baseline: mode=" + base_mode + "  " + opt.baseline_path);
  report->Line("fresh:    mode=" + fresh_mode + "  " + opt.fresh_path);
  report->Line("");

  if (base_mode != fresh_mode) {
    report->comparable = false;
    report->Line("mode mismatch: absolute numbers are not comparable;");
    report->Line("report only, no gates applied.");
    report->Line("");
  }

  // The fresh run must pass its own self-gates regardless of mode.
  const Value* gates = fresh.Find("gates_ok");
  if (gates == nullptr || !gates->is_bool() || !gates->bool_value()) {
    report->Fail("fresh run reports gates_ok=false");
  } else {
    report->Ok("fresh gates_ok");
  }
  const Value* inf = fresh.Find("inference");
  if (inf != nullptr) {
    const Value* inf_ok = inf->Find("ok");
    if (inf_ok == nullptr || !inf_ok->is_bool() || !inf_ok->bool_value()) {
      report->Fail("fresh inference section reports ok=false");
    } else {
      report->Ok("fresh inference.ok");
    }
    const double errs = Field(*inf, "serving_errors", 0);
    if (errs > 0) {
      report->Fail(Fmt("fresh inference serving_errors=%.0f (want 0)", errs));
    }
  }
  const double errors = Field(fresh, "errors", 0);
  if (errors > 0) {
    report->Fail(Fmt("fresh run has %.0f serving errors (want 0)", errors));
  } else {
    report->Ok("fresh errors=0");
  }

  const double base_ratio = Field(base, "achieved_ratio", 0);
  const double fresh_ratio = Field(fresh, "achieved_ratio", 0);
  const std::string ratio_line =
      Fmt("achieved_ratio %.4f -> %.4f", base_ratio, fresh_ratio);
  if (!report->comparable) {
    report->Line("      " + ratio_line);
  } else if (fresh_ratio + opt.ratio_tol < base_ratio) {
    report->Fail(ratio_line + Fmt(" (drop > %.2f tolerance)", opt.ratio_tol));
  } else {
    report->Ok(ratio_line);
  }

  const Value* rows = base.Find("per_class");
  if (rows != nullptr && rows->is_array()) {
    for (const Value& row : rows->array()) {
      const Value* name = row.Find("op");
      if (name == nullptr) continue;
      const std::string op = name->AsString();
      const Value* fresh_row = FindOpRow(fresh, op);
      if (fresh_row == nullptr) {
        if (report->comparable) {
          report->Fail("op '" + op + "' missing from fresh per_class rows");
        }
        continue;
      }
      const double base_p99 = Field(row, "p99_ms", 0);
      const double fresh_p99 = Field(*fresh_row, "p99_ms", 0);
      const std::string line =
          op + Fmt(" p99_ms %.3f -> %.3f", base_p99, fresh_p99);
      const double budget =
          base_p99 * (1.0 + opt.p99_tol) + opt.p99_slack_ms;
      if (!report->comparable) {
        report->Line("      " + line);
      } else if (fresh_p99 > budget) {
        report->Fail(line + Fmt(" (budget %.3f ms)", budget));
      } else {
        report->Ok(line);
      }
    }
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <fresh.json>\n"
               "                  [--out report.txt] [--ratio-tol F]\n"
               "                  [--p99-tol F] [--p99-slack-ms F]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opt.out_path = v;
    } else if (arg == "--ratio-tol") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opt.ratio_tol = std::atof(v);
    } else if (arg == "--p99-tol") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opt.p99_tol = std::atof(v);
    } else if (arg == "--p99-slack-ms") {
      const char* v = next();
      if (v == nullptr) return Usage();
      opt.p99_slack_ms = std::atof(v);
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() != 2) return Usage();
  opt.baseline_path = positional[0];
  opt.fresh_path = positional[1];

  FileIo& io = DefaultFileIo();
  StatusOr<Value> base = Load(io, opt.baseline_path);
  if (!base.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", opt.baseline_path.c_str(),
                 base.status().message().c_str());
    return 2;
  }
  StatusOr<Value> fresh = Load(io, opt.fresh_path);
  if (!fresh.ok()) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", opt.fresh_path.c_str(),
                 fresh.status().message().c_str());
    return 2;
  }

  Report report;
  Compare(*base, *fresh, opt, &report);
  report.Line("");
  if (!report.comparable) {
    report.Line("RESULT: report-only (mode mismatch), not gated");
  } else if (report.failures.empty()) {
    report.Line("RESULT: PASS");
  } else {
    report.Line("RESULT: FAIL (" + std::to_string(report.failures.size()) +
                " regression(s))");
  }

  std::fputs(report.text.c_str(), stdout);
  if (!opt.out_path.empty()) {
    const newsdiff::Status wrote = io.WriteFile(opt.out_path, report.text);
    if (!wrote.ok()) {
      std::fprintf(stderr, "bench_diff: cannot write %s: %s\n",
                   opt.out_path.c_str(), wrote.message().c_str());
      return 2;
    }
  }
  return report.comparable && !report.failures.empty() ? 1 : 0;
}
