// newsquery — command-line front door for the newsdiff::Engine serving
// layer. Drives the full online path end to end against a directory of
// JSONL collections (the Database::SaveToDir layout):
//
//   newsquery synth <dir> [--seed N] [--articles N] [--tweets N]
//       Generate a deterministic synthetic world and save it as a store.
//   newsquery build <dir>
//       Invert the store's news + tweets collections and commit an
//       INDEX-<gen> generation under <dir>/index.
//   newsquery trending <dir> <query...> [--k N]
//       Top-k articles for a free-text query (BM25 / MaxScore).
//   newsquery predict <dir> <draft...> [--k N] [--batch <file>]
//       Audience-interest estimate for a draft headline: the k most
//       similar tweets are retrieved by BM25 and reranked through the
//       trained MLP via the batched inference server (the model is
//       trained as part of the in-memory index build, so this command
//       needs the full store, not just <dir>/index). --batch scores one
//       draft per line of <file> in a single coalesced call.
//
// Exit status is 0 on success, 1 on any error (message on stderr).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/status.h"
#include "core/engine.h"
#include "datagen/world.h"
#include "store/database.h"

namespace {

using newsdiff::Engine;
using newsdiff::EngineOptions;
using newsdiff::InterestPrediction;
using newsdiff::QueryHit;
using newsdiff::Status;
using newsdiff::StatusOr;

int Usage() {
  std::fprintf(stderr,
               "usage: newsquery <command> <dir> [args]\n"
               "  synth <dir> [--seed N] [--articles N] [--tweets N]\n"
               "  build <dir>\n"
               "  trending <dir> <query words...> [--k N]\n"
               "  predict <dir> <draft words...> [--k N] [--batch <file>]\n");
  return 1;
}

int Fail(const Status& s) {
  std::fprintf(stderr, "newsquery: %s\n", s.ToString().c_str());
  return 1;
}

EngineOptions OptionsFor(const std::string& dir) {
  EngineOptions options;
  options.index_dir = dir + "/index";
  return options;
}

/// Splits argv tail into free words and --k/--seed/... flags. Unknown
/// flags are an error; everything else joins the query text.
struct Args {
  std::vector<std::string> words;
  std::string batch_file;
  size_t k = 10;
  uint64_t seed = 2021;
  size_t articles = 2000;
  size_t tweets = 6000;
  bool ok = true;
};

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    auto take_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "newsquery: %s needs a value\n", flag);
        args.ok = false;
        return nullptr;
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--k") == 0) {
      if (const char* v = take_value("--k")) args.k = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      if (const char* v = take_value("--seed")) args.seed = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--articles") == 0) {
      if (const char* v = take_value("--articles")) args.articles = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--tweets") == 0) {
      if (const char* v = take_value("--tweets")) args.tweets = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      if (const char* v = take_value("--batch")) args.batch_file = v;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "newsquery: unknown flag %s\n", argv[i]);
      args.ok = false;
    } else {
      args.words.push_back(argv[i]);
    }
  }
  return args;
}

std::string JoinWords(const std::vector<std::string>& words) {
  std::string text;
  for (const std::string& w : words) {
    if (!text.empty()) text += ' ';
    text += w;
  }
  return text;
}

int RunSynth(const std::string& dir, const Args& args) {
  newsdiff::datagen::WorldOptions world_options;
  world_options.seed = args.seed;
  world_options.num_articles = args.articles;
  world_options.num_tweets = args.tweets;
  newsdiff::datagen::World world =
      newsdiff::datagen::GenerateWorld(world_options);
  newsdiff::store::Database db;
  world.LoadInto(db);
  Status saved = db.SaveToDir(dir);
  if (!saved.ok()) return Fail(saved);
  std::printf("synth: wrote %zu articles, %zu tweets, %zu users to %s\n",
              world.articles.size(), world.tweets.size(), world.users.size(),
              dir.c_str());
  return 0;
}

int RunBuild(const std::string& dir) {
  newsdiff::store::Database db;
  Status loaded = db.LoadFromDir(dir);
  if (!loaded.ok()) return Fail(loaded);
  Engine engine(OptionsFor(dir));
  StatusOr<newsdiff::BuildIndexReport> report = engine.BuildIndex(db);
  if (!report.ok()) return Fail(report.status());
  std::printf(
      "build: generation %llu — news %zu docs / %zu terms, "
      "tweets %zu docs / %zu terms\n",
      static_cast<unsigned long long>(report->generation), report->news_docs,
      report->news_terms, report->tweet_docs, report->tweet_terms);
  return 0;
}

void PrintStats(const newsdiff::index::QueryStats& stats) {
  std::printf(
      "  [terms=%zu candidates=%zu scored=%zu blocks=%zu]\n",
      stats.terms_matched, stats.candidates, stats.docs_scored,
      stats.blocks_decoded);
}

int RunTrending(const std::string& dir, const Args& args) {
  if (args.words.empty()) return Usage();
  Engine engine(OptionsFor(dir));
  StatusOr<newsdiff::index::IndexLoadReport> loaded = engine.LoadIndex();
  if (!loaded.ok()) return Fail(loaded.status());
  newsdiff::index::QueryStats stats;
  StatusOr<std::vector<QueryHit>> hits =
      engine.QueryTrending(JoinWords(args.words), args.k, &stats);
  if (!hits.ok()) return Fail(hits.status());
  std::printf("trending: %zu hits (index generation %llu)\n", hits->size(),
              static_cast<unsigned long long>(engine.index_generation()));
  for (const QueryHit& h : *hits) {
    std::printf("  article %lld  score=%.4f  published=%lld\n",
                static_cast<long long>(h.external_id), h.score,
                static_cast<long long>(h.timestamp));
  }
  PrintStats(stats);
  return 0;
}

/// One draft per non-empty line of `path`.
StatusOr<std::vector<std::string>> ReadDrafts(const std::string& path) {
  StatusOr<std::string> bytes = newsdiff::DefaultFileIo().ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  std::vector<std::string> drafts;
  std::string line;
  for (char c : *bytes) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) drafts.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  if (!line.empty()) drafts.push_back(line);
  return drafts;
}

int RunPredict(const std::string& dir, const Args& args) {
  if (args.words.empty() && args.batch_file.empty()) return Usage();
  // The serving model is trained during the index build (the index dir
  // alone has no model), so predict rebuilds from the full store — that
  // also warms the inference server's packed-weight cache.
  newsdiff::store::Database db;
  Status loaded = db.LoadFromDir(dir);
  if (!loaded.ok()) return Fail(loaded);
  Engine engine(OptionsFor(dir));
  StatusOr<newsdiff::BuildIndexReport> built = engine.BuildIndex(db);
  if (!built.ok()) return Fail(built.status());

  if (!args.batch_file.empty()) {
    StatusOr<std::vector<std::string>> drafts = ReadDrafts(args.batch_file);
    if (!drafts.ok()) return Fail(drafts.status());
    if (drafts->empty()) {
      std::fprintf(stderr, "newsquery: %s has no drafts\n",
                   args.batch_file.c_str());
      return 1;
    }
    std::vector<StatusOr<InterestPrediction>> results =
        engine.PredictInterestBatch(*drafts, args.k);
    size_t failures = 0;
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok()) {
        ++failures;
        std::printf("  %-40.40s  ERROR %s\n", (*drafts)[i].c_str(),
                    results[i].status().ToString().c_str());
        continue;
      }
      const InterestPrediction& p = *results[i];
      std::printf("  %-40.40s  class %d  confidence %.3f  %s\n",
                  (*drafts)[i].c_str(), p.predicted_class, p.confidence,
                  p.model_reranked ? "model" : "vote");
    }
    const newsdiff::EngineStatsSnapshot stats = engine.stats();
    std::printf(
        "batch: %zu drafts, %zu failed  [batches=%llu mean_fill=%.1f "
        "rejections=%llu model_version=%llu]\n",
        results.size(), failures,
        static_cast<unsigned long long>(stats.inference_batches),
        stats.MeanBatchFill(),
        static_cast<unsigned long long>(stats.inference_queue_rejections),
        static_cast<unsigned long long>(engine.model_version()));
    return failures == 0 ? 0 : 1;
  }

  newsdiff::index::QueryStats stats;
  StatusOr<InterestPrediction> prediction =
      engine.PredictInterest(JoinWords(args.words), args.k, &stats);
  if (!prediction.ok()) return Fail(prediction.status());
  std::printf("predict: class %d (confidence %.3f) from %zu neighbours%s\n",
              prediction->predicted_class, prediction->confidence,
              prediction->neighbors.size(),
              prediction->model_reranked ? " (model-reranked)" : "");
  if (prediction->model_reranked) {
    std::printf("  model version %llu\n",
                static_cast<unsigned long long>(prediction->model_version));
  }
  for (size_t c = 0; c < prediction->class_weights.size(); ++c) {
    std::printf("  class %zu weight %.3f\n", c, prediction->class_weights[c]);
  }
  PrintStats(stats);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string dir = argv[2];
  Args args = ParseArgs(argc, argv, 3);
  if (!args.ok) return 1;
  if (command == "synth") return RunSynth(dir, args);
  if (command == "build") return RunBuild(dir);
  if (command == "trending") return RunTrending(dir, args);
  if (command == "predict") return RunPredict(dir, args);
  return Usage();
}
