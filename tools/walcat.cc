// walcat: dump and verify newsdiff write-ahead-log segments.
//
// Usage:
//   walcat [--verify] <store-dir | segment.wal> [more paths...]
//
// For each segment (every `*.wal` in a directory argument, in replay
// order), prints one line per frame — offset, record type, and the fields
// that matter operationally (ids, checkpoint generations, promotion fencing
// tokens) — then a trailer summarising whether the segment is intact, ends
// in a torn tail, or was rejected at damage. The first record is checked
// against the file name (collection, base generation, part), the same
// validation recovery and the replication tailer apply.
//
// --verify prints only the trailers and exits nonzero if any segment is
// damaged or mislabelled, so it can gate scripts and CI jobs.

#include <cstdio>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/file_io.h"
#include "common/status.h"
#include "store/wal.h"

namespace {

using newsdiff::Crc32;
using newsdiff::FileIo;
using newsdiff::Status;
using newsdiff::StatusOr;
using newsdiff::store::ListWalSegments;
using newsdiff::store::ParseWalPayload;
using newsdiff::store::ParseWalSegmentFileName;
using newsdiff::store::WalRecord;
using newsdiff::store::WalSegmentInfo;

constexpr size_t kFrameHeaderBytes = 8;  // u32le length + u32le CRC-32

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

std::string DescribeRecord(const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kSegmentHeader:
      return "seg   " + record.collection +
             " base=" + std::to_string(record.base_generation) +
             " part=" + std::to_string(record.part) +
             " slots=" + std::to_string(record.slot_count);
    case WalRecord::Type::kPut:
      return "put   id=" + std::to_string(record.id) +
             " bytes=" + std::to_string(record.doc_json.size());
    case WalRecord::Type::kDelete:
      return "del   id=" + std::to_string(record.id);
    case WalRecord::Type::kDrop:
      return "drop";
    case WalRecord::Type::kCheckpoint:
      return "ckpt  gen=" + std::to_string(record.generation);
    case WalRecord::Type::kPromotion:
      return "promo token=" + std::to_string(record.token) +
             (record.owner.empty() ? "" : " owner=" + record.owner);
  }
  return "unknown";
}

/// Dumps one segment; returns true when it is intact and correctly named.
bool DumpSegment(FileIo& io, const std::string& path, const std::string& name,
                 bool verify_only) {
  std::printf("== %s\n", path.c_str());
  StatusOr<newsdiff::store::WalSegmentName> parsed =
      ParseWalSegmentFileName(name);
  if (!parsed.ok()) {
    std::printf("-- DAMAGED: not a well-formed segment file name\n");
    return false;
  }
  const std::string& collection = parsed->collection;
  const uint64_t base = parsed->base_generation;
  const uint64_t part = parsed->part;

  StatusOr<std::string> bytes = io.ReadFile(path);
  if (!bytes.ok()) {
    std::printf("-- DAMAGED: %s\n", bytes.status().message().c_str());
    return false;
  }

  size_t pos = 0, records = 0;
  bool intact = true;
  std::string problem;
  while (pos < bytes->size()) {
    const size_t remaining = bytes->size() - pos;
    if (remaining < kFrameHeaderBytes) {
      intact = false;
      problem = "torn tail: incomplete frame header at offset " +
                std::to_string(pos);
      break;
    }
    const uint32_t length = ReadU32Le(bytes->data() + pos);
    const uint32_t stated_crc = ReadU32Le(bytes->data() + pos + 4);
    if (length == 0) {
      intact = false;
      problem = "rejected: zero-length frame at offset " + std::to_string(pos);
      break;
    }
    if (remaining - kFrameHeaderBytes < length) {
      intact = false;
      problem = "torn tail: frame truncated at offset " + std::to_string(pos);
      break;
    }
    const std::string payload = bytes->substr(pos + kFrameHeaderBytes, length);
    if (Crc32(payload) != stated_crc) {
      intact = false;
      problem = "rejected: CRC mismatch at offset " + std::to_string(pos);
      break;
    }
    StatusOr<WalRecord> record = ParseWalPayload(payload);
    if (!record.ok()) {
      intact = false;
      problem = "rejected: " + record.status().message() + " at offset " +
                std::to_string(pos);
      break;
    }
    if (records == 0 &&
        (record->type != WalRecord::Type::kSegmentHeader ||
         record->collection != collection || record->base_generation != base ||
         record->part != part)) {
      intact = false;
      problem = "rejected: first record is not this segment's header";
      break;
    }
    if (!verify_only) {
      std::printf("%010zu %s\n", pos, DescribeRecord(*record).c_str());
    }
    ++records;
    pos += kFrameHeaderBytes + length;
  }

  if (intact) {
    std::printf("-- %zu records, %zu bytes, intact\n", records, bytes->size());
  } else {
    std::printf("-- %zu records verified, then %s (%zu of %zu bytes dropped)\n",
                records, problem.c_str(), bytes->size() - pos, bytes->size());
  }
  return intact;
}

int Usage() {
  std::fprintf(stderr,
               "usage: walcat [--verify] <store-dir | segment.wal> [...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool verify_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verify") {
      verify_only = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  FileIo& io = newsdiff::DefaultFileIo();
  size_t damaged = 0, total = 0;
  for (const std::string& path : paths) {
    StatusOr<std::vector<std::string>> listing = io.ListDir(path);
    if (listing.ok()) {
      // A directory: dump its segments in replay order.
      const std::vector<WalSegmentInfo> segments = ListWalSegments(*listing);
      if (segments.empty()) {
        std::fprintf(stderr, "walcat: no wal segments in %s\n", path.c_str());
      }
      for (const WalSegmentInfo& segment : segments) {
        ++total;
        if (!DumpSegment(io, path + "/" + segment.file, segment.file,
                         verify_only)) {
          ++damaged;
        }
      }
      continue;
    }
    const size_t slash = path.find_last_of('/');
    const std::string name =
        slash == std::string::npos ? path : path.substr(slash + 1);
    ++total;
    if (!DumpSegment(io, path, name, verify_only)) ++damaged;
  }

  if (verify_only || damaged > 0) {
    std::printf("walcat: %zu/%zu segments intact\n", total - damaged, total);
  }
  return damaged == 0 ? 0 : 1;
}
