// Influencer analysis: quantifies the paper's two feature-engineering
// assumptions on raw data — (i) authors with more followers earn more
// engagement, and (ii) engagement shifts with the day of the week — then
// shows the modelling consequence: adding the author/day metadata to the
// document embedding lifts prediction accuracy.
//
// Build & run:  cmake --build build && ./build/examples/influencer_analysis
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "core/embedding_cache.h"
#include "core/pipeline.h"
#include "datagen/world.h"

using namespace newsdiff;

int main() {
  datagen::WorldOptions wopts;
  wopts.seed = 99;
  wopts.num_articles = 2000;
  wopts.num_tweets = 8000;
  datagen::World world = datagen::GenerateWorld(wopts);
  store::Database db;
  world.LoadInto(db);

  auto tweets_or = core::LoadTweets(db);
  if (!tweets_or.ok()) {
    std::fprintf(stderr, "%s\n", tweets_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<core::TweetRecord>& tweets = *tweets_or;

  // --- Assumption 1: followers -> engagement. ---
  double sum_log_likes[3] = {0, 0, 0};
  size_t count_by_class[3] = {0, 0, 0};
  for (const core::TweetRecord& t : tweets) {
    int c = t.follower_class;
    sum_log_likes[c] += std::log1p(static_cast<double>(t.likes));
    ++count_by_class[c];
  }
  std::printf("Mean log(1+likes) by author follower class (Table 2 "
              "encoding):\n");
  TablePrinter by_class({"Follower class", "Authors' tweets", "Mean log-likes"});
  const char* class_names[3] = {"0  (<100 followers)",
                                "1  (100-1000)",
                                "2  (>1000, influencers)"};
  for (int c = 0; c < 3; ++c) {
    by_class.AddRow({class_names[c], std::to_string(count_by_class[c]),
                     FormatDouble(sum_log_likes[c] /
                                      std::max<size_t>(count_by_class[c], 1),
                                  2)});
  }
  by_class.Print();

  // --- Assumption 2: day of week -> engagement. ---
  double sum_by_dow[7] = {0};
  size_t count_by_dow[7] = {0};
  for (const core::TweetRecord& t : tweets) {
    int d = DayOfWeek(t.created);
    sum_by_dow[d] += std::log1p(static_cast<double>(t.likes));
    ++count_by_dow[d];
  }
  const char* day_names[7] = {"Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  std::printf("\nMean log(1+likes) by posting day:\n");
  for (int d = 0; d < 7; ++d) {
    double mean = sum_by_dow[d] / std::max<size_t>(count_by_dow[d], 1);
    // Zoom the bar into the 4.0-6.0 log-likes band so the weekday/weekend
    // contrast is visible.
    int bars = std::clamp(static_cast<int>((mean - 4.0) * 20.0), 0, 40);
    std::printf("  %s |%.*s %.2f\n", day_names[d], bars,
                "########################################", mean);
  }

  // --- Modelling consequence: rerun the paper's A1 vs A2 comparison. ---
  auto store_or = core::LoadOrTrainPretrained("newsdiff_cache/pretrained_300d.txt");
  if (!store_or.ok()) {
    std::fprintf(stderr, "%s\n", store_or.status().ToString().c_str());
    return 1;
  }
  core::Pipeline pipeline{core::PipelineOptions{}};
  auto result = pipeline.Run(db, *store_or);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nPrediction with vs without the metadata vector (MLP 1, "
              "likes):\n");
  for (core::DatasetVariant v :
       {core::DatasetVariant::kA1, core::DatasetVariant::kA2}) {
    core::TrainingDataset ds =
        core::BuildDataset(v, result->assignments, result->twitter_events,
                           result->twitter_ed, result->tweets, *store_or);
    auto outcome = core::TrainAndEvaluate(ds.x, ds.likes,
                                          core::NetworkKind::kMlp1,
                                          core::PredictorOptions{});
    if (outcome.ok()) {
      std::printf("  %s: accuracy %.3f (%zu features)\n",
                  core::DatasetVariantName(v), outcome->accuracy,
                  ds.feature_dim);
    }
  }
  std::printf("\nConclusion: both assumptions hold in the data, and the "
              "metadata vector converts them into accuracy.\n");
  return 0;
}
