// Breaking-news monitor: the deployment scenario of the paper's §4.9.
// New articles and tweets arrive in two-hour batches; after each batch the
// pipeline re-runs and reports newly detected news events and their Twitter
// echo. This example replays one synthetic day-by-day window and prints
// what an editor's dashboard would show.
//
// Build & run:  cmake --build build && ./build/examples/breaking_news_monitor
#include <cstdio>

#include "common/strings.h"
#include "core/embedding_cache.h"
#include "core/pipeline.h"
#include "datagen/world.h"
#include "event/tracker.h"

using namespace newsdiff;

int main() {
  // A compact world: two months, a handful of stories.
  datagen::WorldOptions wopts;
  wopts.seed = 404;
  wopts.duration_days = 60;
  wopts.num_users = 600;
  wopts.num_articles = 1500;
  wopts.num_tweets = 4500;
  wopts.num_news_events = 8;
  wopts.num_chatter_events = 3;
  datagen::World world = datagen::GenerateWorld(wopts);

  auto store_or = core::LoadOrTrainPretrained("newsdiff_cache/pretrained_300d.txt");
  if (!store_or.ok()) {
    std::fprintf(stderr, "%s\n", store_or.status().ToString().c_str());
    return 1;
  }

  // Replay: load the store incrementally in 10-day windows and rerun the
  // analysis after each ingest, reporting events not seen before.
  core::PipelineOptions popts;
  popts.topics.num_topics = 10;
  popts.news_mabed.max_events = 30;
  popts.twitter_mabed.max_events = 40;
  core::Pipeline pipeline(popts);

  event::EventTracker tracker;
  size_t article_cursor = 0, tweet_cursor = 0;
  for (int window_end_day = 20; window_end_day <= 60; window_end_day += 10) {
    UnixSeconds cutoff =
        wopts.start_time + window_end_day * kSecondsPerDay;
    store::Database db;
    store::Collection& users = db.GetOrCreate("users");
    for (const datagen::UserProfile& u : world.users) {
      users.Insert(store::MakeObject({{"user_id", static_cast<int64_t>(u.id)},
                                      {"handle", u.handle},
                                      {"followers", u.followers}}));
    }
    store::Collection& news = db.GetOrCreate("news");
    store::Collection& tweets = db.GetOrCreate("tweets");
    article_cursor = 0;
    tweet_cursor = 0;
    for (const datagen::NewsArticle& a : world.articles) {
      if (a.published > cutoff) break;
      news.Insert(store::MakeObject({{"article_id", a.id},
                                     {"outlet", a.outlet},
                                     {"title", a.title},
                                     {"body", a.body},
                                     {"published", a.published}}));
      ++article_cursor;
    }
    for (const datagen::Tweet& t : world.tweets) {
      if (t.created > cutoff) break;
      tweets.Insert(store::MakeObject(
          {{"tweet_id", t.id},
           {"user_id", static_cast<int64_t>(t.user)},
           {"text", t.text},
           {"created", t.created},
           {"likes", t.likes},
           {"retweets", t.retweets}}));
      ++tweet_cursor;
    }

    auto result = pipeline.Run(db, *store_or);
    if (!result.ok()) {
      std::fprintf(stderr, "window %d: %s\n", window_end_day,
                   result.status().ToString().c_str());
      continue;
    }
    std::printf("\n=== Ingest through day %d: %zu articles, %zu tweets ===\n",
                window_end_day, article_cursor, tweet_cursor);
    // The tracker links this run's events to earlier runs, so the dashboard
    // distinguishes new stories from continuations (MABED's tracking half).
    size_t tracks_before = tracker.tracks().size();
    std::vector<int64_t> ids = tracker.Update(result->news_events);
    size_t fresh_shown = 0;
    for (size_t i = 0; i < result->news_events.size(); ++i) {
      if (ids[i] < static_cast<int64_t>(tracks_before)) continue;  // known
      if (++fresh_shown > 4) continue;
      const event::Event& ev = result->news_events[i];
      std::printf("  NEW story #%lld '%s' [%s]: %s\n",
                  static_cast<long long>(ids[i]), ev.main_word.c_str(),
                  FormatTimestamp(ev.start_time).c_str(),
                  Join(ev.related_words, " ").c_str());
    }
    size_t continuing = 0;
    for (const auto* t : tracker.ActiveTracks()) {
      if (t->observations > 1) ++continuing;
    }
    std::printf("  %zu new stories, %zu continuing; %zu trending topics "
                "echoed by %zu Twitter correlations\n",
                tracker.tracks().size() - tracks_before, continuing,
                result->trending.size(), result->correlations.size());
  }
  std::printf("\nMonitor replay complete: %zu distinct stories tracked.\n",
              tracker.tracks().size());
  return 0;
}
