// Virality triage: the fake-news-mitigation use case from the paper's
// introduction and §5.8. Trending news topics are ranked by their predicted
// audience interest (the probability that their tweets land in the top
// likes/retweets classes), producing a priority queue for fact-checkers:
// the topics most likely to go viral are the ones to verify first.
//
// Build & run:  cmake --build build && ./build/examples/virality_triage
#include <algorithm>
#include <cstdio>

#include "common/strings.h"
#include "common/table_printer.h"
#include "core/embedding_cache.h"
#include "core/pipeline.h"
#include "datagen/world.h"

using namespace newsdiff;

int main() {
  datagen::WorldOptions wopts;
  wopts.seed = 2021;
  wopts.num_articles = 3000;
  wopts.num_tweets = 9000;
  datagen::World world = datagen::GenerateWorld(wopts);
  store::Database db;
  world.LoadInto(db);

  auto store_or = core::LoadOrTrainPretrained("newsdiff_cache/pretrained_300d.txt");
  if (!store_or.ok()) {
    std::fprintf(stderr, "%s\n", store_or.status().ToString().c_str());
    return 1;
  }
  core::Pipeline pipeline{core::PipelineOptions{}};
  auto result_or = pipeline.Run(db, *store_or);
  if (!result_or.ok()) {
    std::fprintf(stderr, "%s\n", result_or.status().ToString().c_str());
    return 1;
  }
  const core::PipelineResult& r = *result_or;

  // Train the audience-interest model on the metadata-enhanced dataset.
  core::TrainingDataset ds =
      core::BuildDataset(core::DatasetVariant::kA2, r.assignments,
                         r.twitter_events, r.twitter_ed, r.tweets, *store_or);
  core::PredictorOptions popts;
  nn::Model model = core::BuildNetwork(core::NetworkKind::kMlp2, ds.x.cols(),
                                       popts);
  auto optimizer = core::BuildOptimizer(core::NetworkKind::kMlp2, popts);
  nn::FitOptions fit;
  fit.epochs = popts.max_epochs;
  fit.batch_size = popts.batch_size;
  fit.early_stopping = popts.early_stopping;
  auto history = model.Fit(ds.x, ds.likes, *optimizer, fit);
  if (!history.ok()) {
    std::fprintf(stderr, "%s\n", history.status().ToString().c_str());
    return 1;
  }

  // Score each assigned Twitter event: mean predicted probability that its
  // tweets land in the viral (>1000 likes) class.
  struct Scored {
    size_t twitter_event;
    double viral_probability;
    size_t tweet_count;
  };
  std::vector<Scored> scored;
  size_t row = 0;
  for (const core::EventTweetAssignment& a : r.assignments) {
    la::Matrix block(a.tweet_indices.size(), ds.x.cols());
    for (size_t i = 0; i < a.tweet_indices.size(); ++i) {
      std::copy(ds.x.RowPtr(row), ds.x.RowPtr(row) + ds.x.cols(),
                block.RowPtr(i));
      ++row;
    }
    la::Matrix proba = model.PredictProba(block);
    double viral = 0.0;
    for (size_t i = 0; i < proba.rows(); ++i) viral += proba(i, 2);
    scored.push_back({a.twitter_event,
                      viral / static_cast<double>(proba.rows()),
                      a.tweet_indices.size()});
  }
  std::sort(scored.begin(), scored.end(), [](const Scored& a, const Scored& b) {
    return a.viral_probability > b.viral_probability;
  });

  std::printf("Fact-checking priority queue (topics most likely to go "
              "viral first):\n\n");
  TablePrinter table({"Rank", "Event label", "P(viral)", "Tweets",
                      "Keywords"});
  for (size_t i = 0; i < scored.size() && i < 8; ++i) {
    const event::Event& ev = r.twitter_events[scored[i].twitter_event];
    table.AddRow({std::to_string(i + 1), ev.main_word,
                  FormatDouble(scored[i].viral_probability, 3),
                  std::to_string(scored[i].tweet_count),
                  Join(ev.related_words, " ")});
  }
  table.Print();
  std::printf("\nThese scores would seed a network-immunization strategy: "
              "verify and, if false,\nsuppress the highest-ranked topics "
              "before they peak (paper §5.8).\n");
  return 0;
}
