// Quickstart: generate a synthetic world, run the full audience-interest
// pipeline (topics -> events -> trending -> correlation), train one
// predictor, and print a summary.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include <fstream>

#include "core/embedding_cache.h"
#include "core/pipeline.h"
#include "core/report.h"
#include "datagen/world.h"

using namespace newsdiff;

int main() {
  // 1. Synthesise the world and load it into the embedded document store
  //    (the paper crawls News River / NewsAPI / Twitter into MongoDB).
  datagen::WorldOptions wopts;
  wopts.seed = 2021;
  wopts.num_articles = 3000;
  wopts.num_tweets = 9000;
  datagen::World world = datagen::GenerateWorld(wopts);
  store::Database db;
  world.LoadInto(db);
  std::printf("world: %zu articles, %zu tweets, %zu users, %zu events\n",
              world.articles.size(), world.tweets.size(), world.users.size(),
              world.events.size());

  // 2. The frozen background embedding store (Google News substitute).
  auto store_or = core::LoadOrTrainPretrained("newsdiff_cache/pretrained_300d.txt");
  if (!store_or.ok()) {
    std::fprintf(stderr, "embeddings: %s\n",
                 store_or.status().ToString().c_str());
    return 1;
  }
  const embed::PretrainedStore& pretrained = *store_or;

  // 3. Run the analysis pipeline.
  core::PipelineOptions popts;
  core::Pipeline pipeline(popts);
  auto result_or = pipeline.Run(db, pretrained);
  if (!result_or.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const core::PipelineResult& r = *result_or;
  std::printf("topics=%zu news_events=%zu twitter_events=%zu trending=%zu "
              "correlations=%zu unrelated=%zu assigned_events=%zu\n",
              r.topics.size(), r.news_events.size(), r.twitter_events.size(),
              r.trending.size(), r.correlations.size(),
              r.unrelated_twitter_events.size(), r.assignments.size());
  for (size_t i = 0; i < r.topics.size() && i < 5; ++i) {
    std::printf("  topic %zu: ", i);
    for (const auto& kw : r.topics[i].keywords) std::printf("%s ", kw.c_str());
    std::printf("\n");
  }
  for (size_t i = 0; i < r.twitter_events.size() && i < 5; ++i) {
    const auto& ev = r.twitter_events[i];
    std::printf("  twitter event '%s': support=%zu related=%zu\n",
                ev.main_word.c_str(), ev.support, ev.related_words.size());
  }
  size_t rows = 0;
  for (const auto& a : r.assignments) rows += a.tweet_indices.size();
  std::printf("dataset rows (before variant build): %zu\n", rows);

  // 4. Build the A1 and A2 datasets and train MLP 1 on likes.
  for (core::DatasetVariant v :
       {core::DatasetVariant::kA1, core::DatasetVariant::kA2}) {
    core::TrainingDataset ds =
        core::BuildDataset(v, r.assignments, r.twitter_events, r.twitter_ed,
                           r.tweets, pretrained);
    core::PredictorOptions pred;
    auto outcome = core::TrainAndEvaluate(ds.x, ds.likes,
                                          core::NetworkKind::kMlp1, pred);
    if (!outcome.ok()) {
      std::fprintf(stderr, "train: %s\n",
                   outcome.status().ToString().c_str());
      return 1;
    }
    std::printf("%s likes accuracy (MLP 1): %.3f  (epochs=%zu rows=%zu)\n",
                core::DatasetVariantName(v), outcome->accuracy,
                outcome->history.epochs_run, ds.x.rows());
  }

  // 5. Export the machine-readable run report.
  {
    std::ofstream out("quickstart_report.json");
    out << core::ReportJson(r) << '\n';
  }
  std::printf("full run report written to quickstart_report.json\n");
  return 0;
}
