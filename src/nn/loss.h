#ifndef NEWSDIFF_NN_LOSS_H_
#define NEWSDIFF_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "la/matrix.h"

namespace newsdiff::nn {

/// Result of a loss evaluation: the mean loss over the batch and the
/// gradient with respect to the network's final (pre-loss) output.
struct LossResult {
  double loss = 0.0;
  la::Matrix grad;  // batch x outputs
};

/// Softmax + categorical cross-entropy, fused for numerical stability
/// (the standard treatment of the paper's Eq. 12 generalised to k classes).
/// `logits` is batch x classes; `labels` holds class indices.
LossResult SoftmaxCrossEntropy(const la::Matrix& logits,
                               const std::vector<int>& labels);

/// Binary cross-entropy of Eq. (12) for sigmoid outputs in (0, 1);
/// `probs` is batch x 1 and `labels` holds 0/1.
LossResult BinaryCrossEntropy(const la::Matrix& probs,
                              const std::vector<int>& labels);

/// Mean squared error; `targets` has the same shape as `outputs`.
LossResult MeanSquaredError(const la::Matrix& outputs,
                            const la::Matrix& targets);

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_LOSS_H_
