#include "nn/architectures.h"

#include <memory>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"

namespace newsdiff::nn {

Model BuildMlp(const MlpConfig& config) {
  Rng rng(config.seed);
  Model model(config.input_size);
  size_t in = config.input_size;
  for (size_t h : config.hidden_sizes) {
    model.Add(std::make_unique<Dense>(in, h, rng));
    model.Add(std::make_unique<Activation>(ActivationKind::kRelu));
    in = h;
  }
  model.Add(std::make_unique<Dense>(in, config.num_classes, rng));
  return model;
}

Model BuildCnn(const CnnConfig& config) {
  Rng rng(config.seed);
  Model model(config.input_size);
  model.Add(std::make_unique<Conv1D>(config.input_size, /*in_channels=*/1,
                                     config.filters, config.kernel_size,
                                     rng));
  model.Add(std::make_unique<Activation>(ActivationKind::kRelu));
  size_t conv_len = config.input_size - config.kernel_size + 1;
  model.Add(
      std::make_unique<MaxPool1D>(conv_len, config.filters, config.pool_size));
  size_t flat = (conv_len / config.pool_size) * config.filters;
  model.Add(std::make_unique<Dense>(flat, config.dense_size, rng));
  model.Add(std::make_unique<Activation>(ActivationKind::kRelu));
  model.Add(std::make_unique<Dense>(config.dense_size, config.num_classes, rng));
  return model;
}

}  // namespace newsdiff::nn
