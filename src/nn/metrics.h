#ifndef NEWSDIFF_NN_METRICS_H_
#define NEWSDIFF_NN_METRICS_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"

namespace newsdiff::nn {

/// k x k confusion matrix: entry (true, predicted) counts examples.
class ConfusionMatrix {
 public:
  ConfusionMatrix(const std::vector<int>& truth,
                  const std::vector<int>& predicted, size_t num_classes);

  size_t num_classes() const { return k_; }
  size_t At(size_t truth, size_t predicted) const {
    return counts_[truth * k_ + predicted];
  }
  size_t total() const { return total_; }

  size_t TruePositives(size_t cls) const;
  size_t FalsePositives(size_t cls) const;
  size_t FalseNegatives(size_t cls) const;
  size_t TrueNegatives(size_t cls) const;

  /// Plain categorical accuracy: correct / total.
  double Accuracy() const;

  /// Average accuracy over classes (the paper's Eq. 17):
  ///   A = (1/k) * sum_i (TP_i + TN_i) / (TP_i + FN_i + FP_i + TN_i)
  double AverageAccuracy() const;

  /// Macro-averaged precision, recall, F1.
  double MacroPrecision() const;
  double MacroRecall() const;
  double MacroF1() const;

 private:
  size_t k_;
  size_t total_;
  std::vector<size_t> counts_;
};

/// Argmax class per row of a probability/logit matrix.
std::vector<int> ArgmaxRows(const la::Matrix& m);

/// Fraction of positions where the vectors agree.
double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted);

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_METRICS_H_
