#ifndef NEWSDIFF_NN_LAYER_H_
#define NEWSDIFF_NN_LAYER_H_

#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "la/matrix.h"

namespace newsdiff::nn {

/// A trainable parameter: value and the gradient from the last backward
/// pass. Both live inside the owning layer; the optimizer mutates `value`.
struct Param {
  la::Matrix* value;
  la::Matrix* grad;
  std::string name;
};

/// Base class for network layers. Data flows as row-major batches:
/// each row of the activation matrix is one example. Layers cache whatever
/// they need between Forward and Backward (single-stream training).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` (batch x in_features).
  virtual la::Matrix Forward(const la::Matrix& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after Forward on the same batch.
  virtual la::Matrix Backward(const la::Matrix& grad_output) = 0;

  /// Trainable parameters (empty for activations/pooling).
  virtual std::vector<Param> Params() { return {}; }

  /// Output feature count for a given input feature count; layers with
  /// shape constraints validate here (called once at build time).
  virtual size_t OutputSize(size_t input_size) const = 0;

  /// Human-readable layer name for summaries.
  virtual std::string Name() const = 0;

  /// Execution parallelism for this layer's kernels. Model::Fit pushes the
  /// FitOptions value to every layer; the default is serial. The GEMM-bound
  /// layers (Dense, Conv1D forward) are map-style, so their outputs are
  /// bitwise invariant to this setting; Conv1D's backward weight gradient
  /// regroups its batch sum per shard (deterministic for a fixed shard
  /// count, and the legacy sum when the resolved shard count is 1).
  void set_parallelism(const Parallelism& par) { par_ = par; }
  const Parallelism& parallelism() const { return par_; }

 protected:
  Parallelism par_;
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_LAYER_H_
