#ifndef NEWSDIFF_NN_LAYER_H_
#define NEWSDIFF_NN_LAYER_H_

#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "la/matrix.h"

namespace newsdiff::la {
class PackedWeightCache;
}

namespace newsdiff::nn {

/// Binds a layer's immutable inference-time weights to a shared cross-call
/// packed-weight cache (la/weight_cache.h). `key` identifies the weights
/// (layer index within the model), `version` is the model generation —
/// bumped on every reload so stale packs swap out RCU-style. `int8` routes
/// the layer's inference GEMM through the quantized path.
struct InferenceCacheBinding {
  la::PackedWeightCache* cache = nullptr;
  uint64_t key = 0;
  uint64_t version = 0;
  bool int8 = false;
};

/// A trainable parameter: value and the gradient from the last backward
/// pass. Both live inside the owning layer; the optimizer mutates `value`.
struct Param {
  la::Matrix* value;
  la::Matrix* grad;
  std::string name;
};

/// Base class for network layers. Data flows as row-major batches:
/// each row of the activation matrix is one example. Layers cache whatever
/// they need between Forward and Backward (single-stream training).
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output for `input` (batch x in_features).
  virtual la::Matrix Forward(const la::Matrix& input, bool training) = 0;

  /// Given dLoss/dOutput, accumulates parameter gradients and returns
  /// dLoss/dInput. Must be called after Forward on the same batch.
  virtual la::Matrix Backward(const la::Matrix& grad_output) = 0;

  /// Inference-only in-place variant: a layer whose output shape equals
  /// its input shape and whose transform is elementwise may mutate `*h`
  /// directly and return true, letting Model::Forward skip one
  /// alloc+copy per layer on the batched serving path. Same arithmetic,
  /// same element order as Forward — bitwise identical results. Records
  /// no backward state; callers must fall back to Forward when training.
  virtual bool ForwardInPlace(la::Matrix* /*h*/) { return false; }

  /// Trainable parameters (empty for activations/pooling).
  virtual std::vector<Param> Params() { return {}; }

  /// Output feature count for a given input feature count; layers with
  /// shape constraints validate here (called once at build time).
  virtual size_t OutputSize(size_t input_size) const = 0;

  /// Human-readable layer name for summaries.
  virtual std::string Name() const = 0;

  /// Execution parallelism for this layer's kernels. Model::Fit pushes the
  /// FitOptions value to every layer; the default is serial. The GEMM-bound
  /// layers (Dense, Conv1D forward) are map-style, so their outputs are
  /// bitwise invariant to this setting; Conv1D's backward weight gradient
  /// regroups its batch sum per shard (deterministic for a fixed shard
  /// count, and the legacy sum when the resolved shard count is 1).
  void set_parallelism(const Parallelism& par) { par_ = par; }
  const Parallelism& parallelism() const { return par_; }

  /// Binds the layer's inference-time GEMM weights to `binding.cache`.
  /// Only layers whose forward pass is a weights-on-the-right GEMM (Dense)
  /// participate; the default is a no-op. (Conv1D's forward is per-row
  /// DotN over call-resident filter taps — there is no per-call packing to
  /// hoist.) Training passes never read the cache, so Fit behaviour is
  /// unchanged by a binding.
  virtual void BindInferenceCache(const InferenceCacheBinding&) {}

 protected:
  Parallelism par_;
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_LAYER_H_
