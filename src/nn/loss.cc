#include "nn/loss.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/activations.h"

namespace newsdiff::nn {

LossResult SoftmaxCrossEntropy(const la::Matrix& logits,
                               const std::vector<int>& labels) {
  assert(logits.rows() == labels.size());
  const size_t batch = logits.rows();
  LossResult result;
  result.grad = Softmax(logits);
  double total = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (size_t r = 0; r < batch; ++r) {
    double* row = result.grad.RowPtr(r);
    int label = labels[r];
    assert(label >= 0 && static_cast<size_t>(label) < logits.cols());
    total -= std::log(std::max(row[label], 1e-15));
    // dL/dlogits = (softmax - onehot) / batch.
    row[label] -= 1.0;
    for (size_t c = 0; c < logits.cols(); ++c) row[c] *= inv_batch;
  }
  result.loss = total * inv_batch;
  return result;
}

LossResult BinaryCrossEntropy(const la::Matrix& probs,
                              const std::vector<int>& labels) {
  assert(probs.cols() == 1 && probs.rows() == labels.size());
  const size_t batch = probs.rows();
  LossResult result;
  result.grad = la::Matrix(batch, 1);
  double total = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch);
  for (size_t r = 0; r < batch; ++r) {
    double p = std::clamp(probs(r, 0), 1e-12, 1.0 - 1e-12);
    double y = static_cast<double>(labels[r]);
    total -= y * std::log(p) + (1.0 - y) * std::log(1.0 - p);
    // dL/dp for Eq. (12).
    result.grad(r, 0) = inv_batch * (p - y) / (p * (1.0 - p));
  }
  result.loss = total * inv_batch;
  return result;
}

LossResult MeanSquaredError(const la::Matrix& outputs,
                            const la::Matrix& targets) {
  assert(outputs.rows() == targets.rows() &&
         outputs.cols() == targets.cols());
  LossResult result;
  result.grad = outputs;
  result.grad.Sub(targets);
  double total = 0.0;
  for (double v : result.grad.data()) total += v * v;
  const double n = static_cast<double>(outputs.size());
  result.loss = total / n;
  result.grad.Scale(2.0 / n);
  return result;
}

}  // namespace newsdiff::nn
