#ifndef NEWSDIFF_NN_MODEL_H_
#define NEWSDIFF_NN_MODEL_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/status.h"
#include "la/matrix.h"
#include "nn/layer.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"

namespace newsdiff::nn {

/// Early-stopping configuration: stop when the training loss fails to
/// improve by at least `min_delta` for `patience` consecutive epochs —
/// the "no change in the loss function from one epoch to the next"
/// mechanism of §5.6.
struct EarlyStoppingOptions {
  bool enabled = true;
  double min_delta = 1e-4;
  size_t patience = 3;
};

/// Self-healing training (§4.9 spirit: the deployment resumes "from
/// checkpoints or from scratch"). When enabled, Fit snapshots the full
/// training state after every good epoch; an epoch that produces a
/// non-finite or exploding loss — or non-finite weights — is rolled back
/// and re-run with the learning rate multiplied by `lr_backoff`, instead
/// of training onward through NaNs. With a `checkpoint_path`, the snapshot
/// is also persisted (atomically, checksummed) so a killed process can
/// resume mid-run and reproduce the uninterrupted run's weights exactly.
struct RecoveryOptions {
  bool enabled = false;
  /// An epoch loss above explode_factor * (first good epoch's loss) counts
  /// as divergence even while still finite.
  double explode_factor = 1e3;
  /// Learning-rate multiplier applied on each rollback.
  double lr_backoff = 0.5;
  /// Rollbacks allowed across the whole run before Fit gives up with an
  /// error (a dataset full of NaNs cannot be healed by a smaller step).
  size_t max_rollbacks = 12;
  /// Training checkpoint file; empty keeps rollback in-memory only.
  std::string checkpoint_path;
  /// Persist every N good epochs (only with a checkpoint_path).
  size_t checkpoint_every = 1;
  /// Resume from checkpoint_path when it holds a valid checkpoint for this
  /// architecture. The caller passes the optimizer at its *original*
  /// learning rate; the checkpointed backoff is re-applied on load.
  bool resume = false;
  /// Filesystem seam for checkpoint IO (nullptr = real filesystem).
  FileIo* io = nullptr;
  /// Fault-injection seam for tests/benches: when set and returning true
  /// for an epoch, that epoch's weights are poisoned with NaN after the
  /// update step — a deterministic stand-in for a numeric blowup.
  std::function<bool(size_t epoch)> corrupt_epoch_hook;
};

/// Training configuration.
struct FitOptions {
  size_t epochs = 500;
  size_t batch_size = 5000;  // the paper's batch size (§5.7)
  EarlyStoppingOptions early_stopping;
  /// Shuffle the training set each epoch.
  bool shuffle = true;
  /// Clip the global gradient norm to this value before each optimizer
  /// step (0 disables). Keeps large-learning-rate configurations (the
  /// paper's SGD lr = 0.5) stable.
  double clip_norm = 5.0;
  uint64_t seed = 123;
  /// Optional held-out fraction evaluated (but not trained on) each epoch.
  double validation_split = 0.0;
  /// Log progress every N epochs (0 = silent).
  size_t verbose_every = 0;
  /// Divergence rollback + checkpoint/resume (off by default).
  RecoveryOptions recovery;
  /// Execution parallelism pushed to every layer at the top of Fit (and
  /// left in place for subsequent Predict/Evaluate calls). Dense and
  /// Conv1D forward/backward GEMMs are map-style, so trained weights are
  /// bitwise invariant to `threads`; Conv1D's backward weight gradient is
  /// deterministic per resolved shard count and reproduces the legacy sum
  /// when the resolved shard count is 1 (the default).
  Parallelism parallelism;
};

/// Per-run training history.
struct FitHistory {
  std::vector<double> train_loss;
  std::vector<double> train_accuracy;
  std::vector<double> val_loss;      // empty when validation_split == 0
  std::vector<double> val_accuracy;
  std::vector<double> epoch_millis;
  size_t epochs_run = 0;
  bool stopped_early = false;
  double total_seconds = 0.0;
  // Self-healing bookkeeping (all zero/identity when recovery is off).
  size_t rollbacks = 0;          // diverged epochs rolled back and re-run
  double final_lr_scale = 1.0;   // cumulative lr_backoff applied
  size_t resumed_from_epoch = 0; // first epoch run by this call
  size_t checkpoints_written = 0;
};

/// A sequential feed-forward classifier trained with softmax cross-entropy.
/// Owns its layers; not copyable.
class Model {
 public:
  /// `input_size` is the feature count of each example row.
  explicit Model(size_t input_size) : input_size_(input_size) {}

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer; returns *this for chaining. The layer's expected
  /// input size must match the current output size (checked via
  /// OutputSize's assertions at add time).
  Model& Add(std::unique_ptr<Layer> layer);

  /// Current output feature count (input_size if no layers yet).
  size_t output_size() const { return output_size_; }
  size_t input_size() const { return input_size_; }
  size_t num_layers() const { return layers_.size(); }

  /// Total trainable scalar parameters.
  size_t ParameterCount();

  /// Forward pass producing logits (no softmax).
  la::Matrix Forward(const la::Matrix& x, bool training = false);

  /// Class probabilities (softmax of Forward).
  la::Matrix PredictProba(const la::Matrix& x);

  /// Hard class predictions.
  std::vector<int> Predict(const la::Matrix& x);

  /// Trains on (x, labels) with minibatch gradient descent.
  /// Returns the history, or an error for malformed inputs.
  StatusOr<FitHistory> Fit(const la::Matrix& x, const std::vector<int>& labels,
                           Optimizer& optimizer, const FitOptions& options);

  /// Mean loss + accuracy on a dataset without updating parameters.
  std::pair<double, double> Evaluate(const la::Matrix& x,
                                     const std::vector<int>& labels);

  /// One-line per layer architecture summary.
  std::string Summary();

  /// All trainable parameters in layer order (used by serialization and
  /// custom training loops).
  std::vector<Param> Parameters() { return AllParams(); }

  /// Binds every layer's inference-time GEMM weights to a shared
  /// cross-call packed cache (la/weight_cache.h); each layer's key is its
  /// index. `version` is the model generation — the serving layer bumps it
  /// per reload so stale packs swap out. `int8` opts the cache-aware
  /// layers into the quantized inference path. Training is unaffected.
  void BindInferenceCache(la::PackedWeightCache* cache, uint64_t version,
                          bool int8 = false);

  /// Pushes an execution parallelism to every layer. Fit does this from
  /// FitOptions at the top of training; the serving layer calls it once
  /// per loaded model so inference batches run under the server's config.
  void SetParallelism(const Parallelism& par);

 private:
  std::vector<Param> AllParams();

  size_t input_size_;
  size_t output_size_ = 0;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_MODEL_H_
