#ifndef NEWSDIFF_NN_MODEL_H_
#define NEWSDIFF_NN_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "nn/layer.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"

namespace newsdiff::nn {

/// Early-stopping configuration: stop when the training loss fails to
/// improve by at least `min_delta` for `patience` consecutive epochs —
/// the "no change in the loss function from one epoch to the next"
/// mechanism of §5.6.
struct EarlyStoppingOptions {
  bool enabled = true;
  double min_delta = 1e-4;
  size_t patience = 3;
};

/// Training configuration.
struct FitOptions {
  size_t epochs = 500;
  size_t batch_size = 5000;  // the paper's batch size (§5.7)
  EarlyStoppingOptions early_stopping;
  /// Shuffle the training set each epoch.
  bool shuffle = true;
  /// Clip the global gradient norm to this value before each optimizer
  /// step (0 disables). Keeps large-learning-rate configurations (the
  /// paper's SGD lr = 0.5) stable.
  double clip_norm = 5.0;
  uint64_t seed = 123;
  /// Optional held-out fraction evaluated (but not trained on) each epoch.
  double validation_split = 0.0;
  /// Log progress every N epochs (0 = silent).
  size_t verbose_every = 0;
};

/// Per-run training history.
struct FitHistory {
  std::vector<double> train_loss;
  std::vector<double> train_accuracy;
  std::vector<double> val_loss;      // empty when validation_split == 0
  std::vector<double> val_accuracy;
  std::vector<double> epoch_millis;
  size_t epochs_run = 0;
  bool stopped_early = false;
  double total_seconds = 0.0;
};

/// A sequential feed-forward classifier trained with softmax cross-entropy.
/// Owns its layers; not copyable.
class Model {
 public:
  /// `input_size` is the feature count of each example row.
  explicit Model(size_t input_size) : input_size_(input_size) {}

  Model(const Model&) = delete;
  Model& operator=(const Model&) = delete;
  Model(Model&&) = default;
  Model& operator=(Model&&) = default;

  /// Appends a layer; returns *this for chaining. The layer's expected
  /// input size must match the current output size (checked via
  /// OutputSize's assertions at add time).
  Model& Add(std::unique_ptr<Layer> layer);

  /// Current output feature count (input_size if no layers yet).
  size_t output_size() const { return output_size_; }
  size_t input_size() const { return input_size_; }
  size_t num_layers() const { return layers_.size(); }

  /// Total trainable scalar parameters.
  size_t ParameterCount();

  /// Forward pass producing logits (no softmax).
  la::Matrix Forward(const la::Matrix& x, bool training = false);

  /// Class probabilities (softmax of Forward).
  la::Matrix PredictProba(const la::Matrix& x);

  /// Hard class predictions.
  std::vector<int> Predict(const la::Matrix& x);

  /// Trains on (x, labels) with minibatch gradient descent.
  /// Returns the history, or an error for malformed inputs.
  StatusOr<FitHistory> Fit(const la::Matrix& x, const std::vector<int>& labels,
                           Optimizer& optimizer, const FitOptions& options);

  /// Mean loss + accuracy on a dataset without updating parameters.
  std::pair<double, double> Evaluate(const la::Matrix& x,
                                     const std::vector<int>& labels);

  /// One-line per layer architecture summary.
  std::string Summary();

  /// All trainable parameters in layer order (used by serialization and
  /// custom training loops).
  std::vector<Param> Parameters() { return AllParams(); }

 private:
  std::vector<Param> AllParams();

  size_t input_size_;
  size_t output_size_ = 0;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_MODEL_H_
