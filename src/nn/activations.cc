#include "nn/activations.h"

#include <algorithm>
#include <cmath>

namespace newsdiff::nn {

double ReluScalar(double z) { return z > 0.0 ? z : 0.0; }

double SigmoidScalar(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double TanhScalar(double z) { return std::tanh(z); }

la::Matrix Activation::Forward(const la::Matrix& input, bool training) {
  la::Matrix out = input;
  switch (kind_) {
    case ActivationKind::kRelu:
      for (double& v : out.data()) v = ReluScalar(v);
      break;
    case ActivationKind::kSigmoid:
      for (double& v : out.data()) v = SigmoidScalar(v);
      break;
    case ActivationKind::kTanh:
      for (double& v : out.data()) v = TanhScalar(v);
      break;
  }
  if (training) output_ = out;
  return out;
}

bool Activation::ForwardInPlace(la::Matrix* h) {
  switch (kind_) {
    case ActivationKind::kRelu:
      for (double& v : h->data()) v = ReluScalar(v);
      break;
    case ActivationKind::kSigmoid:
      for (double& v : h->data()) v = SigmoidScalar(v);
      break;
    case ActivationKind::kTanh:
      for (double& v : h->data()) v = TanhScalar(v);
      break;
  }
  return true;
}

la::Matrix Activation::Backward(const la::Matrix& grad_output) {
  la::Matrix grad = grad_output;
  const auto& y = output_.data();
  auto& g = grad.data();
  switch (kind_) {
    case ActivationKind::kRelu:
      for (size_t i = 0; i < g.size(); ++i) {
        if (y[i] <= 0.0) g[i] = 0.0;
      }
      break;
    case ActivationKind::kSigmoid:
      for (size_t i = 0; i < g.size(); ++i) g[i] *= y[i] * (1.0 - y[i]);
      break;
    case ActivationKind::kTanh:
      for (size_t i = 0; i < g.size(); ++i) g[i] *= 1.0 - y[i] * y[i];
      break;
  }
  return grad;
}

std::string Activation::Name() const {
  switch (kind_) {
    case ActivationKind::kRelu:
      return "ReLU";
    case ActivationKind::kSigmoid:
      return "Sigmoid";
    case ActivationKind::kTanh:
      return "Tanh";
  }
  return "Activation";
}

void SoftmaxInPlace(la::Matrix* m) {
  for (size_t r = 0; r < m->rows(); ++r) {
    double* row = m->RowPtr(r);
    double mx = row[0];
    for (size_t c = 1; c < m->cols(); ++c) mx = std::max(mx, row[c]);
    double sum = 0.0;
    for (size_t c = 0; c < m->cols(); ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    double inv = 1.0 / sum;
    for (size_t c = 0; c < m->cols(); ++c) row[c] *= inv;
  }
}

la::Matrix Softmax(const la::Matrix& logits) {
  la::Matrix out = logits;
  SoftmaxInPlace(&out);
  return out;
}

}  // namespace newsdiff::nn
