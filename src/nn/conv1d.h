#ifndef NEWSDIFF_NN_CONV1D_H_
#define NEWSDIFF_NN_CONV1D_H_

#include <string>

#include "nn/layer.h"

namespace newsdiff::nn {

/// 1-D convolution over a (length x channels) signal stored flattened
/// channel-major per position: feature index = pos * channels + channel.
/// Valid padding, stride 1. This is the convolution layer of the paper's
/// CNN architecture (Fig. 3), which slides kernels over the document
/// embedding vector.
class Conv1D : public Layer {
 public:
  /// `input_length` positions with `in_channels` channels each;
  /// `filters` output channels with kernels of width `kernel_size`.
  Conv1D(size_t input_length, size_t in_channels, size_t filters,
         size_t kernel_size, Rng& rng);

  la::Matrix Forward(const la::Matrix& input, bool training) override;
  la::Matrix Backward(const la::Matrix& grad_output) override;
  std::vector<Param> Params() override;
  size_t OutputSize(size_t input_size) const override;
  std::string Name() const override { return "Conv1D"; }

  size_t output_length() const { return output_length_; }
  size_t filters() const { return filters_; }

 private:
  size_t input_length_;
  size_t in_channels_;
  size_t filters_;
  size_t kernel_size_;
  size_t output_length_;
  // Kernels: filters x (kernel_size * in_channels).
  la::Matrix w_;
  la::Matrix b_;  // 1 x filters
  la::Matrix dw_;
  la::Matrix db_;
  la::Matrix input_;
};

/// Max pooling over non-overlapping windows of `pool_size` positions
/// (stride == pool_size), per channel. Trailing positions that do not fill
/// a window are dropped, matching Keras' default.
class MaxPool1D : public Layer {
 public:
  MaxPool1D(size_t input_length, size_t channels, size_t pool_size);

  la::Matrix Forward(const la::Matrix& input, bool training) override;
  la::Matrix Backward(const la::Matrix& grad_output) override;
  size_t OutputSize(size_t input_size) const override;
  std::string Name() const override { return "MaxPool1D"; }

  size_t output_length() const { return output_length_; }

 private:
  size_t input_length_;
  size_t channels_;
  size_t pool_size_;
  size_t output_length_;
  // argmax positions from the last forward pass: batch x output features.
  std::vector<uint32_t> argmax_;
  size_t last_batch_ = 0;
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_CONV1D_H_
