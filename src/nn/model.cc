#include "nn/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/time.h"
#include "nn/activations.h"
#include "nn/loss.h"

namespace newsdiff::nn {

Model& Model::Add(std::unique_ptr<Layer> layer) {
  size_t in = layers_.empty() ? input_size_ : output_size_;
  output_size_ = layer->OutputSize(in);
  layers_.push_back(std::move(layer));
  return *this;
}

size_t Model::ParameterCount() {
  size_t n = 0;
  for (const Param& p : AllParams()) n += p.value->size();
  return n;
}

la::Matrix Model::Forward(const la::Matrix& x, bool training) {
  la::Matrix h = x;
  for (auto& layer : layers_) h = layer->Forward(h, training);
  return h;
}

la::Matrix Model::PredictProba(const la::Matrix& x) {
  return Softmax(Forward(x, /*training=*/false));
}

std::vector<int> Model::Predict(const la::Matrix& x) {
  return ArgmaxRows(Forward(x, /*training=*/false));
}

std::vector<Param> Model::AllParams() {
  std::vector<Param> params;
  for (auto& layer : layers_) {
    for (Param& p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::pair<double, double> Model::Evaluate(const la::Matrix& x,
                                          const std::vector<int>& labels) {
  la::Matrix logits = Forward(x, /*training=*/false);
  LossResult lr = SoftmaxCrossEntropy(logits, labels);
  std::vector<int> pred = ArgmaxRows(logits);
  return {lr.loss, Accuracy(labels, pred)};
}

StatusOr<FitHistory> Model::Fit(const la::Matrix& x,
                                const std::vector<int>& labels,
                                Optimizer& optimizer,
                                const FitOptions& options) {
  if (x.rows() != labels.size()) {
    return Status::InvalidArgument("x rows != label count");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.cols() != input_size_) {
    return Status::InvalidArgument("x cols != model input size");
  }
  if (layers_.empty()) {
    return Status::FailedPrecondition("model has no layers");
  }
  for (int label : labels) {
    if (label < 0 || static_cast<size_t>(label) >= output_size_) {
      return Status::InvalidArgument("label out of range");
    }
  }

  // Optional validation split: last fraction of the (pre-shuffle) data.
  size_t n = x.rows();
  size_t n_val = static_cast<size_t>(options.validation_split *
                                     static_cast<double>(n));
  size_t n_train = n - n_val;
  if (n_train == 0) {
    return Status::InvalidArgument("validation_split leaves no training data");
  }

  la::Matrix val_x;
  std::vector<int> val_y;
  if (n_val > 0) {
    val_x.Resize(n_val, x.cols());
    val_y.resize(n_val);
    for (size_t i = 0; i < n_val; ++i) {
      std::copy(x.RowPtr(n_train + i), x.RowPtr(n_train + i) + x.cols(),
                val_x.RowPtr(i));
      val_y[i] = labels[n_train + i];
    }
  }

  Rng rng(options.seed);
  std::vector<size_t> order(n_train);
  std::iota(order.begin(), order.end(), 0);

  FitHistory history;
  WallTimer total_timer;
  double best_loss = 0.0;
  size_t epochs_without_improvement = 0;

  const size_t batch = std::max<size_t>(1, options.batch_size);
  la::Matrix bx;
  std::vector<int> by;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    WallTimer epoch_timer;
    if (options.shuffle) rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t correct = 0;

    for (size_t start = 0; start < n_train; start += batch) {
      size_t sz = std::min(batch, n_train - start);
      bx.Resize(sz, x.cols());
      by.resize(sz);
      for (size_t i = 0; i < sz; ++i) {
        size_t src = order[start + i];
        std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(), bx.RowPtr(i));
        by[i] = labels[src];
      }
      la::Matrix logits = Forward(bx, /*training=*/true);
      LossResult lr = SoftmaxCrossEntropy(logits, by);
      epoch_loss += lr.loss * static_cast<double>(sz);
      std::vector<int> pred = ArgmaxRows(logits);
      for (size_t i = 0; i < sz; ++i) {
        if (pred[i] == by[i]) ++correct;
      }
      la::Matrix grad = lr.grad;
      for (size_t li = layers_.size(); li-- > 0;) {
        grad = layers_[li]->Backward(grad);
      }
      std::vector<Param> params = AllParams();
      if (options.clip_norm > 0.0) {
        double sq = 0.0;
        for (const Param& p : params) {
          for (double g : p.grad->data()) sq += g * g;
        }
        double norm = std::sqrt(sq);
        if (norm > options.clip_norm) {
          double scale = options.clip_norm / norm;
          for (const Param& p : params) p.grad->Scale(scale);
        }
      }
      optimizer.Step(params);
    }

    epoch_loss /= static_cast<double>(n_train);
    double epoch_acc =
        static_cast<double>(correct) / static_cast<double>(n_train);
    history.train_loss.push_back(epoch_loss);
    history.train_accuracy.push_back(epoch_acc);
    if (n_val > 0) {
      auto [vl, va] = Evaluate(val_x, val_y);
      history.val_loss.push_back(vl);
      history.val_accuracy.push_back(va);
    }
    history.epoch_millis.push_back(epoch_timer.ElapsedMillis());
    history.epochs_run = epoch + 1;

    if (options.verbose_every > 0 && (epoch + 1) % options.verbose_every == 0) {
      NEWSDIFF_LOG(Info) << "epoch " << (epoch + 1) << " loss=" << epoch_loss
                         << " acc=" << epoch_acc;
    }

    if (options.early_stopping.enabled) {
      if (epoch == 0 ||
          best_loss - epoch_loss > options.early_stopping.min_delta) {
        best_loss = epoch_loss;
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
        if (epochs_without_improvement >= options.early_stopping.patience) {
          history.stopped_early = true;
          break;
        }
      }
    }
  }

  history.total_seconds = total_timer.ElapsedSeconds();
  return history;
}

std::string Model::Summary() {
  std::string out = "Model(input=" + std::to_string(input_size_) + ")\n";
  size_t in = input_size_;
  for (auto& layer : layers_) {
    size_t next = layer->OutputSize(in);
    size_t params = 0;
    for (const Param& p : layer->Params()) params += p.value->size();
    out += "  " + layer->Name() + ": " + std::to_string(in) + " -> " +
           std::to_string(next) + " (" + std::to_string(params) +
           " params)\n";
    in = next;
  }
  return out;
}

}  // namespace newsdiff::nn
