#include "nn/model.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/logging.h"
#include "common/time.h"
#include "la/vector_ops.h"
#include "nn/activations.h"
#include "nn/loss.h"
#include "nn/serialize.h"

namespace newsdiff::nn {

Model& Model::Add(std::unique_ptr<Layer> layer) {
  size_t in = layers_.empty() ? input_size_ : output_size_;
  output_size_ = layer->OutputSize(in);
  layers_.push_back(std::move(layer));
  return *this;
}

void Model::SetParallelism(const Parallelism& par) {
  for (auto& layer : layers_) layer->set_parallelism(par);
}

void Model::BindInferenceCache(la::PackedWeightCache* cache, uint64_t version,
                               bool int8) {
  for (size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->BindInferenceCache(InferenceCacheBinding{cache, i, version,
                                                         int8});
  }
}

size_t Model::ParameterCount() {
  size_t n = 0;
  for (const Param& p : AllParams()) n += p.value->size();
  return n;
}

la::Matrix Model::Forward(const la::Matrix& x, bool training) {
  if (layers_.empty()) return x;
  // The first layer reads `x` directly — the h = x copy the old loop paid
  // existed only to unify the iteration. Later shape-preserving layers
  // (activations, inference dropout) transform h in place when not
  // training; ForwardInPlace is bitwise-identical to Forward by contract.
  la::Matrix h = layers_.front()->Forward(x, training);
  for (size_t i = 1; i < layers_.size(); ++i) {
    if (!training && layers_[i]->ForwardInPlace(&h)) continue;
    h = layers_[i]->Forward(h, training);
  }
  return h;
}

la::Matrix Model::PredictProba(const la::Matrix& x) {
  la::Matrix probs = Forward(x, /*training=*/false);
  SoftmaxInPlace(&probs);
  return probs;
}

std::vector<int> Model::Predict(const la::Matrix& x) {
  return ArgmaxRows(Forward(x, /*training=*/false));
}

std::vector<Param> Model::AllParams() {
  std::vector<Param> params;
  for (auto& layer : layers_) {
    for (Param& p : layer->Params()) params.push_back(p);
  }
  return params;
}

std::pair<double, double> Model::Evaluate(const la::Matrix& x,
                                          const std::vector<int>& labels) {
  la::Matrix logits = Forward(x, /*training=*/false);
  LossResult lr = SoftmaxCrossEntropy(logits, labels);
  std::vector<int> pred = ArgmaxRows(logits);
  return {lr.loss, Accuracy(labels, pred)};
}

StatusOr<FitHistory> Model::Fit(const la::Matrix& x,
                                const std::vector<int>& labels,
                                Optimizer& optimizer,
                                const FitOptions& options) {
  if (x.rows() != labels.size()) {
    return Status::InvalidArgument("x rows != label count");
  }
  if (x.rows() == 0) return Status::InvalidArgument("empty training set");
  if (x.cols() != input_size_) {
    return Status::InvalidArgument("x cols != model input size");
  }
  if (layers_.empty()) {
    return Status::FailedPrecondition("model has no layers");
  }
  for (int label : labels) {
    if (label < 0 || static_cast<size_t>(label) >= output_size_) {
      return Status::InvalidArgument("label out of range");
    }
  }
  for (auto& layer : layers_) layer->set_parallelism(options.parallelism);

  // Optional validation split: last fraction of the (pre-shuffle) data.
  size_t n = x.rows();
  size_t n_val = static_cast<size_t>(options.validation_split *
                                     static_cast<double>(n));
  size_t n_train = n - n_val;
  if (n_train == 0) {
    return Status::InvalidArgument("validation_split leaves no training data");
  }

  la::Matrix val_x;
  std::vector<int> val_y;
  if (n_val > 0) {
    val_x.Resize(n_val, x.cols());
    val_y.resize(n_val);
    for (size_t i = 0; i < n_val; ++i) {
      std::copy(x.RowPtr(n_train + i), x.RowPtr(n_train + i) + x.cols(),
                val_x.RowPtr(i));
      val_y[i] = labels[n_train + i];
    }
  }

  Rng rng(options.seed);
  std::vector<size_t> order(n_train);

  FitHistory history;
  WallTimer total_timer;
  double best_loss = 0.0;
  bool have_best = false;
  size_t epochs_without_improvement = 0;

  const RecoveryOptions& recovery = options.recovery;
  double lr_scale = 1.0;
  double first_good_loss = 0.0;
  bool have_first_good_loss = false;
  size_t start_epoch = 0;

  // Resume: pick the training loop back up exactly where the checkpoint
  // left it — weights, optimizer accumulators, shuffle RNG, early-stopping
  // counters, and the learning-rate backoff (the caller passes the
  // optimizer at its original rate).
  if (recovery.enabled && recovery.resume && !recovery.checkpoint_path.empty()) {
    FileIo& io = recovery.io != nullptr ? *recovery.io : DefaultFileIo();
    if (io.Exists(recovery.checkpoint_path)) {
      StatusOr<TrainingState> loaded = LoadTrainingCheckpoint(
          *this, optimizer, recovery.checkpoint_path, recovery.io);
      if (loaded.ok()) {
        start_epoch = loaded->epochs_done;
        best_loss = loaded->best_loss;
        have_best = loaded->have_best;
        epochs_without_improvement = loaded->epochs_without_improvement;
        lr_scale = loaded->lr_scale;
        history.rollbacks = loaded->rollbacks;
        if (lr_scale != 1.0) optimizer.ScaleLearningRate(lr_scale);
        rng.RestoreState(loaded->rng);
        history.resumed_from_epoch = start_epoch;
        NEWSDIFF_LOG(Info) << "fit: resumed from "
                           << recovery.checkpoint_path << " at epoch "
                           << start_epoch;
      } else {
        NEWSDIFF_LOG(Warning)
            << "fit: ignoring damaged checkpoint "
            << recovery.checkpoint_path << ": " << loaded.status().message();
      }
    }
  }

  // The rollback snapshot: last good epoch's full state (initially the
  // starting state). Cheap relative to an epoch of matmuls.
  std::vector<Param> all_params = AllParams();
  std::vector<la::Matrix> good_weights;
  std::vector<la::Matrix> good_opt_state;
  Rng::State good_rng;
  auto take_snapshot = [&]() {
    good_weights.clear();
    for (const Param& p : all_params) good_weights.push_back(*p.value);
    good_opt_state = optimizer.ExportState(all_params);
    good_rng = rng.SaveState();
  };
  auto restore_snapshot = [&]() {
    for (size_t i = 0; i < all_params.size(); ++i) {
      *all_params[i].value = good_weights[i];
    }
    optimizer.ImportState(all_params, good_opt_state);
    rng.RestoreState(good_rng);
  };
  auto params_finite = [&]() {
    for (const Param& p : all_params) {
      for (double v : p.value->data()) {
        if (!std::isfinite(v)) return false;
      }
    }
    return true;
  };
  if (recovery.enabled) take_snapshot();

  auto persist_checkpoint = [&](size_t epochs_done) {
    if (!recovery.enabled || recovery.checkpoint_path.empty()) return;
    size_t every = std::max<size_t>(1, recovery.checkpoint_every);
    if (epochs_done % every != 0 && epochs_done != options.epochs) return;
    TrainingState state;
    state.epochs_done = epochs_done;
    state.best_loss = best_loss;
    state.have_best = have_best;
    state.epochs_without_improvement = epochs_without_improvement;
    state.lr_scale = lr_scale;
    state.rollbacks = history.rollbacks;
    state.rng = rng.SaveState();
    Status saved = SaveTrainingCheckpoint(*this, optimizer, state,
                                          recovery.checkpoint_path,
                                          recovery.io);
    if (saved.ok()) {
      ++history.checkpoints_written;
    } else {
      // Training outlives a sick checkpoint disk; rollback still works
      // from the in-memory snapshot.
      NEWSDIFF_LOG(Warning) << "fit: checkpoint failed: " << saved.message();
    }
  };

  const size_t batch = std::max<size_t>(1, options.batch_size);
  la::Matrix bx;
  std::vector<int> by;

  size_t epoch = start_epoch;
  while (epoch < options.epochs) {
    WallTimer epoch_timer;
    // Derive the epoch's order from the identity so a restored RNG state
    // is all that rollback/resume needs to reproduce the shuffle.
    std::iota(order.begin(), order.end(), 0);
    if (options.shuffle) rng.Shuffle(order);
    double epoch_loss = 0.0;
    size_t correct = 0;
    bool batch_loss_nonfinite = false;

    for (size_t start = 0; start < n_train; start += batch) {
      size_t sz = std::min(batch, n_train - start);
      bx.Resize(sz, x.cols());
      by.resize(sz);
      for (size_t i = 0; i < sz; ++i) {
        size_t src = order[start + i];
        std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(), bx.RowPtr(i));
        by[i] = labels[src];
      }
      la::Matrix logits = Forward(bx, /*training=*/true);
      LossResult lr = SoftmaxCrossEntropy(logits, by);
      epoch_loss += lr.loss * static_cast<double>(sz);
      std::vector<int> pred = ArgmaxRows(logits);
      for (size_t i = 0; i < sz; ++i) {
        if (pred[i] == by[i]) ++correct;
      }
      if (recovery.enabled && !std::isfinite(lr.loss)) {
        // The rest of the epoch can only propagate the damage; cut to the
        // rollback instead of finishing it.
        batch_loss_nonfinite = true;
        break;
      }
      la::Matrix grad = lr.grad;
      for (size_t li = layers_.size(); li-- > 0;) {
        grad = layers_[li]->Backward(grad);
      }
      std::vector<Param> params = AllParams();
      if (options.clip_norm > 0.0) {
        double sq = 0.0;
        for (const Param& p : params) {
          // DotN's init seed keeps one accumulation chain across all
          // params, matching the legacy single-loop sum bitwise.
          const double* g = p.grad->data().data();
          sq = la::DotN(g, g, p.grad->size(), sq);
        }
        double norm = std::sqrt(sq);
        if (norm > options.clip_norm) {
          double scale = options.clip_norm / norm;
          for (const Param& p : params) p.grad->Scale(scale);
        }
      }
      optimizer.Step(params);
    }

    epoch_loss /= static_cast<double>(n_train);

    if (recovery.enabled && recovery.corrupt_epoch_hook &&
        recovery.corrupt_epoch_hook(epoch)) {
      all_params[0].value->Fill(std::nan(""));
    }

    bool diverged =
        recovery.enabled &&
        (batch_loss_nonfinite || !std::isfinite(epoch_loss) ||
         (have_first_good_loss &&
          epoch_loss > recovery.explode_factor *
                           std::max(first_good_loss, 1e-12)) ||
         !params_finite());
    if (diverged) {
      ++history.rollbacks;
      if (history.rollbacks > recovery.max_rollbacks) {
        return Status::Internal(
            "training diverged: " + std::to_string(history.rollbacks - 1) +
            " rollbacks exhausted (lr scale " + std::to_string(lr_scale) +
            "); the data or architecture, not the step size, is the problem");
      }
      restore_snapshot();
      optimizer.ScaleLearningRate(recovery.lr_backoff);
      lr_scale *= recovery.lr_backoff;
      NEWSDIFF_LOG(Warning) << "fit: epoch " << (epoch + 1)
                            << " diverged; rolled back, lr scale now "
                            << lr_scale;
      continue;  // re-run the same epoch at the smaller step
    }

    double epoch_acc =
        static_cast<double>(correct) / static_cast<double>(n_train);
    history.train_loss.push_back(epoch_loss);
    history.train_accuracy.push_back(epoch_acc);
    if (n_val > 0) {
      auto [vl, va] = Evaluate(val_x, val_y);
      history.val_loss.push_back(vl);
      history.val_accuracy.push_back(va);
    }
    history.epoch_millis.push_back(epoch_timer.ElapsedMillis());
    history.epochs_run = epoch + 1;
    if (!have_first_good_loss && std::isfinite(epoch_loss)) {
      first_good_loss = epoch_loss;
      have_first_good_loss = true;
    }

    if (options.verbose_every > 0 && (epoch + 1) % options.verbose_every == 0) {
      NEWSDIFF_LOG(Info) << "epoch " << (epoch + 1) << " loss=" << epoch_loss
                         << " acc=" << epoch_acc;
    }

    bool stop = false;
    if (options.early_stopping.enabled) {
      if (!have_best ||
          best_loss - epoch_loss > options.early_stopping.min_delta) {
        best_loss = epoch_loss;
        have_best = true;
        epochs_without_improvement = 0;
      } else {
        ++epochs_without_improvement;
        if (epochs_without_improvement >= options.early_stopping.patience) {
          history.stopped_early = true;
          stop = true;
        }
      }
    } else if (!have_best) {
      best_loss = epoch_loss;
      have_best = true;
    }

    if (recovery.enabled) take_snapshot();
    ++epoch;
    persist_checkpoint(epoch);
    if (stop) break;
  }

  history.final_lr_scale = lr_scale;
  history.total_seconds = total_timer.ElapsedSeconds();
  return history;
}

std::string Model::Summary() {
  std::string out = "Model(input=" + std::to_string(input_size_) + ")\n";
  size_t in = input_size_;
  for (auto& layer : layers_) {
    size_t next = layer->OutputSize(in);
    size_t params = 0;
    for (const Param& p : layer->Params()) params += p.value->size();
    out += "  " + layer->Name() + ": " + std::to_string(in) + " -> " +
           std::to_string(next) + " (" + std::to_string(params) +
           " params)\n";
    in = next;
  }
  return out;
}

}  // namespace newsdiff::nn
