#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "common/crc32.h"

namespace newsdiff::nn {

namespace {
constexpr const char* kModelMagic = "newsdiff-model";
constexpr int kModelVersion = 2;  // 1 = no crc trailer (still readable)
constexpr const char* kTrainMagic = "newsdiff-train";
constexpr int kTrainVersion = 1;

FileIo& Io(FileIo* io) { return io != nullptr ? *io : DefaultFileIo(); }

void AppendMatrix(const la::Matrix& m, std::string* out) {
  char buf[40];
  const auto& data = m.data();
  for (size_t i = 0; i < data.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", data[i]);
    *out += buf;
    *out += (i + 1) % 8 == 0 || i + 1 == data.size() ? '\n' : ' ';
  }
}

/// The parameter section shared by the weights file and the training
/// checkpoint: count, then per-parameter header + row-major values.
std::string ModelBody(Model& model) {
  std::vector<Param> params = model.Parameters();
  std::string body = std::to_string(params.size()) + "\n";
  for (const Param& p : params) {
    body += p.name + " " + std::to_string(p.value->rows()) + " " +
            std::to_string(p.value->cols()) + "\n";
    AppendMatrix(*p.value, &body);
  }
  return body;
}

Status ReadModelBody(Model& model, std::istream& in, const std::string& path) {
  size_t count = 0;
  if (!(in >> count)) return Status::ParseError("missing parameter count");
  std::vector<Param> params = model.Parameters();
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "architecture mismatch: file has " + std::to_string(count) +
        " parameters, model has " + std::to_string(params.size()));
  }
  for (Param& p : params) {
    std::string name;
    size_t rows = 0, cols = 0;
    if (!(in >> name >> rows >> cols)) {
      return Status::ParseError("truncated parameter header in " + path);
    }
    if (name != p.name || rows != p.value->rows() ||
        cols != p.value->cols()) {
      return Status::FailedPrecondition(
          "parameter mismatch: expected " + p.name + " " +
          std::to_string(p.value->rows()) + "x" +
          std::to_string(p.value->cols()) + ", file has " + name + " " +
          std::to_string(rows) + "x" + std::to_string(cols));
    }
    for (double& v : p.value->data()) {
      if (!(in >> v)) {
        return Status::ParseError("truncated parameter data in " + path);
      }
    }
  }
  return Status::OK();
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Splits `contents` into payload + stated CRC from the "crc <hex>" trailer
/// line, verifying the checksum.
Status CheckTrailer(const std::string& contents, const std::string& path,
                    std::string* payload) {
  size_t crc_pos = contents.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && contents[crc_pos - 1] != '\n')) {
    return Status::ParseError("missing crc trailer in " + path);
  }
  std::string crc_line = contents.substr(crc_pos + 4);
  while (!crc_line.empty() &&
         (crc_line.back() == '\n' || crc_line.back() == '\r')) {
    crc_line.pop_back();
  }
  uint32_t stated = 0;
  if (!ParseCrc32Hex(crc_line, &stated)) {
    return Status::ParseError("malformed crc trailer in " + path);
  }
  *payload = contents.substr(0, crc_pos);
  if (Crc32(*payload) != stated) {
    return Status::ParseError("checksum mismatch in " + path +
                              " (torn write or bit rot)");
  }
  return Status::OK();
}

std::string WithTrailer(std::string payload) {
  payload += "crc " + Crc32Hex(Crc32(payload)) + "\n";
  return payload;
}

}  // namespace

Status SaveWeights(Model& model, const std::string& path, FileIo* io) {
  std::string payload = std::string(kModelMagic) + " " +
                        std::to_string(kModelVersion) + "\n" +
                        ModelBody(model);
  return WriteFileAtomic(Io(io), path, WithTrailer(std::move(payload)));
}

Status LoadWeights(Model& model, const std::string& path, FileIo* io) {
  StatusOr<std::string> contents = Io(io).ReadFile(path);
  if (!contents.ok()) return contents.status();

  std::istringstream header(*contents);
  std::string magic;
  int version = 0;
  if (!(header >> magic >> version) || magic != kModelMagic) {
    return Status::ParseError("not a newsdiff model file: " + path);
  }
  if (version != 1 && version != kModelVersion) {
    return Status::ParseError("unsupported model version " +
                              std::to_string(version));
  }

  std::string payload = *contents;
  if (version >= 2) {
    NEWSDIFF_RETURN_IF_ERROR(CheckTrailer(*contents, path, &payload));
  }
  std::istringstream in(payload);
  in >> magic >> version;  // re-skip the header
  return ReadModelBody(model, in, path);
}

Status SaveTrainingCheckpoint(Model& model, Optimizer& optimizer,
                              const TrainingState& state,
                              const std::string& path, FileIo* io) {
  std::string payload = std::string(kTrainMagic) + " " +
                        std::to_string(kTrainVersion) + "\n";
  payload += ModelBody(model);

  payload += "rng";
  for (uint64_t word : state.rng.s) payload += " " + std::to_string(word);
  payload += " " + std::to_string(state.rng.has_cached_gaussian ? 1 : 0) +
             " " + std::to_string(DoubleBits(state.rng.cached_gaussian)) +
             "\n";
  payload += "fit " + std::to_string(state.epochs_done) + " " +
             std::to_string(DoubleBits(state.best_loss)) + " " +
             std::to_string(state.have_best ? 1 : 0) + " " +
             std::to_string(state.epochs_without_improvement) + " " +
             std::to_string(DoubleBits(state.lr_scale)) + " " +
             std::to_string(state.rollbacks) + "\n";

  std::vector<la::Matrix> opt_state = optimizer.ExportState(model.Parameters());
  payload += "optstate " + std::to_string(opt_state.size()) + "\n";
  for (const la::Matrix& m : opt_state) {
    payload += std::to_string(m.rows()) + " " + std::to_string(m.cols()) +
               "\n";
    AppendMatrix(m, &payload);
  }
  return WriteFileAtomic(Io(io), path, WithTrailer(std::move(payload)));
}

StatusOr<TrainingState> LoadTrainingCheckpoint(Model& model,
                                               Optimizer& optimizer,
                                               const std::string& path,
                                               FileIo* io) {
  StatusOr<std::string> contents = Io(io).ReadFile(path);
  if (!contents.ok()) return contents.status();
  std::string payload;
  NEWSDIFF_RETURN_IF_ERROR(CheckTrailer(*contents, path, &payload));

  std::istringstream in(payload);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kTrainMagic) {
    return Status::ParseError("not a training checkpoint: " + path);
  }
  if (version != kTrainVersion) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(version));
  }
  NEWSDIFF_RETURN_IF_ERROR(ReadModelBody(model, in, path));

  TrainingState state;
  std::string tag;
  uint64_t has_cached = 0, cached_bits = 0;
  if (!(in >> tag) || tag != "rng") {
    return Status::ParseError("missing rng section in " + path);
  }
  for (uint64_t& word : state.rng.s) {
    if (!(in >> word)) return Status::ParseError("truncated rng state");
  }
  if (!(in >> has_cached >> cached_bits)) {
    return Status::ParseError("truncated rng state");
  }
  state.rng.has_cached_gaussian = has_cached != 0;
  state.rng.cached_gaussian = BitsToDouble(cached_bits);

  uint64_t best_bits = 0, have_best = 0, scale_bits = 0;
  if (!(in >> tag) || tag != "fit" || !(in >> state.epochs_done) ||
      !(in >> best_bits >> have_best >> state.epochs_without_improvement) ||
      !(in >> scale_bits >> state.rollbacks)) {
    return Status::ParseError("truncated fit section in " + path);
  }
  state.best_loss = BitsToDouble(best_bits);
  state.have_best = have_best != 0;
  state.lr_scale = BitsToDouble(scale_bits);

  size_t opt_count = 0;
  if (!(in >> tag) || tag != "optstate" || !(in >> opt_count)) {
    return Status::ParseError("missing optimizer state in " + path);
  }
  // Bounded by the architecture check below (ImportState); this guard just
  // keeps a corrupt count from driving a huge allocation loop.
  if (opt_count > (1u << 20)) {
    return Status::ParseError("implausible optimizer state count");
  }
  state.optimizer_state.reserve(opt_count);
  for (size_t i = 0; i < opt_count; ++i) {
    size_t rows = 0, cols = 0;
    if (!(in >> rows >> cols) || rows > (1u << 24) || cols > (1u << 24)) {
      return Status::ParseError("truncated optimizer state header");
    }
    la::Matrix m(rows, cols);
    for (double& v : m.data()) {
      if (!(in >> v)) return Status::ParseError("truncated optimizer state");
    }
    state.optimizer_state.push_back(std::move(m));
  }
  NEWSDIFF_RETURN_IF_ERROR(
      optimizer.ImportState(model.Parameters(), state.optimizer_state));
  return state;
}

}  // namespace newsdiff::nn
