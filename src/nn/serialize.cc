#include "nn/serialize.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace newsdiff::nn {

namespace {
constexpr const char* kMagic = "newsdiff-model";
constexpr int kVersion = 1;
}  // namespace

Status SaveWeights(Model& model, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  std::vector<Param> params = model.Parameters();
  out << kMagic << ' ' << kVersion << '\n';
  out << params.size() << '\n';
  char buf[40];
  for (const Param& p : params) {
    out << p.name << ' ' << p.value->rows() << ' ' << p.value->cols() << '\n';
    const auto& data = p.value->data();
    for (size_t i = 0; i < data.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%.17g", data[i]);
      out << buf << ((i + 1) % 8 == 0 || i + 1 == data.size() ? '\n' : ' ');
    }
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status LoadWeights(Model& model, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Status::ParseError("not a newsdiff model file: " + path);
  }
  if (version != kVersion) {
    return Status::ParseError("unsupported model version " +
                              std::to_string(version));
  }
  size_t count = 0;
  if (!(in >> count)) return Status::ParseError("missing parameter count");
  std::vector<Param> params = model.Parameters();
  if (count != params.size()) {
    return Status::FailedPrecondition(
        "architecture mismatch: file has " + std::to_string(count) +
        " parameters, model has " + std::to_string(params.size()));
  }
  for (Param& p : params) {
    std::string name;
    size_t rows = 0, cols = 0;
    if (!(in >> name >> rows >> cols)) {
      return Status::ParseError("truncated parameter header");
    }
    if (name != p.name || rows != p.value->rows() ||
        cols != p.value->cols()) {
      return Status::FailedPrecondition(
          "parameter mismatch: expected " + p.name + " " +
          std::to_string(p.value->rows()) + "x" +
          std::to_string(p.value->cols()) + ", file has " + name + " " +
          std::to_string(rows) + "x" + std::to_string(cols));
    }
    for (double& v : p.value->data()) {
      if (!(in >> v)) return Status::ParseError("truncated parameter data");
    }
  }
  return Status::OK();
}

}  // namespace newsdiff::nn
