#ifndef NEWSDIFF_NN_ACTIVATIONS_H_
#define NEWSDIFF_NN_ACTIVATIONS_H_

#include <string>

#include "nn/layer.h"

namespace newsdiff::nn {

/// The activation functions of the paper's Table 1 as layers (softmax is
/// fused into the cross-entropy loss; see loss.h).
enum class ActivationKind { kRelu, kSigmoid, kTanh };

/// Elementwise activation layer.
class Activation : public Layer {
 public:
  explicit Activation(ActivationKind kind) : kind_(kind) {}

  la::Matrix Forward(const la::Matrix& input, bool training) override;
  la::Matrix Backward(const la::Matrix& grad_output) override;
  bool ForwardInPlace(la::Matrix* h) override;
  size_t OutputSize(size_t input_size) const override { return input_size; }
  std::string Name() const override;

  ActivationKind kind() const { return kind_; }

 private:
  ActivationKind kind_;
  la::Matrix output_;  // cached activations (backward uses f'(x) via f(x))
};

/// Scalar activation values (Table 1), exposed for tests.
double ReluScalar(double z);
double SigmoidScalar(double z);
double TanhScalar(double z);

/// Row-wise softmax of `logits` (numerically stabilised).
la::Matrix Softmax(const la::Matrix& logits);

/// Row-wise softmax in place — the copy-free variant the inference path
/// uses on the logits it already owns. Same arithmetic as Softmax.
void SoftmaxInPlace(la::Matrix* m);

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_ACTIVATIONS_H_
