#include "nn/optimizer.h"

#include <cmath>

namespace newsdiff::nn {

void Optimizer::Step(const std::vector<Param>& params) {
  for (const Param& p : params) {
    std::vector<la::Matrix>& state = state_[p.value];
    if (state.size() != StateSlots()) {
      state.assign(StateSlots(),
                   la::Matrix(p.value->rows(), p.value->cols()));
    }
    UpdateOne(*p.value, *p.grad, state);
  }
}

std::vector<la::Matrix> Optimizer::ExportState(
    const std::vector<Param>& params) {
  std::vector<la::Matrix> out;
  out.reserve(params.size() * StateSlots());
  for (const Param& p : params) {
    auto it = state_.find(p.value);
    if (it != state_.end() && it->second.size() == StateSlots()) {
      for (const la::Matrix& m : it->second) out.push_back(m);
    } else {
      for (size_t i = 0; i < StateSlots(); ++i) {
        out.emplace_back(p.value->rows(), p.value->cols());
      }
    }
  }
  return out;
}

Status Optimizer::ImportState(const std::vector<Param>& params,
                              const std::vector<la::Matrix>& state) {
  if (state.size() != params.size() * StateSlots()) {
    return Status::FailedPrecondition(
        "optimizer state mismatch: have " + std::to_string(state.size()) +
        " matrices, need " + std::to_string(params.size() * StateSlots()));
  }
  size_t i = 0;
  for (const Param& p : params) {
    std::vector<la::Matrix> slots;
    slots.reserve(StateSlots());
    for (size_t s = 0; s < StateSlots(); ++s, ++i) {
      if (state[i].rows() != p.value->rows() ||
          state[i].cols() != p.value->cols()) {
        return Status::FailedPrecondition("optimizer state shape mismatch for " +
                                          p.name);
      }
      slots.push_back(state[i]);
    }
    state_[p.value] = std::move(slots);
  }
  return Status::OK();
}

void Sgd::UpdateOne(la::Matrix& value, const la::Matrix& grad,
                    std::vector<la::Matrix>& state) {
  la::Matrix& velocity = state[0];
  auto& v = velocity.data();
  auto& w = value.data();
  const auto& g = grad.data();
  for (size_t i = 0; i < w.size(); ++i) {
    v[i] = options_.momentum * v[i] - options_.learning_rate * g[i];
    w[i] += v[i];
  }
}

void Adagrad::UpdateOne(la::Matrix& value, const la::Matrix& grad,
                        std::vector<la::Matrix>& state) {
  la::Matrix& accum = state[0];
  auto& acc = accum.data();
  auto& w = value.data();
  const auto& g = grad.data();
  for (size_t i = 0; i < w.size(); ++i) {
    acc[i] += g[i] * g[i];
    w[i] -= options_.learning_rate * g[i] /
            (std::sqrt(acc[i]) + options_.epsilon);
  }
}

void Adadelta::UpdateOne(la::Matrix& value, const la::Matrix& grad,
                         std::vector<la::Matrix>& state) {
  la::Matrix& eg2 = state[0];   // E[g^2]
  la::Matrix& edw2 = state[1];  // E[dw^2]
  auto& g2 = eg2.data();
  auto& d2 = edw2.data();
  auto& w = value.data();
  const auto& g = grad.data();
  const double rho = options_.rho;
  const double eps = options_.epsilon;
  for (size_t i = 0; i < w.size(); ++i) {
    g2[i] = rho * g2[i] + (1.0 - rho) * g[i] * g[i];
    double dw = -std::sqrt((d2[i] + eps) / (g2[i] + eps)) * g[i];
    d2[i] = rho * d2[i] + (1.0 - rho) * dw * dw;
    w[i] += options_.learning_rate * dw;
  }
}

void Adam::UpdateOne(la::Matrix& value, const la::Matrix& grad,
                     std::vector<la::Matrix>& state) {
  la::Matrix& m = state[0];  // first moment
  la::Matrix& v = state[1];  // second moment
  la::Matrix& t = state[2];  // step counter in (0,0)
  t(0, 0) += 1.0;
  const double step = t(0, 0);
  const double b1 = options_.beta1;
  const double b2 = options_.beta2;
  const double bias1 = 1.0 - std::pow(b1, step);
  const double bias2 = 1.0 - std::pow(b2, step);
  auto& mv = m.data();
  auto& vv = v.data();
  auto& w = value.data();
  const auto& g = grad.data();
  for (size_t i = 0; i < w.size(); ++i) {
    mv[i] = b1 * mv[i] + (1.0 - b1) * g[i];
    vv[i] = b2 * vv[i] + (1.0 - b2) * g[i] * g[i];
    double mhat = mv[i] / bias1;
    double vhat = vv[i] / bias2;
    w[i] -= options_.learning_rate * mhat /
            (std::sqrt(vhat) + options_.epsilon);
  }
}

}  // namespace newsdiff::nn
