#ifndef NEWSDIFF_NN_DROPOUT_H_
#define NEWSDIFF_NN_DROPOUT_H_

#include <string>

#include "nn/layer.h"

namespace newsdiff::nn {

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and the survivors are scaled by 1/(1-rate); at
/// inference the layer is the identity. Deterministic for a fixed seed
/// (the mask stream advances with every training batch).
class Dropout : public Layer {
 public:
  /// `rate` in [0, 1).
  Dropout(double rate, uint64_t seed);

  la::Matrix Forward(const la::Matrix& input, bool training) override;
  la::Matrix Backward(const la::Matrix& grad_output) override;
  /// Inference dropout is the identity: in-place means "leave h alone".
  bool ForwardInPlace(la::Matrix*) override { return true; }
  size_t OutputSize(size_t input_size) const override { return input_size; }
  std::string Name() const override { return "Dropout"; }

  double rate() const { return rate_; }

 private:
  double rate_;
  Rng rng_;
  la::Matrix mask_;  // 0 or 1/(1-rate) per activation, from last Forward
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_DROPOUT_H_
