#ifndef NEWSDIFF_NN_ARCHITECTURES_H_
#define NEWSDIFF_NN_ARCHITECTURES_H_

#include <cstdint>
#include <vector>

#include "nn/model.h"

namespace newsdiff::nn {

/// The MLP architecture of the paper's Fig. 2: stacked fully-connected
/// ReLU hidden layers ending in a `num_classes` softmax head (softmax is
/// applied by the loss / PredictProba).
struct MlpConfig {
  size_t input_size = 300;
  std::vector<size_t> hidden_sizes = {128, 64};
  size_t num_classes = 3;
  uint64_t seed = 11;
};
Model BuildMlp(const MlpConfig& config);

/// The CNN architecture of Fig. 3: one Conv1D layer (ReLU) over the
/// document-embedding vector treated as a 1-channel sequence, max pooling,
/// then a fully-connected ReLU layer and the softmax head.
struct CnnConfig {
  size_t input_size = 300;
  size_t filters = 16;
  size_t kernel_size = 8;
  size_t pool_size = 4;
  size_t dense_size = 64;
  size_t num_classes = 3;
  uint64_t seed = 13;
};
Model BuildCnn(const CnnConfig& config);

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_ARCHITECTURES_H_
