#ifndef NEWSDIFF_NN_SERIALIZE_H_
#define NEWSDIFF_NN_SERIALIZE_H_

#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/rng.h"
#include "common/status.h"
#include "la/matrix.h"
#include "nn/model.h"
#include "nn/optimizer.h"

namespace newsdiff::nn {

/// Model-weight checkpointing. The paper's deployment (§4.9) continues
/// training from checkpoints whenever new data arrives instead of starting
/// from scratch; these helpers persist and restore a model's parameters.
///
/// The format is a plain text file:
///   newsdiff-model 2
///   <num_params>
///   <name> <rows> <cols>
///   v v v ...          (rows*cols doubles, row-major)
///   ...
///   crc <8-hex-crc32>  (over every byte before this line)
/// Files are written via temp+rename, so a crash mid-save never clobbers
/// the previous weights, and the CRC trailer detects torn writes and bit
/// rot at load time. Version-1 files (same layout, no trailer) still load.
/// Loading requires a model with the same architecture (identical parameter
/// names and shapes, in order); mismatches produce a FailedPrecondition.

/// Writes every trainable parameter of `model` to `path` atomically.
/// `io` is the filesystem seam (nullptr = real filesystem).
Status SaveWeights(Model& model, const std::string& path,
                   FileIo* io = nullptr);

/// Restores parameters previously written by SaveWeights into `model`,
/// verifying the checksum when present.
Status LoadWeights(Model& model, const std::string& path,
                   FileIo* io = nullptr);

/// Everything beyond the weights that Model::Fit needs to continue a run
/// exactly where it stopped: epoch counter, early-stopping state, the
/// learning-rate backoff applied by divergence rollbacks, the shuffle RNG,
/// and the optimizer's per-parameter accumulators. Doubles that must
/// round-trip exactly travel as IEEE-754 bit patterns.
struct TrainingState {
  size_t epochs_done = 0;
  double best_loss = 0.0;
  bool have_best = false;
  size_t epochs_without_improvement = 0;
  double lr_scale = 1.0;  // cumulative backoff already applied
  size_t rollbacks = 0;
  Rng::State rng;
  std::vector<la::Matrix> optimizer_state;  // from Optimizer::ExportState
};

/// Atomically persists weights + `state` + `optimizer`'s state as one
/// checksummed checkpoint file (format "newsdiff-train 1").
Status SaveTrainingCheckpoint(Model& model, Optimizer& optimizer,
                              const TrainingState& state,
                              const std::string& path, FileIo* io = nullptr);

/// Restores a checkpoint written by SaveTrainingCheckpoint: weights into
/// `model`, accumulators into `optimizer`, and returns the loop state.
StatusOr<TrainingState> LoadTrainingCheckpoint(Model& model,
                                               Optimizer& optimizer,
                                               const std::string& path,
                                               FileIo* io = nullptr);

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_SERIALIZE_H_
