#ifndef NEWSDIFF_NN_SERIALIZE_H_
#define NEWSDIFF_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/model.h"

namespace newsdiff::nn {

/// Model-weight checkpointing. The paper's deployment (§4.9) continues
/// training from checkpoints whenever new data arrives instead of starting
/// from scratch; these helpers persist and restore a model's parameters.
///
/// The format is a plain text file:
///   newsdiff-model 1
///   <num_params>
///   <name> <rows> <cols>
///   v v v ...          (rows*cols doubles, row-major)
///   ...
/// Loading requires a model with the same architecture (identical parameter
/// names and shapes, in order); mismatches produce a FailedPrecondition.

/// Writes every trainable parameter of `model` to `path`.
Status SaveWeights(Model& model, const std::string& path);

/// Restores parameters previously written by SaveWeights into `model`.
Status LoadWeights(Model& model, const std::string& path);

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_SERIALIZE_H_
