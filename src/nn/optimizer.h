#ifndef NEWSDIFF_NN_OPTIMIZER_H_
#define NEWSDIFF_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "nn/layer.h"

namespace newsdiff::nn {

/// Base class for gradient-descent optimizers (§3.5, Eq. 13-16). The
/// optimizer keeps per-parameter state keyed by the parameter's address
/// (parameters are stable for the lifetime of a model).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update to every parameter from its current gradient.
  void Step(const std::vector<Param>& params);

  virtual std::string Name() const = 0;

  /// Multiplies the global learning rate by `factor`. Self-healing
  /// training (Model::Fit recovery) backs off by halving on divergence.
  virtual void ScaleLearningRate(double factor) = 0;

  /// Snapshot of the per-parameter state in `params` order (state slots
  /// concatenated per parameter), for training checkpoints and epoch
  /// rollback. Parameters never stepped yet export zero matrices.
  std::vector<la::Matrix> ExportState(const std::vector<Param>& params);

  /// Restores a snapshot taken by ExportState over the same architecture.
  Status ImportState(const std::vector<Param>& params,
                     const std::vector<la::Matrix>& state);

 protected:
  /// Updates a single parameter in place.
  virtual void UpdateOne(la::Matrix& value, const la::Matrix& grad,
                         std::vector<la::Matrix>& state) = 0;
  /// Number of state matrices required per parameter.
  virtual size_t StateSlots() const = 0;

 private:
  std::unordered_map<const la::Matrix*, std::vector<la::Matrix>> state_;
};

/// Stochastic gradient descent with exponential-decay momentum (Eq. 14):
///   dw_t = alpha * dw_{t-1} - eta * grad
struct SgdOptions {
  double learning_rate = 0.5;  // the paper's MLP1/CNN1 use lr = 0.5
  double momentum = 0.0;       // alpha in Eq. 14
};
class Sgd : public Optimizer {
 public:
  explicit Sgd(SgdOptions options) : options_(options) {}
  std::string Name() const override { return "SGD"; }
  void ScaleLearningRate(double factor) override {
    options_.learning_rate *= factor;
  }

 protected:
  void UpdateOne(la::Matrix& value, const la::Matrix& grad,
                 std::vector<la::Matrix>& state) override;
  size_t StateSlots() const override { return 1; }

 private:
  SgdOptions options_;
};

/// ADAGRAD (Eq. 15): per-dimension learning rate scaled by the l2 norm of
/// all past gradients.
struct AdagradOptions {
  double learning_rate = 0.01;
  double epsilon = 1e-8;
};
class Adagrad : public Optimizer {
 public:
  explicit Adagrad(AdagradOptions options) : options_(options) {}
  std::string Name() const override { return "ADAGRAD"; }
  void ScaleLearningRate(double factor) override {
    options_.learning_rate *= factor;
  }

 protected:
  void UpdateOne(la::Matrix& value, const la::Matrix& grad,
                 std::vector<la::Matrix>& state) override;
  size_t StateSlots() const override { return 1; }

 private:
  AdagradOptions options_;
};

/// ADADELTA (Eq. 16): dw_t = -(RMS[dw]_{t-1} / RMS[g]_t) * g_t, with
/// exponentially decayed accumulators for squared gradients and squared
/// updates. `learning_rate` is a global multiplier on the update (Keras
/// semantics; the paper's MLP2/CNN2 use lr = 2).
struct AdadeltaOptions {
  double learning_rate = 2.0;
  double rho = 0.95;
  double epsilon = 1e-6;
};
class Adadelta : public Optimizer {
 public:
  explicit Adadelta(AdadeltaOptions options) : options_(options) {}
  std::string Name() const override { return "ADADELTA"; }
  void ScaleLearningRate(double factor) override {
    options_.learning_rate *= factor;
  }

 protected:
  void UpdateOne(la::Matrix& value, const la::Matrix& grad,
                 std::vector<la::Matrix>& state) override;
  size_t StateSlots() const override { return 2; }

 private:
  AdadeltaOptions options_;
};

/// Adam (Kingma & Ba 2015): bias-corrected first/second moment estimates.
/// Not used by the paper's configurations, but the de-facto modern default;
/// included so downstream users of the library are not locked into the
/// paper's optimizer menu.
struct AdamOptions {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
};
class Adam : public Optimizer {
 public:
  explicit Adam(AdamOptions options) : options_(options) {}
  std::string Name() const override { return "Adam"; }
  void ScaleLearningRate(double factor) override {
    options_.learning_rate *= factor;
  }

 protected:
  void UpdateOne(la::Matrix& value, const la::Matrix& grad,
                 std::vector<la::Matrix>& state) override;
  size_t StateSlots() const override { return 3; }

 private:
  AdamOptions options_;
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_OPTIMIZER_H_
