#include "nn/metrics.h"

#include <cassert>

namespace newsdiff::nn {

ConfusionMatrix::ConfusionMatrix(const std::vector<int>& truth,
                                 const std::vector<int>& predicted,
                                 size_t num_classes)
    : k_(num_classes), total_(truth.size()), counts_(num_classes * num_classes, 0) {
  assert(truth.size() == predicted.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    assert(truth[i] >= 0 && static_cast<size_t>(truth[i]) < k_);
    assert(predicted[i] >= 0 && static_cast<size_t>(predicted[i]) < k_);
    ++counts_[static_cast<size_t>(truth[i]) * k_ +
              static_cast<size_t>(predicted[i])];
  }
}

size_t ConfusionMatrix::TruePositives(size_t cls) const {
  return At(cls, cls);
}

size_t ConfusionMatrix::FalsePositives(size_t cls) const {
  size_t n = 0;
  for (size_t t = 0; t < k_; ++t) {
    if (t != cls) n += At(t, cls);
  }
  return n;
}

size_t ConfusionMatrix::FalseNegatives(size_t cls) const {
  size_t n = 0;
  for (size_t p = 0; p < k_; ++p) {
    if (p != cls) n += At(cls, p);
  }
  return n;
}

size_t ConfusionMatrix::TrueNegatives(size_t cls) const {
  return total_ - TruePositives(cls) - FalsePositives(cls) -
         FalseNegatives(cls);
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  size_t correct = 0;
  for (size_t c = 0; c < k_; ++c) correct += At(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::AverageAccuracy() const {
  if (total_ == 0 || k_ == 0) return 0.0;
  double sum = 0.0;
  for (size_t c = 0; c < k_; ++c) {
    double tp = static_cast<double>(TruePositives(c));
    double tn = static_cast<double>(TrueNegatives(c));
    sum += (tp + tn) / static_cast<double>(total_);
  }
  return sum / static_cast<double>(k_);
}

double ConfusionMatrix::MacroPrecision() const {
  double sum = 0.0;
  for (size_t c = 0; c < k_; ++c) {
    double tp = static_cast<double>(TruePositives(c));
    double fp = static_cast<double>(FalsePositives(c));
    sum += (tp + fp) > 0.0 ? tp / (tp + fp) : 0.0;
  }
  return k_ > 0 ? sum / static_cast<double>(k_) : 0.0;
}

double ConfusionMatrix::MacroRecall() const {
  double sum = 0.0;
  for (size_t c = 0; c < k_; ++c) {
    double tp = static_cast<double>(TruePositives(c));
    double fn = static_cast<double>(FalseNegatives(c));
    sum += (tp + fn) > 0.0 ? tp / (tp + fn) : 0.0;
  }
  return k_ > 0 ? sum / static_cast<double>(k_) : 0.0;
}

double ConfusionMatrix::MacroF1() const {
  double p = MacroPrecision();
  double r = MacroRecall();
  return (p + r) > 0.0 ? 2.0 * p * r / (p + r) : 0.0;
}

std::vector<int> ArgmaxRows(const la::Matrix& m) {
  std::vector<int> out(m.rows(), 0);
  for (size_t r = 0; r < m.rows(); ++r) {
    const double* row = m.RowPtr(r);
    int best = 0;
    for (size_t c = 1; c < m.cols(); ++c) {
      if (row[c] > row[best]) best = static_cast<int>(c);
    }
    out[r] = best;
  }
  return out;
}

double Accuracy(const std::vector<int>& truth,
                const std::vector<int>& predicted) {
  assert(truth.size() == predicted.size());
  if (truth.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

}  // namespace newsdiff::nn
