#include "nn/dropout.h"

#include <cassert>

namespace newsdiff::nn {

Dropout::Dropout(double rate, uint64_t seed) : rate_(rate), rng_(seed) {
  assert(rate >= 0.0 && rate < 1.0);
}

la::Matrix Dropout::Forward(const la::Matrix& input, bool training) {
  if (!training || rate_ == 0.0) return input;
  const double keep = 1.0 - rate_;
  const double scale = 1.0 / keep;
  mask_.Resize(input.rows(), input.cols());
  la::Matrix out = input;
  for (size_t i = 0; i < out.size(); ++i) {
    double m = rng_.Bernoulli(keep) ? scale : 0.0;
    mask_.data()[i] = m;
    out.data()[i] *= m;
  }
  return out;
}

la::Matrix Dropout::Backward(const la::Matrix& grad_output) {
  assert(grad_output.rows() == mask_.rows() &&
         grad_output.cols() == mask_.cols());
  la::Matrix grad = grad_output;
  for (size_t i = 0; i < grad.size(); ++i) {
    grad.data()[i] *= mask_.data()[i];
  }
  return grad;
}

}  // namespace newsdiff::nn
