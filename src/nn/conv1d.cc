#include "nn/conv1d.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace newsdiff::nn {

Conv1D::Conv1D(size_t input_length, size_t in_channels, size_t filters,
               size_t kernel_size, Rng& rng)
    : input_length_(input_length),
      in_channels_(in_channels),
      filters_(filters),
      kernel_size_(kernel_size),
      output_length_(input_length - kernel_size + 1),
      w_(filters, kernel_size * in_channels),
      b_(1, filters),
      dw_(filters, kernel_size * in_channels),
      db_(1, filters) {
  assert(kernel_size <= input_length);
  double limit = std::sqrt(
      6.0 / static_cast<double>(kernel_size * in_channels + filters));
  for (double& v : w_.data()) v = rng.Uniform(-limit, limit);
}

la::Matrix Conv1D::Forward(const la::Matrix& input, bool training) {
  assert(input.cols() == input_length_ * in_channels_);
  if (training) input_ = input;
  const size_t batch = input.rows();
  la::Matrix out(batch, output_length_ * filters_);
  const size_t kspan = kernel_size_ * in_channels_;
  ParallelFor(par_, batch, [&](size_t, size_t row_begin, size_t row_end) {
    for (size_t n = row_begin; n < row_end; ++n) {
      const double* x = input.RowPtr(n);
      double* y = out.RowPtr(n);
      for (size_t pos = 0; pos < output_length_; ++pos) {
        const double* window = x + pos * in_channels_;
        for (size_t f = 0; f < filters_; ++f) {
          const double* k = w_.RowPtr(f);
          double acc = b_(0, f);
          for (size_t i = 0; i < kspan; ++i) acc += k[i] * window[i];
          y[pos * filters_ + f] = acc;
        }
      }
    }
  });
  return out;
}

la::Matrix Conv1D::Backward(const la::Matrix& grad_output) {
  const size_t batch = grad_output.rows();
  assert(grad_output.cols() == output_length_ * filters_);
  assert(input_.rows() == batch);
  dw_.Fill(0.0);
  db_.Fill(0.0);
  la::Matrix grad_input(batch, input_length_ * in_channels_);
  const size_t kspan = kernel_size_ * in_channels_;
  // grad_input rows are disjoint per example; the weight gradients sum
  // over the batch, so each shard accumulates into its own partial and the
  // partials fold in shard order. One resolved shard reproduces the legacy
  // per-example accumulation order exactly.
  const size_t num_shards = ResolveShards(par_, batch);
  std::vector<la::Matrix> dw_part(num_shards, la::Matrix(dw_.rows(), dw_.cols()));
  std::vector<la::Matrix> db_part(num_shards, la::Matrix(db_.rows(), db_.cols()));
  ParallelFor(par_, batch, [&](size_t shard, size_t row_begin, size_t row_end) {
    la::Matrix& dw = dw_part[shard];
    la::Matrix& db = db_part[shard];
    for (size_t n = row_begin; n < row_end; ++n) {
      const double* x = input_.RowPtr(n);
      const double* gy = grad_output.RowPtr(n);
      double* gx = grad_input.RowPtr(n);
      for (size_t pos = 0; pos < output_length_; ++pos) {
        const double* window = x + pos * in_channels_;
        double* gwindow = gx + pos * in_channels_;
        for (size_t f = 0; f < filters_; ++f) {
          double g = gy[pos * filters_ + f];
          if (g == 0.0) continue;
          db(0, f) += g;
          double* dk = dw.RowPtr(f);
          const double* k = w_.RowPtr(f);
          for (size_t i = 0; i < kspan; ++i) {
            dk[i] += g * window[i];
            gwindow[i] += g * k[i];
          }
        }
      }
    }
  });
  for (size_t s = 0; s < num_shards; ++s) {
    dw_.Add(dw_part[s]);
    db_.Add(db_part[s]);
  }
  return grad_input;
}

std::vector<Param> Conv1D::Params() {
  return {{&w_, &dw_, "conv1d.w"}, {&b_, &db_, "conv1d.b"}};
}

size_t Conv1D::OutputSize(size_t input_size) const {
  assert(input_size == input_length_ * in_channels_);
  (void)input_size;
  return output_length_ * filters_;
}

MaxPool1D::MaxPool1D(size_t input_length, size_t channels, size_t pool_size)
    : input_length_(input_length),
      channels_(channels),
      pool_size_(pool_size),
      output_length_(input_length / pool_size) {
  assert(pool_size >= 1);
  assert(output_length_ >= 1);
}

la::Matrix MaxPool1D::Forward(const la::Matrix& input, bool training) {
  assert(input.cols() == input_length_ * channels_);
  const size_t batch = input.rows();
  la::Matrix out(batch, output_length_ * channels_);
  if (training) {
    argmax_.assign(batch * output_length_ * channels_, 0);
    last_batch_ = batch;
  }
  for (size_t n = 0; n < batch; ++n) {
    const double* x = input.RowPtr(n);
    double* y = out.RowPtr(n);
    for (size_t opos = 0; opos < output_length_; ++opos) {
      for (size_t c = 0; c < channels_; ++c) {
        double best = -std::numeric_limits<double>::infinity();
        uint32_t best_idx = 0;
        for (size_t k = 0; k < pool_size_; ++k) {
          size_t ipos = opos * pool_size_ + k;
          size_t idx = ipos * channels_ + c;
          if (x[idx] > best) {
            best = x[idx];
            best_idx = static_cast<uint32_t>(idx);
          }
        }
        size_t oidx = opos * channels_ + c;
        y[oidx] = best;
        if (training) {
          argmax_[n * output_length_ * channels_ + oidx] = best_idx;
        }
      }
    }
  }
  return out;
}

la::Matrix MaxPool1D::Backward(const la::Matrix& grad_output) {
  const size_t batch = grad_output.rows();
  assert(batch == last_batch_);
  la::Matrix grad_input(batch, input_length_ * channels_);
  const size_t out_features = output_length_ * channels_;
  for (size_t n = 0; n < batch; ++n) {
    const double* gy = grad_output.RowPtr(n);
    double* gx = grad_input.RowPtr(n);
    for (size_t o = 0; o < out_features; ++o) {
      gx[argmax_[n * out_features + o]] += gy[o];
    }
  }
  return grad_input;
}

size_t MaxPool1D::OutputSize(size_t input_size) const {
  assert(input_size == input_length_ * channels_);
  (void)input_size;
  return output_length_ * channels_;
}

}  // namespace newsdiff::nn
