#include "nn/conv1d.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/arena.h"
#include "la/vector_ops.h"

namespace newsdiff::nn {

Conv1D::Conv1D(size_t input_length, size_t in_channels, size_t filters,
               size_t kernel_size, Rng& rng)
    : input_length_(input_length),
      in_channels_(in_channels),
      filters_(filters),
      kernel_size_(kernel_size),
      output_length_(input_length - kernel_size + 1),
      w_(filters, kernel_size * in_channels),
      b_(1, filters),
      dw_(filters, kernel_size * in_channels),
      db_(1, filters) {
  assert(kernel_size <= input_length);
  double limit = std::sqrt(
      6.0 / static_cast<double>(kernel_size * in_channels + filters));
  for (double& v : w_.data()) v = rng.Uniform(-limit, limit);
}

la::Matrix Conv1D::Forward(const la::Matrix& input, bool training) {
  assert(input.cols() == input_length_ * in_channels_);
  if (training) input_ = input;
  const size_t batch = input.rows();
  la::Matrix out(batch, output_length_ * filters_);
  const size_t kspan = kernel_size_ * in_channels_;
  ParallelFor(par_, batch, [&](size_t, size_t row_begin, size_t row_end) {
    for (size_t n = row_begin; n < row_end; ++n) {
      const double* x = input.RowPtr(n);
      double* y = out.RowPtr(n);
      for (size_t pos = 0; pos < output_length_; ++pos) {
        const double* window = x + pos * in_channels_;
        for (size_t f = 0; f < filters_; ++f) {
          y[pos * filters_ + f] =
              la::DotN(w_.RowPtr(f), window, kspan, b_(0, f));
        }
      }
    }
  });
  return out;
}

la::Matrix Conv1D::Backward(const la::Matrix& grad_output) {
  const size_t batch = grad_output.rows();
  assert(grad_output.cols() == output_length_ * filters_);
  assert(input_.rows() == batch);
  dw_.Fill(0.0);
  db_.Fill(0.0);
  la::Matrix grad_input(batch, input_length_ * in_channels_);
  const size_t kspan = kernel_size_ * in_channels_;
  // grad_input rows are disjoint per example; the weight gradients sum
  // over the batch, so each shard accumulates into its own partial and the
  // partials fold in shard order. One resolved shard reproduces the legacy
  // per-example accumulation order exactly. The partials live in one arena
  // checkout (reused across minibatches) instead of per-call Matrix
  // allocations; the handle is acquired and released on this thread — pool
  // workers only write through it inside the region, which the region
  // barrier orders.
  const size_t num_shards = ResolveShards(par_, batch);
  const size_t wsz = dw_.size();
  const size_t bsz = db_.size();
  const size_t stride = wsz + bsz;
  ArenaBuffer partials = Arena::ThreadLocal().Acquire(num_shards * stride);
  std::fill(partials.data(), partials.data() + num_shards * stride, 0.0);
  ParallelFor(par_, batch, [&](size_t shard, size_t row_begin, size_t row_end) {
    // Per-shard layout: wsz doubles of dw (flat filters x kspan, the same
    // layout as dw_'s row-major storage) followed by bsz doubles of db.
    double* dw = partials.data() + shard * stride;
    double* db = dw + wsz;
    for (size_t n = row_begin; n < row_end; ++n) {
      const double* x = input_.RowPtr(n);
      const double* gy = grad_output.RowPtr(n);
      double* gx = grad_input.RowPtr(n);
      for (size_t pos = 0; pos < output_length_; ++pos) {
        const double* window = x + pos * in_channels_;
        double* gwindow = gx + pos * in_channels_;
        for (size_t f = 0; f < filters_; ++f) {
          double g = gy[pos * filters_ + f];
          if (g == 0.0) continue;
          db[f] += g;
          la::AxpyN(dw + f * kspan, window, g, kspan);
          la::AxpyN(gwindow, w_.RowPtr(f), g, kspan);
        }
      }
    }
  });
  for (size_t s = 0; s < num_shards; ++s) {
    const double* base = partials.data() + s * stride;
    la::AxpyN(dw_.data().data(), base, 1.0, wsz);
    la::AxpyN(db_.RowPtr(0), base + wsz, 1.0, bsz);
  }
  return grad_input;
}

std::vector<Param> Conv1D::Params() {
  return {{&w_, &dw_, "conv1d.w"}, {&b_, &db_, "conv1d.b"}};
}

size_t Conv1D::OutputSize(size_t input_size) const {
  assert(input_size == input_length_ * in_channels_);
  (void)input_size;
  return output_length_ * filters_;
}

MaxPool1D::MaxPool1D(size_t input_length, size_t channels, size_t pool_size)
    : input_length_(input_length),
      channels_(channels),
      pool_size_(pool_size),
      output_length_(input_length / pool_size) {
  assert(pool_size >= 1);
  assert(output_length_ >= 1);
}

la::Matrix MaxPool1D::Forward(const la::Matrix& input, bool training) {
  assert(input.cols() == input_length_ * channels_);
  const size_t batch = input.rows();
  la::Matrix out(batch, output_length_ * channels_);
  if (training) {
    argmax_.assign(batch * output_length_ * channels_, 0);
    last_batch_ = batch;
  }
  for (size_t n = 0; n < batch; ++n) {
    const double* x = input.RowPtr(n);
    double* y = out.RowPtr(n);
    for (size_t opos = 0; opos < output_length_; ++opos) {
      for (size_t c = 0; c < channels_; ++c) {
        double best = -std::numeric_limits<double>::infinity();
        uint32_t best_idx = 0;
        for (size_t k = 0; k < pool_size_; ++k) {
          size_t ipos = opos * pool_size_ + k;
          size_t idx = ipos * channels_ + c;
          if (x[idx] > best) {
            best = x[idx];
            best_idx = static_cast<uint32_t>(idx);
          }
        }
        size_t oidx = opos * channels_ + c;
        y[oidx] = best;
        if (training) {
          argmax_[n * output_length_ * channels_ + oidx] = best_idx;
        }
      }
    }
  }
  return out;
}

la::Matrix MaxPool1D::Backward(const la::Matrix& grad_output) {
  const size_t batch = grad_output.rows();
  assert(batch == last_batch_);
  la::Matrix grad_input(batch, input_length_ * channels_);
  const size_t out_features = output_length_ * channels_;
  for (size_t n = 0; n < batch; ++n) {
    const double* gy = grad_output.RowPtr(n);
    double* gx = grad_input.RowPtr(n);
    for (size_t o = 0; o < out_features; ++o) {
      gx[argmax_[n * out_features + o]] += gy[o];
    }
  }
  return grad_input;
}

size_t MaxPool1D::OutputSize(size_t input_size) const {
  assert(input_size == input_length_ * channels_);
  (void)input_size;
  return output_length_ * channels_;
}

}  // namespace newsdiff::nn
