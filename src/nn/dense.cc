#include "nn/dense.h"

#include <cassert>
#include <cmath>

#include "la/kernels.h"
#include "la/weight_cache.h"

namespace newsdiff::nn {

Dense::Dense(size_t in_features, size_t out_features, Rng& rng)
    : in_features_(in_features),
      out_features_(out_features),
      w_(in_features, out_features),
      b_(1, out_features),
      dw_(in_features, out_features),
      db_(1, out_features) {
  // Glorot/Xavier uniform: U(-limit, limit), limit = sqrt(6 / (in + out)).
  double limit =
      std::sqrt(6.0 / static_cast<double>(in_features + out_features));
  for (double& v : w_.data()) v = rng.Uniform(-limit, limit);
}

la::Matrix Dense::Forward(const la::Matrix& input, bool training) {
  assert(input.cols() == in_features_);
  if (training) input_ = input;
  la::Matrix out;
  if (!training && cache_.cache != nullptr &&
      par_.kernels.kind == KernelKind::kBlocked) {
    // Inference with a bound cache: the weights were packed once for this
    // model generation. The f32 prepacked product is bitwise identical to
    // the per-call blocked GEMM; the int8 route is the opt-in approximate
    // mode (KernelConfig::int8_inference).
    if (cache_.int8) {
      auto qb = cache_.cache->GetQuantized(cache_.key, cache_.version, w_);
      la::internal::Int8MatMulPrepacked(input, *qb, &out, par_);
    } else {
      auto pb =
          cache_.cache->GetPacked(cache_.key, cache_.version, w_, par_.kernels);
      la::internal::BlockedMatMulPrepacked(input, *pb, &out, par_);
    }
  } else {
    out = la::MatMul(input, w_, par_);
  }
  ParallelFor(par_, out.rows(), [&](size_t, size_t begin, size_t end) {
    const double* bias = b_.RowPtr(0);
    for (size_t r = begin; r < end; ++r) {
      double* row = out.RowPtr(r);
      for (size_t c = 0; c < out.cols(); ++c) row[c] += bias[c];
    }
  });
  return out;
}

la::Matrix Dense::Backward(const la::Matrix& grad_output) {
  assert(grad_output.cols() == out_features_);
  assert(input_.rows() == grad_output.rows());
  // Into-variant reuses dw_'s storage: no allocation per minibatch.
  la::MatMulTransAInto(input_, grad_output, &dw_, par_);
  db_.Fill(0.0);
  double* db = db_.RowPtr(0);
  for (size_t r = 0; r < grad_output.rows(); ++r) {
    la::AxpyN(db, grad_output.RowPtr(r), 1.0, out_features_);
  }
  return la::MatMulTransB(grad_output, w_, par_);
}

std::vector<Param> Dense::Params() {
  return {{&w_, &dw_, "dense.w"}, {&b_, &db_, "dense.b"}};
}

size_t Dense::OutputSize(size_t input_size) const {
  assert(input_size == in_features_);
  (void)input_size;
  return out_features_;
}

}  // namespace newsdiff::nn
