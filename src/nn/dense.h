#ifndef NEWSDIFF_NN_DENSE_H_
#define NEWSDIFF_NN_DENSE_H_

#include <string>

#include "nn/layer.h"

namespace newsdiff::nn {

/// Fully-connected layer: Y = X * W + b, the perceptron stack of §3.5.
class Dense : public Layer {
 public:
  /// Creates a layer mapping `in_features` -> `out_features`, with Glorot
  /// uniform weight initialisation from `rng`.
  Dense(size_t in_features, size_t out_features, Rng& rng);

  la::Matrix Forward(const la::Matrix& input, bool training) override;
  la::Matrix Backward(const la::Matrix& grad_output) override;
  std::vector<Param> Params() override;
  size_t OutputSize(size_t input_size) const override;
  std::string Name() const override { return "Dense"; }
  void BindInferenceCache(const InferenceCacheBinding& binding) override {
    cache_ = binding;
  }

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  const la::Matrix& weights() const { return w_; }
  const la::Matrix& bias() const { return b_; }

 private:
  size_t in_features_;
  size_t out_features_;
  la::Matrix w_;       // in x out
  la::Matrix b_;       // 1 x out
  la::Matrix dw_;
  la::Matrix db_;
  la::Matrix input_;   // cached for backward
  /// Optional shared packed-weight cache for inference forwards; unset
  /// (null cache) keeps the legacy per-call GEMM.
  InferenceCacheBinding cache_;
};

}  // namespace newsdiff::nn

#endif  // NEWSDIFF_NN_DENSE_H_
