#ifndef NEWSDIFF_TOPIC_NMF_H_
#define NEWSDIFF_TOPIC_NMF_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "la/matrix.h"
#include "la/sparse.h"

namespace newsdiff::topic {

/// Options for the NMF solver.
struct NmfOptions {
  /// Number of latent topics (k in the paper's §3.2).
  size_t components = 10;
  /// Maximum number of multiplicative-update iterations.
  size_t max_iterations = 200;
  /// Relative improvement threshold: stop when
  /// (F_prev - F) / F_initial < tolerance between objective checkpoints.
  double tolerance = 1e-4;
  /// Objective is evaluated every this many iterations (it costs O(nnz*k)).
  size_t eval_every = 10;
  /// Seed for the random initialisation of W and H.
  uint64_t seed = 42;
  /// Parallel execution of the update kernels. Every parallelized kernel in
  /// the solver is map-style (disjoint output writes, per-element
  /// accumulation order unchanged), so the factorisation is bitwise
  /// identical at any thread/shard count, including threads = 1.
  Parallelism parallelism;
};

/// Result of an NMF factorisation A ~= W * H with W >= 0, H >= 0.
struct NmfResult {
  la::Matrix w;  // n_docs x k, document-topic memberships
  la::Matrix h;  // k x n_terms, topic-term importances
  /// Frobenius objective F(W, H) = ||A - WH||_F^2 at each checkpoint.
  std::vector<double> objective_history;
  /// Iterations actually performed.
  size_t iterations = 0;
  /// Final objective value.
  double final_objective = 0.0;
};

/// Factorises the sparse matrix `a` using the multiplicative update rules of
/// Eq. (8):
///   H <- H .* (W^T A) ./ (W^T W H)
///   W <- W .* (A H^T) ./ (W H H^T)
/// Entries are floored at a small epsilon to preserve non-negativity and
/// avoid absorbing zeros. Deterministic for a fixed seed.
StatusOr<NmfResult> Nmf(const la::CsrMatrix& a, const NmfOptions& options);

/// Frobenius objective ||A - WH||_F^2 (Eq. 6), computed in O(nnz*k + k^2 m).
double NmfObjective(const la::CsrMatrix& a, const la::Matrix& w,
                    const la::Matrix& h);

}  // namespace newsdiff::topic

#endif  // NEWSDIFF_TOPIC_NMF_H_
