#include "topic/nmf.h"

#include <algorithm>
#include <cmath>

namespace newsdiff::topic {
namespace {

constexpr double kEps = 1e-12;
constexpr double kFloor = 1e-10;

}  // namespace

double NmfObjective(const la::CsrMatrix& a, const la::Matrix& w,
                    const la::Matrix& h) {
  // ||A - WH||^2 = ||A||^2 - 2<A, WH> + trace((W^T W)(H H^T)).
  double a2 = a.SquaredFrobeniusNorm();
  double cross = a.InnerProductWithProduct(w, h);
  la::Matrix wtw = la::MatMulTransA(w, w);       // k x k
  la::Matrix hht = la::MatMulTransB(h, h);       // k x k
  double wh2 = 0.0;
  const size_t k = wtw.rows();
  for (size_t i = 0; i < k; ++i) {
    const double* wrow = wtw.RowPtr(i);
    const double* hrow = hht.RowPtr(i);
    for (size_t j = 0; j < k; ++j) wh2 += wrow[j] * hrow[j];
  }
  return a2 - 2.0 * cross + wh2;
}

StatusOr<NmfResult> Nmf(const la::CsrMatrix& a, const NmfOptions& options) {
  const size_t n = a.rows();
  const size_t m = a.cols();
  const size_t k = options.components;
  if (k == 0) return Status::InvalidArgument("components must be positive");
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("matrix must be non-empty");
  }
  if (k > n || k > m) {
    return Status::InvalidArgument(
        "components must not exceed either matrix dimension");
  }

  // Guard against a zero evaluation stride (would divide by zero below).
  const size_t eval_every = std::max<size_t>(1, options.eval_every);

  Rng rng(options.seed);
  // Scale the random init so that E[WH] matches the mean of A, which keeps
  // early multiplicative steps well-conditioned.
  double mean =
      a.nnz() > 0
          ? a.SquaredFrobeniusNorm() /
                static_cast<double>(a.nnz())  // mean of squares of nnz
          : 1.0;
  double scale = std::sqrt(std::sqrt(mean) / static_cast<double>(k)) + 1e-3;
  NmfResult result;
  result.w = la::Matrix::Random(n, k, 0.0, scale, rng);
  result.h = la::Matrix::Random(k, m, 0.0, scale, rng);

  double initial_obj = NmfObjective(a, result.w, result.h);
  result.objective_history.push_back(initial_obj);
  double prev_obj = initial_obj;

  // A^T once up front: the per-iteration W^T A becomes a row-partitioned
  // gather (parallelizable, and bitwise equal to the scatter-style
  // TransposeMultiplyDense — see CsrMatrix::Transposed).
  const Parallelism& par = options.parallelism;
  const la::CsrMatrix at = a.Transposed();

  for (size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // H update: H .* (W^T A) ./ (W^T W H + eps).
    {
      la::Matrix wta = at.MultiplyDense(result.w, par).Transposed();  // k x m
      la::Matrix wtw = la::MatMulTransA(result.w, result.w, par);     // k x k
      la::Matrix denom = la::MatMul(wtw, result.h, par);              // k x m
      result.h.HadamardInPlace(wta, par);
      result.h.DivideInPlace(denom, kEps, par);
      result.h.ClampMin(kFloor, par);
    }
    // W update: W .* (A H^T) ./ (W H H^T + eps).
    {
      la::Matrix aht = a.MultiplyDenseTransposed(result.h, par);  // n x k
      la::Matrix hht = la::MatMulTransB(result.h, result.h, par); // k x k
      la::Matrix denom = la::MatMul(result.w, hht, par);          // n x k
      result.w.HadamardInPlace(aht, par);
      result.w.DivideInPlace(denom, kEps, par);
      result.w.ClampMin(kFloor, par);
    }
    result.iterations = iter;

    if (iter % eval_every == 0 || iter == options.max_iterations) {
      double obj = NmfObjective(a, result.w, result.h);
      result.objective_history.push_back(obj);
      if (initial_obj > 0.0 &&
          (prev_obj - obj) / initial_obj < options.tolerance) {
        break;
      }
      prev_obj = obj;
    }
  }
  result.final_objective = result.objective_history.back();
  return result;
}

}  // namespace newsdiff::topic
