#include "topic/lda.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace newsdiff::topic {

StatusOr<LdaResult> FitLda(const corpus::Corpus& corp,
                           const LdaOptions& options) {
  const size_t k = options.num_topics;
  const size_t n_docs = corp.size();
  const size_t vocab = corp.vocabulary().size();
  if (k == 0) return Status::InvalidArgument("num_topics must be positive");
  if (n_docs == 0 || vocab == 0) {
    return Status::InvalidArgument("corpus is empty");
  }

  Rng rng(options.seed);

  // Flattened token stream with document boundaries.
  std::vector<uint32_t> doc_of_token;
  std::vector<uint32_t> word_of_token;
  for (size_t d = 0; d < n_docs; ++d) {
    for (uint32_t w : corp.doc(d).tokens) {
      doc_of_token.push_back(static_cast<uint32_t>(d));
      word_of_token.push_back(w);
    }
  }
  const size_t n_tokens = word_of_token.size();
  if (n_tokens == 0) return Status::InvalidArgument("corpus has no tokens");

  // Count tables.
  std::vector<uint32_t> topic_of_token(n_tokens);
  std::vector<uint32_t> doc_topic(n_docs * k, 0);       // n_dk
  std::vector<uint32_t> topic_word(k * vocab, 0);       // n_kw
  std::vector<uint32_t> topic_total(k, 0);              // n_k

  for (size_t t = 0; t < n_tokens; ++t) {
    uint32_t z = static_cast<uint32_t>(rng.NextBelow(k));
    topic_of_token[t] = z;
    ++doc_topic[doc_of_token[t] * k + z];
    ++topic_word[static_cast<size_t>(z) * vocab + word_of_token[t]];
    ++topic_total[z];
  }

  const double alpha = options.alpha;
  const double beta = options.beta;
  const double vbeta = static_cast<double>(vocab) * beta;

  LdaResult result;
  std::vector<double> weights(k);
  for (size_t iter = 0; iter < options.iterations; ++iter) {
    for (size_t t = 0; t < n_tokens; ++t) {
      const uint32_t d = doc_of_token[t];
      const uint32_t w = word_of_token[t];
      const uint32_t old_z = topic_of_token[t];
      --doc_topic[d * k + old_z];
      --topic_word[static_cast<size_t>(old_z) * vocab + w];
      --topic_total[old_z];

      double total = 0.0;
      for (size_t z = 0; z < k; ++z) {
        double wgt =
            (static_cast<double>(doc_topic[d * k + z]) + alpha) *
            (static_cast<double>(topic_word[z * vocab + w]) + beta) /
            (static_cast<double>(topic_total[z]) + vbeta);
        weights[z] = wgt;
        total += wgt;
      }
      double x = rng.NextDouble() * total;
      size_t new_z = k - 1;
      double acc = 0.0;
      for (size_t z = 0; z < k; ++z) {
        acc += weights[z];
        if (x < acc) {
          new_z = z;
          break;
        }
      }
      topic_of_token[t] = static_cast<uint32_t>(new_z);
      ++doc_topic[d * k + new_z];
      ++topic_word[new_z * vocab + w];
      ++topic_total[new_z];
    }

    if (iter % 10 == 9 || iter + 1 == options.iterations) {
      // Token log-likelihood under the current counts (up to a constant).
      double ll = 0.0;
      for (size_t t = 0; t < n_tokens; ++t) {
        const uint32_t d = doc_of_token[t];
        const uint32_t w = word_of_token[t];
        double p = 0.0;
        double doc_len = static_cast<double>(corp.doc(d).length);
        for (size_t z = 0; z < k; ++z) {
          double theta = (static_cast<double>(doc_topic[d * k + z]) + alpha) /
                         (doc_len + static_cast<double>(k) * alpha);
          double phi =
              (static_cast<double>(topic_word[z * vocab + w]) + beta) /
              (static_cast<double>(topic_total[z]) + vbeta);
          p += theta * phi;
        }
        ll += std::log(std::max(p, 1e-300));
      }
      result.log_likelihood.push_back(ll);
    }
  }

  // Posterior means.
  result.doc_topic.Resize(n_docs, k);
  for (size_t d = 0; d < n_docs; ++d) {
    double doc_len = static_cast<double>(corp.doc(d).length);
    for (size_t z = 0; z < k; ++z) {
      result.doc_topic(d, z) =
          (static_cast<double>(doc_topic[d * k + z]) + alpha) /
          (doc_len + static_cast<double>(k) * alpha);
    }
  }
  result.topic_word.Resize(k, vocab);
  for (size_t z = 0; z < k; ++z) {
    for (size_t w = 0; w < vocab; ++w) {
      result.topic_word(z, w) =
          (static_cast<double>(topic_word[z * vocab + w]) + beta) /
          (static_cast<double>(topic_total[z]) + vbeta);
    }
  }
  return result;
}

std::vector<std::string> LdaTopicKeywords(const LdaResult& result,
                                          const corpus::Corpus& corp,
                                          size_t topic, size_t k) {
  const la::Matrix& phi = result.topic_word;
  std::vector<size_t> order(phi.cols());
  std::iota(order.begin(), order.end(), 0);
  size_t top = std::min(k, phi.cols());
  std::partial_sort(order.begin(), order.begin() + top, order.end(),
                    [&](size_t a, size_t b) {
                      return phi(topic, a) > phi(topic, b);
                    });
  std::vector<std::string> out;
  out.reserve(top);
  for (size_t i = 0; i < top; ++i) {
    out.push_back(corp.vocabulary().Term(static_cast<uint32_t>(order[i])));
  }
  return out;
}

}  // namespace newsdiff::topic
