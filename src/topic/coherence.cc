#include "topic/coherence.h"

#include <cmath>
#include <unordered_set>

namespace newsdiff::topic {

double UMassCoherence(const std::vector<std::string>& topic_keywords,
                      const corpus::Corpus& reference) {
  // Resolve keywords to term ids present in the reference vocabulary.
  std::vector<uint32_t> terms;
  for (const std::string& kw : topic_keywords) {
    uint32_t id = reference.vocabulary().Get(kw);
    if (id != corpus::kUnknownTerm && reference.vocabulary().doc_freq(id) > 0) {
      terms.push_back(id);
    }
  }
  if (terms.size() < 2) return 0.0;

  // Co-document frequencies via one corpus pass over unique terms per doc.
  const size_t k = terms.size();
  std::vector<std::vector<uint32_t>> co(k, std::vector<uint32_t>(k, 0));
  std::vector<int> position(reference.vocabulary().size(), -1);
  for (size_t i = 0; i < k; ++i) position[terms[i]] = static_cast<int>(i);

  std::vector<int> present;
  for (const corpus::Document& doc : reference.docs()) {
    present.clear();
    for (const corpus::TermCount& tc : doc.counts) {
      int pos = position[tc.term];
      if (pos >= 0) present.push_back(pos);
    }
    for (size_t a = 0; a < present.size(); ++a) {
      for (size_t b = a + 1; b < present.size(); ++b) {
        ++co[static_cast<size_t>(present[a])][static_cast<size_t>(present[b])];
        ++co[static_cast<size_t>(present[b])][static_cast<size_t>(present[a])];
      }
    }
  }

  double score = 0.0;
  for (size_t i = 1; i < k; ++i) {
    for (size_t j = 0; j < i; ++j) {
      double dj = static_cast<double>(reference.vocabulary().doc_freq(terms[j]));
      double dij = static_cast<double>(co[i][j]);
      score += std::log((dij + 1.0) / dj);
    }
  }
  return score;
}

double MeanUMassCoherence(
    const std::vector<std::vector<std::string>>& topics,
    const corpus::Corpus& reference) {
  if (topics.empty()) return 0.0;
  double total = 0.0;
  for (const auto& t : topics) total += UMassCoherence(t, reference);
  return total / static_cast<double>(topics.size());
}

}  // namespace newsdiff::topic
