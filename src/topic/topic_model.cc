#include "topic/topic_model.h"

#include <algorithm>
#include <numeric>

namespace newsdiff::topic {

StatusOr<TopicModel> TopicModel::Fit(const corpus::Corpus& corp,
                                     const TopicModelOptions& options) {
  corpus::DocumentTermMatrix dtm =
      corpus::BuildDocumentTermMatrix(corp, options.dtm);
  if (dtm.matrix.rows() == 0 || dtm.matrix.cols() == 0) {
    return Status::InvalidArgument("corpus produced an empty matrix");
  }
  NmfOptions nmf_opts = options.nmf;
  nmf_opts.components = options.num_topics;
  StatusOr<NmfResult> nmf = Nmf(dtm.matrix, nmf_opts);
  if (!nmf.ok()) return nmf.status();

  TopicModel model;
  model.result_ = std::move(nmf).value();

  const la::Matrix& h = model.result_.h;
  model.topics_.reserve(options.num_topics);
  for (size_t t = 0; t < h.rows(); ++t) {
    Topic topic;
    topic.id = t;
    std::vector<size_t> order(h.cols());
    std::iota(order.begin(), order.end(), 0);
    size_t top_k = std::min(options.keywords_per_topic, h.cols());
    std::partial_sort(order.begin(), order.begin() + top_k, order.end(),
                      [&](size_t a, size_t b) { return h(t, a) > h(t, b); });
    for (size_t i = 0; i < top_k; ++i) {
      uint32_t term = dtm.column_terms[order[i]];
      topic.keywords.push_back(corp.vocabulary().Term(term));
      topic.weights.push_back(h(t, order[i]));
    }
    model.topics_.push_back(std::move(topic));
  }
  return model;
}

size_t TopicModel::DominantTopic(size_t doc) const {
  const la::Matrix& w = result_.w;
  size_t best = 0;
  double best_v = w(doc, 0);
  for (size_t t = 1; t < w.cols(); ++t) {
    if (w(doc, t) > best_v) {
      best_v = w(doc, t);
      best = t;
    }
  }
  return best;
}

}  // namespace newsdiff::topic
