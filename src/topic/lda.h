#ifndef NEWSDIFF_TOPIC_LDA_H_
#define NEWSDIFF_TOPIC_LDA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "corpus/corpus.h"
#include "la/matrix.h"

namespace newsdiff::topic {

/// Latent Dirichlet Allocation via collapsed Gibbs sampling.
///
/// The paper (§4.9, citing Blei et al. and Truică et al. [35]) considers LDA
/// as the alternative to NMF and chooses NMF because it "provides similar
/// results on both small and large length texts in less time". This
/// implementation exists to let the `ablation_topicmodels` benchmark verify
/// that trade-off on the reproduced pipeline.
struct LdaOptions {
  size_t num_topics = 10;
  /// Symmetric Dirichlet prior on document-topic proportions.
  double alpha = 0.1;
  /// Symmetric Dirichlet prior on topic-word distributions.
  double beta = 0.01;
  size_t iterations = 200;
  uint64_t seed = 17;
};

struct LdaResult {
  /// theta: n_docs x k, posterior mean document-topic proportions.
  la::Matrix doc_topic;
  /// phi: k x vocab, posterior mean topic-word distributions.
  la::Matrix topic_word;
  /// Per-checkpoint corpus log-likelihood (up to a constant), every 10
  /// iterations; generally increases as sampling mixes.
  std::vector<double> log_likelihood;
};

/// Fits LDA on the corpus by collapsed Gibbs sampling over token-topic
/// assignments. Deterministic for a fixed seed.
StatusOr<LdaResult> FitLda(const corpus::Corpus& corp,
                           const LdaOptions& options);

/// Top-k terms of topic `topic` from an LdaResult.
std::vector<std::string> LdaTopicKeywords(const LdaResult& result,
                                          const corpus::Corpus& corp,
                                          size_t topic, size_t k);

}  // namespace newsdiff::topic

#endif  // NEWSDIFF_TOPIC_LDA_H_
