#ifndef NEWSDIFF_TOPIC_TOPIC_MODEL_H_
#define NEWSDIFF_TOPIC_TOPIC_MODEL_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "corpus/corpus.h"
#include "corpus/weighting.h"
#include "topic/nmf.h"

namespace newsdiff::topic {

/// A discovered topic: ranked keywords with their topic-term weights.
struct Topic {
  size_t id = 0;
  std::vector<std::string> keywords;   // descending weight
  std::vector<double> weights;         // aligned with keywords
};

/// Options for the topic-modeling front end (§4.3: TFIDF_N + NMF).
struct TopicModelOptions {
  size_t num_topics = 100;
  size_t keywords_per_topic = 10;
  NmfOptions nmf;
  corpus::DtmOptions dtm;
};

/// Fitted topic model over a corpus.
class TopicModel {
 public:
  /// Fits NMF on the TFIDF_N document-term matrix of `corp`. The corpus must
  /// outlive queries made through `Keywords`.
  static StatusOr<TopicModel> Fit(const corpus::Corpus& corp,
                                  const TopicModelOptions& options);

  /// All topics with their top keywords.
  const std::vector<Topic>& topics() const { return topics_; }

  /// Document-topic membership matrix W (n_docs x k).
  const la::Matrix& doc_topic() const { return result_.w; }

  /// Topic-term matrix H (k x n_kept_terms).
  const la::Matrix& topic_term() const { return result_.h; }

  /// Index of the dominant topic for document `doc` (argmax of W row).
  size_t DominantTopic(size_t doc) const;

  /// The NMF solver diagnostics.
  const NmfResult& nmf_result() const { return result_; }

 private:
  TopicModel() = default;

  NmfResult result_;
  std::vector<Topic> topics_;
};

}  // namespace newsdiff::topic

#endif  // NEWSDIFF_TOPIC_TOPIC_MODEL_H_
