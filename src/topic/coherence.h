#ifndef NEWSDIFF_TOPIC_COHERENCE_H_
#define NEWSDIFF_TOPIC_COHERENCE_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"

namespace newsdiff::topic {

/// UMass topic coherence (Mimno et al. 2011):
///   C(t) = sum_{i=2..K} sum_{j<i} log( (D(w_i, w_j) + 1) / D(w_j) )
/// where D(w) is the document frequency of w and D(w_i, w_j) the
/// co-document frequency, both over the reference corpus. Higher (closer
/// to 0) is more coherent. The paper's future work (§6) aims at "more
/// coherent topics"; this metric makes that goal measurable, and the
/// `ablation_topicmodels` benchmark reports it next to theme purity.
///
/// Keywords missing from the corpus vocabulary are skipped.
double UMassCoherence(const std::vector<std::string>& topic_keywords,
                      const corpus::Corpus& reference);

/// Mean UMass coherence over a set of topics.
double MeanUMassCoherence(
    const std::vector<std::vector<std::string>>& topics,
    const corpus::Corpus& reference);

}  // namespace newsdiff::topic

#endif  // NEWSDIFF_TOPIC_COHERENCE_H_
