#include "loadgen/histogram.h"

#include <algorithm>
#include <cmath>

namespace newsdiff::loadgen {

namespace {

/// Upper boundary (exclusive) of every bucket, in nanoseconds. Bucket 0 is
/// [0, 1us); bucket 1+i is [1us * 10^(i/32), 1us * 10^((i+1)/32)); the
/// last bucket's boundary is UINT64_MAX. Computed once; lookups and
/// percentile walks never touch libm again.
const std::array<uint64_t, LatencyHistogram::kNumBuckets>& Boundaries() {
  static const std::array<uint64_t, LatencyHistogram::kNumBuckets> kUpper =
      [] {
        std::array<uint64_t, LatencyHistogram::kNumBuckets> upper{};
        upper[0] = LatencyHistogram::kMinNanos;
        const size_t log_buckets =
            LatencyHistogram::kBucketsPerDecade * LatencyHistogram::kDecades;
        for (size_t i = 0; i < log_buckets; ++i) {
          const double exponent =
              static_cast<double>(i + 1) /
              static_cast<double>(LatencyHistogram::kBucketsPerDecade);
          upper[1 + i] = static_cast<uint64_t>(std::llround(
              static_cast<double>(LatencyHistogram::kMinNanos) *
              std::pow(10.0, exponent)));
        }
        upper[LatencyHistogram::kNumBuckets - 1] = UINT64_MAX;
        return upper;
      }();
  return kUpper;
}

}  // namespace

LatencyHistogram::LatencyHistogram() { buckets_.fill(0); }

size_t LatencyHistogram::BucketFor(uint64_t nanos) {
  const auto& upper = Boundaries();
  if (nanos < kMinNanos) return 0;
  // First bucket whose (exclusive) upper bound is above the sample.
  auto it = std::upper_bound(upper.begin(), upper.end() - 1, nanos);
  return static_cast<size_t>(it - upper.begin());
}

uint64_t LatencyHistogram::BucketUpperNanos(size_t bucket) {
  return Boundaries()[std::min(bucket, kNumBuckets - 1)];
}

void LatencyHistogram::Record(uint64_t nanos) {
  ++buckets_[BucketFor(nanos)];
  ++count_;
  sum_ += nanos;
  max_ = std::max(max_, nanos);
  min_ = std::min(min_, nanos);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
  min_ = std::min(min_, other.min_);
}

void LatencyHistogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  max_ = 0;
  min_ = UINT64_MAX;
}

double LatencyHistogram::MeanNanos() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double LatencyHistogram::PercentileNanos(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  rank = std::clamp<uint64_t>(rank, 1, count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      const uint64_t upper = BucketUpperNanos(i);
      return static_cast<double>(
          std::clamp(upper, min_nanos(), max_));
    }
  }
  return static_cast<double>(max_);
}

}  // namespace newsdiff::loadgen
