#include "loadgen/driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "store/value.h"

namespace newsdiff::loadgen {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ToNanos(Clock::duration d) {
  const int64_t n =
      std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
  return n > 0 ? static_cast<uint64_t>(n) : 0;
}

enum class Outcome { kOk, kNotFound, kError };

}  // namespace

void OpClassStats::Merge(const OpClassStats& other) {
  issued += other.issued;
  ok += other.ok;
  not_found += other.not_found;
  errors += other.errors;
  latency.Merge(other.latency);
  service.Merge(other.service);
}

double RunReport::AchievedRatio() const {
  if (elapsed_seconds <= 0.0 || scheduled_seconds <= 0.0) return 1.0;
  return std::min(1.0, scheduled_seconds / elapsed_seconds);
}

double RunReport::WorstPercentileMs(double p) const {
  double worst = 0.0;
  for (const OpClassStats& s : per_class) {
    if (s.latency.count() > 0) {
      worst = std::max(worst, s.latency.PercentileMillis(p));
    }
  }
  return worst;
}

bool RunReport::SloOk(const SloSpec& slo, std::string* why) const {
  if (errors > 0) {
    if (why != nullptr) *why = "serving errors";
    return false;
  }
  if (AchievedRatio() < slo.min_achieved_ratio) {
    if (why != nullptr) *why = "achieved/offered ratio";
    return false;
  }
  struct Bound {
    double p;
    double limit_ms;
    const char* name;
  };
  const Bound bounds[] = {{0.50, slo.p50_ms, "p50"},
                          {0.99, slo.p99_ms, "p99"},
                          {0.999, slo.p999_ms, "p999"}};
  for (size_t c = 0; c < kNumOpClasses; ++c) {
    const OpClassStats& s = per_class[c];
    if (s.latency.count() == 0) continue;
    for (const Bound& b : bounds) {
      if (s.latency.PercentileMillis(b.p) > b.limit_ms) {
        if (why != nullptr) {
          *why = std::string(OpClassName(static_cast<OpClass>(c))) + " " +
                 b.name;
        }
        return false;
      }
    }
  }
  return true;
}

LoadDriver::LoadDriver(Engine& engine, store::Database& db,
                       DriverOptions options)
    : engine_(engine), db_(db), options_(options) {
  if (options_.threads == 0) options_.threads = 1;
}

RunReport LoadDriver::Run(const std::vector<Request>& trace) {
  RunReport report;
  if (trace.empty()) return report;
  size_t num_phases = 0;
  for (const Request& r : trace) {
    num_phases = std::max(num_phases, static_cast<size_t>(r.phase) + 1);
  }

  // Per-worker, per-phase accumulators: the measurement path touches only
  // its own worker's slots, so there is no sharing to synchronise.
  std::vector<std::vector<std::array<OpClassStats, kNumOpClasses>>> locals(
      options_.threads);
  for (auto& per_worker : locals) per_worker.resize(num_phases);

  std::atomic<size_t> cursor{0};
  std::atomic<int64_t> last_completion_nanos{0};
  const Clock::time_point start = Clock::now();

  auto worker = [&](size_t w) {
    auto& mine = locals[w];
    for (;;) {
      const size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= trace.size()) break;
      const Request& r = trace[i];
      const Clock::time_point target =
          start + std::chrono::nanoseconds(r.arrival_nanos);
      std::this_thread::sleep_until(target);
      const Clock::time_point dispatched = Clock::now();
      const Outcome outcome = [&] {
        switch (r.op) {
          case OpClass::kTweetIngest: {
            std::lock_guard<std::mutex> lock(db_mu_);
            StatusOr<store::DocId> id =
                db_.GetOrCreate("tweets").Insert(store::MakeObject({
                    {"tweet_id",
                     options_.ingest_id_base + static_cast<int64_t>(r.seq)},
                    {"user_id", static_cast<int64_t>(r.user)},
                    {"text", r.text},
                    {"created", options_.ingest_time_base +
                                    static_cast<int64_t>(r.seq)},
                    {"likes", static_cast<int64_t>(0)},
                    {"retweets", static_cast<int64_t>(0)},
                }));
            return id.ok() ? Outcome::kOk : Outcome::kError;
          }
          case OpClass::kArticleUpsert: {
            std::lock_guard<std::mutex> lock(db_mu_);
            StatusOr<store::DocId> id =
                db_.GetOrCreate("news").Insert(store::MakeObject({
                    {"article_id",
                     options_.ingest_id_base + static_cast<int64_t>(r.seq)},
                    {"outlet", std::string("loadgen")},
                    {"title", r.text},
                    {"body", r.body},
                    {"published", options_.ingest_time_base +
                                      static_cast<int64_t>(r.seq)},
                }));
            return id.ok() ? Outcome::kOk : Outcome::kError;
          }
          case OpClass::kQueryTrending: {
            StatusOr<std::vector<QueryHit>> hits =
                engine_.QueryTrending(r.text, options_.query_k);
            if (hits.ok()) return Outcome::kOk;
            return hits.status().code() == StatusCode::kNotFound
                       ? Outcome::kNotFound
                       : Outcome::kError;
          }
          case OpClass::kPredictInterest: {
            StatusOr<InterestPrediction> prediction =
                engine_.PredictInterest(r.text, options_.query_k);
            if (prediction.ok()) return Outcome::kOk;
            return prediction.status().code() == StatusCode::kNotFound
                       ? Outcome::kNotFound
                       : Outcome::kError;
          }
        }
        return Outcome::kError;
      }();
      const Clock::time_point done = Clock::now();
      OpClassStats& s = mine[r.phase][static_cast<size_t>(r.op)];
      ++s.issued;
      switch (outcome) {
        case Outcome::kOk:
          ++s.ok;
          break;
        case Outcome::kNotFound:
          ++s.not_found;
          break;
        case Outcome::kError:
          ++s.errors;
          break;
      }
      s.latency.Record(ToNanos(done - target));
      s.service.Record(ToNanos(done - dispatched));
      const int64_t completion = static_cast<int64_t>(ToNanos(done - start));
      int64_t prev = last_completion_nanos.load(std::memory_order_relaxed);
      while (prev < completion &&
             !last_completion_nanos.compare_exchange_weak(
                 prev, completion, std::memory_order_relaxed)) {
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(options_.threads);
  for (size_t w = 0; w < options_.threads; ++w) threads.emplace_back(worker, w);
  for (std::thread& t : threads) t.join();

  report.per_phase.resize(num_phases);
  for (const auto& per_worker : locals) {
    for (size_t p = 0; p < num_phases; ++p) {
      for (size_t c = 0; c < kNumOpClasses; ++c) {
        report.per_phase[p][c].Merge(per_worker[p][c]);
      }
    }
  }
  for (size_t p = 0; p < num_phases; ++p) {
    for (size_t c = 0; c < kNumOpClasses; ++c) {
      report.per_class[c].Merge(report.per_phase[p][c]);
      report.issued += report.per_phase[p][c].issued;
      report.errors += report.per_phase[p][c].errors;
    }
  }
  report.scheduled_seconds =
      static_cast<double>(trace.back().arrival_nanos) / 1.0e9;
  report.elapsed_seconds =
      static_cast<double>(last_completion_nanos.load()) / 1.0e9;
  if (report.scheduled_seconds > 0.0) {
    report.offered_rate =
        static_cast<double>(report.issued) / report.scheduled_seconds;
  }
  if (report.elapsed_seconds > 0.0) {
    report.achieved_rate =
        static_cast<double>(report.issued) / report.elapsed_seconds;
  }
  return report;
}

SaturationResult SaturationSearch(LoadDriver& driver,
                                  const WorkloadOptions& base,
                                  const SloSpec& slo, double start_rate,
                                  double growth, size_t max_steps,
                                  double window_seconds) {
  SaturationResult result;
  double rate = start_rate;
  for (size_t step = 0; step < max_steps; ++step) {
    WorkloadOptions options = base;
    options.seed = base.seed + 1000 + step;
    PhaseSpec steady;
    steady.name = "saturation";
    steady.duration_seconds = window_seconds;
    steady.arrival_rate = rate;
    options.phases = {steady};
    const WorkloadGenerator generator(options);
    const RunReport report = driver.Run(generator.GenerateTrace());

    SaturationStep s;
    s.offered_rate = rate;
    s.achieved_ratio = report.AchievedRatio();
    s.p99_ms = report.WorstPercentileMs(0.99);
    s.slo_ok = report.SloOk(slo, &s.violation);
    result.steps.push_back(s);
    if (!s.slo_ok) {
      result.breaking_rate = rate;
      break;
    }
    result.max_sustained_rate = rate;
    rate *= growth;
  }
  return result;
}

}  // namespace newsdiff::loadgen
