#include "loadgen/workload.h"

#include <cmath>

#include "datagen/themes.h"

namespace newsdiff::loadgen {

namespace {

/// Appends `n` words drawn uniformly from `pool` to `out` (space-joined).
void AppendWords(Rng& rng, const std::vector<std::string>& pool, size_t n,
                 std::string* out) {
  for (size_t i = 0; i < n; ++i) {
    if (!out->empty()) out->push_back(' ');
    out->append(pool[rng.NextBelow(pool.size())]);
  }
}

void HashBytes(const void* data, size_t len, uint64_t* h) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    *h ^= bytes[i];
    *h *= 0x100000001b3ULL;  // FNV-1a prime
  }
}

void HashU64(uint64_t v, uint64_t* h) { HashBytes(&v, sizeof(v), h); }

void HashString(const std::string& s, uint64_t* h) {
  HashU64(s.size(), h);
  HashBytes(s.data(), s.size(), h);
}

}  // namespace

const char* OpClassName(OpClass op) {
  switch (op) {
    case OpClass::kTweetIngest:
      return "tweet_ingest";
    case OpClass::kArticleUpsert:
      return "article_upsert";
    case OpClass::kQueryTrending:
      return "query_trending";
    case OpClass::kPredictInterest:
      return "predict_interest";
  }
  return "unknown";
}

bool Request::operator==(const Request& other) const {
  return seq == other.seq && op == other.op &&
         arrival_nanos == other.arrival_nanos && phase == other.phase &&
         topic == other.topic && user == other.user && text == other.text &&
         body == other.body;
}

std::vector<PhaseSpec> StandardPhases(double rate, double seconds,
                                      double burst_multiplier) {
  PhaseSpec steady;
  steady.name = "steady";
  steady.duration_seconds = seconds;
  steady.arrival_rate = rate;

  PhaseSpec flash;
  flash.name = "flash_crowd";
  flash.duration_seconds = seconds * 0.5;
  flash.arrival_rate = rate * burst_multiplier;
  flash.hot_topic_boost = 0.6;

  PhaseSpec outage;
  outage.name = "outlet_outage";
  outage.duration_seconds = seconds * 0.5;
  outage.arrival_rate = rate;
  // The outlet stops publishing: article upserts vanish and their share
  // shifts to reads (users keep refreshing while the feed goes quiet).
  outage.mix[static_cast<size_t>(OpClass::kArticleUpsert)] = 0.0;
  outage.mix[static_cast<size_t>(OpClass::kQueryTrending)] = 0.55;
  return {steady, flash, outage};
}

uint32_t NURand(Rng& rng, uint32_t a, uint32_t x, uint32_t y, uint32_t c) {
  const uint32_t range = y - x + 1;
  const uint32_t lhs = static_cast<uint32_t>(rng.NextBelow(a + 1));
  const uint32_t rhs = x + static_cast<uint32_t>(rng.NextBelow(range));
  return ((lhs | rhs) + c) % range + x;
}

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(std::move(options)) {
  if (options_.num_topics == 0) options_.num_topics = 1;
  if (options_.num_users == 0) options_.num_users = 1;
  if (options_.phases.empty()) options_.phases.push_back(PhaseSpec{});
}

uint32_t WorkloadGenerator::HotTopic() const {
  // Zipf rank 1 lands on topic (1 - 1 + C) % n = C % n after the rotation.
  return options_.nurand_c % options_.num_topics;
}

uint32_t WorkloadGenerator::DrawTopic(Rng& rng,
                                      const PhaseSpec& phase) const {
  // The boost draw is consumed unconditionally so a phase boundary does
  // not shift the stream for every later request class.
  const bool forced_hot = rng.Bernoulli(phase.hot_topic_boost);
  const uint64_t rank = rng.Zipf(options_.num_topics, options_.topic_zipf_s);
  if (forced_hot) return HotTopic();
  // Rotate ranks by the NURand C constant so the hot topic is seed-chosen.
  return static_cast<uint32_t>((rank - 1 + options_.nurand_c) %
                               options_.num_topics);
}

void WorkloadGenerator::SynthesizeText(Rng& rng, Request* request) const {
  const std::vector<datagen::Theme>& themes = datagen::NewsThemes();
  const datagen::Theme& theme = themes[request->topic % themes.size()];
  const std::vector<std::string>& generic = datagen::GenericWords();
  switch (request->op) {
    case OpClass::kQueryTrending: {
      // Headline-shaped query: 2..4 theme words.
      AppendWords(rng, theme.words, 2 + rng.NextBelow(3), &request->text);
      break;
    }
    case OpClass::kPredictInterest: {
      // A draft article lede: 3..6 theme words plus filler.
      AppendWords(rng, theme.words, 3 + rng.NextBelow(4), &request->text);
      AppendWords(rng, generic, 2, &request->text);
      break;
    }
    case OpClass::kTweetIngest: {
      AppendWords(rng, theme.words, 3 + rng.NextBelow(4), &request->text);
      AppendWords(rng, generic, 1 + rng.NextBelow(3), &request->text);
      break;
    }
    case OpClass::kArticleUpsert: {
      AppendWords(rng, theme.words, 3 + rng.NextBelow(2), &request->text);
      AppendWords(rng, theme.words, 12 + rng.NextBelow(6), &request->body);
      AppendWords(rng, generic, 6, &request->body);
      break;
    }
  }
}

std::vector<Request> WorkloadGenerator::GenerateTrace() const {
  std::vector<Request> trace;
  Rng rng(options_.seed);
  double now_seconds = 0.0;
  double phase_start = 0.0;
  uint64_t seq = 0;
  for (size_t p = 0; p < options_.phases.size(); ++p) {
    const PhaseSpec& phase = options_.phases[p];
    const double phase_end = phase_start + phase.duration_seconds;
    now_seconds = phase_start;
    double mix_total = 0.0;
    for (double m : phase.mix) mix_total += m;
    if (phase.arrival_rate <= 0.0 || mix_total <= 0.0) {
      phase_start = phase_end;
      continue;
    }
    for (;;) {
      // Poisson arrivals: exponential inter-arrival gaps at the offered
      // rate. The schedule is fixed up front — the definition of open
      // loop — so a slow server makes requests *late*, never fewer.
      now_seconds +=
          -std::log(1.0 - rng.NextDouble()) / phase.arrival_rate;
      if (now_seconds >= phase_end) break;
      Request request;
      request.seq = seq++;
      request.arrival_nanos =
          static_cast<int64_t>(std::llround(now_seconds * 1.0e9));
      request.phase = static_cast<uint32_t>(p);
      double pick = rng.NextDouble() * mix_total;
      size_t op = 0;
      for (; op + 1 < kNumOpClasses; ++op) {
        pick -= phase.mix[op];
        if (pick < 0.0) break;
      }
      request.op = static_cast<OpClass>(op);
      request.topic = DrawTopic(rng, phase);
      request.user = NURand(rng, options_.nurand_a, 0,
                            options_.num_users - 1, options_.nurand_c);
      SynthesizeText(rng, &request);
      trace.push_back(std::move(request));
    }
    phase_start = phase_end;
  }
  return trace;
}

uint64_t TraceHash(const std::vector<Request>& trace) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  HashU64(trace.size(), &h);
  for (const Request& r : trace) {
    HashU64(r.seq, &h);
    HashU64(static_cast<uint64_t>(r.op), &h);
    HashU64(static_cast<uint64_t>(r.arrival_nanos), &h);
    HashU64(r.phase, &h);
    HashU64(r.topic, &h);
    HashU64(r.user, &h);
    HashString(r.text, &h);
    HashString(r.body, &h);
  }
  return h;
}

}  // namespace newsdiff::loadgen
