#ifndef NEWSDIFF_LOADGEN_WORKLOAD_H_
#define NEWSDIFF_LOADGEN_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace newsdiff::loadgen {

/// The four request classes the serving harness drives through the Engine
/// facade and the document store. The enum values index the per-class
/// arrays in PhaseSpec and the driver's report.
enum class OpClass : uint8_t {
  kTweetIngest = 0,     // insert a synthetic tweet into "tweets"
  kArticleUpsert = 1,   // insert a synthetic article into "news"
  kQueryTrending = 2,   // Engine::QueryTrending
  kPredictInterest = 3  // Engine::PredictInterest
};
inline constexpr size_t kNumOpClasses = 4;

const char* OpClassName(OpClass op);

/// One synthesized request. The full trace for a fixed seed is identical
/// across runs — arrival times, op classes, topics, users, and text are
/// all drawn from one seeded Rng stream — which is what makes two bench
/// runs comparable: they replay the same requests, only the wall-clock
/// measurements differ.
struct Request {
  uint64_t seq = 0;
  OpClass op = OpClass::kQueryTrending;
  /// Scheduled (open-loop) arrival offset from the start of the run.
  int64_t arrival_nanos = 0;
  /// Phase index into WorkloadOptions::phases.
  uint32_t phase = 0;
  /// Hot-key domain: the news theme the request is about.
  uint32_t topic = 0;
  /// Zipf/NURand-skewed simulated author (ingests).
  uint32_t user = 0;
  /// Query / draft / tweet text, or the article title for upserts.
  std::string text;
  /// Article body (kArticleUpsert only).
  std::string body;

  bool operator==(const Request& other) const;
};

/// One traffic phase: a duration at an offered arrival rate with an op-mix
/// and a skew modifier. Phases run back to back, so a trace models e.g.
/// steady traffic -> flash crowd -> outlet outage without a seam.
struct PhaseSpec {
  std::string name = "steady";
  double duration_seconds = 1.0;
  /// Offered throughput (requests/second). Open loop: arrivals are
  /// scheduled from a Poisson process at this rate regardless of how fast
  /// the system under test drains them.
  double arrival_rate = 100.0;
  /// Relative op-class weights, indexed by OpClass. Need not sum to 1.
  double mix[kNumOpClasses] = {0.20, 0.10, 0.45, 0.25};
  /// Flash-crowd knob: probability that a request's topic draw is forced
  /// onto the single hottest topic, on top of the baseline Zipf skew.
  /// 0 = baseline skew only; 0.6 models a story absorbing the feed.
  double hot_topic_boost = 0.0;
};

/// Generator knobs. The skew model follows the tpccbench randomgenerator
/// idiom: topics are rank-skewed (Zipf) and then rotated by a NURand-style
/// constant C so *which* topic is hot is a property of the seed, not
/// always id 0; users are drawn with the TPC-C NURand(A, 0, n-1) bitwise-OR
/// generator, giving the classic "a few hot authors, a long warm tail".
struct WorkloadOptions {
  uint64_t seed = 2021;
  /// Topic domain size. Topics map onto datagen::NewsThemes() modulo its
  /// size, so synthesized text always hits real theme vocabulary.
  uint32_t num_topics = 12;
  uint32_t num_users = 1500;
  /// Zipf exponent for topic popularity (higher = more skew).
  double topic_zipf_s = 1.05;
  /// NURand A constant for user draws (TPC-C uses 1023 for the 3000-row
  /// customer domain; the same order works for the default 1500 users).
  uint32_t nurand_a = 1023;
  /// NURand C run constant; also rotates which topic is hottest.
  uint32_t nurand_c = 259;
  std::vector<PhaseSpec> phases;
};

/// The standard three-phase plan every serving bench run uses: `seconds`
/// of steady traffic at `rate`, a flash-crowd burst at `burst_multiplier`x
/// the rate with 60% of traffic on the hot topic, then an outlet outage
/// (article upserts vanish; queries keep arriving).
std::vector<PhaseSpec> StandardPhases(double rate, double seconds,
                                      double burst_multiplier = 3.0);

/// TPC-C 2.1.6 NURand(A, x, y): ((random(0,A) | random(x,y)) + C) % (y-x+1)
/// + x. The bitwise OR biases toward values with more set bits; C
/// relocates the hot set per run.
uint32_t NURand(Rng& rng, uint32_t a, uint32_t x, uint32_t y, uint32_t c);

/// Deterministic open-loop request synthesizer. Construction is cheap;
/// GenerateTrace replays the seeded stream from scratch every call, so the
/// same generator produces the same trace twice (the determinism gate).
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  const WorkloadOptions& options() const { return options_; }

  /// The full request trace, sorted by arrival time.
  std::vector<Request> GenerateTrace() const;

  /// The topic the flash-crowd phases concentrate on (rank-1 under Zipf
  /// after the C rotation).
  uint32_t HotTopic() const;

 private:
  uint32_t DrawTopic(Rng& rng, const PhaseSpec& phase) const;
  void SynthesizeText(Rng& rng, Request* request) const;

  WorkloadOptions options_;
};

/// FNV-1a over the canonical serialization of every request field. Two
/// traces hash equal iff they are elementwise identical; the bench gates
/// on this to prove seed-determinism.
uint64_t TraceHash(const std::vector<Request>& trace);

}  // namespace newsdiff::loadgen

#endif  // NEWSDIFF_LOADGEN_WORKLOAD_H_
