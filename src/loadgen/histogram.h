#ifndef NEWSDIFF_LOADGEN_HISTOGRAM_H_
#define NEWSDIFF_LOADGEN_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace newsdiff::loadgen {

/// Fixed-bucket log-scale latency histogram (HdrHistogram-style geometry,
/// vastly simplified). The bucket array is a member `std::array`, so
/// recording a sample is a binary search over precomputed boundaries plus
/// a counter increment — no allocation, no locking; the load driver keeps
/// one histogram per worker per op class and merges after the run.
///
/// Geometry: bucket 0 is the underflow bucket [0, 1us); then
/// kBucketsPerDecade log-spaced buckets per decade across kDecades decades
/// (1us .. 100s, ~7.5% relative resolution); the final bucket absorbs
/// everything >= 100s. Percentiles are resolved to the upper boundary of
/// the bucket holding the rank (clamped to the observed max), so a
/// reported p99 is an upper bound at bucket resolution — deterministic for
/// a given multiset of samples regardless of arrival order.
class LatencyHistogram {
 public:
  static constexpr size_t kBucketsPerDecade = 32;
  static constexpr size_t kDecades = 8;  // 1us .. 100s
  static constexpr size_t kNumBuckets = kBucketsPerDecade * kDecades + 2;
  static constexpr uint64_t kMinNanos = 1000;  // 1us: floor of bucket 1

  LatencyHistogram();

  /// Adds one sample. Hot path: no allocations, O(log buckets).
  void Record(uint64_t nanos);

  /// Adds every sample of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  uint64_t max_nanos() const { return max_; }
  /// 0 when empty.
  uint64_t min_nanos() const { return count_ == 0 ? 0 : min_; }
  double MeanNanos() const;

  /// Latency at quantile `p` in (0, 1], e.g. 0.5 / 0.99 / 0.999. Returns
  /// the upper boundary of the bucket containing the rank-`ceil(p*count)`
  /// sample, clamped to [min, max]. 0 when empty.
  double PercentileNanos(double p) const;
  double PercentileMillis(double p) const {
    return PercentileNanos(p) / 1.0e6;
  }

  /// Exposed for tests: the bucket a sample lands in and its upper bound.
  static size_t BucketFor(uint64_t nanos);
  static uint64_t BucketUpperNanos(size_t bucket);

 private:
  std::array<uint64_t, kNumBuckets> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  uint64_t min_ = UINT64_MAX;
};

}  // namespace newsdiff::loadgen

#endif  // NEWSDIFF_LOADGEN_HISTOGRAM_H_
