#ifndef NEWSDIFF_LOADGEN_DRIVER_H_
#define NEWSDIFF_LOADGEN_DRIVER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine.h"
#include "loadgen/histogram.h"
#include "loadgen/workload.h"
#include "store/database.h"

namespace newsdiff::loadgen {

/// Per-op-class latency SLO plus the throughput-fidelity floor. The
/// latency thresholds drive the saturation search's breaking condition;
/// the achieved/offered ratio is the wall-clock-noise-proof property CI
/// actually gates on (a saturated driver falls behind its own schedule,
/// which no amount of runner jitter fakes in the passing direction).
struct SloSpec {
  double p50_ms = 10.0;
  double p99_ms = 50.0;
  double p999_ms = 250.0;
  /// Minimum achieved/offered throughput ratio (1.0 = kept pace exactly).
  double min_achieved_ratio = 0.9;
};

/// Counters + latency histograms for one op class.
struct OpClassStats {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t not_found = 0;  // Engine NotFound: a valid "no match" answer
  uint64_t errors = 0;     // anything else non-OK: a correctness failure
  /// Open-loop latency: completion minus *scheduled* arrival. Includes
  /// queueing delay, so it is immune to coordinated omission.
  LatencyHistogram latency;
  /// Service time: completion minus dispatch (the op's own cost).
  LatencyHistogram service;

  void Merge(const OpClassStats& other);
};

/// What one LoadDriver::Run measured.
struct RunReport {
  double offered_rate = 0.0;       // trace size / scheduled duration
  double achieved_rate = 0.0;      // trace size / actual elapsed
  double scheduled_seconds = 0.0;  // last scheduled arrival
  double elapsed_seconds = 0.0;    // wall clock, start to last completion
  uint64_t issued = 0;
  uint64_t errors = 0;
  std::array<OpClassStats, kNumOpClasses> per_class;
  /// Per-phase breakdown, indexed by Request::phase.
  std::vector<std::array<OpClassStats, kNumOpClasses>> per_phase;

  /// achieved/offered, capped at 1. Falls below 1 exactly when the driver
  /// could not keep the open-loop schedule (saturation).
  double AchievedRatio() const;
  /// Worst latency percentile across op classes with samples, in ms.
  double WorstPercentileMs(double p) const;
  /// True when every op class meets `slo` and the achieved ratio holds.
  /// On failure `why` (when non-null) names the first violated bound.
  bool SloOk(const SloSpec& slo, std::string* why = nullptr) const;
};

struct DriverOptions {
  /// Worker threads replaying the trace. Open loop: when every worker is
  /// busy, later requests start late and the lateness is *measured* (not
  /// silently absorbed, as a closed loop would).
  size_t threads = 4;
  /// k for QueryTrending / PredictInterest.
  size_t query_k = 10;
  /// External ids assigned to ingested docs start here, clear of any
  /// world-generated id.
  int64_t ingest_id_base = 50'000'000;
  /// Synthetic timestamp base for ingested docs (determinism: the driver
  /// never stamps wall-clock time into the store).
  int64_t ingest_time_base = 1554076800;
};

/// Open-loop trace replayer. Workers claim requests in arrival order from
/// a shared atomic cursor, sleep until each request's scheduled time, run
/// it against the Engine (queries/predictions, concurrently) or the
/// Database (ingests, serialized behind db_mutex()), and record latency
/// into per-worker histograms merged after the join — nothing allocates or
/// locks on the measurement path itself.
class LoadDriver {
 public:
  LoadDriver(Engine& engine, store::Database& db, DriverOptions options);

  /// Replays `trace` (must be sorted by arrival_nanos, as GenerateTrace
  /// produces) and returns the measured report.
  RunReport Run(const std::vector<Request>& trace);

  /// Serializes all store writes. A background index refresher must hold
  /// this while it reads the store (Engine::BuildIndex), so ingests and
  /// the rebuild never race on the collections.
  std::mutex& db_mutex() { return db_mu_; }

 private:
  friend struct DriverWorker;

  Engine& engine_;
  store::Database& db_;
  DriverOptions options_;
  std::mutex db_mu_;
};

/// One step of the saturation search.
struct SaturationStep {
  double offered_rate = 0.0;
  double achieved_ratio = 0.0;
  double p99_ms = 0.0;  // worst across op classes
  bool slo_ok = false;
  std::string violation;  // empty when slo_ok
};

struct SaturationResult {
  /// Highest offered rate that met the SLO (0 when even the first step
  /// failed).
  double max_sustained_rate = 0.0;
  /// First offered rate that broke the SLO (0 when the search exhausted
  /// max_steps without breaking).
  double breaking_rate = 0.0;
  std::vector<SaturationStep> steps;
};

/// Steps the offered arrival rate geometrically (rate, rate*growth, ...)
/// through short steady-state windows until the SLO breaks or `max_steps`
/// is exhausted. Each step derives its trace deterministically from
/// `base` (same phases mix, seed offset by the step index), so two
/// machines search the identical request schedule and differ only in
/// where their hardware taps out.
SaturationResult SaturationSearch(LoadDriver& driver,
                                  const WorkloadOptions& base,
                                  const SloSpec& slo, double start_rate,
                                  double growth, size_t max_steps,
                                  double window_seconds);

}  // namespace newsdiff::loadgen

#endif  // NEWSDIFF_LOADGEN_DRIVER_H_
