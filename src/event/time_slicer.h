#ifndef NEWSDIFF_EVENT_TIME_SLICER_H_
#define NEWSDIFF_EVENT_TIME_SLICER_H_

#include <cstddef>
#include <vector>

#include "common/time.h"

namespace newsdiff::event {

/// Partitions a time range into fixed-width slices; MABED's first stage.
/// Slice i covers [start + i*width, start + (i+1)*width).
class TimeSlicer {
 public:
  /// Covers [start, end] with slices of `width_seconds` (> 0). The last
  /// slice is extended to include `end`.
  TimeSlicer(UnixSeconds start, UnixSeconds end, int64_t width_seconds);

  size_t num_slices() const { return num_slices_; }
  UnixSeconds start() const { return start_; }
  int64_t width_seconds() const { return width_; }

  /// Slice index for timestamp t; clamped to [0, num_slices()-1].
  size_t SliceOf(UnixSeconds t) const;

  /// Start timestamp of slice i.
  UnixSeconds SliceStart(size_t i) const {
    return start_ + static_cast<int64_t>(i) * width_;
  }

  /// End timestamp (exclusive) of slice i.
  UnixSeconds SliceEnd(size_t i) const { return SliceStart(i) + width_; }

 private:
  UnixSeconds start_;
  int64_t width_;
  size_t num_slices_;
};

}  // namespace newsdiff::event

#endif  // NEWSDIFF_EVENT_TIME_SLICER_H_
