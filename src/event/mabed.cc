#include "event/mabed.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "text/stopwords.h"

namespace newsdiff::event {
namespace {

/// Per-term sparse mention counts: (slice, count) pairs sorted by slice.
struct SliceCounts {
  std::vector<std::pair<uint32_t, uint32_t>> entries;
  uint64_t total = 0;
};

/// Candidate event before related-word expansion.
struct Candidate {
  uint32_t term;
  size_t start_slice;
  size_t end_slice;
  double magnitude;
};

/// Maximum-sum contiguous interval (Kadane) over the anomaly series
/// a_i = N_i - E_i, where the term's expected count in slice i is its total
/// count spread proportionally to overall slice activity. Returns the
/// best [start, end] and its sum.
void MaxAnomalyInterval(const SliceCounts& counts,
                        const std::vector<double>& slice_share,
                        size_t num_slices, size_t* best_start,
                        size_t* best_end, double* best_sum) {
  double cur = 0.0;
  size_t cur_start = 0;
  double best = -1.0;
  size_t bs = 0, be = 0;
  size_t entry = 0;
  const double total = static_cast<double>(counts.total);
  for (size_t i = 0; i < num_slices; ++i) {
    double observed = 0.0;
    if (entry < counts.entries.size() && counts.entries[entry].first == i) {
      observed = counts.entries[entry].second;
      ++entry;
    }
    double anomaly = observed - total * slice_share[i];
    cur += anomaly;
    if (cur < 0.0) {
      cur = 0.0;
      cur_start = i + 1;
    } else if (cur > best) {
      best = cur;
      bs = cur_start;
      be = i;
    }
  }
  *best_start = bs;
  *best_end = be;
  *best_sum = best;
}

}  // namespace

double RelatedWordWeight(const std::vector<double>& main_series,
                         const std::vector<double>& candidate_series) {
  const size_t n = main_series.size();
  if (n != candidate_series.size() || n < 3) return 0.0;
  // First differences over i = a+1 .. b.
  double num = 0.0, var_main = 0.0, var_cand = 0.0;
  for (size_t i = 1; i < n; ++i) {
    double dm = main_series[i] - main_series[i - 1];
    double dc = candidate_series[i] - candidate_series[i - 1];
    num += dm * dc;
    var_main += dm * dm;
    var_cand += dc * dc;
  }
  if (var_main <= 0.0 || var_cand <= 0.0) return 0.0;
  // rho in [-1, 1] (Eq. 10, corrected Erdem coefficient), mapped to [0, 1]
  // by Eq. 9: w = (rho + 1) / 2.
  double rho = num / std::sqrt(var_main * var_cand);
  return (rho + 1.0) / 2.0;
}

bool Mabed::DocumentBelongsToEvent(const corpus::Document& doc,
                                   const Event& ev,
                                   double related_fraction) {
  if (doc.timestamp < ev.start_time || doc.timestamp > ev.end_time) {
    return false;
  }
  bool has_main = false;
  size_t related_hits = 0;
  std::unordered_set<uint32_t> related(ev.related_terms.begin(),
                                       ev.related_terms.end());
  std::unordered_set<uint32_t> seen;
  for (uint32_t t : doc.tokens) {
    if (!seen.insert(t).second) continue;
    if (t == ev.main_term) has_main = true;
    if (related.count(t) > 0) ++related_hits;
  }
  if (!has_main) return false;
  if (ev.related_terms.empty()) return true;
  double frac = static_cast<double>(related_hits) /
                static_cast<double>(ev.related_terms.size());
  return frac + 1e-12 >= related_fraction;
}

StatusOr<std::vector<Event>> Mabed::Detect(const corpus::Corpus& corp) const {
  if (corp.size() == 0) {
    return Status::InvalidArgument("corpus is empty");
  }
  stats_ = MabedStats();
  WallTimer timer;

  // --- Partition phase: time slices and per-term mention counts. ---
  UnixSeconds t_min = corp.doc(0).timestamp;
  UnixSeconds t_max = t_min;
  for (const corpus::Document& d : corp.docs()) {
    t_min = std::min(t_min, d.timestamp);
    t_max = std::max(t_max, d.timestamp);
  }
  TimeSlicer slicer(t_min, t_max, options_.time_slice_seconds);
  const size_t s = slicer.num_slices();

  const size_t vocab_size = corp.vocabulary().size();
  std::vector<SliceCounts> counts(vocab_size);
  std::vector<uint32_t> docs_per_slice(s, 0);

  // Documents are scanned once; counts are appended in slice order per term
  // as long as documents arrive time-sorted. A final sort fixes any
  // unsorted input.
  std::vector<uint32_t> scratch;
  for (const corpus::Document& doc : corp.docs()) {
    uint32_t slice = static_cast<uint32_t>(slicer.SliceOf(doc.timestamp));
    ++docs_per_slice[slice];
    scratch.clear();
    for (const corpus::TermCount& tc : doc.counts) scratch.push_back(tc.term);
    for (uint32_t term : scratch) {
      SliceCounts& sc = counts[term];
      if (!sc.entries.empty() && sc.entries.back().first == slice) {
        ++sc.entries.back().second;
      } else {
        sc.entries.emplace_back(slice, 1);
      }
      ++sc.total;
    }
  }
  // Per-term fixups are independent; shard over the vocabulary.
  ParallelFor(options_.parallelism, counts.size(),
              [&](size_t, size_t begin, size_t end) {
    for (size_t term = begin; term < end; ++term) {
      SliceCounts& sc = counts[term];
      if (!std::is_sorted(sc.entries.begin(), sc.entries.end(),
                          [](const auto& a, const auto& b) {
                            return a.first < b.first;
                          })) {
        std::sort(sc.entries.begin(), sc.entries.end());
        // Merge duplicate slices produced by unsorted input.
        std::vector<std::pair<uint32_t, uint32_t>> merged;
        for (const auto& e : sc.entries) {
          if (!merged.empty() && merged.back().first == e.first) {
            merged.back().second += e.second;
          } else {
            merged.push_back(e);
          }
        }
        sc.entries = std::move(merged);
      }
    }
  });

  std::vector<double> slice_share(s, 0.0);
  const double total_docs = static_cast<double>(corp.size());
  for (size_t i = 0; i < s; ++i) {
    slice_share[i] = static_cast<double>(docs_per_slice[i]) / total_docs;
  }

  // Slice -> document ids, so candidate expansion only scans interval docs.
  std::vector<std::vector<uint32_t>> docs_by_slice(s);
  for (size_t d = 0; d < corp.size(); ++d) {
    docs_by_slice[slicer.SliceOf(corp.doc(d).timestamp)].push_back(
        static_cast<uint32_t>(d));
  }
  stats_.partition_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // --- Detection phase: anomaly intervals for every candidate main word. ---
  // The scan is sharded over terms; per-shard hits are concatenated in
  // shard order, which is exactly the ascending-term order the serial loop
  // produces — detected candidates are bitwise identical either way.
  const size_t scan_shards =
      ResolveShards(options_.parallelism, static_cast<size_t>(vocab_size));
  std::vector<std::vector<Candidate>> shard_candidates(
      std::max<size_t>(scan_shards, 1));
  ParallelFor(options_.parallelism, vocab_size,
              [&](size_t shard, size_t begin, size_t end) {
    std::vector<Candidate>& local = shard_candidates[shard];
    for (size_t t = begin; t < end; ++t) {
      const uint32_t term = static_cast<uint32_t>(t);
      if (corp.vocabulary().doc_freq(term) < options_.min_main_doc_freq) {
        continue;
      }
      const std::string& word = corp.vocabulary().Term(term);
      if (options_.filter_stopword_mains && text::IsStopword(word)) continue;
      size_t a = 0, b = 0;
      double mag = 0.0;
      MaxAnomalyInterval(counts[term], slice_share, s, &a, &b, &mag);
      if (mag <= 0.0) continue;
      local.push_back({term, a, b, mag});
    }
  });
  std::vector<Candidate> candidates;
  for (const std::vector<Candidate>& local : shard_candidates) {
    candidates.insert(candidates.end(), local.begin(), local.end());
  }
  stats_.candidate_events = candidates.size();

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              if (x.magnitude != y.magnitude) return x.magnitude > y.magnitude;
              return x.term < y.term;
            });

  // Expand candidates into events with related words, dedup as we go, and
  // stop once max_events survive. Examine a bounded multiple of the target
  // so dedup has material to work with.
  const size_t examine_limit =
      std::min(candidates.size(), options_.max_events * 4 + 64);

  std::vector<Event> events;
  auto overlaps = [&](const Event& x, const Event& y) {
    size_t lo = std::max(x.start_slice, y.start_slice);
    size_t hi = std::min(x.end_slice, y.end_slice);
    if (hi < lo) return false;
    double inter = static_cast<double>(hi - lo + 1);
    double shorter = static_cast<double>(
        std::min(x.end_slice - x.start_slice, y.end_slice - y.start_slice) +
        1);
    return inter / shorter >= options_.duplicate_overlap;
  };

  for (size_t ci = 0; ci < examine_limit && events.size() < options_.max_events;
       ++ci) {
    const Candidate& cand = candidates[ci];
    Event ev;
    ev.main_term = cand.term;
    ev.main_word = corp.vocabulary().Term(cand.term);
    ev.start_slice = cand.start_slice;
    ev.end_slice = cand.end_slice;
    ev.start_time = slicer.SliceStart(cand.start_slice);
    ev.end_time = slicer.SliceEnd(cand.end_slice) - 1;
    ev.magnitude = cand.magnitude;

    // Interval needs at least 3 slices for the auto-correlation weights;
    // widen degenerate intervals by one slice on each side.
    size_t a = ev.start_slice, b = ev.end_slice;
    while (b - a + 1 < 3) {
      if (a > 0) --a;
      if (b + 1 < s) ++b;
      if (a == 0 && b + 1 >= s) break;
    }

    // Main-word series over [a, b].
    const size_t len = b - a + 1;
    std::vector<double> main_series(len, 0.0);
    for (const auto& [slice, c] : counts[cand.term].entries) {
      if (slice >= a && slice <= b) main_series[slice - a] = c;
    }

    // Candidate related words: co-occurring terms in interval documents
    // containing the main word; count support while at it.
    std::unordered_map<uint32_t, uint32_t> cooc;
    size_t support = 0;
    for (size_t slice = ev.start_slice; slice <= ev.end_slice; ++slice) {
      for (uint32_t d : docs_by_slice[slice]) {
        const corpus::Document& doc = corp.doc(d);
        // counts are sorted by term id, so membership is a binary search.
        auto it = std::lower_bound(
            doc.counts.begin(), doc.counts.end(), cand.term,
            [](const corpus::TermCount& tc, uint32_t t) { return tc.term < t; });
        if (it == doc.counts.end() || it->term != cand.term) continue;
        ++support;
        for (const corpus::TermCount& tc : doc.counts) {
          if (tc.term != cand.term) ++cooc[tc.term];
        }
      }
    }
    ev.support = support;
    if (support < options_.min_support) continue;

    // Keep the strongest co-occurring terms as correlation candidates.
    std::vector<std::pair<uint32_t, uint32_t>> by_cooc(cooc.begin(),
                                                       cooc.end());
    std::sort(by_cooc.begin(), by_cooc.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;
              });
    const size_t probe = std::min<size_t>(by_cooc.size(), 64);
    std::vector<std::pair<double, uint32_t>> weighted;
    std::vector<double> cand_series(len);
    for (size_t i = 0; i < probe; ++i) {
      uint32_t term = by_cooc[i].first;
      if (options_.filter_stopword_mains &&
          text::IsStopword(corp.vocabulary().Term(term))) {
        continue;
      }
      std::fill(cand_series.begin(), cand_series.end(), 0.0);
      for (const auto& [slice, c] : counts[term].entries) {
        if (slice >= a && slice <= b) cand_series[slice - a] = c;
      }
      double w = RelatedWordWeight(main_series, cand_series);
      if (w >= options_.min_related_weight) {
        weighted.emplace_back(w, term);
      }
    }
    std::sort(weighted.begin(), weighted.end(), [](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first > y.first;
      return x.second < y.second;
    });
    if (weighted.size() > options_.max_related_words) {
      weighted.resize(options_.max_related_words);
    }
    for (const auto& [w, term] : weighted) {
      ev.related_terms.push_back(term);
      ev.related_words.push_back(corp.vocabulary().Term(term));
      ev.related_weights.push_back(w);
    }

    // Dedup against accepted events.
    bool duplicate = false;
    for (const Event& other : events) {
      bool word_clash = other.main_term == ev.main_term;
      if (!word_clash) {
        for (uint32_t t : other.related_terms) {
          if (t == ev.main_term) {
            word_clash = true;
            break;
          }
        }
        for (uint32_t t : ev.related_terms) {
          if (t == other.main_term) {
            word_clash = true;
            break;
          }
        }
      }
      if (word_clash && overlaps(other, ev)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) {
      ++stats_.deduplicated_events;
      continue;
    }
    events.push_back(std::move(ev));
  }

  stats_.detect_seconds = timer.ElapsedSeconds();
  return events;
}

}  // namespace newsdiff::event
