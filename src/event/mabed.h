#ifndef NEWSDIFF_EVENT_MABED_H_
#define NEWSDIFF_EVENT_MABED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "common/time.h"
#include "corpus/corpus.h"
#include "event/time_slicer.h"

namespace newsdiff::event {

/// A detected event: a main word (the event label), weighted related words
/// (the event keywords), and the interval of interest — the three
/// characteristics listed in the paper's §4.4.
struct Event {
  /// The main word t whose mention anomaly defines the event.
  std::string main_word;
  uint32_t main_term = 0;
  /// Related words t'_q with weights w (Eq. 9), descending by weight.
  std::vector<std::string> related_words;
  std::vector<double> related_weights;
  std::vector<uint32_t> related_terms;
  /// Interval of interest I = [a, b] in slice indices, inclusive.
  size_t start_slice = 0;
  size_t end_slice = 0;
  /// The same interval in timestamps.
  UnixSeconds start_time = 0;
  UnixSeconds end_time = 0;
  /// Magnitude of impact: the summed mention anomaly over I.
  double magnitude = 0.0;
  /// Number of documents in the interval containing the main word.
  size_t support = 0;
};

/// MABED configuration.
struct MabedOptions {
  /// Time-slice width. The paper uses 60 min for news, 30 min for tweets.
  int64_t time_slice_seconds = 30 * kSecondsPerMinute;
  /// Number of events to return (top-K by magnitude of impact).
  size_t max_events = 100;
  /// Maximum number of related words per event (p in MABED).
  size_t max_related_words = 10;
  /// Minimum weight w_{t'} (Eq. 9) for a related word to be kept.
  /// MABED's default corresponds to a first-order auto-correlation > 0.4.
  double min_related_weight = 0.7;
  /// Candidate main words must appear in at least this many documents.
  uint32_t min_main_doc_freq = 10;
  /// Events whose interval contains fewer than this many supporting
  /// documents are dropped (the paper keeps events with >= 10 records).
  size_t min_support = 10;
  /// Drop candidate main words that are stopwords (pyMABED behaviour).
  bool filter_stopword_mains = true;
  /// Two events are duplicates when their main word coincides or one's
  /// main word is among the other's related words AND their intervals
  /// overlap by at least this fraction of the shorter interval.
  double duplicate_overlap = 0.3;
  /// Parallel execution of the per-term anomaly scan (the detection-phase
  /// hot loop). The scan is map-style over vocabulary terms, so detected
  /// events are bitwise identical at any thread/shard count.
  Parallelism parallelism;
};

/// Detection report with timing breakdown mirroring the paper's §5.3/§5.4
/// (corpus load / partition / detect phases).
struct MabedStats {
  double partition_seconds = 0.0;
  double detect_seconds = 0.0;
  size_t candidate_events = 0;
  size_t deduplicated_events = 0;
};

/// Runs MABED over a corpus whose documents carry timestamps.
/// Returns the top-K events by magnitude of impact. Deterministic.
class Mabed {
 public:
  explicit Mabed(MabedOptions options) : options_(options) {}

  /// Detects events in `corp`. The corpus must contain at least one
  /// document, and documents must have timestamps.
  StatusOr<std::vector<Event>> Detect(const corpus::Corpus& corp) const;

  /// Detection statistics from the last Detect call.
  const MabedStats& stats() const { return stats_; }

  /// True if the document (token ids + timestamp) belongs to `ev` under the
  /// paper's assignment rule (§4.7): posted inside the event interval and
  /// containing the main word and at least `related_fraction` of the
  /// related words.
  static bool DocumentBelongsToEvent(const corpus::Document& doc,
                                     const Event& ev,
                                     double related_fraction = 0.2);

 private:
  MabedOptions options_;
  mutable MabedStats stats_;
};

/// First-order auto-correlation weight of a candidate word against the main
/// word over the slice interval [a, b] (Eq. 9-10). `main_series` and
/// `candidate_series` are the per-slice mention counts N^i restricted to
/// [a, b] (inclusive; both must have the same length b-a+1 >= 3).
/// Implements the corrected Erdem et al. coefficient (see DESIGN.md).
double RelatedWordWeight(const std::vector<double>& main_series,
                         const std::vector<double>& candidate_series);

}  // namespace newsdiff::event

#endif  // NEWSDIFF_EVENT_MABED_H_
