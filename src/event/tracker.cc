#include "event/tracker.h"

#include <algorithm>

namespace newsdiff::event {

bool EventTracker::Matches(const Event& a, const Event& b) {
  bool word_clash = a.main_word == b.main_word;
  if (!word_clash) {
    for (const std::string& w : a.related_words) {
      if (w == b.main_word) {
        word_clash = true;
        break;
      }
    }
  }
  if (!word_clash) {
    for (const std::string& w : b.related_words) {
      if (w == a.main_word) {
        word_clash = true;
        break;
      }
    }
  }
  if (!word_clash) return false;
  return a.start_time <= b.end_time && b.start_time <= a.end_time;
}

std::vector<int64_t> EventTracker::Update(const std::vector<Event>& events) {
  for (TrackedEvent& t : tracks_) t.active = false;
  std::vector<int64_t> assigned;
  assigned.reserve(events.size());
  for (const Event& ev : events) {
    TrackedEvent* match = nullptr;
    for (TrackedEvent& t : tracks_) {
      if (t.active) continue;  // one observation per track per run
      if (Matches(t.latest, ev)) {
        match = &t;
        break;
      }
    }
    if (match != nullptr) {
      match->latest = ev;
      ++match->observations;
      match->active = true;
      assigned.push_back(match->track_id);
    } else {
      TrackedEvent fresh;
      fresh.track_id = next_id_++;
      fresh.latest = ev;
      fresh.active = true;
      tracks_.push_back(std::move(fresh));
      assigned.push_back(tracks_.back().track_id);
    }
  }
  return assigned;
}

std::vector<const EventTracker::TrackedEvent*> EventTracker::ActiveTracks()
    const {
  std::vector<const TrackedEvent*> out;
  for (const TrackedEvent& t : tracks_) {
    if (t.active) out.push_back(&t);
  }
  return out;
}

}  // namespace newsdiff::event
