#ifndef NEWSDIFF_EVENT_TRACKER_H_
#define NEWSDIFF_EVENT_TRACKER_H_

#include <cstdint>
#include <vector>

#include "event/mabed.h"

namespace newsdiff::event {

/// Links events across successive pipeline runs. The deployed system
/// (§4.9) re-runs detection every two hours over the growing dataset; the
/// tracker gives events stable identities across runs so dashboards and
/// checkpoints can say "this is still the same story" (the *tracking* half
/// of Guille & Favre's mention-anomaly-based detection *and tracking*).
///
/// Matching rule: a new event continues a known one when they share the
/// main word, or one's main word appears among the other's related words,
/// AND their intervals overlap.
class EventTracker {
 public:
  /// A tracked event: the latest observation plus its stable id.
  struct TrackedEvent {
    int64_t track_id = 0;
    Event latest;
    /// Number of runs in which this track has been observed.
    size_t observations = 1;
    /// True if the latest Update saw this track again.
    bool active = false;
  };

  EventTracker() = default;

  /// Ingests one run's detected events. Each event either continues an
  /// existing track (updating its latest observation) or starts a new one.
  /// Returns the track ids assigned to `events`, in order.
  std::vector<int64_t> Update(const std::vector<Event>& events);

  /// All tracks, in creation order.
  const std::vector<TrackedEvent>& tracks() const { return tracks_; }

  /// Tracks observed in the most recent Update.
  std::vector<const TrackedEvent*> ActiveTracks() const;

 private:
  static bool Matches(const Event& a, const Event& b);

  std::vector<TrackedEvent> tracks_;
  int64_t next_id_ = 0;
};

}  // namespace newsdiff::event

#endif  // NEWSDIFF_EVENT_TRACKER_H_
