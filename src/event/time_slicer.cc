#include "event/time_slicer.h"

#include <cassert>

namespace newsdiff::event {

TimeSlicer::TimeSlicer(UnixSeconds start, UnixSeconds end,
                       int64_t width_seconds)
    : start_(start), width_(width_seconds) {
  assert(width_seconds > 0);
  assert(end >= start);
  num_slices_ = static_cast<size_t>((end - start) / width_seconds) + 1;
}

size_t TimeSlicer::SliceOf(UnixSeconds t) const {
  if (t <= start_) return 0;
  size_t i = static_cast<size_t>((t - start_) / width_);
  if (i >= num_slices_) i = num_slices_ - 1;
  return i;
}

}  // namespace newsdiff::event
