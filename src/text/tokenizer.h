#ifndef NEWSDIFF_TEXT_TOKENIZER_H_
#define NEWSDIFF_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace newsdiff::text {

/// Tokenizer options.
struct TokenizerOptions {
  /// Lowercase ASCII letters in tokens.
  bool lowercase = true;
  /// Keep tokens that are pure digit runs ("2019", "25").
  bool keep_numbers = true;
  /// Minimum token length in bytes; shorter tokens are dropped.
  size_t min_length = 1;
  /// Keep internal apostrophes ("don't" stays one token). When false the
  /// apostrophe splits the token.
  bool keep_apostrophes = true;
};

/// Splits `input` into word tokens on non-alphanumeric boundaries.
/// Underscores are treated as word characters so that pre-joined concept
/// tokens ("new_york") survive. Punctuation is removed, implementing the
/// "remove punctuation + tokenization" step shared by all three of the
/// paper's preprocessing recipes (§4.2).
std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options = {});

/// Splits into sentences on '.', '!', '?' followed by whitespace or end of
/// input. Abbreviation handling is intentionally minimal.
std::vector<std::string> SplitSentences(std::string_view input);

/// True if `token` is a pure number (digits, optionally one '.' or ',').
bool IsNumericToken(std::string_view token);

}  // namespace newsdiff::text

#endif  // NEWSDIFF_TEXT_TOKENIZER_H_
