#ifndef NEWSDIFF_TEXT_NER_H_
#define NEWSDIFF_TEXT_NER_H_

#include <string>
#include <string_view>
#include <vector>

namespace newsdiff::text {

/// A recognised entity span.
struct Entity {
  /// Concept token: Lowercase words joined with '_' ("new_york").
  std::string concept_token;
  /// The original surface form ("New York").
  std::string surface;
};

/// Heuristic named-entity recogniser: maximal runs of capitalised words
/// (optionally linked by "of"/"the") are treated as entities, excluding
/// runs that start a sentence with a single stopword-like word. This stands
/// in for SpaCy's NER in the paper's NewsTM recipe (§4.2), where entities
/// are kept as single concept_token tokens rather than split into terms.
std::vector<Entity> ExtractEntities(std::string_view input);

/// Rewrites `input`, replacing each recognised entity's surface form with
/// its single concept_token token, so a downstream tokenizer keeps it whole.
std::string FoldEntities(std::string_view input);

}  // namespace newsdiff::text

#endif  // NEWSDIFF_TEXT_NER_H_
