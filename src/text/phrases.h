#ifndef NEWSDIFF_TEXT_PHRASES_H_
#define NEWSDIFF_TEXT_PHRASES_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace newsdiff::text {

/// Statistical collocation learner (the Mikolov/Gensim "Phrases" device):
/// bigrams whose components co-occur far more than chance are promoted to
/// single tokens ("prime_minister"). Complements the heuristic NER — NER
/// catches capitalised entities, collocations catch lowercase multi-word
/// concepts — and feeds the same downstream topic/embedding machinery.
class PhraseModel {
 public:
  struct Options {
    /// Bigram must occur at least this often to be considered.
    size_t min_count = 5;
    /// Promotion threshold on the Mikolov score
    ///   score(a, b) = (count(ab) - min_count) * N / (count(a) * count(b))
    double threshold = 10.0;
    /// Words that never participate in a collocation (stopwords).
    bool skip_stopwords = true;
  };

  PhraseModel() : options_(Options()) {}
  explicit PhraseModel(const Options& options) : options_(options) {}

  /// Counts unigrams and bigrams over tokenised sentences. May be called
  /// repeatedly to accumulate.
  void Train(const std::vector<std::vector<std::string>>& sentences);

  /// Number of bigrams currently above the promotion threshold.
  size_t PhraseCount() const;

  /// True if "a b" is a learned collocation.
  bool IsPhrase(const std::string& a, const std::string& b) const;

  /// Rewrites a token stream, joining learned collocations with '_'
  /// (left-to-right, non-overlapping, single pass).
  std::vector<std::string> Apply(
      const std::vector<std::string>& tokens) const;

  /// All learned collocations as "a_b" strings (unordered).
  std::vector<std::string> Phrases() const;

 private:
  double Score(const std::string& a, const std::string& b,
               size_t bigram_count) const;

  Options options_;
  std::unordered_map<std::string, size_t> unigram_;
  std::unordered_map<std::string, size_t> bigram_;  // key "a b"
  size_t total_tokens_ = 0;
};

}  // namespace newsdiff::text

#endif  // NEWSDIFF_TEXT_PHRASES_H_
