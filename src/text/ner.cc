#include "text/ner.h"

#include <cctype>

#include "common/strings.h"
#include "text/stopwords.h"

namespace newsdiff::text {
namespace {

struct RawToken {
  std::string word;
  size_t begin;   // byte offset in input
  size_t end;     // one past last byte
  bool sentence_start;
};

bool IsCapitalized(const std::string& w) {
  return !w.empty() && std::isupper(static_cast<unsigned char>(w[0]));
}

bool AllUpper(const std::string& w) {
  if (w.empty()) return false;
  for (char c : w) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::vector<RawToken> Scan(std::string_view input) {
  std::vector<RawToken> tokens;
  const size_t n = input.size();
  size_t i = 0;
  bool sentence_start = true;
  while (i < n) {
    unsigned char c = static_cast<unsigned char>(input[i]);
    if (std::isalpha(c)) {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '\'')) {
        ++i;
      }
      tokens.push_back({std::string(input.substr(start, i - start)), start, i,
                        sentence_start});
      sentence_start = false;
    } else {
      if (c == '.' || c == '!' || c == '?') sentence_start = true;
      ++i;
    }
  }
  return tokens;
}

}  // namespace

std::vector<Entity> ExtractEntities(std::string_view input) {
  std::vector<RawToken> tokens = Scan(input);
  std::vector<Entity> entities;
  size_t i = 0;
  while (i < tokens.size()) {
    if (!IsCapitalized(tokens[i].word)) {
      ++i;
      continue;
    }
    // A sentence-initial capitalised word only begins an entity if it is
    // followed by another capitalised word, is all-caps (an acronym), or is
    // not a common word; otherwise it is ordinary sentence case.
    bool next_cap =
        i + 1 < tokens.size() && IsCapitalized(tokens[i + 1].word);
    if (tokens[i].sentence_start && !next_cap && !AllUpper(tokens[i].word)) {
      ++i;
      continue;
    }
    std::string lower = ToLowerAscii(tokens[i].word);
    // A lone capitalised stopword ("The", "It") is not an entity, but a
    // capitalised stopword-spelled word followed by another capital can
    // begin one ("New York").
    if (IsStopword(lower) && !next_cap) {
      ++i;
      continue;
    }
    // Extend the run across capitalised words, allowing one lowercase
    // linker ("of", "the", "de") between capitalised words.
    size_t j = i + 1;
    size_t last_cap = i;
    while (j < tokens.size()) {
      if (IsCapitalized(tokens[j].word)) {
        last_cap = j;
        ++j;
        continue;
      }
      std::string lw = ToLowerAscii(tokens[j].word);
      bool linker = (lw == "of" || lw == "the" || lw == "de" || lw == "von");
      if (linker && j + 1 < tokens.size() &&
          IsCapitalized(tokens[j + 1].word)) {
        ++j;
        continue;
      }
      break;
    }
    // Build the entity over [i, last_cap].
    std::vector<std::string> parts;
    for (size_t k = i; k <= last_cap; ++k) {
      parts.push_back(ToLowerAscii(tokens[k].word));
    }
    Entity e;
    e.concept_token = Join(parts, "_");
    e.surface = std::string(
        input.substr(tokens[i].begin, tokens[last_cap].end - tokens[i].begin));
    entities.push_back(std::move(e));
    i = last_cap + 1;
  }
  return entities;
}

std::string FoldEntities(std::string_view input) {
  std::vector<Entity> entities = ExtractEntities(input);
  if (entities.empty()) return std::string(input);
  std::string out;
  size_t cursor = 0;
  size_t search_from = 0;
  for (const Entity& e : entities) {
    size_t pos = input.find(e.surface, search_from);
    if (pos == std::string_view::npos) continue;
    out.append(input.substr(cursor, pos - cursor));
    out.append(e.concept_token);
    cursor = pos + e.surface.size();
    search_from = cursor;
  }
  out.append(input.substr(cursor));
  return out;
}

}  // namespace newsdiff::text
