#include "text/pipeline.h"

#include <cctype>

#include "text/lemmatizer.h"
#include "text/ner.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace newsdiff::text {
namespace {

// Removes URLs, @mentions, and hashtag markers from tweet text.
std::string CleanTweet(std::string_view input) {
  std::string out;
  out.reserve(input.size());
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    // URL: http:// or https:// up to whitespace.
    if ((input.substr(i, 7) == "http://") ||
        (input.substr(i, 8) == "https://") ||
        (input.substr(i, 4) == "www.")) {
      while (i < n && !std::isspace(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      out += ' ';
      continue;
    }
    char c = input[i];
    if (c == '@') {
      // Drop the whole mention.
      ++i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      out += ' ';
      continue;
    }
    if (c == '#') {
      ++i;  // keep the tag word, drop the marker
      continue;
    }
    out += c;
    ++i;
  }
  return out;
}

}  // namespace

std::vector<std::string> PreprocessNewsTM(std::string_view input) {
  // 1. Fold named entities into single concept tokens.
  std::string folded = FoldEntities(input);
  // 2. Tokenize (removes punctuation, lowercases).
  TokenizerOptions opts;
  opts.min_length = 2;
  opts.keep_numbers = true;
  std::vector<std::string> tokens = Tokenize(folded, opts);
  // 3. Lemmatize and drop stopwords.
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const std::string& t : tokens) {
    if (IsStopword(t)) continue;
    // Concept tokens (contain '_') are kept verbatim.
    std::string lemma =
        t.find('_') == std::string::npos ? Lemmatize(t) : t;
    if (IsStopword(lemma)) continue;
    out.push_back(std::move(lemma));
  }
  return out;
}

std::vector<std::string> PreprocessNewsED(std::string_view input) {
  TokenizerOptions opts;
  opts.min_length = 2;
  return Tokenize(input, opts);
}

std::vector<std::string> PreprocessTwitterED(std::string_view input) {
  std::string cleaned = CleanTweet(input);
  TokenizerOptions opts;
  opts.min_length = 2;
  return Tokenize(cleaned, opts);
}

std::vector<std::string> Preprocess(std::string_view input,
                                    PipelineKind kind) {
  switch (kind) {
    case PipelineKind::kNewsTM:
      return PreprocessNewsTM(input);
    case PipelineKind::kNewsED:
      return PreprocessNewsED(input);
    case PipelineKind::kTwitterED:
      return PreprocessTwitterED(input);
  }
  return {};
}

}  // namespace newsdiff::text
