#include "text/stopwords.h"

namespace newsdiff::text {

const std::unordered_set<std::string_view>& EnglishStopwords() {
  static const auto* kSet = new std::unordered_set<std::string_view>{
      "a",       "about",   "above",   "after",   "again",   "against",
      "all",     "also",    "am",      "an",      "and",     "any",
      "are",     "aren't",  "as",      "at",      "back",    "be",
      "because", "been",    "before",  "being",   "below",   "between",
      "both",    "but",     "by",      "can",     "cannot",  "can't",
      "could",   "couldn't", "did",    "didn't",  "do",      "does",
      "doesn't", "doing",   "don't",   "down",    "during",  "each",
      "even",    "ever",    "every",   "few",     "first",   "for",
      "from",    "further", "get",     "go",      "got",     "had",
      "hadn't",  "has",     "hasn't",  "have",    "haven't", "having",
      "he",      "he'd",    "he'll",   "her",     "here",    "here's",
      "hers",    "herself", "he's",    "him",     "himself", "his",
      "how",     "how's",   "i",       "i'd",     "if",      "i'll",
      "i'm",     "in",      "into",    "is",      "isn't",   "it",
      "it's",    "its",     "itself",  "i've",    "just",    "last",
      "let's",   "like",    "made",    "make",    "many",    "may",
      "me",      "might",   "more",    "most",    "much",    "must",
      "mustn't", "my",      "myself",  "never",   "new",     "no",
      "nor",     "not",     "now",     "of",      "off",     "on",
      "once",    "one",     "only",    "or",      "other",   "ought",
      "our",     "ours",    "ourselves", "out",   "over",    "own",
      "said",    "same",    "say",     "says",    "shan't",  "she",
      "she'd",   "she'll",  "she's",   "should",  "shouldn't", "since",
      "so",      "some",    "still",   "such",    "take",    "than",
      "that",    "that's",  "the",     "their",   "theirs",  "them",
      "themselves", "then", "there",   "there's", "these",   "they",
      "they'd",  "they'll", "they're", "they've", "this",    "those",
      "through", "to",      "too",     "two",     "under",   "until",
      "up",      "upon",    "us",      "very",    "was",     "wasn't",
      "way",     "we",      "we'd",    "well",    "we'll",   "were",
      "we're",   "weren't", "we've",   "what",    "what's",  "when",
      "when's",  "where",   "where's", "which",   "while",   "who",
      "whom",    "who's",   "why",     "why's",   "will",    "with",
      "won't",   "would",   "wouldn't", "you",    "you'd",   "you'll",
      "your",    "you're",  "yours",   "yourself", "yourselves", "you've",
  };
  return *kSet;
}

bool IsStopword(std::string_view token) {
  return EnglishStopwords().count(token) > 0;
}

}  // namespace newsdiff::text
