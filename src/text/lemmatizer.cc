#include "text/lemmatizer.h"

#include <unordered_map>

namespace newsdiff::text {
namespace {

bool IsVowel(char c) {
  return c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u';
}

bool HasVowel(std::string_view s) {
  for (char c : s) {
    if (IsVowel(c)) return true;
  }
  return false;
}

bool EndsWith(std::string_view s, std::string_view suf) {
  return s.size() >= suf.size() && s.substr(s.size() - suf.size()) == suf;
}

const std::unordered_map<std::string_view, std::string_view>& Irregulars() {
  static const auto* kMap =
      new std::unordered_map<std::string_view, std::string_view>{
          {"am", "be"},        {"is", "be"},        {"are", "be"},
          {"was", "be"},       {"were", "be"},      {"been", "be"},
          {"being", "be"},     {"has", "have"},     {"had", "have"},
          {"having", "have"},  {"does", "do"},      {"did", "do"},
          {"done", "do"},      {"goes", "go"},      {"went", "go"},
          {"gone", "go"},      {"said", "say"},     {"says", "say"},
          {"made", "make"},    {"making", "make"},  {"took", "take"},
          {"taken", "take"},   {"got", "get"},      {"gotten", "get"},
          {"gave", "give"},    {"given", "give"},   {"came", "come"},
          {"saw", "see"},      {"seen", "see"},     {"knew", "know"},
          {"known", "know"},   {"thought", "think"}, {"told", "tell"},
          {"found", "find"},   {"left", "leave"},   {"felt", "feel"},
          {"kept", "keep"},    {"held", "hold"},    {"brought", "bring"},
          {"began", "begin"},  {"begun", "begin"},  {"wrote", "write"},
          {"written", "write"}, {"ran", "run"},     {"running", "run"},
          {"spoke", "speak"},  {"spoken", "speak"}, {"met", "meet"},
          {"led", "lead"},     {"paid", "pay"},     {"sent", "send"},
          {"built", "build"},  {"lost", "lose"},    {"meant", "mean"},
          {"set", "set"},      {"sat", "sit"},      {"stood", "stand"},
          {"won", "win"},      {"bought", "buy"},   {"caught", "catch"},
          {"voting", "vote"},  {"voted", "vote"},   {"racing", "race"},
          {"taught", "teach"}, {"sold", "sell"},    {"fell", "fall"},
          {"fallen", "fall"},  {"drew", "draw"},    {"drawn", "draw"},
          {"drove", "drive"},  {"driven", "drive"}, {"broke", "break"},
          {"broken", "break"}, {"chose", "choose"}, {"chosen", "choose"},
          {"rose", "rise"},    {"risen", "rise"},   {"grew", "grow"},
          {"grown", "grow"},   {"threw", "throw"},  {"thrown", "throw"},
          {"flew", "fly"},     {"flown", "fly"},    {"showed", "show"},
          {"shown", "show"},   {"heard", "hear"},   {"read", "read"},
          {"men", "man"},      {"women", "woman"},  {"children", "child"},
          {"people", "person"}, {"feet", "foot"},   {"teeth", "tooth"},
          {"mice", "mouse"},   {"geese", "goose"},  {"lives", "life"},
          {"wives", "wife"},   {"knives", "knife"}, {"leaves", "leaf"},
          {"wolves", "wolf"},  {"shelves", "shelf"}, {"halves", "half"},
          {"better", "good"},  {"best", "good"},    {"worse", "bad"},
          {"worst", "bad"},    {"less", "little"},  {"least", "little"},
          {"further", "far"},  {"farther", "far"},  {"elections", "election"},
          {"media", "media"},  {"data", "data"},    {"news", "news"},
          {"series", "series"}, {"species", "species"},
      };
  return *kMap;
}

// Words ending in -ss, -us, -is that the plural rule must not touch.
bool ProtectedSEnding(std::string_view s) {
  return EndsWith(s, "ss") || EndsWith(s, "us") || EndsWith(s, "is") ||
         EndsWith(s, "'s");
}

// Doubled final consonant after stripping ("stopped" -> "stopp" -> "stop").
std::string UndoubleIfNeeded(std::string s) {
  size_t n = s.size();
  if (n >= 3 && s[n - 1] == s[n - 2] && !IsVowel(s[n - 1]) &&
      s[n - 1] != 'l' && s[n - 1] != 's' && s[n - 1] != 'z') {
    s.pop_back();
  }
  return s;
}

// Restores a silent 'e' after stripping -ing/-ed when the stem looks like it
// needs one: CVCe pattern words ("making" -> "mak" -> "make").
std::string MaybeRestoreE(std::string s) {
  size_t n = s.size();
  if (n >= 2 && !IsVowel(s[n - 1]) && IsVowel(s[n - 2]) &&
      (s[n - 1] == 'c' || s[n - 1] == 'g' || s[n - 1] == 's' ||
       s[n - 1] == 'v' || s[n - 1] == 'z' || s[n - 1] == 'u')) {
    s += 'e';
  }
  return s;
}

}  // namespace

std::string Lemmatize(std::string_view token) {
  auto it = Irregulars().find(token);
  if (it != Irregulars().end()) return std::string(it->second);
  if (token.size() < 3) return std::string(token);

  std::string s(token);

  // Plural nouns / 3rd-person verbs.
  if (EndsWith(s, "ies") && s.size() > 4) {
    return s.substr(0, s.size() - 3) + "y";  // parties -> party
  }
  if (EndsWith(s, "xes") || EndsWith(s, "ches") || EndsWith(s, "shes") ||
      EndsWith(s, "sses") || EndsWith(s, "zes")) {
    return s.substr(0, s.size() - 2);  // boxes -> box, matches -> match
  }
  if (EndsWith(s, "s") && !ProtectedSEnding(s) && s.size() > 3 &&
      HasVowel(std::string_view(s).substr(0, s.size() - 1))) {
    return s.substr(0, s.size() - 1);  // topics -> topic
  }

  // Progressive.
  if (EndsWith(s, "ing") && s.size() > 5) {
    std::string stem = s.substr(0, s.size() - 3);
    if (!HasVowel(stem)) return s;  // "ring", "king" guarded by length, but
                                    // also e.g. "sthing"-like stems
    stem = UndoubleIfNeeded(std::move(stem));
    return MaybeRestoreE(std::move(stem));
  }

  // Past tense.
  if (EndsWith(s, "ied") && s.size() > 4) {
    return s.substr(0, s.size() - 3) + "y";  // tried -> try
  }
  if (EndsWith(s, "ed") && s.size() > 4) {
    std::string stem = s.substr(0, s.size() - 2);
    if (!HasVowel(stem)) return s;
    if (stem.back() == 'i') return s;  // already handled / odd shapes
    stem = UndoubleIfNeeded(std::move(stem));
    return MaybeRestoreE(std::move(stem));
  }

  return s;
}

}  // namespace newsdiff::text
