#ifndef NEWSDIFF_TEXT_LEMMATIZER_H_
#define NEWSDIFF_TEXT_LEMMATIZER_H_

#include <string>
#include <string_view>

namespace newsdiff::text {

/// Rule-based English lemmatizer: a table of common irregular forms plus
/// conservative suffix rules (plural -s/-es/-ies, past -ed, progressive
/// -ing, comparative -er/-est with doubling and silent-e restoration).
/// It replaces the SpaCy lemmatizer used in the paper's NewsTM recipe; the
/// goal is vocabulary compaction, not linguistic perfection, and the rules
/// below are deliberately conservative (unknown shapes pass through).
///
/// Input must already be lowercase.
std::string Lemmatize(std::string_view token);

}  // namespace newsdiff::text

#endif  // NEWSDIFF_TEXT_LEMMATIZER_H_
