#include "text/tokenizer.h"

#include <cctype>

namespace newsdiff::text {
namespace {

inline bool IsWordChar(unsigned char c) {
  return std::isalnum(c) || c == '_';
}

}  // namespace

std::vector<std::string> Tokenize(std::string_view input,
                                  const TokenizerOptions& options) {
  std::vector<std::string> tokens;
  std::string cur;
  const size_t n = input.size();
  auto flush = [&]() {
    if (cur.empty()) return;
    if (cur.size() >= options.min_length) {
      bool numeric = true;
      for (char c : cur) {
        if (!std::isdigit(static_cast<unsigned char>(c))) {
          numeric = false;
          break;
        }
      }
      if (!numeric || options.keep_numbers) tokens.push_back(cur);
    }
    cur.clear();
  };
  for (size_t i = 0; i < n; ++i) {
    unsigned char c = static_cast<unsigned char>(input[i]);
    if (IsWordChar(c)) {
      cur += options.lowercase
                 ? static_cast<char>(std::tolower(c))
                 : static_cast<char>(c);
    } else if (options.keep_apostrophes && (c == '\'' || c == 0xE2) &&
               !cur.empty()) {
      // Plain ASCII apostrophe inside a word; also tolerate the first byte
      // of a UTF-8 right single quote (U+2019: E2 80 99) by consuming the
      // 3-byte sequence when it appears mid-word.
      if (c == 0xE2) {
        if (i + 2 < n && static_cast<unsigned char>(input[i + 1]) == 0x80 &&
            static_cast<unsigned char>(input[i + 2]) == 0x99 && i + 3 < n &&
            IsWordChar(static_cast<unsigned char>(input[i + 3]))) {
          cur += '\'';
          i += 2;
        } else {
          flush();
        }
      } else if (i + 1 < n && IsWordChar(static_cast<unsigned char>(input[i + 1]))) {
        cur += '\'';
      } else {
        flush();
      }
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> SplitSentences(std::string_view input) {
  std::vector<std::string> sentences;
  std::string cur;
  const size_t n = input.size();
  for (size_t i = 0; i < n; ++i) {
    char c = input[i];
    cur += c;
    if (c == '.' || c == '!' || c == '?') {
      bool at_end = (i + 1 >= n);
      bool followed_by_space =
          !at_end && std::isspace(static_cast<unsigned char>(input[i + 1]));
      if (at_end || followed_by_space) {
        // Trim and emit.
        size_t b = cur.find_first_not_of(" \t\r\n");
        size_t e = cur.find_last_not_of(" \t\r\n");
        if (b != std::string::npos) {
          sentences.push_back(cur.substr(b, e - b + 1));
        }
        cur.clear();
      }
    }
  }
  size_t b = cur.find_first_not_of(" \t\r\n");
  if (b != std::string::npos) {
    size_t e = cur.find_last_not_of(" \t\r\n");
    sentences.push_back(cur.substr(b, e - b + 1));
  }
  return sentences;
}

bool IsNumericToken(std::string_view token) {
  if (token.empty()) return false;
  bool seen_digit = false;
  bool seen_sep = false;
  for (char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      seen_digit = true;
    } else if ((c == '.' || c == ',') && !seen_sep) {
      seen_sep = true;
    } else {
      return false;
    }
  }
  return seen_digit;
}

}  // namespace newsdiff::text
