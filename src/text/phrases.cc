#include "text/phrases.h"

#include "text/stopwords.h"

namespace newsdiff::text {

void PhraseModel::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  for (const auto& sent : sentences) {
    for (size_t i = 0; i < sent.size(); ++i) {
      ++unigram_[sent[i]];
      ++total_tokens_;
      if (i + 1 < sent.size()) {
        if (options_.skip_stopwords &&
            (IsStopword(sent[i]) || IsStopword(sent[i + 1]))) {
          continue;
        }
        ++bigram_[sent[i] + " " + sent[i + 1]];
      }
    }
  }
}

double PhraseModel::Score(const std::string& a, const std::string& b,
                          size_t bigram_count) const {
  if (bigram_count < options_.min_count) return 0.0;
  auto ia = unigram_.find(a);
  auto ib = unigram_.find(b);
  if (ia == unigram_.end() || ib == unigram_.end()) return 0.0;
  return (static_cast<double>(bigram_count) -
          static_cast<double>(options_.min_count)) *
         static_cast<double>(total_tokens_) /
         (static_cast<double>(ia->second) * static_cast<double>(ib->second));
}

bool PhraseModel::IsPhrase(const std::string& a, const std::string& b) const {
  auto it = bigram_.find(a + " " + b);
  if (it == bigram_.end()) return false;
  return Score(a, b, it->second) > options_.threshold;
}

size_t PhraseModel::PhraseCount() const {
  size_t n = 0;
  for (const auto& [key, count] : bigram_) {
    size_t space = key.find(' ');
    if (Score(key.substr(0, space), key.substr(space + 1), count) >
        options_.threshold) {
      ++n;
    }
  }
  return n;
}

std::vector<std::string> PhraseModel::Apply(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  size_t i = 0;
  while (i < tokens.size()) {
    if (i + 1 < tokens.size() && IsPhrase(tokens[i], tokens[i + 1])) {
      out.push_back(tokens[i] + "_" + tokens[i + 1]);
      i += 2;
    } else {
      out.push_back(tokens[i]);
      ++i;
    }
  }
  return out;
}

std::vector<std::string> PhraseModel::Phrases() const {
  std::vector<std::string> out;
  for (const auto& [key, count] : bigram_) {
    size_t space = key.find(' ');
    std::string a = key.substr(0, space);
    std::string b = key.substr(space + 1);
    if (Score(a, b, count) > options_.threshold) {
      out.push_back(a + "_" + b);
    }
  }
  return out;
}

}  // namespace newsdiff::text
