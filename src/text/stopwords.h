#ifndef NEWSDIFF_TEXT_STOPWORDS_H_
#define NEWSDIFF_TEXT_STOPWORDS_H_

#include <string_view>
#include <unordered_set>

namespace newsdiff::text {

/// Returns the built-in English stopword set (lowercase). The set mirrors
/// the common SpaCy/scikit-learn core list; it is embedded so the library
/// has no data-file dependency.
const std::unordered_set<std::string_view>& EnglishStopwords();

/// True if the (already lowercased) token is a stopword.
bool IsStopword(std::string_view token);

}  // namespace newsdiff::text

#endif  // NEWSDIFF_TEXT_STOPWORDS_H_
