#ifndef NEWSDIFF_TEXT_PIPELINE_H_
#define NEWSDIFF_TEXT_PIPELINE_H_

#include <string>
#include <string_view>
#include <vector>

namespace newsdiff::text {

/// The three preprocessing recipes of the paper (§4.2).
enum class PipelineKind {
  /// NewsTM: entity folding, lemmatisation, punctuation + stopword removal.
  /// Used to build the topic-modeling corpus.
  kNewsTM,
  /// NewsED: punctuation removal + tokenisation only (MABED's original
  /// preprocessing), applied to news articles.
  kNewsED,
  /// TwitterED: same minimal recipe applied to tweets; additionally strips
  /// URLs, @mentions, and the '#' of hashtags (keeping the tag word).
  kTwitterED,
};

/// Applies the selected recipe to raw text and returns the token stream.
std::vector<std::string> Preprocess(std::string_view input,
                                    PipelineKind kind);

/// Convenience wrappers with the recipe in the name.
std::vector<std::string> PreprocessNewsTM(std::string_view input);
std::vector<std::string> PreprocessNewsED(std::string_view input);
std::vector<std::string> PreprocessTwitterED(std::string_view input);

}  // namespace newsdiff::text

#endif  // NEWSDIFF_TEXT_PIPELINE_H_
