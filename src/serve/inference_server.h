#ifndef NEWSDIFF_SERVE_INFERENCE_SERVER_H_
#define NEWSDIFF_SERVE_INFERENCE_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/retry.h"
#include "common/status.h"
#include "la/matrix.h"
#include "la/weight_cache.h"
#include "nn/model.h"
#include "serve/trainer.h"

namespace newsdiff::serve {

/// Coalescing knobs for the inference server.
struct InferenceServerOptions {
  /// Flush a batch once this many rows are queued. One request larger
  /// than this still executes as a single batch.
  size_t max_batch_rows = 256;
  /// Bounded queue, in ROWS. Submissions that would exceed it are
  /// rejected with kResourceExhausted (backpressure, never blocking).
  size_t queue_capacity = 4096;
  /// How long the worker may hold a sub-max batch waiting for more rows,
  /// measured on `clock` from the oldest queued request. 0 = flush
  /// whatever is queued immediately (natural batching: rows that arrive
  /// while a batch executes coalesce into the next one).
  int64_t batch_deadline_ms = 0;
  /// Injectable time source for the deadline (nullptr = system clock).
  /// The worker only ever reads NowMillis — it never sleeps on this
  /// clock — so a ManualClock drives deadline tests deterministically.
  Clock* clock = nullptr;
  /// Execution config for batch GEMMs. kernels.int8_inference routes the
  /// dense layers through the quantized path (opt-in, approximate);
  /// the default f32 path is bitwise invariant to batch composition.
  Parallelism parallelism;
};

/// Relaxed-consistency counters, snapshotted under the server mutex.
struct InferenceServerStats {
  uint64_t requests = 0;     ///< Accepted submissions (direct + queued).
  uint64_t rows = 0;         ///< Feature rows across accepted submissions.
  uint64_t batches = 0;      ///< Coalesced batches executed.
  uint64_t batched_rows = 0; ///< Rows across those batches.
  uint64_t direct_calls = 0; ///< PredictDirect executions (no coalescing).
  uint64_t queue_full_rejections = 0;
  uint64_t model_swaps = 0;  ///< LoadModel calls that replaced a model.

  double MeanBatchFill() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_rows) /
                              static_cast<double>(batches);
  }
};

/// Long-lived batched inference server: a bounded MPSC queue feeds one
/// worker thread that coalesces concurrent prediction requests into
/// GEMM-friendly batches executed on the blocked kernel layer, with the
/// model's dense weights served from a cross-call packed cache.
///
/// Model lifecycle mirrors Engine::IndexSnapshot(): LoadModel RCU-swaps a
/// shared_ptr<ModelEntry>; in-flight batches keep the generation they
/// pinned, and the packed-weight cache swaps per-layer entries keyed on
/// the version. Determinism: the f32 path is bitwise invariant to batch
/// composition (every output row's arithmetic reads only its own input
/// row), so coalescing never changes results — Predict(batch-of-N) row i
/// == PredictDirect(row i). The int8 path is deterministic too, but
/// approximates f32 (gated in bench/kernels_bench).
class InferenceServer {
 public:
  using Result = StatusOr<la::Matrix>;

  explicit InferenceServer(const InferenceServerOptions& options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Installs `model` as generation `version` (RCU swap; never blocks
  /// in-flight batches). Binds the model's dense weights to the packed
  /// cache and pushes the server's parallelism into its layers.
  void LoadModel(nn::Model model, uint64_t version);

  bool has_model() const;
  uint64_t model_version() const;

  /// Enqueues `features` (n x input_size) and returns a future for the
  /// n x num_classes row-wise class probabilities. Fails fast with
  /// kFailedPrecondition (no model), kInvalidArgument (shape),
  /// kResourceExhausted (queue full), or kUnavailable (stopped).
  StatusOr<std::future<Result>> Submit(la::Matrix features);

  /// Submit + wait: the coalesced serving path.
  Result Predict(const la::Matrix& features);

  /// Synchronous single-call fallback: bypasses the queue and runs the
  /// forward pass on the calling thread (still through the packed-weight
  /// cache). Bitwise identical to the coalesced f32 path.
  Result PredictDirect(const la::Matrix& features);

  InferenceServerStats stats() const;
  la::WeightCacheStats cache_stats() const { return cache_.stats(); }

  /// Stops the worker and fails queued requests with kUnavailable.
  /// Idempotent; the destructor calls it.
  void Stop();

 private:
  /// A loaded model generation. `mu` serializes forward passes (layers
  /// keep no per-call scratch, but Forward is not reentrant by contract).
  struct ModelEntry {
    nn::Model model;
    uint64_t version = 0;
    std::mutex mu;
    explicit ModelEntry(nn::Model m, uint64_t v)
        : model(std::move(m)), version(v) {}
  };

  struct Request {
    la::Matrix features;
    std::promise<Result> promise;
    int64_t enqueue_ms = 0;
  };

  std::shared_ptr<ModelEntry> ModelSnapshot() const;
  void WorkerLoop();
  /// Pops up to max_batch_rows worth of requests; called with mu_ held.
  std::vector<Request> TakeBatch();
  void ExecuteBatch(std::vector<Request> batch);

  InferenceServerOptions options_;
  SystemClock system_clock_;
  Clock* clock_;  // options_.clock or &system_clock_

  la::PackedWeightCache cache_;

  mutable std::mutex model_mu_;
  std::shared_ptr<ModelEntry> model_;  // null until first LoadModel

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  size_t queued_rows_ = 0;
  bool stopped_ = false;
  InferenceServerStats stats_;

  std::thread worker_;
};

/// Engine-facing aggregate: turns the BM25 class vote into a model
/// rerank. `enable_model` gates the whole subsystem (off reproduces the
/// PR-8 vote path bit for bit); `coalesce` picks the queued batched path
/// vs the per-call direct fallback for PredictInterest.
struct ServingOptions {
  bool enable_model = true;
  bool coalesce = true;
  InterestModelOptions model;
  InferenceServerOptions server;
};

}  // namespace newsdiff::serve

#endif  // NEWSDIFF_SERVE_INFERENCE_SERVER_H_
