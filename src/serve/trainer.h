#ifndef NEWSDIFF_SERVE_TRAINER_H_
#define NEWSDIFF_SERVE_TRAINER_H_

#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "la/matrix.h"
#include "nn/model.h"

namespace newsdiff::serve {

/// Configuration for the serving-side interest model: a small MLP over the
/// hashed features (serve/features.h), retrained on every index rebuild.
/// The budget knobs (max_rows, epochs) keep a rebuild-with-retrain
/// sub-second even on the full datagen worlds — the rebuild happens while
/// traffic is being served, so training cost is serving stall.
struct InterestModelOptions {
  size_t feature_dim = 64;
  std::vector<size_t> hidden = {48, 24};
  size_t num_classes = 3;
  size_t epochs = 6;
  size_t batch_size = 256;
  /// Deterministic stride-subsample cap on the training set.
  size_t max_rows = 4000;
  uint64_t seed = 77;
  double learning_rate = 0.2;
  double momentum = 0.9;
  Parallelism parallelism;
};

/// Trains the interest MLP on (x, labels). Deterministic for a fixed
/// options struct: seeded init, seeded shuffle, fixed epoch count (early
/// stopping off), and the thread-invariant Fit contract.
StatusOr<nn::Model> TrainInterestModel(const la::Matrix& x,
                                       const std::vector<int>& labels,
                                       const InterestModelOptions& options);

}  // namespace newsdiff::serve

#endif  // NEWSDIFF_SERVE_TRAINER_H_
