#include "serve/inference_server.h"

#include <chrono>
#include <utility>

namespace newsdiff::serve {

InferenceServer::InferenceServer(const InferenceServerOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : &system_clock_) {
  if (options_.max_batch_rows == 0) options_.max_batch_rows = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  worker_ = std::thread([this] { WorkerLoop(); });
}

InferenceServer::~InferenceServer() { Stop(); }

void InferenceServer::LoadModel(nn::Model model, uint64_t version) {
  model.SetParallelism(options_.parallelism);
  model.BindInferenceCache(&cache_, version,
                           options_.parallelism.kernels.int8_inference);
  auto entry = std::make_shared<ModelEntry>(std::move(model), version);
  {
    // Warm the packed-weight cache before publishing: one throwaway
    // forward packs (and, in int8 mode, quantizes) every dense layer's
    // weights for this generation, so no serving request pays it.
    std::lock_guard<std::mutex> lock(entry->mu);
    la::Matrix warm(1, entry->model.input_size());
    entry->model.PredictProba(warm);
  }
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    model_ = std::move(entry);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.model_swaps;
}

bool InferenceServer::has_model() const { return ModelSnapshot() != nullptr; }

uint64_t InferenceServer::model_version() const {
  auto entry = ModelSnapshot();
  return entry == nullptr ? 0 : entry->version;
}

std::shared_ptr<InferenceServer::ModelEntry> InferenceServer::ModelSnapshot()
    const {
  std::lock_guard<std::mutex> lock(model_mu_);
  return model_;
}

StatusOr<std::future<InferenceServer::Result>> InferenceServer::Submit(
    la::Matrix features) {
  auto entry = ModelSnapshot();
  if (entry == nullptr) {
    return Status::FailedPrecondition("inference server has no model");
  }
  if (features.cols() != entry->model.input_size()) {
    return Status::InvalidArgument("feature width does not match the model");
  }
  Request req;
  req.features = std::move(features);
  req.enqueue_ms = clock_->NowMillis();
  std::future<Result> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return Status::Unavailable("inference server stopped");
    const size_t rows = req.features.rows();
    if (queued_rows_ + rows > options_.queue_capacity) {
      ++stats_.queue_full_rejections;
      return Status::ResourceExhausted("inference queue full");
    }
    queued_rows_ += rows;
    ++stats_.requests;
    stats_.rows += rows;
    queue_.push_back(std::move(req));
  }
  cv_.notify_all();
  return fut;
}

InferenceServer::Result InferenceServer::Predict(const la::Matrix& features) {
  auto fut = Submit(features);
  if (!fut.ok()) return fut.status();
  return fut.value().get();
}

InferenceServer::Result InferenceServer::PredictDirect(
    const la::Matrix& features) {
  auto entry = ModelSnapshot();
  if (entry == nullptr) {
    return Status::FailedPrecondition("inference server has no model");
  }
  if (features.cols() != entry->model.input_size()) {
    return Status::InvalidArgument("feature width does not match the model");
  }
  la::Matrix probs;
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    probs = entry->model.PredictProba(features);
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.requests;
  ++stats_.direct_calls;
  stats_.rows += features.rows();
  return probs;
}

InferenceServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void InferenceServer::Stop() {
  std::deque<Request> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
    drained.swap(queue_);
    queued_rows_ = 0;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  for (Request& req : drained) {
    req.promise.set_value(Status::Unavailable("inference server stopped"));
  }
}

std::vector<InferenceServer::Request> InferenceServer::TakeBatch() {
  std::vector<Request> batch;
  size_t rows = 0;
  while (!queue_.empty()) {
    const size_t next = queue_.front().features.rows();
    // Always take at least one request; beyond that, stop at the batch cap
    // so one oversized submission cannot starve its neighbours.
    if (!batch.empty() && rows + next > options_.max_batch_rows) break;
    rows += next;
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    if (rows >= options_.max_batch_rows) break;
  }
  queued_rows_ -= rows;
  return batch;
}

void InferenceServer::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stopped_) break;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
      continue;
    }
    const bool full = queued_rows_ >= options_.max_batch_rows;
    bool due = options_.batch_deadline_ms <= 0 || full;
    if (!due) {
      // The deadline runs on the injectable clock, which a test may
      // advance without any notification; poll with a short real wait so
      // manual advances are observed promptly.
      due = clock_->NowMillis() - queue_.front().enqueue_ms >=
            options_.batch_deadline_ms;
      if (!due) {
        cv_.wait_for(lock, std::chrono::milliseconds(1));
        continue;
      }
    }
    std::vector<Request> batch = TakeBatch();
    lock.unlock();
    ExecuteBatch(std::move(batch));
    lock.lock();
  }
}

void InferenceServer::ExecuteBatch(std::vector<Request> batch) {
  if (batch.empty()) return;
  auto entry = ModelSnapshot();
  size_t total_rows = 0;
  for (const Request& req : batch) total_rows += req.features.rows();
  const size_t cols = entry == nullptr ? 0 : entry->model.input_size();

  bool shape_ok = entry != nullptr;
  for (const Request& req : batch) {
    if (req.features.cols() != cols) shape_ok = false;
  }
  if (!shape_ok) {
    // A reload changed the input width between submit and execution (or
    // the model vanished, which cannot happen today). Fail the batch
    // rather than feed the wrong GEMM.
    for (Request& req : batch) {
      req.promise.set_value(
          Status::FailedPrecondition("model changed shape mid-flight"));
    }
    return;
  }

  // Count the batch BEFORE fulfilling any promise: a caller that checks
  // stats() the moment its future resolves must see this batch included.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.batched_rows += total_rows;
  }

  if (batch.size() == 1) {
    // Single-request batch (one oversized submission, or a lone request
    // at flush time): its feature matrix already IS the batch — skip the
    // concatenate and split copies and hand the whole result back.
    la::Matrix probs;
    {
      std::lock_guard<std::mutex> model_lock(entry->mu);
      probs = entry->model.PredictProba(batch.front().features);
    }
    batch.front().promise.set_value(std::move(probs));
  } else {
    la::Matrix features(total_rows, cols);
    size_t row = 0;
    for (const Request& req : batch) {
      for (size_t r = 0; r < req.features.rows(); ++r, ++row) {
        const double* src = req.features.RowPtr(r);
        double* dst = features.RowPtr(row);
        for (size_t c = 0; c < cols; ++c) dst[c] = src[c];
      }
    }

    la::Matrix probs;
    {
      std::lock_guard<std::mutex> model_lock(entry->mu);
      probs = entry->model.PredictProba(features);
    }

    row = 0;
    for (Request& req : batch) {
      la::Matrix part(req.features.rows(), probs.cols());
      for (size_t r = 0; r < part.rows(); ++r, ++row) {
        const double* src = probs.RowPtr(row);
        double* dst = part.RowPtr(r);
        for (size_t c = 0; c < part.cols(); ++c) dst[c] = src[c];
      }
      req.promise.set_value(std::move(part));
    }
  }
}

}  // namespace newsdiff::serve
