#include "serve/trainer.h"

#include <utility>

#include "nn/architectures.h"
#include "nn/optimizer.h"

namespace newsdiff::serve {

StatusOr<nn::Model> TrainInterestModel(const la::Matrix& x,
                                       const std::vector<int>& labels,
                                       const InterestModelOptions& options) {
  if (x.rows() != labels.size()) {
    return Status::InvalidArgument("features/labels row mismatch");
  }
  if (x.cols() != options.feature_dim) {
    return Status::InvalidArgument("feature dim mismatch");
  }

  // Deterministic stride subsample: every stride-th row, independent of
  // the total row count's exact value, so two builds of the same world
  // train on the same examples.
  const la::Matrix* train_x = &x;
  const std::vector<int>* train_y = &labels;
  la::Matrix sub_x;
  std::vector<int> sub_y;
  if (options.max_rows > 0 && x.rows() > options.max_rows) {
    const size_t stride = (x.rows() + options.max_rows - 1) / options.max_rows;
    const size_t rows = (x.rows() + stride - 1) / stride;
    sub_x.Resize(rows, x.cols());
    sub_y.reserve(rows);
    size_t out = 0;
    for (size_t r = 0; r < x.rows(); r += stride, ++out) {
      const double* src = x.RowPtr(r);
      double* dst = sub_x.RowPtr(out);
      for (size_t c = 0; c < x.cols(); ++c) dst[c] = src[c];
      sub_y.push_back(labels[r]);
    }
    train_x = &sub_x;
    train_y = &sub_y;
  }

  nn::MlpConfig config;
  config.input_size = options.feature_dim;
  config.hidden_sizes = options.hidden;
  config.num_classes = options.num_classes;
  config.seed = options.seed;
  nn::Model model = nn::BuildMlp(config);

  nn::Sgd optimizer(nn::SgdOptions{options.learning_rate, options.momentum});
  nn::FitOptions fit;
  fit.epochs = options.epochs;
  fit.batch_size = options.batch_size;
  // Fixed epoch count: a serving model's training cost must be a constant
  // of the options, not of the loss trajectory.
  fit.early_stopping.enabled = false;
  fit.seed = options.seed;
  fit.parallelism = options.parallelism;
  auto history = model.Fit(*train_x, *train_y, optimizer, fit);
  if (!history.ok()) return history.status();
  return model;
}

}  // namespace newsdiff::serve
