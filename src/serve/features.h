#ifndef NEWSDIFF_SERVE_FEATURES_H_
#define NEWSDIFF_SERVE_FEATURES_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "corpus/corpus.h"
#include "la/matrix.h"

namespace newsdiff::serve {

/// Signed feature hashing over term STRINGS (not vocabulary ids): a term's
/// column and sign depend only on its spelling, so the feature space is
/// invariant across index rebuilds even though vocabulary ids are
/// reassigned per generation. That is what lets a model trained against
/// one generation keep scoring candidates after a swap. Rows are
/// L2-normalised so document length drops out (the §3.4 normalisation
/// idea applied to the hashed space).
class HashedFeaturizer {
 public:
  explicit HashedFeaturizer(size_t dim) : dim_(dim) {}

  size_t dim() const { return dim_; }

  /// FNV-1a over the term bytes; the low bits pick the column, bit 32
  /// picks the sign (signed hashing keeps collisions mean-zero).
  static uint64_t HashTerm(std::string_view term);

  /// row[h % dim] += sign(h) * count for `term`.
  void Accumulate(std::string_view term, double count, double* row) const;

  /// L2-normalises `row` in place; all-zero rows stay zero.
  static void Normalize(double* row, size_t dim);

  /// One row per document: hashed, signed, L2-normalised bag of counts.
  la::Matrix FeaturizeCorpus(const corpus::Corpus& corpus) const;

 private:
  size_t dim_;
};

}  // namespace newsdiff::serve

#endif  // NEWSDIFF_SERVE_FEATURES_H_
