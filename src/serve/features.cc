#include "serve/features.h"

#include <cmath>

namespace newsdiff::serve {

uint64_t HashedFeaturizer::HashTerm(std::string_view term) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64-bit offset basis
  for (unsigned char c : term) {
    h ^= c;
    h *= 1099511628211ull;  // FNV-1a 64-bit prime
  }
  return h;
}

void HashedFeaturizer::Accumulate(std::string_view term, double count,
                                  double* row) const {
  const uint64_t h = HashTerm(term);
  const double sign = ((h >> 32) & 1u) != 0 ? 1.0 : -1.0;
  row[h % dim_] += sign * count;
}

void HashedFeaturizer::Normalize(double* row, size_t dim) {
  double sq = 0.0;
  for (size_t c = 0; c < dim; ++c) sq += row[c] * row[c];
  if (sq <= 0.0) return;
  const double inv = 1.0 / std::sqrt(sq);
  for (size_t c = 0; c < dim; ++c) row[c] *= inv;
}

la::Matrix HashedFeaturizer::FeaturizeCorpus(
    const corpus::Corpus& corpus) const {
  la::Matrix features(corpus.size(), dim_);
  const corpus::Vocabulary& vocab = corpus.vocabulary();
  for (size_t d = 0; d < corpus.size(); ++d) {
    double* row = features.RowPtr(d);
    for (const corpus::TermCount& tc : corpus.doc(d).counts) {
      Accumulate(vocab.Term(tc.term), static_cast<double>(tc.count), row);
    }
    Normalize(row, dim_);
  }
  return features;
}

}  // namespace newsdiff::serve
