#include "index/postings.h"

#include <cassert>

#include "index/bm25.h"
#include "index/codec.h"

namespace newsdiff::index {

void PostingList::ComputeTailMax() {
  double running = 0.0;
  for (size_t i = blocks.size(); i-- > 0;) {
    if (blocks[i].max_score > running) running = blocks[i].max_score;
    blocks[i].tail_max = InflateBound(running);
  }
}

PostingListBuilder::PostingListBuilder(size_t block_size)
    : block_size_(block_size == 0 ? 1 : block_size) {}

void PostingListBuilder::Add(uint32_t doc, uint32_t term_freq) {
  assert(doc != kInvalidDoc);
  assert(docs_.empty() || doc > docs_.back());
  assert(term_freq >= 1);
  docs_.push_back(doc);
  freqs_.push_back(term_freq);
}

PostingList PostingListBuilder::Finalize(
    const std::function<double(uint32_t doc, uint32_t tf)>& score) {
  PostingList list;
  list.doc_count = static_cast<uint32_t>(docs_.size());
  for (size_t begin = 0; begin < docs_.size(); begin += block_size_) {
    const size_t end = std::min(begin + block_size_, docs_.size());
    PostingBlockMeta meta;
    meta.offset = list.bytes.size();
    meta.count = static_cast<uint32_t>(end - begin);
    meta.last_doc = docs_[end - 1];
    // Doc ids: first absolute, then strictly positive gaps.
    PutVarint32(&list.bytes, docs_[begin]);
    for (size_t i = begin + 1; i < end; ++i) {
      PutVarint32(&list.bytes, docs_[i] - docs_[i - 1]);
    }
    for (size_t i = begin; i < end; ++i) {
      PutVarint32(&list.bytes, freqs_[i]);
      const double s = score(docs_[i], freqs_[i]);
      if (s > meta.max_score) meta.max_score = s;
    }
    if (meta.max_score > list.max_score) list.max_score = meta.max_score;
    list.blocks.push_back(meta);
  }
  list.ComputeTailMax();
  docs_.clear();
  freqs_.clear();
  return list;
}

Status DecodeBlock(const PostingList& list, const PostingBlockMeta& meta,
                   uint32_t base_check_last_doc, std::vector<uint32_t>* docs,
                   std::vector<uint32_t>* freqs) {
  if (meta.count == 0) return Status::ParseError("postings: empty block");
  if (meta.offset > list.bytes.size()) {
    return Status::ParseError("postings: block offset out of range");
  }
  ByteReader reader(
      std::string_view(list.bytes).substr(static_cast<size_t>(meta.offset)));
  docs->resize(meta.count);
  freqs->resize(meta.count);
  uint32_t prev = 0;
  for (uint32_t i = 0; i < meta.count; ++i) {
    uint32_t v = 0;
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint32(&v));
    if (i == 0) {
      prev = v;
    } else {
      if (v == 0) return Status::ParseError("postings: zero doc gap");
      if (v > kInvalidDoc - prev) {
        return Status::ParseError("postings: doc id overflow");
      }
      prev += v;
    }
    (*docs)[i] = prev;
  }
  if ((*docs)[meta.count - 1] != meta.last_doc) {
    return Status::ParseError("postings: block last_doc mismatch");
  }
  if ((*docs)[0] != kInvalidDoc && (*docs)[0] <= base_check_last_doc &&
      base_check_last_doc != kInvalidDoc) {
    return Status::ParseError("postings: blocks not increasing");
  }
  for (uint32_t i = 0; i < meta.count; ++i) {
    uint32_t tf = 0;
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint32(&tf));
    if (tf == 0) return Status::ParseError("postings: zero term frequency");
    (*freqs)[i] = tf;
  }
  return Status::OK();
}

Status ValidatePostingList(const PostingList& list, uint32_t num_docs) {
  if (list.blocks.empty() || list.doc_count == 0) {
    return Status::ParseError("postings: empty list");
  }
  std::vector<uint32_t> docs;
  std::vector<uint32_t> freqs;
  uint64_t total = 0;
  uint32_t prev_last = kInvalidDoc;  // sentinel: no previous block
  uint64_t expect_offset = 0;
  for (size_t b = 0; b < list.blocks.size(); ++b) {
    const PostingBlockMeta& meta = list.blocks[b];
    if (meta.offset != expect_offset) {
      // Offsets are recomputed during load; a mismatch means the block
      // lengths and the serialized offsets disagree.
      return Status::ParseError("postings: block offset mismatch");
    }
    NEWSDIFF_RETURN_IF_ERROR(DecodeBlock(
        list, meta, b == 0 ? kInvalidDoc : prev_last, &docs, &freqs));
    if (b > 0 && docs[0] <= prev_last) {
      return Status::ParseError("postings: blocks not increasing");
    }
    if (meta.last_doc >= num_docs) {
      return Status::ParseError("postings: doc id out of range");
    }
    ByteReader probe(std::string_view(list.bytes)
                         .substr(static_cast<size_t>(meta.offset)));
    // Re-walk to find the block's byte length so the next offset checks out.
    for (uint32_t i = 0; i < 2 * meta.count; ++i) {
      uint32_t scratch = 0;
      NEWSDIFF_RETURN_IF_ERROR(probe.ReadVarint32(&scratch));
    }
    expect_offset = meta.offset + probe.offset();
    prev_last = meta.last_doc;
    total += meta.count;
  }
  if (expect_offset != list.bytes.size()) {
    return Status::ParseError("postings: trailing bytes after last block");
  }
  if (total != list.doc_count) {
    return Status::ParseError("postings: doc_count mismatch");
  }
  return Status::OK();
}

PostingCursor::PostingCursor(const PostingList* list) : list_(list) {
  if (list_ == nullptr || list_->blocks.empty()) {
    Exhaust();
    return;
  }
  LoadBlock(0);
}

void PostingCursor::Exhaust() {
  doc_ = kInvalidDoc;
  tail_max_ = 0.0;
  pos_ = 0;
}

void PostingCursor::LoadBlock(size_t block) {
  block_ = block;
  const PostingBlockMeta& meta = list_->blocks[block];
  // Input was validated at build/load time; a decode failure here would be
  // a program bug, and the cursor fails safe by exhausting.
  Status st = DecodeBlock(*list_, meta, kInvalidDoc, &docs_, &freqs_);
  if (!st.ok()) {
    Exhaust();
    return;
  }
  ++blocks_decoded_;
  pos_ = 0;
  doc_ = docs_[0];
  tail_max_ = meta.tail_max;
}

void PostingCursor::Next() {
  if (exhausted()) return;
  if (pos_ + 1 < docs_.size()) {
    ++pos_;
    doc_ = docs_[pos_];
    return;
  }
  if (block_ + 1 >= list_->blocks.size()) {
    Exhaust();
    return;
  }
  LoadBlock(block_ + 1);
}

void PostingCursor::NextGeq(uint32_t target) {
  if (exhausted() || doc_ >= target) return;
  if (target > list_->blocks.back().last_doc) {
    Exhaust();
    return;
  }
  // The skip: find the first block whose last_doc >= target, starting from
  // the current one (galloping is overkill at our block counts).
  size_t b = block_;
  if (list_->blocks[b].last_doc < target) {
    size_t lo = b + 1;
    size_t hi = list_->blocks.size() - 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (list_->blocks[mid].last_doc < target) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    LoadBlock(lo);
    if (exhausted()) return;
  }
  while (docs_[pos_] < target) ++pos_;  // last_doc >= target ⇒ terminates
  doc_ = docs_[pos_];
}

}  // namespace newsdiff::index
