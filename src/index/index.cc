#include "index/index.h"

#include <algorithm>
#include <cstdio>

#include "common/crc32.h"
#include "index/codec.h"

namespace newsdiff::index {

namespace {

/// File magic for an index generation file (version 1).
constexpr std::string_view kIndexMagic = "NDIDX1\n";
constexpr std::string_view kIndexFilePrefix = "INDEX-";

/// Orders heap entries so the *worst* hit (lowest score; among equal
/// scores, highest doc id) sits on top of a std::*_heap. This is the exact
/// complement of the final (score desc, doc asc) ranking, so evicting the
/// top reproduces the brute-force cut line bit-for-bit.
bool BetterHit(const SearchResult& a, const SearchResult& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.doc < b.doc;
}

void SortRanking(std::vector<SearchResult>* hits) {
  std::sort(hits->begin(), hits->end(), BetterHit);
}

Bm25 MakeBm25(const corpus::Corpus& corpus, const IndexOptions& options) {
  Bm25 bm25;
  bm25.k1 = options.k1;
  bm25.b = options.b;
  bm25.num_docs = corpus.size();
  bm25.avg_doc_length =
      corpus.size() > 0 && corpus.total_tokens() > 0
          ? static_cast<double>(corpus.total_tokens()) /
                static_cast<double>(corpus.size())
          : 1.0;
  return bm25;
}

}  // namespace

StatusOr<InvertedIndex> InvertedIndex::Build(const corpus::Corpus& corpus,
                                             const IndexOptions& options,
                                             const std::vector<double>& labels) {
  if (options.block_size == 0) {
    return Status::InvalidArgument("index: block_size must be >= 1");
  }
  if (!(options.k1 > 0.0) || options.b < 0.0 || options.b > 1.0) {
    return Status::InvalidArgument("index: bad BM25 parameters");
  }
  if (!labels.empty() && labels.size() != corpus.size()) {
    return Status::InvalidArgument(
        "index: labels size does not match corpus size");
  }

  InvertedIndex ix;
  ix.block_size_ = options.block_size;
  ix.bm25_ = MakeBm25(corpus, options);

  const corpus::Vocabulary& vocab = corpus.vocabulary();
  ix.terms_.reserve(vocab.size());
  ix.term_ids_.reserve(vocab.size());
  for (uint32_t t = 0; t < vocab.size(); ++t) {
    ix.terms_.push_back(vocab.Term(t));
    if (!ix.term_ids_.emplace(ix.terms_.back(), t).second) {
      return Status::InvalidArgument("index: duplicate term in vocabulary");
    }
  }

  ix.docs_.reserve(corpus.size());
  for (size_t d = 0; d < corpus.size(); ++d) {
    const corpus::Document& doc = corpus.doc(d);
    DocInfo info;
    info.external_id = doc.external_id;
    info.timestamp = doc.timestamp;
    info.length = doc.length;
    info.label = labels.empty() ? 0.0 : labels[d];
    ix.docs_.push_back(info);
  }

  // Invert: one pass to gather (doc, tf) per term, then encode. Documents
  // arrive in id order, so each term's postings are already sorted.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> acc(vocab.size());
  for (size_t d = 0; d < corpus.size(); ++d) {
    for (const corpus::TermCount& tc : corpus.doc(d).counts) {
      if (tc.term >= vocab.size()) {
        return Status::InvalidArgument("index: term id out of vocabulary");
      }
      if (tc.count == 0) continue;
      acc[tc.term].emplace_back(static_cast<uint32_t>(d), tc.count);
    }
  }

  ix.postings_.reserve(vocab.size());
  PostingListBuilder builder(options.block_size);
  for (uint32_t t = 0; t < vocab.size(); ++t) {
    const double idf = ix.bm25_.IdfWeight(acc[t].size());
    for (const auto& [doc, tf] : acc[t]) builder.Add(doc, tf);
    ix.postings_.push_back(builder.Finalize([&](uint32_t doc, uint32_t tf) {
      return ix.bm25_.Score(idf, tf, ix.docs_[doc].length);
    }));
  }
  return ix;
}

uint32_t InvertedIndex::TermId(std::string_view term) const {
  auto it = term_ids_.find(std::string(term));
  return it == term_ids_.end() ? corpus::kUnknownTerm : it->second;
}

std::vector<uint32_t> InvertedIndex::LookupTerms(
    const std::vector<std::string>& terms) const {
  std::vector<uint32_t> ids;
  ids.reserve(terms.size());
  for (const std::string& t : terms) {
    const uint32_t id = TermId(t);
    if (id != corpus::kUnknownTerm && postings_[id].doc_count > 0) {
      ids.push_back(id);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

std::vector<SearchResult> InvertedIndex::TopK(
    const std::vector<std::string>& terms, size_t k, QueryStats* stats) const {
  std::vector<SearchResult> heap;
  if (stats != nullptr) *stats = QueryStats{};
  const std::vector<uint32_t> ids = LookupTerms(terms);
  if (k == 0 || ids.empty()) return heap;
  if (stats != nullptr) stats->terms_matched = ids.size();

  // Cursors in term-id (canonical scoring) order.
  struct TermCursor {
    double idf;
    double ub;  // inflated term-level upper bound
    PostingCursor cursor;
  };
  std::vector<TermCursor> tc;
  tc.reserve(ids.size());
  for (uint32_t id : ids) {
    const PostingList& list = postings_[id];
    tc.push_back(TermCursor{bm25_.IdfWeight(list.doc_count),
                            InflateBound(list.max_score),
                            PostingCursor(&list)});
  }
  const size_t T = tc.size();

  // MaxScore partition: cursors sorted by term upper bound ascending;
  // the cheapest `non_essential` of them have bounds summing to <= the
  // heap threshold, so a document found in none of the remaining
  // (essential) lists cannot enter the heap.
  std::vector<size_t> order(T);
  for (size_t i = 0; i < T; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (tc[a].ub != tc[b].ub) return tc[a].ub < tc[b].ub;
    return a < b;
  });
  std::vector<double> prefix(T);  // left fold of bounds in `order`
  double run = 0.0;
  for (size_t i = 0; i < T; ++i) {
    run += tc[order[i]].ub;
    prefix[i] = run;
  }

  double theta = 0.0;  // valid only once the heap is full
  bool full = false;
  size_t non_essential = 0;
  const auto recompute_partition = [&] {
    non_essential = 0;
    while (non_essential < T && prefix[non_essential] <= theta) {
      ++non_essential;
    }
  };

  std::vector<double> suffix(T + 1);  // per-candidate pruning bounds
  while (true) {
    if (full && non_essential >= T) break;  // nothing can beat theta
    // Next candidate: smallest doc on any essential cursor.
    uint32_t d = kInvalidDoc;
    for (size_t i = full ? non_essential : 0; i < T; ++i) {
      const uint32_t cd = tc[order[i]].cursor.doc();
      if (cd < d) d = cd;
    }
    if (d == kInvalidDoc) break;
    if (stats != nullptr) ++stats->candidates;

    // Suffix bounds over cursors (term-id order) that can still touch d:
    // cursors already past d contribute nothing to its score.
    suffix[T] = 0.0;
    for (size_t i = T; i-- > 0;) {
      const PostingCursor& c = tc[i].cursor;
      const bool eligible = !c.exhausted() && c.doc() <= d;
      suffix[i] = suffix[i + 1] + (eligible ? c.tail_max() : 0.0);
    }

    bool pruned = full && suffix[0] <= theta;
    double score = 0.0;
    if (!pruned) {
      // Exact scoring fold, canonical term-id order — the identical
      // operation sequence BruteForceTopK performs for this document.
      for (size_t i = 0; i < T; ++i) {
        if (full && score + suffix[i] <= theta) {
          pruned = true;  // cannot strictly exceed theta
          break;
        }
        PostingCursor& c = tc[i].cursor;
        if (!c.exhausted() && c.doc() < d) c.NextGeq(d);
        if (!c.exhausted() && c.doc() == d) {
          score += bm25_.Score(tc[i].idf, c.freq(), docs_[d].length);
        }
      }
    }
    if (!pruned) {
      if (stats != nullptr) ++stats->docs_scored;
      if (!full) {
        heap.push_back(SearchResult{d, score});
        std::push_heap(heap.begin(), heap.end(), BetterHit);
        if (heap.size() == k) {
          full = true;
          theta = heap.front().score;
          recompute_partition();
        }
      } else if (score > theta) {
        std::pop_heap(heap.begin(), heap.end(), BetterHit);
        heap.back() = SearchResult{d, score};
        std::push_heap(heap.begin(), heap.end(), BetterHit);
        theta = heap.front().score;
        recompute_partition();
      }
    }
    // Progress: step every cursor sitting on d.
    for (size_t i = 0; i < T; ++i) {
      if (!tc[i].cursor.exhausted() && tc[i].cursor.doc() == d) {
        tc[i].cursor.Next();
      }
    }
  }

  if (stats != nullptr) {
    for (const TermCursor& c : tc) stats->blocks_decoded += c.cursor.blocks_decoded();
  }
  SortRanking(&heap);
  return heap;
}

std::vector<SearchResult> BruteForceTopK(const corpus::Corpus& corpus,
                                         const IndexOptions& options,
                                         const std::vector<std::string>& terms,
                                         size_t k) {
  std::vector<SearchResult> hits;
  if (k == 0) return hits;
  const corpus::Vocabulary& vocab = corpus.vocabulary();
  std::vector<uint32_t> ids;
  for (const std::string& t : terms) {
    const uint32_t id = vocab.Get(t);
    if (id != corpus::kUnknownTerm && vocab.doc_freq(id) > 0) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  if (ids.empty()) return hits;

  const Bm25 bm25 = MakeBm25(corpus, options);
  std::vector<double> idf(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    idf[i] = bm25.IdfWeight(vocab.doc_freq(ids[i]));
  }

  for (size_t d = 0; d < corpus.size(); ++d) {
    const corpus::Document& doc = corpus.doc(d);
    double score = 0.0;
    bool matched = false;
    for (size_t i = 0; i < ids.size(); ++i) {
      // counts are sorted by term id.
      auto it = std::lower_bound(
          doc.counts.begin(), doc.counts.end(), ids[i],
          [](const corpus::TermCount& tc, uint32_t t) { return tc.term < t; });
      if (it != doc.counts.end() && it->term == ids[i] && it->count > 0) {
        matched = true;
        score += bm25.Score(idf[i], it->count, doc.length);
      }
    }
    if (matched) hits.push_back(SearchResult{static_cast<uint32_t>(d), score});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchResult& a,
                                         const SearchResult& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc < b.doc;
  });
  if (hits.size() > k) hits.resize(k);
  return hits;
}

void InvertedIndex::AppendTo(std::string* out) const {
  PutU64(out, bm25_.num_docs);
  PutF64(out, bm25_.avg_doc_length);
  PutF64(out, bm25_.k1);
  PutF64(out, bm25_.b);
  PutU32(out, static_cast<uint32_t>(block_size_));
  for (const DocInfo& d : docs_) {
    PutU64(out, static_cast<uint64_t>(d.external_id));
    PutU64(out, static_cast<uint64_t>(d.timestamp));
    PutVarint32(out, d.length);
    PutF64(out, d.label);
  }
  PutU32(out, static_cast<uint32_t>(terms_.size()));
  for (size_t t = 0; t < terms_.size(); ++t) {
    const PostingList& list = postings_[t];
    PutLengthPrefixed(out, terms_[t]);
    PutVarint32(out, list.doc_count);
    PutF64(out, list.max_score);
    PutVarint32(out, static_cast<uint32_t>(list.blocks.size()));
    uint64_t prev_end = 0;
    for (size_t b = 0; b < list.blocks.size(); ++b) {
      const PostingBlockMeta& meta = list.blocks[b];
      const uint64_t end = b + 1 < list.blocks.size()
                               ? list.blocks[b + 1].offset
                               : list.bytes.size();
      PutVarint32(&*out, meta.last_doc);
      PutVarint32(&*out, meta.count);
      PutVarint64(&*out, end - meta.offset);  // block byte length
      PutF64(&*out, meta.max_score);
      prev_end = end;
    }
    (void)prev_end;
    PutLengthPrefixed(out, list.bytes);
  }
}

StatusOr<InvertedIndex> InvertedIndex::Parse(std::string_view body) {
  InvertedIndex ix;
  ByteReader reader(body);
  uint64_t num_docs = 0;
  NEWSDIFF_RETURN_IF_ERROR(reader.ReadU64(&num_docs));
  NEWSDIFF_RETURN_IF_ERROR(reader.ReadF64(&ix.bm25_.avg_doc_length));
  NEWSDIFF_RETURN_IF_ERROR(reader.ReadF64(&ix.bm25_.k1));
  NEWSDIFF_RETURN_IF_ERROR(reader.ReadF64(&ix.bm25_.b));
  uint32_t block_size = 0;
  NEWSDIFF_RETURN_IF_ERROR(reader.ReadU32(&block_size));
  if (block_size == 0) {
    return Status::ParseError("index: block_size must be >= 1");
  }
  if (!(ix.bm25_.avg_doc_length > 0.0) || !(ix.bm25_.k1 > 0.0) ||
      ix.bm25_.b < 0.0 || ix.bm25_.b > 1.0) {
    return Status::ParseError("index: bad BM25 parameters");
  }
  ix.bm25_.num_docs = num_docs;
  ix.block_size_ = block_size;
  // Each doc entry is >= 21 bytes; an implausible num_docs is caught here
  // rather than by attempting a huge allocation.
  if (num_docs > reader.remaining() / 21) {
    return Status::ParseError("index: doc table larger than input");
  }
  ix.docs_.reserve(static_cast<size_t>(num_docs));
  for (uint64_t d = 0; d < num_docs; ++d) {
    DocInfo info;
    uint64_t ext = 0;
    uint64_t ts = 0;
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadU64(&ext));
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadU64(&ts));
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint32(&info.length));
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadF64(&info.label));
    info.external_id = static_cast<int64_t>(ext);
    info.timestamp = static_cast<int64_t>(ts);
    ix.docs_.push_back(info);
  }
  uint32_t num_terms = 0;
  NEWSDIFF_RETURN_IF_ERROR(reader.ReadU32(&num_terms));
  // Each term entry is >= 11 bytes (length prefix, doc_count, max_score,
  // block count) — same anti-over-allocation guard as the doc table.
  if (num_terms > reader.remaining() / 11) {
    return Status::ParseError("index: term table larger than input");
  }
  ix.terms_.reserve(num_terms);
  ix.postings_.reserve(num_terms);
  for (uint32_t t = 0; t < num_terms; ++t) {
    std::string_view term;
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&term));
    PostingList list;
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint32(&list.doc_count));
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadF64(&list.max_score));
    uint32_t num_blocks = 0;
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint32(&num_blocks));
    if (num_blocks > reader.remaining()) {
      return Status::ParseError("index: block table larger than input");
    }
    list.blocks.reserve(num_blocks);
    uint64_t offset = 0;
    for (uint32_t b = 0; b < num_blocks; ++b) {
      PostingBlockMeta meta;
      uint64_t byte_len = 0;
      NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint32(&meta.last_doc));
      NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint32(&meta.count));
      NEWSDIFF_RETURN_IF_ERROR(reader.ReadVarint64(&byte_len));
      NEWSDIFF_RETURN_IF_ERROR(reader.ReadF64(&meta.max_score));
      if (meta.count == 0 || meta.count > block_size) {
        return Status::ParseError("index: bad block count");
      }
      // A posting encodes to >= 2 bytes (doc varint + tf varint), so a
      // count exceeding the block's byte length cannot be real; rejecting
      // it here bounds DecodeBlock's scratch allocation by the input size.
      if (meta.count > byte_len) {
        return Status::ParseError("index: block count larger than its bytes");
      }
      meta.offset = offset;
      if (byte_len > reader.remaining()) {
        return Status::ParseError("index: block length larger than input");
      }
      offset += byte_len;
      list.blocks.push_back(meta);
    }
    std::string_view bytes;
    NEWSDIFF_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&bytes));
    if (bytes.size() != offset) {
      return Status::ParseError("index: posting bytes length mismatch");
    }
    list.bytes.assign(bytes);
    // Structural proof before any cursor touches the list: every block
    // decodes, ids are strictly increasing and in range, counts add up.
    NEWSDIFF_RETURN_IF_ERROR(ValidatePostingList(
        list, num_docs > 0xFFFFFFFFull ? 0xFFFFFFFFu
                                       : static_cast<uint32_t>(num_docs)));
    list.ComputeTailMax();
    const uint32_t id = static_cast<uint32_t>(ix.terms_.size());
    ix.terms_.emplace_back(term);
    if (!ix.term_ids_.emplace(ix.terms_.back(), id).second) {
      return Status::ParseError("index: duplicate term");
    }
    ix.postings_.push_back(std::move(list));
  }
  if (!reader.done()) {
    return Status::ParseError("index: trailing bytes after body");
  }
  return ix;
}

std::string IndexFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "INDEX-%010llu",
                static_cast<unsigned long long>(generation));
  return buf;
}

StatusOr<uint64_t> ParseIndexFileName(const std::string& name) {
  if (name.size() != kIndexFilePrefix.size() + 10 ||
      name.compare(0, kIndexFilePrefix.size(), kIndexFilePrefix) != 0) {
    return Status::ParseError("index: not an index file name: " + name);
  }
  uint64_t gen = 0;
  for (size_t i = kIndexFilePrefix.size(); i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return Status::ParseError("index: not an index file name: " + name);
    }
    gen = gen * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  if (IndexFileName(gen) != name) {
    return Status::ParseError("index: non-canonical index file name: " + name);
  }
  return gen;
}

IndexStore::IndexStore(FileIo& io, std::string dir, size_t retain)
    : io_(io), dir_(std::move(dir)), retain_(retain == 0 ? 1 : retain) {}

std::string IndexStore::PathFor(const std::string& name) const {
  return dir_ + "/" + name;
}

StatusOr<std::vector<std::pair<uint64_t, std::string>>>
IndexStore::ListGenerations() {
  std::vector<std::pair<uint64_t, std::string>> found;
  if (!io_.Exists(dir_)) return found;
  StatusOr<std::vector<std::string>> names = io_.ListDir(dir_);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    StatusOr<uint64_t> gen = ParseIndexFileName(name);
    if (gen.ok()) found.emplace_back(*gen, name);
  }
  std::sort(found.begin(), found.end());
  return found;
}

Status IndexStore::Save(const std::map<std::string, InvertedIndex>& indexes) {
  NEWSDIFF_RETURN_IF_ERROR(io_.CreateDirectories(dir_));
  StatusOr<std::vector<std::pair<uint64_t, std::string>>> gens =
      ListGenerations();
  if (!gens.ok()) return gens.status();
  uint64_t next = generation_;
  if (!gens->empty()) next = std::max(next, gens->back().first);
  ++next;

  std::string file(kIndexMagic);
  PutU32(&file, static_cast<uint32_t>(indexes.size()));
  std::string body;
  for (const auto& [name, ix] : indexes) {
    body.clear();
    ix.AppendTo(&body);
    PutLengthPrefixed(&file, name);
    PutU32(&file, Crc32(body));
    PutLengthPrefixed(&file, body);
  }
  NEWSDIFF_RETURN_IF_ERROR(
      WriteFileAtomic(io_, PathFor(IndexFileName(next)), file));
  generation_ = next;

  // Best-effort prune: stale generations are garbage, not state.
  if (gens->size() + 1 > retain_) {
    const size_t drop = gens->size() + 1 - retain_;
    for (size_t i = 0; i < drop && i < gens->size(); ++i) {
      (void)io_.Remove(PathFor((*gens)[i].second));
    }
  }
  return Status::OK();
}

StatusOr<IndexLoadReport> IndexStore::Load(
    std::map<std::string, InvertedIndex>* out) {
  out->clear();
  IndexLoadReport report;
  StatusOr<std::vector<std::pair<uint64_t, std::string>>> gens =
      ListGenerations();
  if (!gens.ok()) return gens.status();
  for (size_t i = gens->size(); i-- > 0;) {
    const auto& [gen, name] = (*gens)[i];
    StatusOr<std::string> data = io_.ReadFile(PathFor(name));
    if (!data.ok()) {
      report.damaged_skipped.push_back(name);
      continue;
    }
    std::map<std::string, InvertedIndex> parsed;
    Status st = [&]() -> Status {
      ByteReader reader(*data);
      std::string_view magic;
      NEWSDIFF_RETURN_IF_ERROR(reader.ReadBytes(kIndexMagic.size(), &magic));
      if (magic != kIndexMagic) {
        return Status::ParseError("index: bad magic");
      }
      uint32_t sections = 0;
      NEWSDIFF_RETURN_IF_ERROR(reader.ReadU32(&sections));
      for (uint32_t s = 0; s < sections; ++s) {
        std::string_view sec_name;
        NEWSDIFF_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&sec_name));
        uint32_t crc = 0;
        NEWSDIFF_RETURN_IF_ERROR(reader.ReadU32(&crc));
        std::string_view sec_body;
        NEWSDIFF_RETURN_IF_ERROR(reader.ReadLengthPrefixed(&sec_body));
        if (Crc32(sec_body) != crc) {
          return Status::ParseError("index: section CRC mismatch");
        }
        StatusOr<InvertedIndex> ix = InvertedIndex::Parse(sec_body);
        if (!ix.ok()) return ix.status();
        if (!parsed.emplace(std::string(sec_name), std::move(*ix)).second) {
          return Status::ParseError("index: duplicate section name");
        }
      }
      if (!reader.done()) {
        return Status::ParseError("index: trailing bytes after sections");
      }
      return Status::OK();
    }();
    if (!st.ok()) {
      report.damaged_skipped.push_back(name);
      continue;
    }
    *out = std::move(parsed);
    report.generation = gen;
    generation_ = gen;
    return report;
  }
  return report;  // nothing intact on disk: generation 0, empty out
}

}  // namespace newsdiff::index
