#ifndef NEWSDIFF_INDEX_BM25_H_
#define NEWSDIFF_INDEX_BM25_H_

#include <cmath>
#include <cstdint>

namespace newsdiff::index {

/// BM25 scoring over the inverted index (the PISA bm25.hpp recipe with the
/// Lucene-style always-positive idf, so term upper bounds are usable for
/// dynamic pruning). The default k1/b pair matches PISA's.
///
/// Determinism contract: Score is a fixed sequence of IEEE-754 double
/// operations of its inputs — the index's top-k path and the brute-force
/// reference scan call this same inline function with the same inputs, so
/// their per-(term, doc) contributions are bit-identical and rankings can
/// be compared byte-exactly.
struct Bm25 {
  double k1 = 0.9;
  double b = 0.4;
  /// Collection statistics (fixed at build time).
  uint64_t num_docs = 0;
  double avg_doc_length = 0.0;

  /// log(1 + (N - df + 0.5) / (df + 0.5)): > 0 for every df <= N.
  double IdfWeight(uint64_t doc_freq) const {
    const double n = static_cast<double>(num_docs);
    const double df = static_cast<double>(doc_freq);
    return std::log(1.0 + (n - df + 0.5) / (df + 0.5));
  }

  /// Contribution of one (term, doc) pair. `idf` is IdfWeight(df) computed
  /// once per term; tf >= 1.
  double Score(double idf, uint32_t term_freq, uint32_t doc_length) const {
    const double tf = static_cast<double>(term_freq);
    const double norm =
        k1 * (1.0 - b + b * static_cast<double>(doc_length) / avg_doc_length);
    return idf * (tf * (k1 + 1.0)) / (tf + norm);
  }
};

/// Multiplicative slack applied to every stored upper bound (term max and
/// per-block max scores). Pruning compares a left-fold of exact
/// contributions against sums and differences of these bounds; the fold
/// orders differ, so strict float monotonicity alone does not make
/// "bound <= threshold" a safe skip. Inflating the bounds by 1e-9 relative
/// dwarfs the worst-case accumulated rounding (~#terms * DBL_EPSILON)
/// while staying tight enough that pruning power is unaffected. Bounds
/// only gate skipping — reported scores are always the exact fold.
inline double InflateBound(double upper_bound) {
  return upper_bound * (1.0 + 1e-9);
}

}  // namespace newsdiff::index

#endif  // NEWSDIFF_INDEX_BM25_H_
