#ifndef NEWSDIFF_INDEX_POSTINGS_H_
#define NEWSDIFF_INDEX_POSTINGS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace newsdiff::index {

/// Sentinel for an exhausted cursor (no valid document).
inline constexpr uint32_t kInvalidDoc = 0xFFFFFFFFu;

/// Metadata for one compressed block of postings (the block_freq_index /
/// block_posting_list layout of PISA, reduced to what BM25 pruning needs).
struct PostingBlockMeta {
  /// Largest document id in the block — the skip key for NextGeq.
  uint32_t last_doc = 0;
  /// Postings in the block (1 .. block_size).
  uint32_t count = 0;
  /// Byte offset of the block's encoded body in PostingList::bytes.
  uint64_t offset = 0;
  /// Exact maximum of the scorer over the block's postings (block-max).
  double max_score = 0.0;
  /// Inflated max of max_score over this block and every later one;
  /// computed at build/load time (not serialized). A valid upper bound on
  /// any contribution a cursor at or past this block can still produce.
  double tail_max = 0.0;
};

/// One term's compressed posting list: doc ids delta-encoded per block
/// (first id absolute, then gaps), term frequencies as varints, block
/// metadata alongside for skipping and block-max pruning.
struct PostingList {
  uint32_t doc_count = 0;   // == total postings == document frequency
  double max_score = 0.0;   // exact term upper bound (max over block maxes)
  std::vector<PostingBlockMeta> blocks;
  std::string bytes;

  /// Fills tail_max for every block (inflated; see InflateBound).
  void ComputeTailMax();
};

/// Accumulates (doc, tf) pairs in increasing doc order and encodes them
/// into fixed-size compressed blocks. `score(doc, tf)` supplies the exact
/// per-posting contribution used for the block-max metadata.
class PostingListBuilder {
 public:
  explicit PostingListBuilder(size_t block_size);

  /// Documents must arrive strictly increasing; tf >= 1.
  void Add(uint32_t doc, uint32_t term_freq);

  size_t size() const { return docs_.size(); }

  /// Encodes the accumulated postings. The builder can be reused after.
  PostingList Finalize(
      const std::function<double(uint32_t doc, uint32_t tf)>& score);

 private:
  size_t block_size_;
  std::vector<uint32_t> docs_;
  std::vector<uint32_t> freqs_;
};

/// Decodes block `meta` of `list` into `docs` / `freqs` (resized to
/// meta.count). Total: malformed bytes yield kParseError. Load-time
/// validation decodes every block once, so cursors run on proven input.
Status DecodeBlock(const PostingList& list, const PostingBlockMeta& meta,
                   uint32_t base_check_last_doc, std::vector<uint32_t>* docs,
                   std::vector<uint32_t>* freqs);

/// Validates that every block of `list` decodes, doc ids are strictly
/// increasing across the whole list, counts sum to doc_count, and each
/// block's last_doc matches its metadata.
Status ValidatePostingList(const PostingList& list, uint32_t num_docs);

/// A document-at-a-time cursor over one posting list: doc()/freq() expose
/// the current posting, Next() steps, NextGeq() skips whole blocks via the
/// last_doc keys, and tail_max() bounds every contribution the cursor can
/// still produce (the block-max tail bound driving MaxScore pruning).
class PostingCursor {
 public:
  /// `list` must outlive the cursor and have been validated.
  explicit PostingCursor(const PostingList* list);

  uint32_t doc() const { return doc_; }
  uint32_t freq() const { return freqs_[pos_]; }
  bool exhausted() const { return doc_ == kInvalidDoc; }

  /// Upper bound (inflated) on the contribution of any posting at or after
  /// the current position; 0 once exhausted.
  double tail_max() const { return tail_max_; }

  void Next();
  void NextGeq(uint32_t target);

  /// Blocks decoded so far (bench/query diagnostics).
  size_t blocks_decoded() const { return blocks_decoded_; }

 private:
  void LoadBlock(size_t block);
  void Exhaust();

  const PostingList* list_;
  size_t block_ = 0;   // current block index
  size_t pos_ = 0;     // position within the decoded block
  uint32_t doc_ = kInvalidDoc;
  double tail_max_ = 0.0;
  size_t blocks_decoded_ = 0;
  std::vector<uint32_t> docs_;
  std::vector<uint32_t> freqs_;
};

}  // namespace newsdiff::index

#endif  // NEWSDIFF_INDEX_POSTINGS_H_
