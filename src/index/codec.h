#ifndef NEWSDIFF_INDEX_CODEC_H_
#define NEWSDIFF_INDEX_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace newsdiff::index {

/// Byte-level codec for the index file format: little-endian fixed-width
/// integers, LEB128 varints for the compressed posting blocks, and
/// length-prefixed byte strings. Writers append to a std::string; readers
/// go through ByteReader, which is *total* — every read is bounds-checked
/// and malformed input yields kParseError, never undefined behaviour. The
/// byte-flip fuzz sweep in tests/index_test.cc leans on that totality.

void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
/// IEEE-754 bit pattern, little-endian — doubles round-trip bit-exactly.
void PutF64(std::string* out, double v);
void PutVarint32(std::string* out, uint32_t v);
void PutVarint64(std::string* out, uint64_t v);
/// Varint length followed by the raw bytes.
void PutLengthPrefixed(std::string* out, std::string_view s);

/// A bounds-checked sequential reader over a byte span. The span must
/// outlive the reader (views returned by ReadBytes/ReadLengthPrefixed
/// alias it).
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadF64(double* v);
  /// Varints longer than the canonical maximum (5 / 10 bytes) are
  /// malformed input, not an invitation to keep shifting.
  Status ReadVarint32(uint32_t* v);
  Status ReadVarint64(uint64_t* v);
  Status ReadBytes(size_t n, std::string_view* s);
  Status ReadLengthPrefixed(std::string_view* s);
  Status Skip(size_t n);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace newsdiff::index

#endif  // NEWSDIFF_INDEX_CODEC_H_
