#include "index/codec.h"

#include <cstring>

namespace newsdiff::index {

namespace {

Status Truncated(const char* what) {
  return Status::ParseError(std::string("index codec: truncated ") + what);
}

}  // namespace

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out->append(buf, 8);
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutVarint32(std::string* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutLengthPrefixed(std::string* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->append(s.data(), s.size());
}

Status ByteReader::ReadU32(uint32_t* v) {
  if (remaining() < 4) return Truncated("u32");
  uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *v = r;
  return Status::OK();
}

Status ByteReader::ReadU64(uint64_t* v) {
  if (remaining() < 8) return Truncated("u64");
  uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *v = r;
  return Status::OK();
}

Status ByteReader::ReadF64(double* v) {
  uint64_t bits = 0;
  NEWSDIFF_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status ByteReader::ReadVarint32(uint32_t* v) {
  uint32_t r = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    if (pos_ >= data_.size()) return Truncated("varint32");
    const auto byte = static_cast<unsigned char>(data_[pos_++]);
    r |= static_cast<uint32_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Reject non-canonical bits above 32 in the final (5th) byte.
      if (shift == 28 && (byte >> 4) != 0) {
        return Status::ParseError("index codec: varint32 overflow");
      }
      *v = r;
      return Status::OK();
    }
  }
  return Status::ParseError("index codec: varint32 too long");
}

Status ByteReader::ReadVarint64(uint64_t* v) {
  uint64_t r = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    if (pos_ >= data_.size()) return Truncated("varint64");
    const auto byte = static_cast<unsigned char>(data_[pos_++]);
    r |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      if (shift == 63 && (byte >> 1) != 0) {
        return Status::ParseError("index codec: varint64 overflow");
      }
      *v = r;
      return Status::OK();
    }
  }
  return Status::ParseError("index codec: varint64 too long");
}

Status ByteReader::ReadBytes(size_t n, std::string_view* s) {
  if (remaining() < n) return Truncated("bytes");
  *s = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadLengthPrefixed(std::string_view* s) {
  uint64_t len = 0;
  NEWSDIFF_RETURN_IF_ERROR(ReadVarint64(&len));
  if (len > remaining()) return Truncated("length-prefixed bytes");
  return ReadBytes(static_cast<size_t>(len), s);
}

Status ByteReader::Skip(size_t n) {
  if (remaining() < n) return Truncated("skip");
  pos_ += n;
  return Status::OK();
}

}  // namespace newsdiff::index
