#ifndef NEWSDIFF_INDEX_INDEX_H_
#define NEWSDIFF_INDEX_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/file_io.h"
#include "common/status.h"
#include "corpus/corpus.h"
#include "index/bm25.h"
#include "index/postings.h"

namespace newsdiff::index {

/// Build-time knobs for an inverted index.
struct IndexOptions {
  /// Postings per compressed block. 128 is the PISA default: small enough
  /// that block-max skipping has resolution, large enough that the varint
  /// decode amortises.
  size_t block_size = 128;
  /// BM25 parameters (see Bm25).
  double k1 = 0.9;
  double b = 0.4;
};

/// Per-document payload carried alongside the postings so query results
/// resolve to something meaningful without a second store round-trip.
struct DocInfo {
  int64_t external_id = -1;
  int64_t timestamp = 0;
  uint32_t length = 0;  // token count; the BM25 length normalisation input
  double label = 0.0;   // caller payload (e.g. interest measure)
};

/// One ranked hit. `doc` is the dense in-index document id.
struct SearchResult {
  uint32_t doc = 0;
  double score = 0.0;
};

/// Work counters for one TopK call (bench / diagnostics).
struct QueryStats {
  size_t terms_matched = 0;   // query terms present in the index
  size_t candidates = 0;      // documents considered by the cursor sweep
  size_t docs_scored = 0;     // documents fully scored (not pruned)
  size_t blocks_decoded = 0;  // posting blocks decompressed
};

/// A block-compressed inverted index with BM25 scoring and MaxScore
/// dynamic pruning. Term ids are dense [0, num_terms) in the order terms
/// first appeared in the source vocabulary; that order is the canonical
/// scoring order, which makes TopK's floating-point folds reproducible and
/// bit-identical to BruteForceTopK's.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Inverts `corpus` into compressed posting lists. `labels`, when
  /// non-empty, must have one entry per document and is carried into
  /// DocInfo::label. Document ids in the index equal corpus positions.
  static StatusOr<InvertedIndex> Build(const corpus::Corpus& corpus,
                                       const IndexOptions& options,
                                       const std::vector<double>& labels = {});

  uint64_t num_docs() const { return bm25_.num_docs; }
  size_t num_terms() const { return terms_.size(); }
  size_t block_size() const { return block_size_; }
  const Bm25& scorer() const { return bm25_; }
  const DocInfo& doc(uint32_t id) const { return docs_[id]; }
  const std::vector<DocInfo>& docs() const { return docs_; }

  /// Term id for `term`, or kUnknownTerm.
  uint32_t TermId(std::string_view term) const;
  const std::string& Term(uint32_t id) const { return terms_[id]; }
  const PostingList& Postings(uint32_t term_id) const {
    return postings_[term_id];
  }

  /// Unique known term ids for a query, ascending — the canonical scoring
  /// order shared with the brute-force reference.
  std::vector<uint32_t> LookupTerms(
      const std::vector<std::string>& terms) const;

  /// Top-k BM25 retrieval with MaxScore pruning. The ranking (scores and
  /// tie-breaks: score descending, doc id ascending) is exactly the one
  /// BruteForceTopK produces — pruning only ever skips work, never changes
  /// the result. Returns at most k hits, fewer when fewer documents match.
  std::vector<SearchResult> TopK(const std::vector<std::string>& terms,
                                 size_t k, QueryStats* stats = nullptr) const;

  /// Serializes the index body (section framing and CRC are IndexStore's
  /// concern).
  void AppendTo(std::string* out) const;

  /// Parses and fully validates a body produced by AppendTo. Total: any
  /// malformed input yields kParseError.
  static StatusOr<InvertedIndex> Parse(std::string_view body);

 private:
  Bm25 bm25_;
  size_t block_size_ = 128;
  std::vector<std::string> terms_;  // id order
  std::unordered_map<std::string, uint32_t> term_ids_;
  std::vector<PostingList> postings_;  // parallel to terms_
  std::vector<DocInfo> docs_;
};

/// Reference scorer: scans every document, scores query terms in the same
/// canonical order as InvertedIndex::TopK, and ranks (score descending,
/// doc ascending). Only documents containing at least one query term are
/// hits. O(num_docs * query_terms) — the baseline the index must beat.
std::vector<SearchResult> BruteForceTopK(const corpus::Corpus& corpus,
                                         const IndexOptions& options,
                                         const std::vector<std::string>& terms,
                                         size_t k);

/// "INDEX-%010llu" / its inverse. Rejects anything that does not
/// round-trip exactly.
std::string IndexFileName(uint64_t generation);
StatusOr<uint64_t> ParseIndexFileName(const std::string& name);

/// What IndexStore::Load found on disk.
struct IndexLoadReport {
  uint64_t generation = 0;  // generation actually loaded (0 = none found)
  /// Generation files that existed but failed CRC / parse and were
  /// skipped in favour of an older intact one.
  std::vector<std::string> damaged_skipped;
};

/// Durable home for a set of named indexes ("news", "tweets", ...), written
/// as generation-numbered files through the FileIo seam: each Save
/// serializes every index into CRC-framed sections of one INDEX-<gen> file
/// committed with WriteFileAtomic, so a crash at any point leaves either
/// the previous generation or the new one intact — the same
/// newest-intact-with-fallback discipline as the store's snapshot engine.
class IndexStore {
 public:
  /// `io` must outlive the store. `retain` >= 1 generations are kept.
  IndexStore(FileIo& io, std::string dir, size_t retain = 2);

  /// Writes all `indexes` as the next generation and prunes old ones.
  /// Pruning failures are ignored (stale generations are garbage, not
  /// state).
  Status Save(const std::map<std::string, InvertedIndex>& indexes);

  /// Loads the newest intact generation into `out` (replacing its
  /// contents). An empty directory is not an error: the report's
  /// generation is 0 and `out` is cleared. Damaged newer generations are
  /// skipped and reported.
  StatusOr<IndexLoadReport> Load(std::map<std::string, InvertedIndex>* out);

  uint64_t generation() const { return generation_; }

 private:
  std::string PathFor(const std::string& name) const;
  StatusOr<std::vector<std::pair<uint64_t, std::string>>> ListGenerations();

  FileIo& io_;
  std::string dir_;
  size_t retain_;
  uint64_t generation_ = 0;  // last generation saved or loaded
};

}  // namespace newsdiff::index

#endif  // NEWSDIFF_INDEX_INDEX_H_
