#ifndef NEWSDIFF_LA_VECTOR_OPS_H_
#define NEWSDIFF_LA_VECTOR_OPS_H_

#include <cstddef>
#include <new>
#include <vector>

namespace newsdiff::la {

/// Minimum alignment (bytes) of every Matrix row-storage allocation and
/// arena scratch buffer. 64 covers a cache line and the widest vector
/// registers the kernels are compiled for (AVX-512 = 64 bytes).
inline constexpr size_t kVectorAlignment = 64;

/// STL allocator returning storage aligned to `Alignment` bytes. Backs
/// Matrix row storage so the vectorized kernels never see an unaligned
/// base pointer.
template <typename T, size_t Alignment = kVectorAlignment>
struct AlignedAllocator {
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  bool operator==(const AlignedAllocator&) const noexcept { return true; }
  bool operator!=(const AlignedAllocator&) const noexcept { return false; }
};

/// The storage type behind Matrix: a double vector whose allocation is
/// 64-byte aligned.
using AlignedVector = std::vector<double, AlignedAllocator<double>>;

// ---------------------------------------------------------------------------
// Raw-pointer helpers. These are THE scalar vector kernels of the tree:
// embed/ (PV-DBOW, PV-DM, word2vec), nn/ (dense, conv1d), and la/ all call
// them instead of hand-rolling the loops. Each accumulates strictly in
// ascending index order, so replacing a hand-written loop with the helper
// is a bitwise no-op.
// ---------------------------------------------------------------------------

/// init + a[0]*b[0] + a[1]*b[1] + ... accumulated left to right. The
/// `init` seed lets callers fold a bias into the same chain a legacy
/// `acc = bias; acc += ...` loop produced.
double DotN(const double* a, const double* b, size_t n, double init = 0.0);

/// y[i] += alpha * x[i] for i in [0, n). alpha == 1.0 is an exact
/// elementwise add (IEEE: 1.0 * x == x).
void AxpyN(double* y, const double* x, double alpha, size_t n);

/// v[0]^2 + v[1]^2 + ... accumulated left to right.
double SumSquaresN(const double* v, size_t n);

// ---------------------------------------------------------------------------
// std::vector convenience wrappers (the original la/matrix.h helpers).
// ---------------------------------------------------------------------------

/// Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// l2 norm of a vector.
double Norm2(const std::vector<double>& v);

/// Cosine similarity of two equal-length vectors (Eq. 11 of the paper).
/// Returns 0 when either vector has zero norm.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

/// a += scale * b (equal length).
void AxpyInPlace(std::vector<double>& a, const std::vector<double>& b,
                 double scale);

}  // namespace newsdiff::la

#endif  // NEWSDIFF_LA_VECTOR_OPS_H_
