// Cache-blocked GEMM kernels. This translation unit is compiled with
// stronger optimization flags than the rest of the tree (see
// la/CMakeLists.txt): the micro-kernel below is written so the compiler
// can keep the 4x8 accumulator tile in vector registers and the packed
// panels stream linearly from L1/L2.
//
// Determinism: the traversal (block boundaries, packing layout, per-element
// accumulation chain) is a pure function of (shape, KernelConfig block
// sizes). Thread and shard counts only decide WHICH thread computes a row
// block, never the arithmetic inside it, so outputs are bitwise identical
// across runs and parallel configurations on a given binary. (Cross-binary
// reproducibility is the naive kernels' job — they are compiled with the
// tree-wide flags and never fuse multiplies and adds.)
#include "la/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

#include "common/arena.h"

namespace newsdiff::la {
namespace {

/// Micro-tile height (rows of A) and width (columns of B). 4x8 doubles =
/// 32 accumulators: fits the 16 ymm registers of AVX2 two-per-register
/// and still leaves headroom on SSE2.
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;

size_t RoundUp(size_t n, size_t multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

/// C[0..mr)x[0..nr) += packA(kc x kMr strips) * packB(kc x kNr strips).
/// The accumulator tile lives in registers for the whole kc loop; the
/// panel edges are zero-padded, so the arithmetic is always full-tile and
/// only the writeback is masked.
void MicroKernel(const double* pa, const double* pb, size_t kc, double* c,
                 size_t ldc, size_t mr, size_t nr) {
  double acc[kMr][kNr] = {};
  for (size_t p = 0; p < kc; ++p) {
    const double* ap = pa + p * kMr;
    const double* bp = pb + p * kNr;
    for (size_t i = 0; i < kMr; ++i) {
      for (size_t j = 0; j < kNr; ++j) acc[i][j] += ap[i] * bp[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (size_t i = 0; i < kMr; ++i) {
      double* crow = c + i * ldc;
      for (size_t j = 0; j < kNr; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (size_t i = 0; i < mr; ++i) {
      double* crow = c + i * ldc;
      for (size_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}

/// Packs kc x nc of the right operand into kNr-column strips
/// (strip-major, p-major within a strip), zero-padding the last strip.
/// load(p, j) reads element (pc + p, jc + j) of op(B).
template <typename Load>
void PackB(double* dst, size_t kc, size_t nc, Load load) {
  for (size_t js = 0; js < nc; js += kNr) {
    const size_t nr = std::min(kNr, nc - js);
    double* strip = dst + (js / kNr) * (kc * kNr);
    for (size_t p = 0; p < kc; ++p) {
      for (size_t j = 0; j < kNr; ++j) {
        strip[p * kNr + j] = j < nr ? load(p, js + j) : 0.0;
      }
    }
  }
}

/// Packs mc x kc of the left operand into kMr-row strips (strip-major,
/// p-major within a strip), zero-padding the last strip. load(i, p) reads
/// element (ic + i, pc + p) of op(A).
template <typename Load>
void PackA(double* dst, size_t mc, size_t kc, Load load) {
  for (size_t is = 0; is < mc; is += kMr) {
    const size_t mr = std::min(kMr, mc - is);
    double* strip = dst + (is / kMr) * (kc * kMr);
    for (size_t p = 0; p < kc; ++p) {
      for (size_t i = 0; i < kMr; ++i) {
        strip[p * kMr + i] = i < mr ? load(is + i, p) : 0.0;
      }
    }
  }
}

/// The shared blocked driver: out(n x m) = opA(n x k) * opB(k x m), where
/// loadA(i, p) reads the left operand in GLOBAL coordinates and
/// get_panel(jc, pc, kc_eff, nc_eff) returns the packed B panel for that
/// (jc, pc) block — either freshly packed into a scratch buffer
/// (BlockedGemm below) or a pointer into a PackedB prepared once and
/// reused across calls (BlockedMatMulPrepacked). The jc/pc panel loops run
/// on the calling thread; the parallel region inside a panel covers the mc
/// row blocks, each shard packing only its own A strips. Determinism: each
/// output element's accumulation chain is jc-outer/pc-inner over identical
/// packed values regardless of thread or shard counts — and regardless of
/// the panel's provenance — and shards never share a written cache line;
/// C row blocks are disjoint.
template <typename LoadA, typename GetPanel>
void BlockedGemmPanels(size_t n, size_t k, size_t m, size_t mc, size_t kc,
                       size_t nc, Matrix* out, const Parallelism& par,
                       LoadA load_a, GetPanel get_panel) {
  out->Resize(n, m);
  if (n == 0 || k == 0 || m == 0) return;
  const size_t row_blocks = (n + mc - 1) / mc;

  for (size_t jc = 0; jc < m; jc += nc) {
    const size_t nc_eff = std::min(nc, m - jc);
    for (size_t pc = 0; pc < k; pc += kc) {
      const size_t kc_eff = std::min(kc, k - pc);
      const double* packb = get_panel(jc, pc, kc_eff, nc_eff);
      ParallelFor(par, row_blocks,
                  [&](size_t, size_t blk_begin, size_t blk_end) {
        if (blk_begin == blk_end) return;
        ArenaBuffer packa = Arena::ThreadLocal().Acquire(mc * kc);
        for (size_t blk = blk_begin; blk < blk_end; ++blk) {
          const size_t ic = blk * mc;
          const size_t mc_eff = std::min(mc, n - ic);
          PackA(packa.data(), mc_eff, kc_eff,
                [&](size_t i, size_t p) { return load_a(ic + i, pc + p); });
          for (size_t js = 0; js < nc_eff; js += kNr) {
            const size_t nr = std::min(kNr, nc_eff - js);
            const double* pb = packb + (js / kNr) * (kc_eff * kNr);
            for (size_t is = 0; is < mc_eff; is += kMr) {
              const size_t mr = std::min(kMr, mc_eff - is);
              const double* pa = packa.data() + (is / kMr) * (kc_eff * kMr);
              MicroKernel(pa, pb, kc_eff, out->RowPtr(ic + is) + jc + js, m,
                          mr, nr);
            }
          }
        }
      });
    }
  }
}

/// Pack-as-you-go wrapper: packs each B panel exactly once per call into a
/// caller-arena buffer every shard then reads. (Earlier, every shard
/// re-packed the same B panel — O(k*m) redundant work per shard.)
template <typename LoadA, typename LoadB>
void BlockedGemm(size_t n, size_t k, size_t m, Matrix* out,
                 const Parallelism& par, LoadA load_a, LoadB load_b) {
  const KernelConfig& cfg = par.kernels;
  const size_t mc = std::max<size_t>(RoundUp(cfg.mc, kMr), kMr);
  const size_t kc = std::max<size_t>(cfg.kc, 1);
  const size_t nc = std::max<size_t>(RoundUp(cfg.nc, kNr), kNr);

  Arena& caller_arena = Arena::ThreadLocal();
  ArenaBuffer packb = caller_arena.Acquire(kc * nc);
  BlockedGemmPanels(
      n, k, m, mc, kc, nc, out, par, load_a,
      [&](size_t jc, size_t pc, size_t kc_eff, size_t nc_eff) {
        PackB(packb.data(), kc_eff, nc_eff,
              [&](size_t p, size_t j) { return load_b(pc + p, jc + j); });
        return packb.data();
      });
}

}  // namespace

PackedB PackMatrixB(const Matrix& b, const KernelConfig& cfg) {
  PackedB packed;
  packed.k = b.rows();
  packed.m = b.cols();
  packed.kc = std::max<size_t>(cfg.kc, 1);
  packed.nc = std::max<size_t>(RoundUp(cfg.nc, kNr), kNr);
  const size_t k = packed.k;
  const size_t m = packed.m;
  if (k == 0 || m == 0) return packed;

  size_t total = 0;
  for (size_t jc = 0; jc < m; jc += packed.nc) {
    const size_t nc_eff = std::min(packed.nc, m - jc);
    const size_t strips = (nc_eff + kNr - 1) / kNr;
    for (size_t pc = 0; pc < k; pc += packed.kc) {
      const size_t kc_eff = std::min(packed.kc, k - pc);
      packed.panel_offset.push_back(total);
      total += strips * kc_eff * kNr;
    }
  }
  packed.data.resize(total);
  size_t idx = 0;
  for (size_t jc = 0; jc < m; jc += packed.nc) {
    const size_t nc_eff = std::min(packed.nc, m - jc);
    for (size_t pc = 0; pc < k; pc += packed.kc) {
      const size_t kc_eff = std::min(packed.kc, k - pc);
      const size_t pc0 = pc;
      const size_t jc0 = jc;
      PackB(packed.data.data() + packed.panel_offset[idx++], kc_eff, nc_eff,
            [&](size_t p, size_t j) { return b.RowPtr(pc0 + p)[jc0 + j]; });
    }
  }
  return packed;
}

QuantizedB QuantizeMatrixB(const Matrix& b) {
  QuantizedB q;
  q.k = b.rows();
  q.m = b.cols();
  q.data.resize(q.k * q.m);
  q.scale.assign(q.m, 1.0);
  q.offset.assign(q.m, 0.0);
  q.colsum.assign(q.m, 0);
  for (size_t j = 0; j < q.m; ++j) {
    double lo = 0.0;
    double hi = 0.0;
    for (size_t p = 0; p < q.k; ++p) {
      const double v = b.RowPtr(p)[j];
      if (p == 0 || v < lo) lo = v;
      if (p == 0 || v > hi) hi = v;
    }
    const double range = hi - lo;
    const double scale = range > 0.0 ? range / 255.0 : 1.0;
    q.scale[j] = scale;
    q.offset[j] = lo + 128.0 * scale;
    int8_t* col = q.data.data() + j * q.k;
    int32_t colsum = 0;
    for (size_t p = 0; p < q.k; ++p) {
      const long code = std::lround((b.RowPtr(p)[j] - lo) / scale);
      col[p] = static_cast<int8_t>(std::clamp(code, 0L, 255L) - 128);
      colsum += static_cast<int32_t>(col[p]);
    }
    q.colsum[j] = colsum;
  }
  return q;
}

namespace internal {

void BlockedMatMul(const Matrix& a, const Matrix& b, Matrix* out,
                   const Parallelism& par) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  BlockedGemm(
      a.rows(), a.cols(), b.cols(), out, par,
      [&](size_t i, size_t p) { return a.RowPtr(i)[p]; },
      [&](size_t p, size_t j) { return b.RowPtr(p)[j]; });
}

void BlockedMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  BlockedGemm(
      a.cols(), a.rows(), b.cols(), out, par,
      [&](size_t i, size_t p) { return a.RowPtr(p)[i]; },
      [&](size_t p, size_t j) { return b.RowPtr(p)[j]; });
}

void BlockedMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  BlockedGemm(
      a.rows(), a.cols(), b.rows(), out, par,
      [&](size_t i, size_t p) { return a.RowPtr(i)[p]; },
      [&](size_t p, size_t j) { return b.RowPtr(j)[p]; });
}

void BlockedMatMulPrepacked(const Matrix& a, const PackedB& b, Matrix* out,
                            const Parallelism& par) {
  assert(a.cols() == b.k);
  assert(out != &a);
  const size_t kc = std::max<size_t>(b.kc, 1);
  const size_t nc = std::max<size_t>(b.nc, kNr);
  const size_t mc = std::max<size_t>(RoundUp(par.kernels.mc, kMr), kMr);
  const size_t num_pc = (b.k + kc - 1) / kc;
  BlockedGemmPanels(
      a.rows(), b.k, b.m, mc, kc, nc, out, par,
      [&](size_t i, size_t p) { return a.RowPtr(i)[p]; },
      [&](size_t jc, size_t pc, size_t, size_t) {
        return b.data.data() + b.panel_offset[(jc / nc) * num_pc + pc / kc];
      });
}

namespace {

/// A-rows quantized per staging block: bounds the per-shard code scratch
/// at kQRowBlock * k bytes and keeps it L2-resident.
constexpr size_t kQRowBlock = 64;

/// Round-half-away-from-zero without the libm lround call or a data-
/// dependent branch: the quantizer runs once per input element, and on
/// random-sign inputs a branchy 0.5/-0.5 select mispredicts half the
/// time, which alone used to dominate the whole int8 path. copysign is
/// two bit ops, so the loop vectorizes. Matches std::lround for every
/// |v| < 2^31 input.
int32_t FastRound(double v) {
  return static_cast<int32_t>(v + std::copysign(0.5, v));
}

/// Quantizes one A row into unsigned bytes biased by +128 — the layout
/// the u8 x s8 VNNI instruction consumes directly, and the AVX2/scalar
/// paths consume after the exact bias correction (dot - 128 * colsum).
/// Returns the symmetric scale (maxabs/127, or 1.0 for a zero row) and
/// the exact f64 row sum via `rowsum`. Both FP reductions run in four
/// fixed accumulator lanes — the grouping is a pure function of k, so
/// results stay deterministic, and the lanes break the serial dependence
/// so the loops vectorize.
double QuantizeRowInt8(const double* row, size_t k, uint8_t* qa,
                       double* rowsum) {
  double max_lane[4] = {0.0, 0.0, 0.0, 0.0};
  double sum_lane[4] = {0.0, 0.0, 0.0, 0.0};
  size_t p = 0;
  for (; p + 4 <= k; p += 4) {
    for (size_t l = 0; l < 4; ++l) {
      max_lane[l] = std::max(max_lane[l], std::fabs(row[p + l]));
      sum_lane[l] += row[p + l];
    }
  }
  for (; p < k; ++p) {
    max_lane[p % 4] = std::max(max_lane[p % 4], std::fabs(row[p]));
    sum_lane[p % 4] += row[p];
  }
  const double maxabs = std::max(std::max(max_lane[0], max_lane[1]),
                                 std::max(max_lane[2], max_lane[3]));
  *rowsum = (sum_lane[0] + sum_lane[1]) + (sum_lane[2] + sum_lane[3]);
  const double sa = maxabs > 0.0 ? maxabs / 127.0 : 1.0;
  const double inv = 1.0 / sa;
  for (p = 0; p < k; ++p) {
    qa[p] = static_cast<uint8_t>(FastRound(row[p] * inv) + 128);
  }
  return sa;
}

/// k-length biased-u8 x s8 dot product in an int32 accumulator (bias NOT
/// removed — the caller subtracts 128 * colsum). Integer addition is
/// associative, so any grouping produces the identical sum — the SIMD
/// kernels below and this scalar fallback are bitwise interchangeable.
int32_t DotU8S8(const uint8_t* a, const int8_t* b, size_t k) {
  int32_t result = 0;
  for (size_t p = 0; p < k; ++p) {
    result += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return result;
}

#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)

/// 1 A-row x 4 B-columns on AVX-512 VNNI: vpdpbusd multiply-accumulates
/// 64 u8 x s8 products into int32 lanes per instruction, so a 64-element
/// chunk of four columns costs 5 loads + 4 dpbusd. u8 x s8 quads sum to
/// at most 4 * 255 * 128 < 2^17 per lane step; the int32 lanes hold the
/// full k <= ~2^14 reduction without wrapping.
void DotVnni1x4(const uint8_t* a, const int8_t* b0, const int8_t* b1,
                const int8_t* b2, const int8_t* b3, size_t k,
                int32_t* acc) {
  __m512i v0 = _mm512_setzero_si512();
  __m512i v1 = _mm512_setzero_si512();
  __m512i v2 = _mm512_setzero_si512();
  __m512i v3 = _mm512_setzero_si512();
  size_t p = 0;
  for (; p + 64 <= k; p += 64) {
    const __m512i va = _mm512_loadu_si512(a + p);
    v0 = _mm512_dpbusd_epi32(v0, va, _mm512_loadu_si512(b0 + p));
    v1 = _mm512_dpbusd_epi32(v1, va, _mm512_loadu_si512(b1 + p));
    v2 = _mm512_dpbusd_epi32(v2, va, _mm512_loadu_si512(b2 + p));
    v3 = _mm512_dpbusd_epi32(v3, va, _mm512_loadu_si512(b3 + p));
  }
  acc[0] = _mm512_reduce_add_epi32(v0) + DotU8S8(a + p, b0 + p, k - p);
  acc[1] = _mm512_reduce_add_epi32(v1) + DotU8S8(a + p, b1 + p, k - p);
  acc[2] = _mm512_reduce_add_epi32(v2) + DotU8S8(a + p, b2 + p, k - p);
  acc[3] = _mm512_reduce_add_epi32(v3) + DotU8S8(a + p, b3 + p, k - p);
}

#elif defined(__AVX2__)

int32_t HSum(__m256i acc) {
  __m128i sum = _mm_add_epi32(_mm256_castsi256_si128(acc),
                              _mm256_extracti128_si256(acc, 1));
  sum = _mm_hadd_epi32(sum, sum);
  sum = _mm_hadd_epi32(sum, sum);
  return _mm_cvtsi128_si32(sum);
}

/// 4 A-rows x 2 B-columns on AVX2: codes are widened to int16 lanes and
/// multiply-accumulated pairwise with vpmaddwd (16 MACs per instruction).
/// Biased-u8 and s8 inputs both fit int16 exactly, and lane pairs sum
/// below 255 * 127 * 2 < 2^16, so the int16->int32 pairwise path never
/// wraps. Register blocking amortizes each widen over the opposite tile
/// edge — 6 loads+widens feed 8 multiply-accumulates.
void Dot4x2U8S8(const uint8_t* a0, const uint8_t* a1, const uint8_t* a2,
                const uint8_t* a3, const int8_t* b0, const int8_t* b1,
                size_t k, int32_t* acc) {
  __m256i v[4][2];
  for (auto& row : v) row[0] = row[1] = _mm256_setzero_si256();
  size_t p = 0;
  const uint8_t* rows[4] = {a0, a1, a2, a3};
  for (; p + 16 <= k; p += 16) {
    const __m256i wb0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + p)));
    const __m256i wb1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + p)));
    for (size_t i = 0; i < 4; ++i) {
      const __m256i wa = _mm256_cvtepu8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows[i] + p)));
      v[i][0] = _mm256_add_epi32(v[i][0], _mm256_madd_epi16(wa, wb0));
      v[i][1] = _mm256_add_epi32(v[i][1], _mm256_madd_epi16(wa, wb1));
    }
  }
  for (size_t i = 0; i < 4; ++i) {
    acc[i * 2] = HSum(v[i][0]) + DotU8S8(rows[i] + p, b0 + p, k - p);
    acc[i * 2 + 1] = HSum(v[i][1]) + DotU8S8(rows[i] + p, b1 + p, k - p);
  }
}

#endif  // __AVX2__

}  // namespace

void Int8MatMulPrepacked(const Matrix& a, const QuantizedB& b, Matrix* out,
                         const Parallelism& par) {
  assert(a.cols() == b.k);
  assert(out != &a);
  const size_t n = a.rows();
  const size_t k = b.k;
  const size_t m = b.m;
  out->Resize(n, m);
  if (n == 0 || m == 0) return;
  ParallelFor(par, n, [&](size_t, size_t begin, size_t end) {
    if (begin == end) return;
    // Code scratch lives in a reinterpreted arena buffer; uint8_t is a
    // character type, so the aliasing is well-defined.
    ArenaBuffer scratch =
        Arena::ThreadLocal().Acquire(kQRowBlock * k / 8 + 1);
    uint8_t* qa = reinterpret_cast<uint8_t*>(scratch.data());
    double sa[kQRowBlock];
    double rowsum[kQRowBlock];
    const double* scale = b.scale.data();
    const double* offset = b.offset.data();
    const int32_t* colsum = b.colsum.data();
    // Biased dot -> value: true_dot = acc - 128 * colsum[j], then
    // dequantize. Exact integer arithmetic, so the correction is lossless.
    const auto dequant = [&](size_t i, size_t j, int32_t acc) {
      return scale[j] * sa[i] *
                 static_cast<double>(acc - 128 * colsum[j]) +
             offset[j] * rowsum[i];
    };
    for (size_t block = begin; block < end; block += kQRowBlock) {
      const size_t rows = std::min(kQRowBlock, end - block);
      for (size_t i = 0; i < rows; ++i) {
        sa[i] = QuantizeRowInt8(a.RowPtr(block + i), k, qa + i * k,
                                &rowsum[i]);
      }
      size_t i = 0;
#if defined(__AVX512VNNI__) && defined(__AVX512BW__) && defined(__AVX512F__)
      for (; i < rows; ++i) {
        double* out_row = out->RowPtr(block + i);
        size_t j = 0;
        for (; j + 4 <= m; j += 4) {
          int32_t acc[4];
          DotVnni1x4(qa + i * k, b.data.data() + j * k,
                     b.data.data() + (j + 1) * k, b.data.data() + (j + 2) * k,
                     b.data.data() + (j + 3) * k, k, acc);
          for (size_t c = 0; c < 4; ++c) {
            out_row[j + c] = dequant(i, j + c, acc[c]);
          }
        }
        for (; j < m; ++j) {
          out_row[j] =
              dequant(i, j, DotU8S8(qa + i * k, b.data.data() + j * k, k));
        }
      }
#elif defined(__AVX2__)
      for (; i + 4 <= rows; i += 4) {
        size_t j = 0;
        for (; j + 2 <= m; j += 2) {
          int32_t acc[8];
          Dot4x2U8S8(qa + i * k, qa + (i + 1) * k, qa + (i + 2) * k,
                     qa + (i + 3) * k, b.data.data() + j * k,
                     b.data.data() + (j + 1) * k, k, acc);
          for (size_t r = 0; r < 4; ++r) {
            double* out_row = out->RowPtr(block + i + r);
            out_row[j] = dequant(i + r, j, acc[r * 2]);
            out_row[j + 1] = dequant(i + r, j + 1, acc[r * 2 + 1]);
          }
        }
        for (; j < m; ++j) {
          const int8_t* col = b.data.data() + j * k;
          for (size_t r = 0; r < 4; ++r) {
            out->RowPtr(block + i + r)[j] =
                dequant(i + r, j, DotU8S8(qa + (i + r) * k, col, k));
          }
        }
      }
#endif
      for (; i < rows; ++i) {
        double* out_row = out->RowPtr(block + i);
        for (size_t j = 0; j < m; ++j) {
          out_row[j] =
              dequant(i, j, DotU8S8(qa + i * k, b.data.data() + j * k, k));
        }
      }
    }
  });
}

}  // namespace internal
}  // namespace newsdiff::la
