// Cache-blocked GEMM kernels. This translation unit is compiled with
// stronger optimization flags than the rest of the tree (see
// la/CMakeLists.txt): the micro-kernel below is written so the compiler
// can keep the 4x8 accumulator tile in vector registers and the packed
// panels stream linearly from L1/L2.
//
// Determinism: the traversal (block boundaries, packing layout, per-element
// accumulation chain) is a pure function of (shape, KernelConfig block
// sizes). Thread and shard counts only decide WHICH thread computes a row
// block, never the arithmetic inside it, so outputs are bitwise identical
// across runs and parallel configurations on a given binary. (Cross-binary
// reproducibility is the naive kernels' job — they are compiled with the
// tree-wide flags and never fuse multiplies and adds.)
#include "la/kernels.h"

#include <algorithm>
#include <cassert>

#include "common/arena.h"

namespace newsdiff::la::internal {
namespace {

/// Micro-tile height (rows of A) and width (columns of B). 4x8 doubles =
/// 32 accumulators: fits the 16 ymm registers of AVX2 two-per-register
/// and still leaves headroom on SSE2.
constexpr size_t kMr = 4;
constexpr size_t kNr = 8;

size_t RoundUp(size_t n, size_t multiple) {
  return (n + multiple - 1) / multiple * multiple;
}

/// C[0..mr)x[0..nr) += packA(kc x kMr strips) * packB(kc x kNr strips).
/// The accumulator tile lives in registers for the whole kc loop; the
/// panel edges are zero-padded, so the arithmetic is always full-tile and
/// only the writeback is masked.
void MicroKernel(const double* pa, const double* pb, size_t kc, double* c,
                 size_t ldc, size_t mr, size_t nr) {
  double acc[kMr][kNr] = {};
  for (size_t p = 0; p < kc; ++p) {
    const double* ap = pa + p * kMr;
    const double* bp = pb + p * kNr;
    for (size_t i = 0; i < kMr; ++i) {
      for (size_t j = 0; j < kNr; ++j) acc[i][j] += ap[i] * bp[j];
    }
  }
  if (mr == kMr && nr == kNr) {
    for (size_t i = 0; i < kMr; ++i) {
      double* crow = c + i * ldc;
      for (size_t j = 0; j < kNr; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (size_t i = 0; i < mr; ++i) {
      double* crow = c + i * ldc;
      for (size_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}

/// Packs kc x nc of the right operand into kNr-column strips
/// (strip-major, p-major within a strip), zero-padding the last strip.
/// load(p, j) reads element (pc + p, jc + j) of op(B).
template <typename Load>
void PackB(double* dst, size_t kc, size_t nc, Load load) {
  for (size_t js = 0; js < nc; js += kNr) {
    const size_t nr = std::min(kNr, nc - js);
    double* strip = dst + (js / kNr) * (kc * kNr);
    for (size_t p = 0; p < kc; ++p) {
      for (size_t j = 0; j < kNr; ++j) {
        strip[p * kNr + j] = j < nr ? load(p, js + j) : 0.0;
      }
    }
  }
}

/// Packs mc x kc of the left operand into kMr-row strips (strip-major,
/// p-major within a strip), zero-padding the last strip. load(i, p) reads
/// element (ic + i, pc + p) of op(A).
template <typename Load>
void PackA(double* dst, size_t mc, size_t kc, Load load) {
  for (size_t is = 0; is < mc; is += kMr) {
    const size_t mr = std::min(kMr, mc - is);
    double* strip = dst + (is / kMr) * (kc * kMr);
    for (size_t p = 0; p < kc; ++p) {
      for (size_t i = 0; i < kMr; ++i) {
        strip[p * kMr + i] = i < mr ? load(is + i, p) : 0.0;
      }
    }
  }
}

/// The shared blocked driver: out(n x m) = opA(n x k) * opB(k x m), where
/// loadA(i, p) and loadB(p, j) read the operands in GLOBAL coordinates.
/// The jc/pc panel loops run on the calling thread, which packs each B
/// panel exactly once into a buffer every shard then reads; the parallel
/// region inside a panel covers the mc row blocks, each shard packing only
/// its own A strips. (Earlier, every shard re-packed the same B panel —
/// O(k*m) redundant work per shard.) Determinism is unchanged: each output
/// element's accumulation chain is jc-outer/pc-inner over identical packed
/// values regardless of thread or shard counts, and shards never share a
/// written cache line — C row blocks are disjoint.
template <typename LoadA, typename LoadB>
void BlockedGemm(size_t n, size_t k, size_t m, Matrix* out,
                 const Parallelism& par, LoadA load_a, LoadB load_b) {
  out->Resize(n, m);
  if (n == 0 || k == 0 || m == 0) return;

  const KernelConfig& cfg = par.kernels;
  const size_t mc = std::max<size_t>(RoundUp(cfg.mc, kMr), kMr);
  const size_t kc = std::max<size_t>(cfg.kc, 1);
  const size_t nc = std::max<size_t>(RoundUp(cfg.nc, kNr), kNr);
  const size_t row_blocks = (n + mc - 1) / mc;

  Arena& caller_arena = Arena::ThreadLocal();
  ArenaBuffer packb = caller_arena.Acquire(kc * nc);
  for (size_t jc = 0; jc < m; jc += nc) {
    const size_t nc_eff = std::min(nc, m - jc);
    for (size_t pc = 0; pc < k; pc += kc) {
      const size_t kc_eff = std::min(kc, k - pc);
      PackB(packb.data(), kc_eff, nc_eff,
            [&](size_t p, size_t j) { return load_b(pc + p, jc + j); });
      ParallelFor(par, row_blocks,
                  [&](size_t, size_t blk_begin, size_t blk_end) {
        if (blk_begin == blk_end) return;
        ArenaBuffer packa = Arena::ThreadLocal().Acquire(mc * kc);
        for (size_t blk = blk_begin; blk < blk_end; ++blk) {
          const size_t ic = blk * mc;
          const size_t mc_eff = std::min(mc, n - ic);
          PackA(packa.data(), mc_eff, kc_eff,
                [&](size_t i, size_t p) { return load_a(ic + i, pc + p); });
          for (size_t js = 0; js < nc_eff; js += kNr) {
            const size_t nr = std::min(kNr, nc_eff - js);
            const double* pb = packb.data() + (js / kNr) * (kc_eff * kNr);
            for (size_t is = 0; is < mc_eff; is += kMr) {
              const size_t mr = std::min(kMr, mc_eff - is);
              const double* pa = packa.data() + (is / kMr) * (kc_eff * kMr);
              MicroKernel(pa, pb, kc_eff, out->RowPtr(ic + is) + jc + js, m,
                          mr, nr);
            }
          }
        }
      });
    }
  }
}

}  // namespace

void BlockedMatMul(const Matrix& a, const Matrix& b, Matrix* out,
                   const Parallelism& par) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  BlockedGemm(
      a.rows(), a.cols(), b.cols(), out, par,
      [&](size_t i, size_t p) { return a.RowPtr(i)[p]; },
      [&](size_t p, size_t j) { return b.RowPtr(p)[j]; });
}

void BlockedMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  BlockedGemm(
      a.cols(), a.rows(), b.cols(), out, par,
      [&](size_t i, size_t p) { return a.RowPtr(p)[i]; },
      [&](size_t p, size_t j) { return b.RowPtr(p)[j]; });
}

void BlockedMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  BlockedGemm(
      a.rows(), a.cols(), b.rows(), out, par,
      [&](size_t i, size_t p) { return a.RowPtr(i)[p]; },
      [&](size_t p, size_t j) { return b.RowPtr(j)[p]; });
}

}  // namespace newsdiff::la::internal
