#ifndef NEWSDIFF_LA_KERNELS_H_
#define NEWSDIFF_LA_KERNELS_H_

#include "common/parallel.h"
#include "la/matrix.h"

#include <cstdint>
#include <vector>

namespace newsdiff::la {

/// The right operand of a blocked GEMM, pre-packed into the exact
/// (jc, pc)-panel layout the blocked driver consumes. Packing B is O(k*m)
/// work per call; for inference the weights are immutable across calls, so
/// the weight cache (la/weight_cache.h) packs once per model generation and
/// every call reuses the panels. BlockedMatMulPrepacked over a PackedB is
/// bitwise identical to BlockedMatMul over the original matrix when the
/// kc/nc block sizes match — the packed values and the traversal are the
/// same; only WHO packed them changes.
struct PackedB {
  size_t k = 0;   ///< Rows of the original B.
  size_t m = 0;   ///< Columns of the original B.
  size_t kc = 0;  ///< Effective depth block used at pack time.
  size_t nc = 0;  ///< Effective column block used at pack time.
  AlignedVector data;
  /// Offset of panel (jc/nc, pc/kc) in `data`, pc-major within a jc band:
  /// panel_offset[(jc/nc) * num_pc_blocks + (pc/kc)].
  std::vector<size_t> panel_offset;
};

/// Packs all (jc, pc) panels of `b` for the block sizes in `cfg` (after the
/// same micro-kernel rounding BlockedMatMul applies).
PackedB PackMatrixB(const Matrix& b, const KernelConfig& cfg);

/// B quantized with a per-column linear quantizer (pisa linear_quantizer
/// idiom): column j maps [min_j, max_j] onto the 256 int8 codes, so
/// b[p][j] ~= scale[j] * q[p][j] + offset[j]. Codes are stored
/// column-major (column j is `k` contiguous bytes) so the int8 micro-dot
/// streams linearly. ~8x smaller than the f32 panels.
struct QuantizedB {
  size_t k = 0;  ///< Rows of the original B.
  size_t m = 0;  ///< Columns of the original B.
  std::vector<int8_t> data;    ///< Column-major codes, data[j * k + p].
  std::vector<double> scale;   ///< Per-column dequantization scale.
  std::vector<double> offset;  ///< Per-column dequantization offset.
  /// Per-column sum of codes. The kernel quantizes A rows into unsigned
  /// bytes biased by +128 (so one staging feeds the u8 x s8 VNNI
  /// instruction, the AVX2 vpmaddwd path, and the scalar fallback alike)
  /// and removes the bias exactly: dot_biased - 128 * colsum[j].
  std::vector<int32_t> colsum;
};

/// Quantizes `b` column-by-column into int8 codes.
QuantizedB QuantizeMatrixB(const Matrix& b);

namespace internal {

/// Cache-blocked, register-tiled GEMM kernels (KernelKind::kBlocked).
/// Callers go through the MatMul*/MatMul*Into dispatchers in la/matrix.h;
/// these entry points exist for the dispatchers, the bench, and the
/// blocked-vs-naive regression tests.
///
/// Implementation (la/kernels.cc, compiled -O3 and, where supported,
/// -march=native so the micro-kernel vectorizes):
///   - GotoBLAS-style blocking: jc (nc columns) -> pc (kc depth, B panel
///     packed) -> ic (mc rows, A block packed) -> 4x8 register micro-tiles.
///   - Packing buffers come from the executing thread's Arena, so the hot
///     path allocates nothing in steady state.
///   - Parallelism splits the mc row blocks across shards; every output
///     element's accumulation chain is a pure function of (shape, block
///     sizes), so results are bitwise identical across runs, thread
///     counts, and shard counts — but NOT bitwise equal to the naive
///     loops (different accumulation grouping; agreement is ~1e-9
///     relative, gated by bench/kernels_bench and tests/kernels_test).
///
/// `out` is resized (capacity-reusing) and fully overwritten; it must not
/// alias `a` or `b`. `a` and `b` may alias each other (read-only).
void BlockedMatMul(const Matrix& a, const Matrix& b, Matrix* out,
                   const Parallelism& par);

/// out = a^T * b, blocked. Shapes: (k x n)^T * (k x m) -> (n x m).
void BlockedMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par);

/// out = a * b^T, blocked. Shapes: (n x k) * (m x k)^T -> (n x m).
void BlockedMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par);

/// out = a * b over pre-packed panels. Uses the kc/nc recorded in `b` (so
/// the result is bitwise identical to BlockedMatMul packed under the same
/// KernelConfig) and par.kernels.mc for the row blocking, which never
/// affects the arithmetic. Same determinism contract as BlockedMatMul;
/// additionally, because every output row's accumulation chain reads only
/// that row of A, results are bitwise invariant to batch composition:
/// row i of a batch-of-N product equals the corresponding batch-of-1.
void BlockedMatMulPrepacked(const Matrix& a, const PackedB& b, Matrix* out,
                            const Parallelism& par);

/// out = a * b over int8 codes: each row of `a` is quantized on the fly
/// with a symmetric per-row scale (maxabs/127), the k-length integer dot
/// runs in int32, and the result is dequantized as
///   out[i][j] = scale[j] * sa[i] * idot + offset[j] * rowsum(a[i]).
/// Integer arithmetic is exact and every row is processed independently,
/// so the output is bitwise invariant to threads, shards, AND batch
/// composition — but it approximates the f32 result (accuracy delta gated
/// by bench/kernels_bench). Parallelism splits the rows of `a`.
void Int8MatMulPrepacked(const Matrix& a, const QuantizedB& b, Matrix* out,
                         const Parallelism& par);

}  // namespace internal
}  // namespace newsdiff::la

#endif  // NEWSDIFF_LA_KERNELS_H_
