#ifndef NEWSDIFF_LA_KERNELS_H_
#define NEWSDIFF_LA_KERNELS_H_

#include "common/parallel.h"
#include "la/matrix.h"

namespace newsdiff::la::internal {

/// Cache-blocked, register-tiled GEMM kernels (KernelKind::kBlocked).
/// Callers go through the MatMul*/MatMul*Into dispatchers in la/matrix.h;
/// these entry points exist for the dispatchers, the bench, and the
/// blocked-vs-naive regression tests.
///
/// Implementation (la/kernels.cc, compiled -O3 and, where supported,
/// -march=native so the micro-kernel vectorizes):
///   - GotoBLAS-style blocking: jc (nc columns) -> pc (kc depth, B panel
///     packed) -> ic (mc rows, A block packed) -> 4x8 register micro-tiles.
///   - Packing buffers come from the executing thread's Arena, so the hot
///     path allocates nothing in steady state.
///   - Parallelism splits the mc row blocks across shards; every output
///     element's accumulation chain is a pure function of (shape, block
///     sizes), so results are bitwise identical across runs, thread
///     counts, and shard counts — but NOT bitwise equal to the naive
///     loops (different accumulation grouping; agreement is ~1e-9
///     relative, gated by bench/kernels_bench and tests/kernels_test).
///
/// `out` is resized (capacity-reusing) and fully overwritten; it must not
/// alias `a` or `b`. `a` and `b` may alias each other (read-only).
void BlockedMatMul(const Matrix& a, const Matrix& b, Matrix* out,
                   const Parallelism& par);

/// out = a^T * b, blocked. Shapes: (k x n)^T * (k x m) -> (n x m).
void BlockedMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par);

/// out = a * b^T, blocked. Shapes: (n x k) * (m x k)^T -> (n x m).
void BlockedMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out,
                         const Parallelism& par);

}  // namespace newsdiff::la::internal

#endif  // NEWSDIFF_LA_KERNELS_H_
