#include "la/vector_ops.h"

#include <cassert>
#include <cmath>

namespace newsdiff::la {

double DotN(const double* a, const double* b, size_t n, double init) {
  double s = init;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void AxpyN(double* y, const double* x, double alpha, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double SumSquaresN(const double* v, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += v[i] * v[i];
  return s;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  return DotN(a.data(), b.data(), a.size());
}

double Norm2(const std::vector<double>& v) {
  return std::sqrt(SumSquaresN(v.data(), v.size()));
}

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  assert(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

void AxpyInPlace(std::vector<double>& a, const std::vector<double>& b,
                 double scale) {
  assert(a.size() == b.size());
  AxpyN(a.data(), b.data(), scale, a.size());
}

}  // namespace newsdiff::la
