#include "la/weight_cache.h"

#include <algorithm>
#include <utility>

namespace newsdiff::la {

std::shared_ptr<const PackedB> PackedWeightCache::GetPacked(
    uint64_t key, uint64_t version, const Matrix& weights,
    const KernelConfig& cfg) {
  const size_t want_kc = std::max<size_t>(cfg.kc, 1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.version == version &&
        it->second.packed != nullptr && it->second.kc == want_kc &&
        it->second.nc >= cfg.nc) {
      ++stats_.hits;
      return it->second.packed;
    }
  }
  auto packed = std::make_shared<const PackedB>(PackMatrixB(weights, cfg));
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  ++stats_.misses;
  if (entry.version != version) {
    // Generation change: the quantized variant (if any) belongs to the old
    // weights, so the whole entry swaps. In-flight batches that already
    // pinned the old shared_ptr keep it until they finish.
    if (entry.packed != nullptr || entry.quantized != nullptr) ++stats_.swaps;
    entry = Entry{};
    entry.version = version;
  }
  entry.kc = packed->kc;
  entry.nc = packed->nc;
  entry.packed = packed;
  return packed;
}

std::shared_ptr<const QuantizedB> PackedWeightCache::GetQuantized(
    uint64_t key, uint64_t version, const Matrix& weights) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.version == version &&
        it->second.quantized != nullptr) {
      ++stats_.hits;
      return it->second.quantized;
    }
  }
  auto quantized =
      std::make_shared<const QuantizedB>(QuantizeMatrixB(weights));
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_[key];
  ++stats_.misses;
  if (entry.version != version) {
    if (entry.packed != nullptr || entry.quantized != nullptr) ++stats_.swaps;
    entry = Entry{};
    entry.version = version;
  }
  entry.quantized = quantized;
  return quantized;
}

WeightCacheStats PackedWeightCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PackedWeightCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace newsdiff::la
