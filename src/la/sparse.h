#ifndef NEWSDIFF_LA_SPARSE_H_
#define NEWSDIFF_LA_SPARSE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "la/matrix.h"

namespace newsdiff::la {

/// A single nonzero entry, used to assemble sparse matrices.
struct Triplet {
  uint32_t row;
  uint32_t col;
  double value;
};

/// Compressed sparse row matrix of doubles. Built once from triplets
/// (duplicates are summed), then read-only. Backs the document-term matrix
/// consumed by NMF, where n_docs x vocab is far too large to hold densely.
class CsrMatrix {
 public:
  /// Creates an empty 0x0 matrix.
  CsrMatrix() : rows_(0), cols_(0) {}

  /// Builds from triplets; duplicate (row, col) entries are summed and
  /// resulting zeros are kept (harmless). Triplets may be in any order.
  static CsrMatrix FromTriplets(size_t rows, size_t cols,
                                std::vector<Triplet> triplets);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t nnz() const { return values_.size(); }

  /// CSR internals, exposed for kernel implementations and tests.
  const std::vector<size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<uint32_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Value at (r, c); O(log nnz_row). Zero if absent.
  double At(size_t r, size_t c) const;

  /// Sum of squares of all stored values.
  double SquaredFrobeniusNorm() const;

  /// Dense copy (for tests on small matrices only).
  Matrix ToDense() const;

  /// The transpose as a CSR matrix. Within each transposed row, entries
  /// keep ascending original-row order, so `Transposed().MultiplyDense(d)`
  /// accumulates each output element in exactly the order
  /// `TransposeMultiplyDense(d)` does — bitwise equal, but row-partitioned
  /// (gather, no scatter), which is what the parallel NMF updates use.
  CsrMatrix Transposed() const;

  /// out = this * d. Shapes: (n x m) * (m x k) -> (n x k). Output rows are
  /// partitioned across shards; bitwise invariant to the parallel config.
  Matrix MultiplyDense(const Matrix& d, const Parallelism& par = {}) const;

  /// out = this^T * d. Shapes: (n x m)^T * (n x k) -> (m x k). Serial
  /// (scatter over input rows); for a parallel product use
  /// Transposed().MultiplyDense(d, par).
  Matrix TransposeMultiplyDense(const Matrix& d) const;

  /// out = this * d^T. Shapes: (n x m) * (k x m)^T -> (n x k).
  Matrix MultiplyDenseTransposed(const Matrix& d,
                                 const Parallelism& par = {}) const;

  /// sum_{(i,j) in nnz} this(i,j) * w_row(i) . h_col(j), i.e. the inner
  /// product <A, W*H> computed only over A's sparsity pattern. Used for the
  /// O(nnz * k) evaluation of the NMF Frobenius objective.
  double InnerProductWithProduct(const Matrix& w, const Matrix& h) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<size_t> row_ptr_;     // size rows_+1
  std::vector<uint32_t> col_idx_;   // size nnz
  std::vector<double> values_;      // size nnz
};

}  // namespace newsdiff::la

#endif  // NEWSDIFF_LA_SPARSE_H_
