#include "la/sparse.h"

#include <algorithm>
#include <cassert>

#include "la/vector_ops.h"

namespace newsdiff::la {
namespace {

/// Column-strip width (doubles) for the blocked CSR kernels: one strip of
/// the output row stays resident in L1 while the row's nonzeros stream by.
constexpr size_t kCsrStrip = 256;

}  // namespace

CsrMatrix CsrMatrix::FromTriplets(size_t rows, size_t cols,
                                  std::vector<Triplet> triplets) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              return a.col < b.col;
            });
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(triplets.size());
  m.values_.reserve(triplets.size());
  size_t i = 0;
  while (i < triplets.size()) {
    assert(triplets[i].row < rows && triplets[i].col < cols);
    uint32_t r = triplets[i].row;
    uint32_t c = triplets[i].col;
    double v = triplets[i].value;
    size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == r &&
           triplets[j].col == c) {
      v += triplets[j].value;
      ++j;
    }
    m.col_idx_.push_back(c);
    m.values_.push_back(v);
    m.row_ptr_[r + 1] += 1;
    i = j;
  }
  for (size_t r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

double CsrMatrix::At(size_t r, size_t c) const {
  assert(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<ptrdiff_t>(row_ptr_[r + 1]);
  auto it = std::lower_bound(begin, end, static_cast<uint32_t>(c));
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<size_t>(it - col_idx_.begin())];
}

double CsrMatrix::SquaredFrobeniusNorm() const {
  double s = 0.0;
  for (double v : values_) s += v * v;
  return s;
}

Matrix CsrMatrix::ToDense() const {
  Matrix d(rows_, cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      d(r, col_idx_[k]) = values_[k];
    }
  }
  return d;
}

CsrMatrix CsrMatrix::Transposed() const {
  CsrMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  t.col_idx_.resize(values_.size());
  t.values_.resize(values_.size());
  for (uint32_t c : col_idx_) t.row_ptr_[c + 1] += 1;
  for (size_t c = 0; c < cols_; ++c) t.row_ptr_[c + 1] += t.row_ptr_[c];
  std::vector<size_t> fill(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  // Scanning rows in ascending order keeps each transposed row's entries
  // sorted by original row — the order TransposeMultiplyDense visits them.
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      size_t slot = fill[col_idx_[p]]++;
      t.col_idx_[slot] = static_cast<uint32_t>(r);
      t.values_[slot] = values_[p];
    }
  }
  return t;
}

Matrix CsrMatrix::MultiplyDense(const Matrix& d, const Parallelism& par) const {
  assert(cols_ == d.rows());
  Matrix out(rows_, d.cols());
  const size_t k = d.cols();
  if (par.kernels.kind == KernelKind::kBlocked) {
    // Column-strip blocked: each kCsrStrip-wide slice of the output row is
    // accumulated over the row's full nonzero list before moving on, so the
    // slice stays in L1. Per output element the accumulation still runs in
    // ascending-p order — bitwise identical to the naive path.
    ParallelFor(par, rows_, [&](size_t, size_t row_begin, size_t row_end) {
      for (size_t r = row_begin; r < row_end; ++r) {
        double* orow = out.RowPtr(r);
        for (size_t js = 0; js < k; js += kCsrStrip) {
          const size_t jn = std::min(kCsrStrip, k - js);
          for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            AxpyN(orow + js, d.RowPtr(col_idx_[p]) + js, values_[p], jn);
          }
        }
      }
    });
    return out;
  }
  ParallelFor(par, rows_, [&](size_t, size_t row_begin, size_t row_end) {
    for (size_t r = row_begin; r < row_end; ++r) {
      double* orow = out.RowPtr(r);
      for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        const double v = values_[p];
        const double* drow = d.RowPtr(col_idx_[p]);
        for (size_t j = 0; j < k; ++j) orow[j] += v * drow[j];
      }
    }
  });
  return out;
}

Matrix CsrMatrix::TransposeMultiplyDense(const Matrix& d) const {
  assert(rows_ == d.rows());
  Matrix out(cols_, d.cols());
  const size_t k = d.cols();
  for (size_t r = 0; r < rows_; ++r) {
    const double* drow = d.RowPtr(r);
    for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const double v = values_[p];
      double* orow = out.RowPtr(col_idx_[p]);
      for (size_t j = 0; j < k; ++j) orow[j] += v * drow[j];
    }
  }
  return out;
}

Matrix CsrMatrix::MultiplyDenseTransposed(const Matrix& d,
                                          const Parallelism& par) const {
  assert(cols_ == d.cols());
  Matrix out(rows_, d.rows());
  const size_t k = d.rows();
  if (par.kernels.kind == KernelKind::kBlocked) {
    // The naive loop reads d(j, c) down a column — a cols()-stride walk per
    // nonzero. Transposing d once up front (O(rows*cols), tiny next to the
    // product) turns every access into a contiguous row read. dt(c, j) ==
    // d(j, c) exactly and the per-element accumulation order is unchanged,
    // so this is bitwise identical to the naive path.
    const Matrix dt = d.Transposed();
    ParallelFor(par, rows_, [&](size_t, size_t row_begin, size_t row_end) {
      for (size_t r = row_begin; r < row_end; ++r) {
        double* orow = out.RowPtr(r);
        for (size_t js = 0; js < k; js += kCsrStrip) {
          const size_t jn = std::min(kCsrStrip, k - js);
          for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
            AxpyN(orow + js, dt.RowPtr(col_idx_[p]) + js, values_[p], jn);
          }
        }
      }
    });
    return out;
  }
  ParallelFor(par, rows_, [&](size_t, size_t row_begin, size_t row_end) {
    for (size_t r = row_begin; r < row_end; ++r) {
      double* orow = out.RowPtr(r);
      for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
        const double v = values_[p];
        const uint32_t c = col_idx_[p];
        for (size_t j = 0; j < k; ++j) orow[j] += v * d(j, c);
      }
    }
  });
  return out;
}

double CsrMatrix::InnerProductWithProduct(const Matrix& w,
                                          const Matrix& h) const {
  assert(w.rows() == rows_ && h.cols() == cols_ && w.cols() == h.rows());
  const size_t k = w.cols();
  double total = 0.0;
  for (size_t r = 0; r < rows_; ++r) {
    const double* wrow = w.RowPtr(r);
    for (size_t p = row_ptr_[r]; p < row_ptr_[r + 1]; ++p) {
      const uint32_t c = col_idx_[p];
      double wh = 0.0;
      for (size_t j = 0; j < k; ++j) wh += wrow[j] * h(j, c);
      total += values_[p] * wh;
    }
  }
  return total;
}

}  // namespace newsdiff::la
