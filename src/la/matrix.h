#ifndef NEWSDIFF_LA_MATRIX_H_
#define NEWSDIFF_LA_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "la/vector_ops.h"

namespace newsdiff::la {

/// Dense row-major matrix of doubles. The workhorse for NMF factors and
/// neural-network activations/parameters. Copyable and movable.
///
/// Storage invariant: the row storage base (RowPtr(0)) is always 64-byte
/// aligned (AlignedVector). Rows are contiguous with stride cols(), so
/// RowPtr(r) is also 64-byte aligned whenever cols() is a multiple of 8
/// doubles. The vectorized kernels rely on the aligned base (never on
/// per-row alignment — they use unaligned-safe accesses for interior
/// rows), so no shape ever hits a UB path.
class Matrix {
 public:
  /// Creates an empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Creates a rows x cols matrix initialised to zero.
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Creates a rows x cols matrix filled with `value`.
  Matrix(size_t rows, size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Creates a matrix from nested initializer data (rows of equal length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Creates a rows x cols matrix with entries uniform in [lo, hi).
  static Matrix Random(size_t rows, size_t cols, double lo, double hi,
                       Rng& rng);

  /// Creates a rows x cols matrix with N(0, stddev^2) entries.
  static Matrix RandomNormal(size_t rows, size_t cols, double stddev,
                             Rng& rng);

  /// Identity matrix of size n x n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw pointer to row r (cols() contiguous doubles). RowPtr(0) is
  /// 64-byte aligned (see the class invariant above); RowPtr(r) for r > 0
  /// is 64-byte aligned iff (r * cols()) % 8 == 0.
  double* RowPtr(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  const double* RowPtr(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }

  AlignedVector& data() { return data_; }
  const AlignedVector& data() const { return data_; }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Resizes to rows x cols, zero-filling (contents are discarded). The
  /// underlying capacity is kept, so shrinking/regrowing a scratch matrix
  /// does not reallocate.
  void Resize(size_t rows, size_t cols);

  /// Returns the transpose.
  Matrix Transposed() const;

  /// this += other (same shape).
  void Add(const Matrix& other);

  /// this -= other (same shape).
  void Sub(const Matrix& other);

  /// this *= scalar.
  void Scale(double s);

  /// this = this .* other, elementwise (same shape). Bitwise invariant to
  /// the parallel configuration (disjoint element writes).
  void HadamardInPlace(const Matrix& other, const Parallelism& par = {});

  /// this = this ./ (other + eps), elementwise (same shape).
  void DivideInPlace(const Matrix& other, double eps,
                     const Parallelism& par = {});

  /// Clamps all entries to be >= lo.
  void ClampMin(double lo, const Parallelism& par = {});

  /// Sum of all entries.
  double Sum() const;

  /// Frobenius norm sqrt(sum of squares).
  double FrobeniusNorm() const;

  /// Maximum absolute entry.
  double MaxAbs() const;

  /// l2 norm of row r.
  double RowNorm(size_t r) const;

  /// Returns row r copied into a vector.
  std::vector<double> Row(size_t r) const;

  /// Overwrites row r from `v` (must have cols() entries).
  void SetRow(size_t r, const std::vector<double>& v);

  /// Human-readable rendering (for debugging small matrices).
  std::string ToString(int max_rows = 8, int max_cols = 8) const;

 private:
  size_t rows_;
  size_t cols_;
  AlignedVector data_;
};

// ---------------------------------------------------------------------------
// GEMM entry points. Each dispatches on par.kernels.kind:
//   kBlocked (default) — the cache-blocked, register-tiled kernels of
//     la/kernels.cc. Run-to-run, thread-count, and shard-count
//     deterministic; agrees with kNaive to ~1e-9 relative.
//   kNaive — the original scalar loops, bitwise identical to the
//     pre-kernel-layer (seed) outputs.
// Both implementations partition *output* rows across shards with each
// element's accumulation chain independent of the partition, so for a
// fixed kernel kind results never vary with the parallel configuration.
// ---------------------------------------------------------------------------

/// out = a * b. Shapes: (n x k) * (k x m) -> (n x m).
Matrix MatMul(const Matrix& a, const Matrix& b, const Parallelism& par = {});

/// out = a^T * b. Shapes: (k x n)^T * (k x m) -> (n x m).
Matrix MatMulTransA(const Matrix& a, const Matrix& b,
                    const Parallelism& par = {});

/// out = a * b^T. Shapes: (n x k) * (m x k)^T -> (n x m).
Matrix MatMulTransB(const Matrix& a, const Matrix& b,
                    const Parallelism& par = {});

/// In-place variants: `*out` is resized (reusing capacity — a scratch
/// matrix hot loop allocates nothing in steady state) and overwritten.
/// `out` must not alias `a` or `b`; `a` and `b` may alias each other.
void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                const Parallelism& par = {});
void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out,
                      const Parallelism& par = {});
void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out,
                      const Parallelism& par = {});

}  // namespace newsdiff::la

#endif  // NEWSDIFF_LA_MATRIX_H_
