#ifndef NEWSDIFF_LA_WEIGHT_CACHE_H_
#define NEWSDIFF_LA_WEIGHT_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "la/kernels.h"
#include "la/matrix.h"

namespace newsdiff::la {

/// Counters for the cache. Snapshots are taken under the cache mutex, so
/// they are internally consistent.
struct WeightCacheStats {
  uint64_t hits = 0;    ///< Lookups served from an existing entry.
  uint64_t misses = 0;  ///< Lookups that packed/quantized fresh data.
  uint64_t swaps = 0;   ///< Misses that replaced an older generation.
};

/// Cross-call cache of packed (and optionally quantized) right-hand GEMM
/// operands, keyed by (weights identity, version, kernel config).
///
/// PR 8 deduplicated B packing *within* one GEMM; this removes it *across*
/// calls: inference weights are immutable between model reloads, so each
/// dense layer's weights are packed exactly once per model generation and
/// every subsequent forward pass reuses the panels. Entries swap RCU-style,
/// mirroring Engine::IndexSnapshot(): a lookup returns a shared_ptr, a
/// version change installs a fresh entry under the mutex, and in-flight
/// GEMMs keep the generation they pinned until they drop the pointer.
///
/// Determinism: PackMatrixB produces exactly the panels BlockedMatMul
/// would pack internally, so routing a GEMM through the cache never
/// changes its bits. The quantized entries feed Int8MatMulPrepacked, which
/// is deterministic but approximate (opt-in, see KernelConfig).
class PackedWeightCache {
 public:
  PackedWeightCache() = default;
  PackedWeightCache(const PackedWeightCache&) = delete;
  PackedWeightCache& operator=(const PackedWeightCache&) = delete;

  /// Returns the packed panels for `weights` at `version`, packing them if
  /// the entry is missing, stale, or was packed under a different kc/nc.
  /// Packing happens outside the mutex; concurrent misses may both pack
  /// (idempotent — identical panels) and the last one wins the map slot.
  std::shared_ptr<const PackedB> GetPacked(uint64_t key, uint64_t version,
                                           const Matrix& weights,
                                           const KernelConfig& cfg);

  /// Returns the int8 quantization of `weights` at `version`, quantizing
  /// on a miss. Shares the entry (and the generation swap) with GetPacked.
  std::shared_ptr<const QuantizedB> GetQuantized(uint64_t key,
                                                 uint64_t version,
                                                 const Matrix& weights);

  WeightCacheStats stats() const;

  /// Drops every entry (test hook; in-flight holders keep their pointers).
  void Clear();

 private:
  struct Entry {
    uint64_t version = 0;
    /// kc/nc the f32 panels were packed under; a config change repacks.
    size_t kc = 0;
    size_t nc = 0;
    std::shared_ptr<const PackedB> packed;
    std::shared_ptr<const QuantizedB> quantized;
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
  WeightCacheStats stats_;
};

}  // namespace newsdiff::la

#endif  // NEWSDIFF_LA_WEIGHT_CACHE_H_
