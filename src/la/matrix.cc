#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "la/kernels.h"

namespace newsdiff::la {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    std::copy(rows[r].begin(), rows[r].end(), m.RowPtr(r));
  }
  return m;
}

Matrix Matrix::Random(size_t rows, size_t cols, double lo, double hi,
                      Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Uniform(lo, hi);
  return m;
}

Matrix Matrix::RandomNormal(size_t rows, size_t cols, double stddev,
                            Rng& rng) {
  Matrix m(rows, cols);
  for (double& v : m.data_) v = rng.Gaussian(0.0, stddev);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::Fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    const double* src = RowPtr(r);
    for (size_t c = 0; c < cols_; ++c) t.data_[c * rows_ + r] = src[c];
  }
  return t;
}

void Matrix::Add(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  AxpyN(data_.data(), other.data_.data(), 1.0, data_.size());
}

void Matrix::Sub(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Matrix::HadamardInPlace(const Matrix& other, const Parallelism& par) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  ParallelFor(par, data_.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data_[i] *= other.data_[i];
  });
}

void Matrix::DivideInPlace(const Matrix& other, double eps,
                           const Parallelism& par) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  ParallelFor(par, data_.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) data_[i] /= (other.data_[i] + eps);
  });
}

void Matrix::ClampMin(double lo, const Parallelism& par) {
  ParallelFor(par, data_.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (data_[i] < lo) data_[i] = lo;
    }
  });
}

double Matrix::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Matrix::FrobeniusNorm() const {
  return std::sqrt(SumSquaresN(data_.data(), data_.size()));
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Matrix::RowNorm(size_t r) const {
  return std::sqrt(SumSquaresN(RowPtr(r), cols_));
}

std::vector<double> Matrix::Row(size_t r) const {
  const double* p = RowPtr(r);
  return std::vector<double>(p, p + cols_);
}

void Matrix::SetRow(size_t r, const std::vector<double>& v) {
  assert(v.size() == cols_);
  std::copy(v.begin(), v.end(), RowPtr(r));
}

std::string Matrix::ToString(int max_rows, int max_cols) const {
  std::string out = "Matrix(" + std::to_string(rows_) + "x" +
                    std::to_string(cols_) + ")\n";
  size_t show_r = std::min<size_t>(rows_, static_cast<size_t>(max_rows));
  size_t show_c = std::min<size_t>(cols_, static_cast<size_t>(max_cols));
  char buf[32];
  for (size_t r = 0; r < show_r; ++r) {
    out += "  [";
    for (size_t c = 0; c < show_c; ++c) {
      std::snprintf(buf, sizeof(buf), "%9.4f", (*this)(r, c));
      out += buf;
      if (c + 1 < show_c) out += ", ";
    }
    if (show_c < cols_) out += ", ...";
    out += "]\n";
  }
  if (show_r < rows_) out += "  ...\n";
  return out;
}

// ---------------------------------------------------------------------------
// Naive (seed-bitwise) GEMM loops. These write into a pre-resized `out`
// (Resize zero-fills, matching the original fresh-Matrix construction
// bitwise) and are kept verbatim as the KernelKind::kNaive fallback and
// the cross-binary-reproducible reference.
// ---------------------------------------------------------------------------
namespace {

void NaiveMatMul(const Matrix& a, const Matrix& b, Matrix* out,
                 const Parallelism& par) {
  const size_t n = a.rows(), k = a.cols(), m = b.cols();
  out->Resize(n, m);
  // ikj loop order: streams through b and out rows, cache-friendly. Output
  // rows are disjoint across shards and each element's accumulation runs in
  // p order regardless of sharding, so parallel == serial bitwise.
  ParallelFor(par, n, [&](size_t, size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const double* arow = a.RowPtr(i);
      double* orow = out->RowPtr(i);
      for (size_t p = 0; p < k; ++p) {
        const double av = arow[p];
        if (av == 0.0) continue;
        const double* brow = b.RowPtr(p);
        for (size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

void NaiveMatMulTransA(const Matrix& a, const Matrix& b, Matrix* out,
                       const Parallelism& par) {
  const size_t k = a.rows(), n = a.cols(), m = b.cols();
  out->Resize(n, m);
  // Gathers per output row i (column i of a) instead of scattering per
  // input row p, so shards own disjoint output rows; the per-element sum
  // still runs over p in ascending order, matching the scatter kernel's
  // accumulation chain bitwise.
  ParallelFor(par, n, [&](size_t, size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      double* orow = out->RowPtr(i);
      for (size_t p = 0; p < k; ++p) {
        const double av = a.RowPtr(p)[i];
        if (av == 0.0) continue;
        const double* brow = b.RowPtr(p);
        for (size_t j = 0; j < m; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

void NaiveMatMulTransB(const Matrix& a, const Matrix& b, Matrix* out,
                       const Parallelism& par) {
  const size_t k = a.cols(), m = b.rows();
  out->Resize(a.rows(), m);
  ParallelFor(par, a.rows(), [&](size_t, size_t row_begin, size_t row_end) {
    for (size_t i = row_begin; i < row_end; ++i) {
      const double* arow = a.RowPtr(i);
      double* orow = out->RowPtr(i);
      for (size_t j = 0; j < m; ++j) {
        orow[j] = DotN(arow, b.RowPtr(j), k);
      }
    }
  });
}

}  // namespace

void MatMulInto(const Matrix& a, const Matrix& b, Matrix* out,
                const Parallelism& par) {
  assert(a.cols() == b.rows());
  assert(out != &a && out != &b);
  if (par.kernels.kind == KernelKind::kNaive) {
    NaiveMatMul(a, b, out, par);
  } else {
    internal::BlockedMatMul(a, b, out, par);
  }
}

void MatMulTransAInto(const Matrix& a, const Matrix& b, Matrix* out,
                      const Parallelism& par) {
  assert(a.rows() == b.rows());
  assert(out != &a && out != &b);
  if (par.kernels.kind == KernelKind::kNaive) {
    NaiveMatMulTransA(a, b, out, par);
  } else {
    internal::BlockedMatMulTransA(a, b, out, par);
  }
}

void MatMulTransBInto(const Matrix& a, const Matrix& b, Matrix* out,
                      const Parallelism& par) {
  assert(a.cols() == b.cols());
  assert(out != &a && out != &b);
  if (par.kernels.kind == KernelKind::kNaive) {
    NaiveMatMulTransB(a, b, out, par);
  } else {
    internal::BlockedMatMulTransB(a, b, out, par);
  }
}

Matrix MatMul(const Matrix& a, const Matrix& b, const Parallelism& par) {
  Matrix out;
  MatMulInto(a, b, &out, par);
  return out;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b, const Parallelism& par) {
  Matrix out;
  MatMulTransAInto(a, b, &out, par);
  return out;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b, const Parallelism& par) {
  Matrix out;
  MatMulTransBInto(a, b, &out, par);
  return out;
}

}  // namespace newsdiff::la
