#ifndef NEWSDIFF_CORPUS_CORPUS_H_
#define NEWSDIFF_CORPUS_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"
#include "corpus/vocabulary.h"

namespace newsdiff::corpus {

/// One term occurrence count within a document.
struct TermCount {
  uint32_t term;
  uint32_t count;
};

/// A tokenised, id-mapped document: a bag of term counts plus the token
/// sequence (the sequence is kept for event detection and embeddings).
struct Document {
  /// External identifier (e.g. store DocId).
  int64_t external_id = -1;
  /// Creation timestamp; used by the event-detection time slicing.
  UnixSeconds timestamp = 0;
  /// Token ids in original order (may contain repeats).
  std::vector<uint32_t> tokens;
  /// Sorted-by-term bag of counts.
  std::vector<TermCount> counts;
  /// Total token count (sum of counts).
  uint32_t length = 0;
};

/// A corpus owns a vocabulary and a list of documents; it maintains the
/// document frequencies needed by IDF. Documents are added as pre-tokenised
/// token strings (the text pipelines produce those).
class Corpus {
 public:
  Corpus() = default;

  /// Adds a document; returns its index in the corpus.
  size_t AddDocument(const std::vector<std::string>& tokens,
                     UnixSeconds timestamp = 0, int64_t external_id = -1);

  const Vocabulary& vocabulary() const { return vocab_; }
  Vocabulary& vocabulary() { return vocab_; }

  size_t size() const { return docs_.size(); }
  const Document& doc(size_t i) const { return docs_[i]; }
  const std::vector<Document>& docs() const { return docs_; }

  /// Total tokens across all documents.
  uint64_t total_tokens() const { return total_tokens_; }

 private:
  Vocabulary vocab_;
  std::vector<Document> docs_;
  uint64_t total_tokens_ = 0;
};

}  // namespace newsdiff::corpus

#endif  // NEWSDIFF_CORPUS_CORPUS_H_
