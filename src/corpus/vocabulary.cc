#include "corpus/vocabulary.h"

#include <cassert>

namespace newsdiff::corpus {

uint32_t Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.emplace_back(term);
  doc_freq_.push_back(0);
  term_freq_.push_back(0);
  index_.emplace(terms_.back(), id);
  return id;
}

uint32_t Vocabulary::Get(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kUnknownTerm : it->second;
}

const std::string& Vocabulary::Term(uint32_t id) const {
  assert(id < terms_.size());
  return terms_[id];
}

}  // namespace newsdiff::corpus
