#ifndef NEWSDIFF_CORPUS_VOCABULARY_H_
#define NEWSDIFF_CORPUS_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace newsdiff::corpus {

/// Sentinel for "term not in vocabulary".
constexpr uint32_t kUnknownTerm = 0xFFFFFFFFu;

/// A bidirectional term <-> id mapping with document frequencies.
/// Ids are dense [0, size()).
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id for `term`, inserting it if new.
  uint32_t GetOrAdd(std::string_view term);

  /// Returns the id for `term`, or kUnknownTerm.
  uint32_t Get(std::string_view term) const;

  /// Returns the term for `id`. Requires id < size().
  const std::string& Term(uint32_t id) const;

  /// Number of distinct terms.
  size_t size() const { return terms_.size(); }

  /// Document frequency (number of documents containing the term) —
  /// n_ij in the paper's Eq. 2. Maintained by Corpus during ingestion.
  uint32_t doc_freq(uint32_t id) const { return doc_freq_[id]; }
  void IncrementDocFreq(uint32_t id) { ++doc_freq_[id]; }

  /// Total corpus frequency of the term (all occurrences).
  uint64_t term_freq(uint32_t id) const { return term_freq_[id]; }
  void AddTermFreq(uint32_t id, uint64_t n) { term_freq_[id] += n; }

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> terms_;
  std::vector<uint32_t> doc_freq_;
  std::vector<uint64_t> term_freq_;
};

}  // namespace newsdiff::corpus

#endif  // NEWSDIFF_CORPUS_VOCABULARY_H_
