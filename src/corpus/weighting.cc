#include "corpus/weighting.h"

#include <cmath>

namespace newsdiff::corpus {

const char* WeightingSchemeName(WeightingScheme scheme) {
  switch (scheme) {
    case WeightingScheme::kTf:
      return "TF";
    case WeightingScheme::kTfIdf:
      return "TFIDF";
    case WeightingScheme::kTfIdfNormalized:
      return "TFIDF_N";
    case WeightingScheme::kBoolean:
      return "Boolean";
    case WeightingScheme::kLogTf:
      return "LogTF";
    case WeightingScheme::kOkapiBm25:
      return "BM25";
  }
  return "?";
}

double Idf(const Corpus& corpus, uint32_t term) {
  uint32_t df = corpus.vocabulary().doc_freq(term);
  if (df == 0) return 0.0;
  return std::log2(static_cast<double>(corpus.size()) /
                   static_cast<double>(df));
}

double Bm25Idf(const Corpus& corpus, uint32_t term) {
  double n = static_cast<double>(corpus.size());
  double df = static_cast<double>(corpus.vocabulary().doc_freq(term));
  return std::log((n - df + 0.5) / (df + 0.5) + 1.0);
}

DocumentTermMatrix BuildDocumentTermMatrix(const Corpus& corpus,
                                           const DtmOptions& options) {
  const Vocabulary& vocab = corpus.vocabulary();
  const size_t n_docs = corpus.size();
  const double max_df =
      options.max_doc_fraction * static_cast<double>(n_docs);

  // Select surviving terms and assign contiguous columns.
  DocumentTermMatrix out;
  std::vector<uint32_t> term_to_col(vocab.size(), kUnknownTerm);
  for (uint32_t t = 0; t < vocab.size(); ++t) {
    uint32_t df = vocab.doc_freq(t);
    if (df < options.min_doc_freq) continue;
    if (static_cast<double>(df) > max_df) continue;
    term_to_col[t] = static_cast<uint32_t>(out.column_terms.size());
    out.column_terms.push_back(t);
  }

  // Precompute per-column IDF where the scheme needs it.
  const bool uses_idf = options.scheme == WeightingScheme::kTfIdf ||
                        options.scheme == WeightingScheme::kTfIdfNormalized;
  const bool uses_bm25 = options.scheme == WeightingScheme::kOkapiBm25;
  std::vector<double> idf(out.column_terms.size(), 0.0);
  if (uses_idf || uses_bm25) {
    for (size_t c = 0; c < out.column_terms.size(); ++c) {
      idf[c] = uses_bm25 ? Bm25Idf(corpus, out.column_terms[c])
                         : Idf(corpus, out.column_terms[c]);
    }
  }
  const double avg_doc_len =
      n_docs > 0 ? static_cast<double>(corpus.total_tokens()) /
                       static_cast<double>(n_docs)
                 : 1.0;

  std::vector<la::Triplet> triplets;
  for (size_t d = 0; d < n_docs; ++d) {
    const Document& doc = corpus.doc(d);
    size_t row_start = triplets.size();
    double sq_sum = 0.0;
    for (const TermCount& tc : doc.counts) {
      uint32_t col = term_to_col[tc.term];
      if (col == kUnknownTerm) continue;
      double tf = static_cast<double>(tc.count);  // Eq. (1)
      double w = 0.0;
      switch (options.scheme) {
        case WeightingScheme::kTf:
          w = tf;
          break;
        case WeightingScheme::kBoolean:
          w = 1.0;
          break;
        case WeightingScheme::kLogTf:
          w = 1.0 + std::log2(tf);
          break;
        case WeightingScheme::kTfIdf:
        case WeightingScheme::kTfIdfNormalized:
          w = tf * idf[col];  // Eq. (3)
          break;
        case WeightingScheme::kOkapiBm25: {
          double k1 = options.bm25_k1;
          double b = options.bm25_b;
          double norm = k1 * (1.0 - b + b * static_cast<double>(doc.length) /
                                             std::max(avg_doc_len, 1e-9));
          w = idf[col] * tf * (k1 + 1.0) / (tf + norm);
          break;
        }
      }
      if (w == 0.0) continue;
      triplets.push_back({static_cast<uint32_t>(d), col, w});
      sq_sum += w * w;
    }
    if (options.scheme == WeightingScheme::kTfIdfNormalized && sq_sum > 0.0) {
      double inv_norm = 1.0 / std::sqrt(sq_sum);  // Eq. (4)-(5)
      for (size_t i = row_start; i < triplets.size(); ++i) {
        triplets[i].value *= inv_norm;
      }
    }
  }
  out.matrix = la::CsrMatrix::FromTriplets(n_docs, out.column_terms.size(),
                                           std::move(triplets));
  return out;
}

}  // namespace newsdiff::corpus
