#include "corpus/corpus.h"

#include <algorithm>

namespace newsdiff::corpus {

size_t Corpus::AddDocument(const std::vector<std::string>& tokens,
                           UnixSeconds timestamp, int64_t external_id) {
  Document doc;
  doc.external_id = external_id;
  doc.timestamp = timestamp;
  doc.tokens.reserve(tokens.size());
  for (const std::string& t : tokens) {
    doc.tokens.push_back(vocab_.GetOrAdd(t));
  }
  doc.length = static_cast<uint32_t>(doc.tokens.size());
  total_tokens_ += doc.length;

  // Build the sorted bag of counts.
  std::vector<uint32_t> sorted = doc.tokens;
  std::sort(sorted.begin(), sorted.end());
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i + 1;
    while (j < sorted.size() && sorted[j] == sorted[i]) ++j;
    doc.counts.push_back({sorted[i], static_cast<uint32_t>(j - i)});
    vocab_.IncrementDocFreq(sorted[i]);
    vocab_.AddTermFreq(sorted[i], j - i);
    i = j;
  }
  docs_.push_back(std::move(doc));
  return docs_.size() - 1;
}

}  // namespace newsdiff::corpus
