#ifndef NEWSDIFF_CORPUS_WEIGHTING_H_
#define NEWSDIFF_CORPUS_WEIGHTING_H_

#include <string>
#include <vector>

#include "corpus/corpus.h"
#include "la/sparse.h"

namespace newsdiff::corpus {

/// Term-weighting schemes. The first three are the paper's §3.1 (Eq. 1-5);
/// the rest come from the comparison study the paper bases its topic-model
/// design choice on (Truică et al. [35], "Comparing different term
/// weighting schemas for Topic Modeling") and back the
/// `ablation_weighting` benchmark.
enum class WeightingScheme {
  /// Raw term frequency, Eq. (1).
  kTf,
  /// TF * IDF with IDF = log2(n / n_ij), Eq. (3).
  kTfIdf,
  /// TFIDF l2-normalised per document into [0, 1], Eq. (4)-(5). This is the
  /// scheme the paper feeds to NMF.
  kTfIdfNormalized,
  /// Presence indicator: 1 if the term occurs in the document.
  kBoolean,
  /// Sublinear TF: 1 + log2(tf).
  kLogTf,
  /// Okapi BM25 with k1 = 1.2, b = 0.75 and the standard smoothed IDF.
  kOkapiBm25,
};

/// Short stable name for a scheme ("TFIDF_N", "BM25", ...).
const char* WeightingSchemeName(WeightingScheme scheme);

/// Options for building a document-term matrix.
struct DtmOptions {
  WeightingScheme scheme = WeightingScheme::kTfIdfNormalized;
  /// Drop terms appearing in fewer than this many documents.
  uint32_t min_doc_freq = 1;
  /// Drop terms appearing in more than this fraction of documents
  /// (1.0 disables the cutoff).
  double max_doc_fraction = 1.0;
  /// BM25 parameters (used only by kOkapiBm25).
  double bm25_k1 = 1.2;
  double bm25_b = 0.75;
};

/// Result of building a document-term matrix: the matrix plus the mapping
/// from matrix columns back to vocabulary term ids (columns may be a
/// filtered subset of the vocabulary).
struct DocumentTermMatrix {
  la::CsrMatrix matrix;                 // n_docs x n_kept_terms
  std::vector<uint32_t> column_terms;   // column -> vocab term id
};

/// IDF of a term: log2(n / n_ij) per Eq. (2). Returns 0 for unseen terms.
double Idf(const Corpus& corpus, uint32_t term);

/// BM25's smoothed IDF: ln((n - df + 0.5) / (df + 0.5) + 1).
double Bm25Idf(const Corpus& corpus, uint32_t term);

/// Builds the weighted document-term matrix A of §3.1 over the corpus.
DocumentTermMatrix BuildDocumentTermMatrix(const Corpus& corpus,
                                           const DtmOptions& options = {});

}  // namespace newsdiff::corpus

#endif  // NEWSDIFF_CORPUS_WEIGHTING_H_
