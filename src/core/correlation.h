#ifndef NEWSDIFF_CORE_CORRELATION_H_
#define NEWSDIFF_CORE_CORRELATION_H_

#include <vector>

#include "core/trending.h"

namespace newsdiff::core {

/// A correlated <trending news topic, Twitter event> pair (§4.6, §5.5).
struct EventCorrelation {
  size_t trending = 0;       // index into the trending-topic list
  size_t twitter_event = 0;  // index into the Twitter-event list
  double similarity = 0.0;
};

struct CorrelationOptions {
  /// Minimum similarity to keep a pair (the paper uses > 0.65).
  double min_similarity = 0.65;
  /// A Twitter event may start at most this long after the news event
  /// (S_TE in [S_NE, S_NE + window]; the paper uses 5 days).
  int64_t start_window_seconds = 5 * kSecondsPerDay;
};

/// Finds all pairs satisfying the time-window constraint and the similarity
/// threshold: trending news topics -> Twitter events.
std::vector<EventCorrelation> CorrelateTrendingWithTwitter(
    const std::vector<TrendingNewsTopic>& trending,
    const std::vector<event::Event>& news_events,
    const std::vector<event::Event>& twitter_events,
    const embed::PretrainedStore& store, const CorrelationOptions& options);

/// The reverse correlation (Twitter events -> trending news topics): for
/// each Twitter event, all trending topics whose news event starts within
/// the window before it, above the threshold. The paper observes this
/// yields the same pair set; the symmetric constraints make that exact
/// here, and the benches verify it.
std::vector<EventCorrelation> CorrelateTwitterWithTrending(
    const std::vector<TrendingNewsTopic>& trending,
    const std::vector<event::Event>& news_events,
    const std::vector<event::Event>& twitter_events,
    const embed::PretrainedStore& store, const CorrelationOptions& options);

/// Indices of Twitter events that appear in no correlation pair
/// (the generic-chatter events of Table 7).
std::vector<size_t> UnrelatedTwitterEvents(
    const std::vector<EventCorrelation>& pairs, size_t num_twitter_events);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_CORRELATION_H_
