#ifndef NEWSDIFF_CORE_PREPROCESS_H_
#define NEWSDIFF_CORE_PREPROCESS_H_

#include <vector>

#include "corpus/corpus.h"
#include "core/types.h"

namespace newsdiff::core {

/// The preprocessing module (§4.2): turns store records into the three
/// corpora the downstream algorithms consume. Document order in each corpus
/// matches the input record order, so corpus index i refers back to
/// records[i].

/// NewsTM: title + body through the topic-modeling recipe (entity folding,
/// lemmas, stopword removal).
corpus::Corpus BuildNewsTM(const std::vector<NewsRecord>& news);

/// NewsED: title + body through the minimal event-detection recipe.
corpus::Corpus BuildNewsED(const std::vector<NewsRecord>& news);

/// TwitterED: tweet text through the tweet event-detection recipe
/// (URL / mention / hashtag cleanup + tokenisation).
corpus::Corpus BuildTwitterED(const std::vector<TweetRecord>& tweets);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_PREPROCESS_H_
