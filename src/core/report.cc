#include "core/report.h"

#include "common/time.h"
#include "store/json.h"

namespace newsdiff::core {
namespace {

store::Value EventSummary(const event::Event& ev) {
  store::Array keywords;
  for (const std::string& w : ev.related_words) keywords.emplace_back(w);
  return store::MakeObject({
      {"label", ev.main_word},
      {"start", FormatTimestamp(ev.start_time)},
      {"end", FormatTimestamp(ev.end_time)},
      {"support", static_cast<int64_t>(ev.support)},
      {"magnitude", ev.magnitude},
      {"keywords", store::Value(std::move(keywords))},
  });
}

}  // namespace

store::Value BuildReport(const PipelineResult& result) {
  store::Value report = store::MakeObject({
      {"articles", static_cast<int64_t>(result.news.size())},
      {"tweets", static_cast<int64_t>(result.tweets.size())},
  });

  store::Array topics;
  for (const topic::Topic& t : result.topics) {
    store::Array keywords;
    for (const std::string& kw : t.keywords) keywords.emplace_back(kw);
    topics.push_back(store::MakeObject({
        {"id", static_cast<int64_t>(t.id)},
        {"keywords", store::Value(std::move(keywords))},
    }));
  }
  report.Set("topics", store::Value(std::move(topics)));

  store::Array news_events;
  for (const event::Event& ev : result.news_events) {
    news_events.push_back(EventSummary(ev));
  }
  report.Set("news_events", store::Value(std::move(news_events)));

  store::Array twitter_events;
  for (const event::Event& ev : result.twitter_events) {
    twitter_events.push_back(EventSummary(ev));
  }
  report.Set("twitter_events", store::Value(std::move(twitter_events)));

  store::Array trending;
  for (size_t ti = 0; ti < result.trending.size(); ++ti) {
    const TrendingNewsTopic& t = result.trending[ti];
    store::Array echoes;
    for (const EventCorrelation& c : result.correlations) {
      if (c.trending != ti) continue;
      echoes.push_back(store::MakeObject({
          {"twitter_event",
           result.twitter_events[c.twitter_event].main_word},
          {"similarity", c.similarity},
      }));
    }
    trending.push_back(store::MakeObject({
        {"topic_id", static_cast<int64_t>(t.topic_id)},
        {"news_event", result.news_events[t.news_event].main_word},
        {"similarity", t.similarity},
        {"twitter_echoes", store::Value(std::move(echoes))},
    }));
  }
  report.Set("trending_news_topics", store::Value(std::move(trending)));

  report.Set("timings_seconds",
             store::MakeObject({
                 {"topics", result.topic_seconds},
                 {"news_events", result.news_event_seconds},
                 {"twitter_events", result.twitter_event_seconds},
                 {"trending", result.trending_seconds},
                 {"correlation", result.correlation_seconds},
                 {"assignment", result.assignment_seconds},
             }));
  return report;
}

std::string ReportJson(const PipelineResult& result) {
  return store::ToPrettyJson(BuildReport(result));
}

}  // namespace newsdiff::core
