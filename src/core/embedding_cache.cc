#include "core/embedding_cache.h"

#include <filesystem>

#include "common/logging.h"
#include "common/time.h"
#include "datagen/world.h"

namespace newsdiff::core {

StatusOr<embed::PretrainedStore> LoadOrTrainPretrained(
    const std::string& cache_path, const PretrainedConfig& config) {
  if (!cache_path.empty() && std::filesystem::exists(cache_path)) {
    StatusOr<embed::PretrainedStore> loaded =
        embed::PretrainedStore::LoadText(cache_path);
    if (loaded.ok() && loaded->dimension() == config.dimension) {
      return loaded;
    }
    NEWSDIFF_LOG(Warning) << "ignoring stale embedding cache " << cache_path;
  }
  WallTimer timer;
  std::vector<std::vector<std::string>> background =
      datagen::BackgroundSentences(config.background_sentences, config.seed);
  embed::Word2VecOptions opts;
  opts.dimension = config.dimension;
  opts.epochs = config.epochs;
  opts.min_count = 2;
  opts.mode = embed::Word2VecMode::kSkipGram;
  opts.seed = config.seed;
  StatusOr<embed::PretrainedStore> store =
      embed::PretrainedStore::TrainFromBackground(background, opts);
  if (!store.ok()) return store.status();
  NEWSDIFF_LOG(Info) << "trained background embeddings ("
                     << store->size() << " words, " << config.dimension
                     << "d) in " << timer.ElapsedSeconds() << "s";
  if (!cache_path.empty()) {
    std::filesystem::path parent =
        std::filesystem::path(cache_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
    }
    Status s = store->SaveText(cache_path);
    if (!s.ok()) {
      NEWSDIFF_LOG(Warning) << "could not cache embeddings: " << s.ToString();
    }
  }
  return store;
}

}  // namespace newsdiff::core
