#ifndef NEWSDIFF_CORE_TUNING_H_
#define NEWSDIFF_CORE_TUNING_H_

#include <string>
#include <vector>

#include "core/cross_validation.h"

namespace newsdiff::core {

/// One hyperparameter configuration to try: a label plus the options to
/// evaluate.
struct TuningCandidate {
  std::string label;
  NetworkKind kind = NetworkKind::kMlp1;
  PredictorOptions options;
};

/// Outcome of a grid search over candidates (§5.6: the paper fixes its
/// four configurations "after hyperparameter tuning and cross validation";
/// this utility is that step).
struct TuningResult {
  /// Mean CV accuracy per candidate, aligned with the input order.
  std::vector<CrossValidationResult> per_candidate;
  /// Index of the best candidate by mean accuracy (ties: first).
  size_t best_index = 0;
};

/// Cross-validates every candidate on (x, y) and returns the scores and
/// the winner. `folds` as in CrossValidate. `grid` runs whole grid cells
/// (candidate CV runs) as coarse-grain tasks on the shared pool: each cell
/// is already seed-isolated (CrossValidate derives everything from its
/// candidate's options) and writes its own result slot, and nested
/// parallel regions execute inline, so scores and the winner are bitwise
/// identical to the serial sweep at any `grid` setting.
StatusOr<TuningResult> TunePredictor(
    const la::Matrix& x, const std::vector<int>& y,
    const std::vector<TuningCandidate>& candidates, size_t folds = 3,
    const Parallelism& grid = {});

/// The paper's §5.6 search space: MLP/CNN crossed with SGD (lr 0.1/0.5)
/// and ADADELTA (lr 1/2), as described in the tuning discussion.
std::vector<TuningCandidate> PaperSearchSpace(
    const PredictorOptions& base = {});

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_TUNING_H_
