#include "core/features.h"

#include <cassert>

#include "datagen/world.h"

namespace newsdiff::core {

const char* DatasetVariantName(DatasetVariant v) {
  switch (v) {
    case DatasetVariant::kA1:
      return "A1";
    case DatasetVariant::kA2:
      return "A2";
    case DatasetVariant::kB1:
      return "B1";
    case DatasetVariant::kB2:
      return "B2";
    case DatasetVariant::kC1:
      return "C1";
    case DatasetVariant::kC2:
      return "C2";
    case DatasetVariant::kD1:
      return "D1";
    case DatasetVariant::kD2:
      return "D2";
  }
  return "?";
}

const std::vector<DatasetVariant>& AllDatasetVariants() {
  static const auto* kAll = new std::vector<DatasetVariant>{
      DatasetVariant::kA1, DatasetVariant::kA2, DatasetVariant::kB1,
      DatasetVariant::kB2, DatasetVariant::kC1, DatasetVariant::kC2,
      DatasetVariant::kD1, DatasetVariant::kD2,
  };
  return *kAll;
}

std::vector<EventTweetAssignment> AssignTweetsToEvents(
    const corpus::Corpus& twitter_corpus,
    const std::vector<event::Event>& twitter_events,
    const std::vector<size_t>& event_indices, const FeatureOptions& options) {
  std::vector<EventTweetAssignment> out;
  for (size_t ei : event_indices) {
    const event::Event& ev = twitter_events[ei];
    EventTweetAssignment assign;
    assign.twitter_event = ei;
    for (size_t d = 0; d < twitter_corpus.size(); ++d) {
      if (event::Mabed::DocumentBelongsToEvent(twitter_corpus.doc(d), ev,
                                               options.related_fraction)) {
        assign.tweet_indices.push_back(d);
      }
    }
    if (assign.tweet_indices.size() >= options.min_event_tweets) {
      out.push_back(std::move(assign));
    }
  }
  return out;
}

embed::EventWordWeights EventContextWeights(const event::Event& ev) {
  embed::EventWordWeights weights;
  weights.emplace(ev.main_word, 1.0);
  for (size_t i = 0; i < ev.related_words.size(); ++i) {
    weights.emplace(ev.related_words[i], ev.related_weights[i]);
  }
  return weights;
}

namespace {

embed::Doc2VecVariant EmbeddingOf(DatasetVariant v) {
  switch (v) {
    case DatasetVariant::kB1:
    case DatasetVariant::kB2:
      return embed::Doc2VecVariant::kRnd;
    case DatasetVariant::kC1:
    case DatasetVariant::kC2:
      return embed::Doc2VecVariant::kSwm;
    default:
      return embed::Doc2VecVariant::kSw;
  }
}

bool HasMetadata(DatasetVariant v) {
  switch (v) {
    case DatasetVariant::kA2:
    case DatasetVariant::kB2:
    case DatasetVariant::kC2:
    case DatasetVariant::kD2:
      return true;
    default:
      return false;
  }
}

bool HasFollowersFeature(DatasetVariant v) {
  return v == DatasetVariant::kD2;
}

constexpr size_t kMetadataDim = 8;  // 7 one-hot buckets + day of week

}  // namespace

TrainingDataset BuildDataset(
    DatasetVariant variant,
    const std::vector<EventTweetAssignment>& assignments,
    const std::vector<event::Event>& twitter_events,
    const corpus::Corpus& twitter_corpus,
    const std::vector<TweetRecord>& tweets,
    const embed::PretrainedStore& store) {
  assert(twitter_corpus.size() == tweets.size());
  const embed::Doc2VecVariant emb = EmbeddingOf(variant);
  const bool metadata = HasMetadata(variant);
  const bool followers_feature = HasFollowersFeature(variant);

  TrainingDataset ds;
  ds.embedding_dim = store.dimension();
  ds.feature_dim = ds.embedding_dim + (metadata ? kMetadataDim : 0) +
                   (followers_feature ? 1 : 0);

  size_t rows = 0;
  for (const EventTweetAssignment& a : assignments) {
    rows += a.tweet_indices.size();
  }
  ds.x.Resize(rows, ds.feature_dim);
  ds.likes.reserve(rows);
  ds.retweets.reserve(rows);

  size_t row = 0;
  std::vector<std::string> token_strings;
  for (const EventTweetAssignment& a : assignments) {
    const event::Event& ev = twitter_events[a.twitter_event];
    embed::EventWordWeights weights = EventContextWeights(ev);
    for (size_t tweet_idx : a.tweet_indices) {
      const corpus::Document& doc = twitter_corpus.doc(tweet_idx);
      const TweetRecord& rec = tweets[tweet_idx];
      token_strings.clear();
      token_strings.reserve(doc.tokens.size());
      for (uint32_t t : doc.tokens) {
        token_strings.push_back(twitter_corpus.vocabulary().Term(t));
      }
      std::vector<double> vec =
          embed::EmbedDocument(token_strings, store, emb, &weights);
      double* out = ds.x.RowPtr(row);
      std::copy(vec.begin(), vec.end(), out);
      size_t cursor = ds.embedding_dim;
      if (metadata) {
        out[cursor + static_cast<size_t>(rec.follower_bucket)] = 1.0;
        out[cursor + 7] =
            static_cast<double>(DayOfWeek(rec.created)) / 6.0;
        cursor += kMetadataDim;
      }
      if (followers_feature) {
        out[cursor] = static_cast<double>(rec.follower_class);
        ++cursor;
      }
      ds.likes.push_back(datagen::EncodeCountClass(rec.likes));
      ds.retweets.push_back(datagen::EncodeCountClass(rec.retweets));
      ++row;
    }
  }
  assert(row == rows);
  return ds;
}

}  // namespace newsdiff::core
