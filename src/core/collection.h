#ifndef NEWSDIFF_CORE_COLLECTION_H_
#define NEWSDIFF_CORE_COLLECTION_H_

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "store/database.h"

namespace newsdiff::core {

/// The data-collection/storage boundary of the architecture (§4.1):
/// the crawler modules write raw documents into the store; these readers
/// load them back as typed records for the processing modules.

/// Reads the "news" collection. Missing fields default to empty/zero.
StatusOr<std::vector<NewsRecord>> LoadNews(const store::Database& db);

/// Reads the "tweets" collection, joining each tweet's author against the
/// "users" collection to fill follower metadata (an indexed equality
/// lookup; the index is created on demand).
StatusOr<std::vector<TweetRecord>> LoadTweets(store::Database& db);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_COLLECTION_H_
