#ifndef NEWSDIFF_CORE_ENGINE_H_
#define NEWSDIFF_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/predictor.h"
#include "core/supervisor.h"
#include "index/index.h"
#include "la/matrix.h"
#include "serve/inference_server.h"
#include "store/database.h"

namespace newsdiff {

/// The one configuration aggregate for the public Engine API. Before this
/// existed, callers assembled Parallelism, KernelConfig, PipelineOptions,
/// PredictorOptions, and the supervisor's snapshot/WAL/lease knobs by hand
/// and had to keep the embedded copies consistent themselves. EngineOptions
/// owns the authoritative copy of each and hands the per-module views out
/// itself: set `parallelism` once here and every module view carries it.
struct EngineOptions {
  /// Execution parallelism for every compute path — pipeline stages, the
  /// blocked GEMM kernels (via the embedded KernelConfig), and predictor
  /// training. This field is authoritative: the copies inside `pipeline`
  /// and `predictor` are overwritten by the view accessors.
  Parallelism parallelism;

  /// Analysis-pipeline stage configuration (thresholds, slice widths).
  core::PipelineOptions pipeline;

  /// Interest-predictor training regime (§5.6 networks).
  core::PredictorOptions predictor;

  /// Durability: snapshot directory, WAL, writer lease. The supervisor view
  /// is handed to PipelineSupervisor unchanged.
  core::SupervisorOptions supervisor;

  /// Inverted-index build parameters (block size, BM25 k1/b).
  index::IndexOptions index;

  /// Where index generations live. Empty uses
  /// `<supervisor.snapshot_dir>/index` when a snapshot dir is set, and
  /// disables index persistence otherwise (queries still work in memory).
  std::string index_dir;

  /// Index generations kept on disk (>= 1).
  size_t index_retain = 2;

  /// Filesystem seam for index persistence; nullptr = DefaultFileIo().
  /// Tests point this at the storage fault injector.
  FileIo* io = nullptr;

  /// Batched model serving: PredictInterest reranks retrieved candidates
  /// through a small MLP (trained per BuildIndex over hashed features)
  /// via the coalescing InferenceServer. Disable `serving.enable_model`
  /// to reproduce the PR-8 BM25 class vote exactly.
  serve::ServingOptions serving;

  /// Per-module views: the aggregate copied down with the authoritative
  /// `parallelism` substituted in.
  core::PipelineOptions PipelineView() const;
  core::PredictorOptions PredictorView() const;
  core::SupervisorOptions SupervisorView() const;
  serve::ServingOptions ServingView() const;
  /// Resolved index directory (may be empty: in-memory only).
  std::string IndexDir() const;
};

/// One ranked document from an Engine query, joined with its DocInfo.
struct QueryHit {
  uint32_t doc = 0;          // dense id inside the queried index
  int64_t external_id = 0;   // store DocId of the article / tweet
  int64_t timestamp = 0;     // published / created time
  double score = 0.0;        // BM25 score
  double label = 0.0;        // carried label (tweets: Table-2 likes class)
  /// Model-predicted expected interest class (sum_c c * P(c)); 0 on the
  /// BM25-vote fallback path.
  double model_score = 0.0;
};

/// PredictInterest outcome. With the serving model enabled the retrieved
/// candidates are scored by the trained MLP and the class weights are the
/// retrieval-score-weighted average of the model's per-candidate class
/// probabilities (neighbors come back reranked by model interest);
/// without it, the PR-8 BM25 class vote.
struct InterestPrediction {
  int predicted_class = 0;            // argmax of class_weights
  std::vector<double> class_weights;  // per-class mass, normalised to 1
  double confidence = 0.0;            // class_weights[predicted_class]
  std::vector<QueryHit> neighbors;    // the supporting tweets
  bool model_reranked = false;        // true when the MLP scored the hits
  uint64_t model_version = 0;         // serving-model generation used
};

/// A point-in-time copy of the Engine's serving counters. The counters
/// themselves are relaxed atomics bumped on the serving hot path (the load
/// harness's stats hook); Engine::stats() materialises this plain snapshot
/// so callers can diff before/after a run without touching atomics.
struct EngineStatsSnapshot {
  uint64_t trending_queries = 0;     // QueryTrending calls
  uint64_t interest_predictions = 0; // PredictInterest calls
  uint64_t serving_errors = 0;       // non-OK, non-NotFound outcomes
  uint64_t not_found = 0;            // PredictInterest with no matching tweet
  uint64_t index_swaps = 0;          // BuildIndex / LoadIndex generation swaps
  uint64_t docs_scored = 0;          // summed QueryStats::docs_scored
  uint64_t blocks_decoded = 0;       // summed QueryStats::blocks_decoded
  // Batched-inference telemetry, merged from InferenceServerStats (all
  // zero when the serving model is disabled).
  uint64_t model_predictions = 0;    // PredictInterest answered by the MLP
  uint64_t inference_batches = 0;    // coalesced batches executed
  uint64_t inference_batched_rows = 0;
  uint64_t inference_queue_rejections = 0;
  uint64_t model_swaps = 0;          // serving-model generations installed

  /// Mean rows per coalesced batch (0 before the first batch).
  double MeanBatchFill() const {
    return inference_batches == 0
               ? 0.0
               : static_cast<double>(inference_batched_rows) /
                     static_cast<double>(inference_batches);
  }
};

/// What Engine::BuildIndex produced.
struct BuildIndexReport {
  size_t news_docs = 0;
  size_t tweet_docs = 0;
  size_t news_terms = 0;
  size_t tweet_terms = 0;
  /// Generation committed to disk (0 when persistence is disabled).
  uint64_t generation = 0;
};

/// The public serving facade: one object that owns the supervised analysis
/// pipeline (offline refresh), the durable document store recovery, and the
/// online top-k query path over block-compressed inverted indexes. All
/// entrypoints return Status/StatusOr — no bool-or-crash seams.
///
///   newsdiff::Engine engine(options);
///   engine.Recover(db);                    // load snapshot + newest index
///   engine.RunPipeline(db, embeddings);    // offline refresh (§4 stages)
///   engine.BuildIndex(db);                 // invert news + tweets
///   engine.QueryTrending("federal bank rate", 10);
///   engine.PredictInterest(draft_text, 50);
///
/// Queries are served from two indexes named "news" and "tweets", built
/// with the same text pipelines the offline stages use (PreprocessNewsED /
/// PreprocessTwitterED), so online tokenisation matches the corpora
/// byte-for-byte. Rankings are exactly the brute-force BM25 ranking — the
/// index only changes the cost, never the answer (see index/index.h).
///
/// Concurrency: QueryTrending / PredictInterest are safe to call from any
/// number of threads concurrently with BuildIndex / LoadIndex. The index
/// map lives behind an immutable shared_ptr snapshot that a swap replaces
/// atomically: in-flight queries keep the generation they started on alive
/// until they finish, and never observe a half-built map. The offline
/// entrypoints (Recover, RunPipeline, BuildIndex over a mutating Database)
/// are NOT safe against concurrent writers of the same Database — the load
/// driver serialises store writes behind its own mutex (loadgen/driver.h).
class Engine {
 public:
  using IndexMap = std::map<std::string, index::InvertedIndex>;

  explicit Engine(EngineOptions options);

  const EngineOptions& options() const { return options_; }

  /// Restores the document store from the newest intact snapshot and loads
  /// the newest intact index generation. Missing state is not an error —
  /// a fresh deployment recovers to empty.
  Status Recover(store::Database& db);

  /// Runs the supervised analysis pipeline (checkpointed, WAL-synced, and
  /// lease-fenced per the supervisor options).
  StatusOr<core::PipelineResult> RunPipeline(
      store::Database& db, const embed::PretrainedStore& embeddings);

  /// Inverts the store's "news" and "tweets" collections into the two
  /// query indexes and commits them as one new generation (when an index
  /// directory is configured). Tweet DocInfo labels carry the Table-2
  /// likes class, which PredictInterest votes over.
  StatusOr<BuildIndexReport> BuildIndex(store::Database& db);

  /// Loads the newest intact index generation from disk, replacing the
  /// in-memory indexes. No directory configured → kFailedPrecondition.
  StatusOr<index::IndexLoadReport> LoadIndex();

  /// Top-k articles for a free-text query against the "news" index.
  /// kFailedPrecondition until an index is built or loaded.
  StatusOr<std::vector<QueryHit>> QueryTrending(
      const std::string& query, size_t k,
      index::QueryStats* stats = nullptr) const;

  /// Audience-interest estimate for a draft article: retrieves the top-k
  /// most similar tweets and — when the serving model is live — scores
  /// them through the batched inference server, weighting each
  /// candidate's class probabilities by its retrieval score. Falls back
  /// to the BM25 class vote until a model is trained (BuildIndex trains
  /// one per generation). Returns kNotFound when nothing matches.
  StatusOr<InterestPrediction> PredictInterest(
      const std::string& draft, size_t k,
      index::QueryStats* stats = nullptr) const;

  /// Scores many drafts in one call: all candidates retrieved for all
  /// drafts are concatenated into a single inference batch (one GEMM
  /// chain), then split back per draft. Per-draft failures (e.g. no
  /// matching tweets) come back as that element's Status without failing
  /// the rest.
  std::vector<StatusOr<InterestPrediction>> PredictInterestBatch(
      const std::vector<std::string>& drafts, size_t k) const;

  /// The current index generation as an immutable snapshot. Holding the
  /// returned shared_ptr keeps that generation alive across any number of
  /// concurrent BuildIndex / LoadIndex swaps — the handle concurrent
  /// readers (and the load driver's workers) query through.
  std::shared_ptr<const IndexMap> IndexSnapshot() const;

  /// The named index ("news" / "tweets") in the current snapshot, or
  /// nullptr. The pointer is valid until the next swap retires the
  /// snapshot; concurrent callers should hold IndexSnapshot() instead.
  const index::InvertedIndex* GetIndex(const std::string& name) const;

  /// Index generation currently in memory (0 = unsaved / in-memory only).
  uint64_t index_generation() const {
    return index_generation_.load(std::memory_order_relaxed);
  }

  /// Serving counters since construction (see EngineStatsSnapshot).
  EngineStatsSnapshot stats() const;

  /// The batched inference server, or nullptr when the serving model is
  /// disabled. Benches use it to compare the coalesced path against the
  /// per-call fallback on identical inputs.
  serve::InferenceServer* inference_server() const {
    return inference_.get();
  }

  /// Serving-model generation currently installed (0 = none yet).
  uint64_t model_version() const {
    return inference_ == nullptr ? 0 : inference_->model_version();
  }

  /// Escape hatch to the supervisor for follower/promotion flows.
  core::PipelineSupervisor& supervisor() { return supervisor_; }

 private:
  /// Everything one PredictInterest needs pinned together: the index
  /// generation AND the candidate feature rows aligned with the "tweets"
  /// index's dense doc ids. One shared_ptr swap publishes both, so a
  /// query can never score generation-G docs with generation-G' features.
  struct ServingData {
    IndexMap indexes;
    la::Matrix tweet_features;
  };

  /// Relaxed atomics bumped on the serving hot path. Relaxed is enough:
  /// the counters are monotonic telemetry, never used for synchronisation.
  struct Counters {
    std::atomic<uint64_t> trending_queries{0};
    std::atomic<uint64_t> interest_predictions{0};
    std::atomic<uint64_t> serving_errors{0};
    std::atomic<uint64_t> not_found{0};
    std::atomic<uint64_t> index_swaps{0};
    std::atomic<uint64_t> docs_scored{0};
    std::atomic<uint64_t> blocks_decoded{0};
    std::atomic<uint64_t> model_predictions{0};
  };

  FileIo& io() const;
  std::shared_ptr<const ServingData> ServingSnapshot() const;
  StatusOr<std::vector<QueryHit>> QueryOn(const ServingData& data,
                                          const std::string& index_name,
                                          const std::vector<std::string>& terms,
                                          size_t k,
                                          index::QueryStats* stats) const;
  StatusOr<std::vector<QueryHit>> Query(const std::string& index_name,
                                        const std::vector<std::string>& terms,
                                        size_t k,
                                        index::QueryStats* stats) const;
  /// Publishes `built` (indexes without features) as the new generation.
  void SwapIndexes(IndexMap built, uint64_t generation);
  /// Publishes a full serving snapshot (indexes + candidate features).
  void SwapServing(ServingData data, uint64_t generation);
  /// Combines retrieval hits and per-candidate model probabilities into a
  /// prediction (weights normalised, neighbors reranked by model score).
  InterestPrediction CombineModelPrediction(std::vector<QueryHit> hits,
                                            const la::Matrix& probs,
                                            size_t first_row) const;
  /// BM25 class vote over the hits (the pre-model fallback path).
  InterestPrediction VotePrediction(std::vector<QueryHit> hits) const;

  EngineOptions options_;
  core::PipelineSupervisor supervisor_;
  /// Guards the snapshot pointer only; the pointee is immutable.
  mutable std::mutex index_mu_;
  std::shared_ptr<const ServingData> serving_;
  std::atomic<uint64_t> index_generation_{0};
  std::atomic<uint64_t> model_generation_{0};
  std::unique_ptr<serve::InferenceServer> inference_;
  mutable Counters counters_;
};

}  // namespace newsdiff

#endif  // NEWSDIFF_CORE_ENGINE_H_
