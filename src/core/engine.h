#ifndef NEWSDIFF_CORE_ENGINE_H_
#define NEWSDIFF_CORE_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/predictor.h"
#include "core/supervisor.h"
#include "index/index.h"
#include "store/database.h"

namespace newsdiff {

/// The one configuration aggregate for the public Engine API. Before this
/// existed, callers assembled Parallelism, KernelConfig, PipelineOptions,
/// PredictorOptions, and the supervisor's snapshot/WAL/lease knobs by hand
/// and had to keep the embedded copies consistent themselves. EngineOptions
/// owns the authoritative copy of each and hands the per-module views out
/// itself: set `parallelism` once here and every module view carries it.
struct EngineOptions {
  /// Execution parallelism for every compute path — pipeline stages, the
  /// blocked GEMM kernels (via the embedded KernelConfig), and predictor
  /// training. This field is authoritative: the copies inside `pipeline`
  /// and `predictor` are overwritten by the view accessors.
  Parallelism parallelism;

  /// Analysis-pipeline stage configuration (thresholds, slice widths).
  core::PipelineOptions pipeline;

  /// Interest-predictor training regime (§5.6 networks).
  core::PredictorOptions predictor;

  /// Durability: snapshot directory, WAL, writer lease. The supervisor view
  /// is handed to PipelineSupervisor unchanged.
  core::SupervisorOptions supervisor;

  /// Inverted-index build parameters (block size, BM25 k1/b).
  index::IndexOptions index;

  /// Where index generations live. Empty uses
  /// `<supervisor.snapshot_dir>/index` when a snapshot dir is set, and
  /// disables index persistence otherwise (queries still work in memory).
  std::string index_dir;

  /// Index generations kept on disk (>= 1).
  size_t index_retain = 2;

  /// Filesystem seam for index persistence; nullptr = DefaultFileIo().
  /// Tests point this at the storage fault injector.
  FileIo* io = nullptr;

  /// Per-module views: the aggregate copied down with the authoritative
  /// `parallelism` substituted in.
  core::PipelineOptions PipelineView() const;
  core::PredictorOptions PredictorView() const;
  core::SupervisorOptions SupervisorView() const;
  /// Resolved index directory (may be empty: in-memory only).
  std::string IndexDir() const;
};

/// One ranked document from an Engine query, joined with its DocInfo.
struct QueryHit {
  uint32_t doc = 0;          // dense id inside the queried index
  int64_t external_id = 0;   // store DocId of the article / tweet
  int64_t timestamp = 0;     // published / created time
  double score = 0.0;        // BM25 score
  double label = 0.0;        // carried label (tweets: Table-2 likes class)
};

/// PredictInterest outcome: a score-weighted vote of the retrieved
/// neighbours' Table-2 interest classes.
struct InterestPrediction {
  int predicted_class = 0;            // argmax of class_weights
  std::vector<double> class_weights;  // BM25-mass per class, normalised
  double confidence = 0.0;            // class_weights[predicted_class]
  std::vector<QueryHit> neighbors;    // the supporting tweets
};

/// A point-in-time copy of the Engine's serving counters. The counters
/// themselves are relaxed atomics bumped on the serving hot path (the load
/// harness's stats hook); Engine::stats() materialises this plain snapshot
/// so callers can diff before/after a run without touching atomics.
struct EngineStatsSnapshot {
  uint64_t trending_queries = 0;     // QueryTrending calls
  uint64_t interest_predictions = 0; // PredictInterest calls
  uint64_t serving_errors = 0;       // non-OK, non-NotFound outcomes
  uint64_t not_found = 0;            // PredictInterest with no matching tweet
  uint64_t index_swaps = 0;          // BuildIndex / LoadIndex generation swaps
  uint64_t docs_scored = 0;          // summed QueryStats::docs_scored
  uint64_t blocks_decoded = 0;       // summed QueryStats::blocks_decoded
};

/// What Engine::BuildIndex produced.
struct BuildIndexReport {
  size_t news_docs = 0;
  size_t tweet_docs = 0;
  size_t news_terms = 0;
  size_t tweet_terms = 0;
  /// Generation committed to disk (0 when persistence is disabled).
  uint64_t generation = 0;
};

/// The public serving facade: one object that owns the supervised analysis
/// pipeline (offline refresh), the durable document store recovery, and the
/// online top-k query path over block-compressed inverted indexes. All
/// entrypoints return Status/StatusOr — no bool-or-crash seams.
///
///   newsdiff::Engine engine(options);
///   engine.Recover(db);                    // load snapshot + newest index
///   engine.RunPipeline(db, embeddings);    // offline refresh (§4 stages)
///   engine.BuildIndex(db);                 // invert news + tweets
///   engine.QueryTrending("federal bank rate", 10);
///   engine.PredictInterest(draft_text, 50);
///
/// Queries are served from two indexes named "news" and "tweets", built
/// with the same text pipelines the offline stages use (PreprocessNewsED /
/// PreprocessTwitterED), so online tokenisation matches the corpora
/// byte-for-byte. Rankings are exactly the brute-force BM25 ranking — the
/// index only changes the cost, never the answer (see index/index.h).
///
/// Concurrency: QueryTrending / PredictInterest are safe to call from any
/// number of threads concurrently with BuildIndex / LoadIndex. The index
/// map lives behind an immutable shared_ptr snapshot that a swap replaces
/// atomically: in-flight queries keep the generation they started on alive
/// until they finish, and never observe a half-built map. The offline
/// entrypoints (Recover, RunPipeline, BuildIndex over a mutating Database)
/// are NOT safe against concurrent writers of the same Database — the load
/// driver serialises store writes behind its own mutex (loadgen/driver.h).
class Engine {
 public:
  using IndexMap = std::map<std::string, index::InvertedIndex>;

  explicit Engine(EngineOptions options);

  const EngineOptions& options() const { return options_; }

  /// Restores the document store from the newest intact snapshot and loads
  /// the newest intact index generation. Missing state is not an error —
  /// a fresh deployment recovers to empty.
  Status Recover(store::Database& db);

  /// Runs the supervised analysis pipeline (checkpointed, WAL-synced, and
  /// lease-fenced per the supervisor options).
  StatusOr<core::PipelineResult> RunPipeline(
      store::Database& db, const embed::PretrainedStore& embeddings);

  /// Inverts the store's "news" and "tweets" collections into the two
  /// query indexes and commits them as one new generation (when an index
  /// directory is configured). Tweet DocInfo labels carry the Table-2
  /// likes class, which PredictInterest votes over.
  StatusOr<BuildIndexReport> BuildIndex(store::Database& db);

  /// Loads the newest intact index generation from disk, replacing the
  /// in-memory indexes. No directory configured → kFailedPrecondition.
  StatusOr<index::IndexLoadReport> LoadIndex();

  /// Top-k articles for a free-text query against the "news" index.
  /// kFailedPrecondition until an index is built or loaded.
  StatusOr<std::vector<QueryHit>> QueryTrending(
      const std::string& query, size_t k,
      index::QueryStats* stats = nullptr) const;

  /// Audience-interest estimate for a draft article: retrieves the top-k
  /// most similar tweets and takes the BM25-weighted vote of their
  /// interest classes. Returns kNotFound when nothing matches.
  StatusOr<InterestPrediction> PredictInterest(
      const std::string& draft, size_t k,
      index::QueryStats* stats = nullptr) const;

  /// The current index generation as an immutable snapshot. Holding the
  /// returned shared_ptr keeps that generation alive across any number of
  /// concurrent BuildIndex / LoadIndex swaps — the handle concurrent
  /// readers (and the load driver's workers) query through.
  std::shared_ptr<const IndexMap> IndexSnapshot() const;

  /// The named index ("news" / "tweets") in the current snapshot, or
  /// nullptr. The pointer is valid until the next swap retires the
  /// snapshot; concurrent callers should hold IndexSnapshot() instead.
  const index::InvertedIndex* GetIndex(const std::string& name) const;

  /// Index generation currently in memory (0 = unsaved / in-memory only).
  uint64_t index_generation() const {
    return index_generation_.load(std::memory_order_relaxed);
  }

  /// Serving counters since construction (see EngineStatsSnapshot).
  EngineStatsSnapshot stats() const;

  /// Escape hatch to the supervisor for follower/promotion flows.
  core::PipelineSupervisor& supervisor() { return supervisor_; }

 private:
  /// Relaxed atomics bumped on the serving hot path. Relaxed is enough:
  /// the counters are monotonic telemetry, never used for synchronisation.
  struct Counters {
    std::atomic<uint64_t> trending_queries{0};
    std::atomic<uint64_t> interest_predictions{0};
    std::atomic<uint64_t> serving_errors{0};
    std::atomic<uint64_t> not_found{0};
    std::atomic<uint64_t> index_swaps{0};
    std::atomic<uint64_t> docs_scored{0};
    std::atomic<uint64_t> blocks_decoded{0};
  };

  FileIo& io() const;
  StatusOr<std::vector<QueryHit>> Query(const std::string& index_name,
                                        const std::vector<std::string>& terms,
                                        size_t k,
                                        index::QueryStats* stats) const;
  /// Publishes `built` as the new current generation.
  void SwapIndexes(IndexMap built, uint64_t generation);

  EngineOptions options_;
  core::PipelineSupervisor supervisor_;
  /// Guards the snapshot pointer only; the pointee is immutable.
  mutable std::mutex index_mu_;
  std::shared_ptr<const IndexMap> indexes_;
  std::atomic<uint64_t> index_generation_{0};
  mutable Counters counters_;
};

}  // namespace newsdiff

#endif  // NEWSDIFF_CORE_ENGINE_H_
