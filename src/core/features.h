#ifndef NEWSDIFF_CORE_FEATURES_H_
#define NEWSDIFF_CORE_FEATURES_H_

#include <string>
#include <vector>

#include "core/correlation.h"
#include "core/types.h"
#include "embed/doc2vec.h"
#include "la/matrix.h"

namespace newsdiff::core {

/// The eight experimental datasets of §5.6. The letter selects the
/// document-embedding variant; the digit selects whether the metadata
/// vector is concatenated.
enum class DatasetVariant {
  kA1,  // SW_Doc2Vec
  kA2,  // SW_Doc2Vec + metadata
  kB1,  // RND_Doc2Vec
  kB2,  // RND_Doc2Vec + metadata
  kC1,  // SWM_Doc2Vec
  kC2,  // SWM_Doc2Vec + metadata
  kD1,  // SW_Doc2Vec (the D pair isolates the followers-count feature)
  kD2,  // SW_Doc2Vec + metadata + author followers-count feature
};

/// Short name ("A1" ... "D2").
const char* DatasetVariantName(DatasetVariant v);
/// All eight variants in paper order.
const std::vector<DatasetVariant>& AllDatasetVariants();

struct FeatureOptions {
  /// A tweet belongs to an event if posted in its interval, containing the
  /// main word and at least this fraction of the related words (§4.7).
  double related_fraction = 0.2;
  /// Events with fewer assigned tweets are dropped (§4.7: >= 10 records).
  size_t min_event_tweets = 10;
};

/// Tweets assigned to one Twitter event.
struct EventTweetAssignment {
  size_t twitter_event = 0;           // index into the Twitter-event list
  std::vector<size_t> tweet_indices;  // indices into the tweet record list
};

/// Assigns tweets to each listed Twitter event under the §4.7 rule and
/// drops under-supported events. `twitter_corpus` must be index-aligned
/// with the tweet records used later.
std::vector<EventTweetAssignment> AssignTweetsToEvents(
    const corpus::Corpus& twitter_corpus,
    const std::vector<event::Event>& twitter_events,
    const std::vector<size_t>& event_indices, const FeatureOptions& options);

/// A training dataset: one row per (event, tweet) membership — tweets in
/// several events contribute several rows, which is how the paper's
/// dataset grows (§5.6).
struct TrainingDataset {
  la::Matrix x;
  std::vector<int> likes;     // Table 2 classes
  std::vector<int> retweets;  // Table 2 classes
  size_t embedding_dim = 0;   // leading Doc2Vec columns
  size_t feature_dim = 0;     // total columns
};

/// Builds the feature matrix for `variant` over the event-tweet
/// assignments. The metadata vector (size 8) is a 7-way one-hot of the
/// author's follower-magnitude bucket plus the day-of-week (scaled to
/// [0, 1]); D2 appends the Table-2 followers class as a ninth extra
/// feature.
TrainingDataset BuildDataset(
    DatasetVariant variant,
    const std::vector<EventTweetAssignment>& assignments,
    const std::vector<event::Event>& twitter_events,
    const corpus::Corpus& twitter_corpus,
    const std::vector<TweetRecord>& tweets,
    const embed::PretrainedStore& store);

/// The §4.7 event-context word weights for SWM: main word 1.0, related
/// words their MABED weights.
embed::EventWordWeights EventContextWeights(const event::Event& ev);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_FEATURES_H_
