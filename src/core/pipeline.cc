#include "core/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "common/time.h"

namespace newsdiff::core {

std::vector<size_t> PipelineResult::CorrelatedTwitterEventIndices() const {
  std::vector<size_t> out;
  for (const EventCorrelation& p : correlations) out.push_back(p.twitter_event);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StatusOr<PipelineResult> Pipeline::Run(
    store::Database& db, const embed::PretrainedStore& store) const {
  PipelineResult result;

  // (i) Collection: read back what the crawlers stored.
  StatusOr<std::vector<NewsRecord>> news = LoadNews(db);
  if (!news.ok()) return news.status();
  result.news = std::move(news).value();
  StatusOr<std::vector<TweetRecord>> tweets = LoadTweets(db);
  if (!tweets.ok()) return tweets.status();
  result.tweets = std::move(tweets).value();
  if (result.news.empty()) return Status::FailedPrecondition("no news");
  if (result.tweets.empty()) return Status::FailedPrecondition("no tweets");
  for (const NewsRecord& rec : result.news) {
    if (rec.degraded) ++result.degraded_news;
  }
  if (result.degraded_news > 0) {
    NEWSDIFF_LOG(Warning)
        << "pipeline: " << result.degraded_news << "/" << result.news.size()
        << " articles ingested degraded (first paragraph only)";
  }

  // Preprocessing (§4.2): the three corpora.
  result.news_tm = BuildNewsTM(result.news);
  result.news_ed = BuildNewsED(result.news);
  result.twitter_ed = BuildTwitterED(result.tweets);

  WallTimer timer;

  // (ii) Topic modeling (§4.3).
  StatusOr<topic::TopicModel> model =
      topic::TopicModel::Fit(result.news_tm, options_.topics);
  if (!model.ok()) return model.status();
  result.topics = model->topics();
  result.topic_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // (iii) News event detection (§4.4).
  event::Mabed news_mabed(options_.news_mabed);
  StatusOr<std::vector<event::Event>> news_events =
      news_mabed.Detect(result.news_ed);
  if (!news_events.ok()) return news_events.status();
  result.news_events = std::move(news_events).value();
  result.news_event_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // (iv) Twitter event detection.
  event::Mabed twitter_mabed(options_.twitter_mabed);
  StatusOr<std::vector<event::Event>> twitter_events =
      twitter_mabed.Detect(result.twitter_ed);
  if (!twitter_events.ok()) return twitter_events.status();
  result.twitter_events = std::move(twitter_events).value();
  result.twitter_event_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // Trending news topics (§4.5).
  result.trending = ExtractTrendingTopics(result.topics, result.news_events,
                                          store, options_.trending);
  result.trending_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // Correlation with Twitter events (§4.6).
  result.correlations = CorrelateTrendingWithTwitter(
      result.trending, result.news_events, result.twitter_events, store,
      options_.correlation);
  result.unrelated_twitter_events =
      UnrelatedTwitterEvents(result.correlations, result.twitter_events.size());
  result.correlation_seconds = timer.ElapsedSeconds();
  timer.Restart();

  // Feature creation prerequisites (§4.7): tweet-event assignment over the
  // correlated Twitter events.
  result.assignments =
      AssignTweetsToEvents(result.twitter_ed, result.twitter_events,
                           result.CorrelatedTwitterEventIndices(),
                           options_.features);
  result.assignment_seconds = timer.ElapsedSeconds();

  NEWSDIFF_LOG(Info) << "pipeline: " << result.topics.size() << " topics, "
                     << result.news_events.size() << " news events, "
                     << result.twitter_events.size() << " twitter events, "
                     << result.trending.size() << " trending, "
                     << result.correlations.size() << " correlations, "
                     << result.assignments.size() << " assigned events";
  return result;
}

}  // namespace newsdiff::core
