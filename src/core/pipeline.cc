#include "core/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "common/time.h"

namespace newsdiff::core {

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {
  options_.topics.nmf.parallelism = options_.parallelism;
  options_.news_mabed.parallelism = options_.parallelism;
  options_.twitter_mabed.parallelism = options_.parallelism;
}

std::vector<size_t> PipelineResult::CorrelatedTwitterEventIndices() const {
  std::vector<size_t> out;
  for (const EventCorrelation& p : correlations) out.push_back(p.twitter_event);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Status Pipeline::LoadInputs(store::Database& db, PipelineResult* result) const {
  // (i) Collection: read back what the crawlers stored.
  StatusOr<std::vector<NewsRecord>> news = LoadNews(db);
  if (!news.ok()) return news.status();
  result->news = std::move(news).value();
  StatusOr<std::vector<TweetRecord>> tweets = LoadTweets(db);
  if (!tweets.ok()) return tweets.status();
  result->tweets = std::move(tweets).value();
  if (result->news.empty()) return Status::FailedPrecondition("no news");
  if (result->tweets.empty()) return Status::FailedPrecondition("no tweets");
  result->degraded_news = 0;
  for (const NewsRecord& rec : result->news) {
    if (rec.degraded) ++result->degraded_news;
  }
  if (result->degraded_news > 0) {
    NEWSDIFF_LOG(Warning)
        << "pipeline: " << result->degraded_news << "/" << result->news.size()
        << " articles ingested degraded (first paragraph only)";
  }

  // Preprocessing (§4.2): the three corpora.
  result->news_tm = BuildNewsTM(result->news);
  result->news_ed = BuildNewsED(result->news);
  result->twitter_ed = BuildTwitterED(result->tweets);
  return Status::OK();
}

Status Pipeline::RunTopics(PipelineResult* result) const {
  // (ii) Topic modeling (§4.3).
  WallTimer timer;
  StatusOr<topic::TopicModel> model =
      topic::TopicModel::Fit(result->news_tm, options_.topics);
  if (!model.ok()) return model.status();
  result->topics = model->topics();
  result->topic_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status Pipeline::RunNewsEvents(PipelineResult* result) const {
  // (iii) News event detection (§4.4).
  WallTimer timer;
  event::Mabed news_mabed(options_.news_mabed);
  StatusOr<std::vector<event::Event>> news_events =
      news_mabed.Detect(result->news_ed);
  if (!news_events.ok()) return news_events.status();
  result->news_events = std::move(news_events).value();
  result->news_event_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status Pipeline::RunTwitterEvents(PipelineResult* result) const {
  // (iv) Twitter event detection.
  WallTimer timer;
  event::Mabed twitter_mabed(options_.twitter_mabed);
  StatusOr<std::vector<event::Event>> twitter_events =
      twitter_mabed.Detect(result->twitter_ed);
  if (!twitter_events.ok()) return twitter_events.status();
  result->twitter_events = std::move(twitter_events).value();
  result->twitter_event_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status Pipeline::RunTrending(const embed::PretrainedStore& store,
                             PipelineResult* result) const {
  // Trending news topics (§4.5).
  WallTimer timer;
  result->trending = ExtractTrendingTopics(result->topics, result->news_events,
                                           store, options_.trending);
  result->trending_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status Pipeline::RunCorrelations(const embed::PretrainedStore& store,
                                 PipelineResult* result) const {
  // Correlation with Twitter events (§4.6).
  WallTimer timer;
  result->correlations = CorrelateTrendingWithTwitter(
      result->trending, result->news_events, result->twitter_events, store,
      options_.correlation);
  result->unrelated_twitter_events = UnrelatedTwitterEvents(
      result->correlations, result->twitter_events.size());
  result->correlation_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

Status Pipeline::RunAssignments(PipelineResult* result) const {
  // Feature creation prerequisites (§4.7): tweet-event assignment over the
  // correlated Twitter events.
  WallTimer timer;
  result->assignments =
      AssignTweetsToEvents(result->twitter_ed, result->twitter_events,
                           result->CorrelatedTwitterEventIndices(),
                           options_.features);
  result->assignment_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

StatusOr<PipelineResult> Pipeline::Run(
    store::Database& db, const embed::PretrainedStore& store) const {
  PipelineResult result;
  NEWSDIFF_RETURN_IF_ERROR(LoadInputs(db, &result));
  NEWSDIFF_RETURN_IF_ERROR(RunTopics(&result));
  NEWSDIFF_RETURN_IF_ERROR(RunNewsEvents(&result));
  NEWSDIFF_RETURN_IF_ERROR(RunTwitterEvents(&result));
  NEWSDIFF_RETURN_IF_ERROR(RunTrending(store, &result));
  NEWSDIFF_RETURN_IF_ERROR(RunCorrelations(store, &result));
  NEWSDIFF_RETURN_IF_ERROR(RunAssignments(&result));

  NEWSDIFF_LOG(Info) << "pipeline: " << result.topics.size() << " topics, "
                     << result.news_events.size() << " news events, "
                     << result.twitter_events.size() << " twitter events, "
                     << result.trending.size() << " trending, "
                     << result.correlations.size() << " correlations, "
                     << result.assignments.size() << " assigned events";
  return result;
}

}  // namespace newsdiff::core
