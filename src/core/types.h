#ifndef NEWSDIFF_CORE_TYPES_H_
#define NEWSDIFF_CORE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace newsdiff::core {

/// A news article as read back from the document store (§4.1).
struct NewsRecord {
  int64_t id = 0;
  std::string title;
  std::string body;
  UnixSeconds published = 0;
  /// True when the crawler could not scrape the full body and fell back to
  /// the header's first paragraph (see FeedCrawler's dead-letter path).
  bool degraded = false;
};

/// A tweet as read back from the document store, joined with its author's
/// profile (follower count and derived encodings).
struct TweetRecord {
  int64_t id = 0;
  int64_t user_id = 0;
  std::string text;
  UnixSeconds created = 0;
  int64_t likes = 0;
  int64_t retweets = 0;
  int64_t followers = 0;
  /// Table 2 class of the author's follower count (0/1/2).
  int follower_class = 0;
  /// 7-way follower-magnitude bucket for the metadata one-hot.
  int follower_bucket = 0;
};

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_TYPES_H_
