#ifndef NEWSDIFF_CORE_REPORT_H_
#define NEWSDIFF_CORE_REPORT_H_

#include <string>

#include "core/pipeline.h"
#include "store/value.h"

namespace newsdiff::core {

/// Renders a pipeline run as a JSON document: dataset sizes, per-stage
/// counts and timings, the topics with keywords, the top events, the
/// trending topics with their correlations. This is the machine-readable
/// surface a dashboard (or the start-up deployment the paper mentions)
/// would consume.
store::Value BuildReport(const PipelineResult& result);

/// Convenience: BuildReport rendered as pretty JSON.
std::string ReportJson(const PipelineResult& result);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_REPORT_H_
