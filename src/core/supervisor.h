#ifndef NEWSDIFF_CORE_SUPERVISOR_H_
#define NEWSDIFF_CORE_SUPERVISOR_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include <memory>

#include "common/retry.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "store/database.h"
#include "store/lease.h"
#include "store/replica.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace newsdiff::core {

/// Self-healing orchestration of the analysis pipeline (§4.9: the deployed
/// system refreshes every two hours and resumes "from checkpoints or from
/// scratch"). The supervisor runs Pipeline's stages one at a time; after
/// each stage it persists the stage's outputs (core/checkpoint.h) plus a
/// stage-ledger entry into the store, and snapshots the store to disk
/// (store/snapshot.h). A process killed mid-run — even mid-snapshot — is
/// restarted as: Recover() (load the newest intact snapshot generation),
/// then Run() again; the ledger marks which stages already completed, so
/// only the unfinished tail recomputes. Because the expensive stages (NMF
/// topic modeling, the two MABED passes) are deterministic for fixed
/// inputs, the spliced run's outputs are byte-identical to an uninterrupted
/// one.
struct SupervisorOptions {
  /// Snapshot directory for durable progress. Empty disables persistence —
  /// retries and deadlines still apply, but a killed process recomputes.
  std::string snapshot_dir;
  store::SnapshotOptions snapshot;
  /// Attempts per stage before Run gives up (>= 1).
  size_t max_stage_attempts = 3;
  /// Soft per-stage deadline: stages cannot be preempted mid-computation,
  /// so an attempt that measures longer than this counts as a failed
  /// attempt (kDeadlineExceeded) and is retried. 0 disables.
  int64_t stage_deadline_ms = 0;
  /// Pause between attempts of a failing stage.
  int64_t retry_backoff_ms = 0;
  /// Clock used for deadlines and backoff (nullptr = wall clock). Tests
  /// pass a ManualClock.
  Clock* clock = nullptr;
  /// Consult the stage ledger and skip stages it records as complete for
  /// the current inputs. Off forces full recomputation.
  bool resume = true;
  /// Fault seam for tests/benches: invoked before each stage attempt; a
  /// non-OK return is treated as that attempt failing.
  std::function<Status(const std::string& stage, size_t attempt)>
      stage_fault_hook;
  /// Storage engine v2: log every store mutation to a per-collection
  /// write-ahead log, and make per-stage durability an O(delta) group-
  /// commit sync instead of a full snapshot rewrite. Recover() replays the
  /// log tail on top of the newest intact checkpoint; Run() takes a full
  /// checkpoint (snapshot + log rotation) when it first attaches to an
  /// unlogged store and again when the pipeline completes. Ignored when
  /// snapshot_dir is empty.
  bool use_wal = false;
  store::WalOptions wal;
  /// Multi-writer exclusion: acquire an owner-stamped lease on
  /// snapshot_dir before Recover()/Run() touch the store, renew it before
  /// each stage's durable step, and release it on clean exit only (a
  /// crashed holder's lease expires on its own). A second supervisor
  /// pointed at the same directory fails fast with kUnavailable, waits up
  /// to lease.wait_ms, or takes over an expired lease — its fencing token
  /// then makes the stale writer's next sync fail instead of interleaving
  /// writes. lease.io / lease.clock default to the snapshot seam and
  /// `clock` above when unset.
  bool lease_enabled = false;
  store::LeaseOptions lease;
};

/// What happened to one stage during a supervised run.
struct StageRun {
  std::string name;
  size_t attempts = 0;   // 0 = restored from the ledger, never executed
  bool resumed = false;  // outputs loaded from checkpoint collections
  double seconds = 0.0;  // of the successful attempt (0 when resumed)
};

/// Bookkeeping for one Run() (and the Recover() preceding it).
struct SupervisorReport {
  std::vector<StageRun> stages;
  size_t stages_resumed = 0;   // served from checkpoints
  size_t stages_computed = 0;  // actually executed
  size_t retries = 0;          // failed attempts across all stages
  /// Filled by Recover(): which snapshot generation was loaded and what
  /// damage was skipped on the way there.
  store::SnapshotLoadReport recovery;
  bool recovered = false;  // Recover() found and loaded a snapshot
};

class PipelineSupervisor {
 public:
  PipelineSupervisor(Pipeline pipeline, SupervisorOptions options)
      : pipeline_(std::move(pipeline)), options_(std::move(options)) {}

  /// Restores `db` from the newest intact snapshot generation in
  /// options.snapshot_dir (no-op when the directory is absent or
  /// persistence is disabled). Call on a fresh Database before Run to
  /// resume a killed process.
  Status Recover(store::Database& db);

  /// Follower mode (replication; see store/replica.h): instead of
  /// recovering for writing, bootstrap `db` as a read replica of
  /// options.snapshot_dir and tail the live writer's log. The database
  /// serves reads between polls; `db` must outlive the supervisor and must
  /// not have a WAL attached. Mutually exclusive with Recover()/Run()
  /// until PromoteFollower() succeeds.
  Status Follow(store::Database& db);

  /// One catch-up pass of the follower (see Replica::Poll). Resyncs
  /// automatically when the writer's pruning outruns the tail.
  Status PollFollower();

  /// Fenced failover: takes over the store once the writer's lease has
  /// expired (options.lease supplies owner/TTL; options.wal the write
  /// path). On OK the followed database is the writer — a subsequent Run()
  /// picks up its attached, gated WAL — and the fencing token is returned;
  /// the partitioned previous writer's next sync fails at the write gate.
  StatusOr<uint64_t> PromoteFollower();

  /// The replica driving follower mode (nullptr unless Follow was called).
  store::Replica* replica() { return replica_.get(); }

  /// Runs the pipeline under supervision. `db` must hold the raw news /
  /// tweets collections (either freshly crawled or restored by Recover).
  StatusOr<PipelineResult> Run(store::Database& db,
                               const embed::PretrainedStore& store);

  const SupervisorReport& report() const { return report_; }

  /// The lease currently held (empty when lease_enabled is off or none is
  /// held). Exposed for tests.
  const std::optional<store::Lease>& lease() const { return lease_; }

 private:
  /// Dispatches to the Pipeline stage method named `stage`.
  Status RunStage(const std::string& stage,
                  const embed::PretrainedStore& store,
                  PipelineResult* result) const;

  /// Acquires the writer lease when configured and not already held.
  Status AcquireLeaseIfNeeded();
  /// Renews the held lease, if any; kFailedPrecondition when fenced.
  Status RenewLease();
  /// WAL options with the fencing write gate wired to the held lease.
  store::WalOptions GatedWalOptions();

  Pipeline pipeline_;
  SupervisorOptions options_;
  SupervisorReport report_;
  std::optional<store::Lease> lease_;
  /// Follower mode. Owns the post-promotion lease, and the promoted
  /// database's write gate points into it — it must outlive any use of
  /// that database's WAL, so the supervisor keeps it for its own lifetime.
  std::unique_ptr<store::Replica> replica_;
};

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_SUPERVISOR_H_
