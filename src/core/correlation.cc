#include "core/correlation.h"

#include <algorithm>

#include "la/matrix.h"

namespace newsdiff::core {
namespace {

std::vector<std::vector<double>> EncodeAll(
    const std::vector<event::Event>& events,
    const embed::PretrainedStore& store) {
  std::vector<std::vector<double>> vecs;
  vecs.reserve(events.size());
  for (const event::Event& ev : events) {
    vecs.push_back(EncodeEvent(ev, store));
  }
  return vecs;
}

bool InWindow(const event::Event& news_ev, const event::Event& twitter_ev,
              int64_t window) {
  return twitter_ev.start_time >= news_ev.start_time &&
         twitter_ev.start_time <= news_ev.start_time + window;
}

void SortPairs(std::vector<EventCorrelation>& pairs) {
  std::sort(pairs.begin(), pairs.end(),
            [](const EventCorrelation& a, const EventCorrelation& b) {
              if (a.trending != b.trending) return a.trending < b.trending;
              return a.twitter_event < b.twitter_event;
            });
}

}  // namespace

std::vector<EventCorrelation> CorrelateTrendingWithTwitter(
    const std::vector<TrendingNewsTopic>& trending,
    const std::vector<event::Event>& news_events,
    const std::vector<event::Event>& twitter_events,
    const embed::PretrainedStore& store, const CorrelationOptions& options) {
  std::vector<EventCorrelation> pairs;
  std::vector<std::vector<double>> twitter_vecs =
      EncodeAll(twitter_events, store);
  for (size_t ti = 0; ti < trending.size(); ++ti) {
    const event::Event& news_ev = news_events[trending[ti].news_event];
    std::vector<double> nv = EncodeEvent(news_ev, store);
    for (size_t te = 0; te < twitter_events.size(); ++te) {
      if (!InWindow(news_ev, twitter_events[te],
                    options.start_window_seconds)) {
        continue;
      }
      double sim = la::CosineSimilarity(nv, twitter_vecs[te]);
      if (sim > options.min_similarity) {
        pairs.push_back({ti, te, sim});
      }
    }
  }
  SortPairs(pairs);
  return pairs;
}

std::vector<EventCorrelation> CorrelateTwitterWithTrending(
    const std::vector<TrendingNewsTopic>& trending,
    const std::vector<event::Event>& news_events,
    const std::vector<event::Event>& twitter_events,
    const embed::PretrainedStore& store, const CorrelationOptions& options) {
  std::vector<EventCorrelation> pairs;
  std::vector<std::vector<double>> trending_vecs;
  trending_vecs.reserve(trending.size());
  for (const TrendingNewsTopic& t : trending) {
    trending_vecs.push_back(
        EncodeEvent(news_events[t.news_event], store));
  }
  for (size_t te = 0; te < twitter_events.size(); ++te) {
    std::vector<double> tv = EncodeEvent(twitter_events[te], store);
    for (size_t ti = 0; ti < trending.size(); ++ti) {
      const event::Event& news_ev = news_events[trending[ti].news_event];
      if (!InWindow(news_ev, twitter_events[te],
                    options.start_window_seconds)) {
        continue;
      }
      double sim = la::CosineSimilarity(tv, trending_vecs[ti]);
      if (sim > options.min_similarity) {
        pairs.push_back({ti, te, sim});
      }
    }
  }
  SortPairs(pairs);
  return pairs;
}

std::vector<size_t> UnrelatedTwitterEvents(
    const std::vector<EventCorrelation>& pairs, size_t num_twitter_events) {
  std::vector<bool> related(num_twitter_events, false);
  for (const EventCorrelation& p : pairs) {
    if (p.twitter_event < num_twitter_events) related[p.twitter_event] = true;
  }
  std::vector<size_t> out;
  for (size_t i = 0; i < num_twitter_events; ++i) {
    if (!related[i]) out.push_back(i);
  }
  return out;
}

}  // namespace newsdiff::core
