#include "core/assignment.h"

#include <algorithm>
#include <limits>

namespace newsdiff::core {

StatusOr<std::vector<int>> SolveAssignment(const la::Matrix& cost) {
  const size_t n = cost.rows();
  const size_t m = cost.cols();
  if (n == 0) return std::vector<int>{};
  if (n > m) {
    return Status::InvalidArgument(
        "assignment requires rows <= cols (pad the matrix)");
  }
  // Hungarian algorithm with potentials, 1-indexed internal arrays
  // (the classic e-maxx formulation).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0);     // p[j]: row matched to column j
  std::vector<size_t> way(m + 1, 0);

  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0];
      size_t j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int> row_to_col(n, -1);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] > 0) row_to_col[p[j] - 1] = static_cast<int>(j - 1);
  }
  return row_to_col;
}

std::vector<TrendingNewsTopic> ExtractTrendingTopicsOptimal(
    const std::vector<topic::Topic>& topics,
    const std::vector<event::Event>& news_events,
    const embed::PretrainedStore& store, const TrendingOptions& options) {
  std::vector<TrendingNewsTopic> out;
  if (topics.empty() || news_events.empty()) return out;

  // Similarity matrix; assignment minimises cost, so negate. Pad columns
  // with zero-similarity dummies when there are more topics than events so
  // rows <= cols holds (dummy matches fall below the threshold anyway).
  const size_t rows = topics.size();
  const size_t cols = std::max(news_events.size(), rows);
  la::Matrix sim(rows, news_events.size());
  std::vector<std::vector<double>> event_vecs;
  event_vecs.reserve(news_events.size());
  for (const event::Event& ev : news_events) {
    event_vecs.push_back(EncodeEvent(ev, store));
  }
  la::Matrix cost(rows, cols, 0.0);
  for (size_t t = 0; t < rows; ++t) {
    std::vector<double> tv = EncodeTopic(topics[t], store);
    for (size_t e = 0; e < news_events.size(); ++e) {
      double s = la::CosineSimilarity(tv, event_vecs[e]);
      sim(t, e) = s;
      cost(t, e) = -s;
    }
  }

  StatusOr<std::vector<int>> assignment = SolveAssignment(cost);
  if (!assignment.ok()) return out;
  for (size_t t = 0; t < rows; ++t) {
    int e = (*assignment)[t];
    if (e < 0 || static_cast<size_t>(e) >= news_events.size()) continue;
    double s = sim(t, static_cast<size_t>(e));
    if (s > options.min_similarity) {
      out.push_back({topics[t].id, static_cast<size_t>(e), s});
    }
  }
  return out;
}

}  // namespace newsdiff::core
