#include "core/engine.h"

#include <algorithm>

#include "core/collection.h"
#include "core/preprocess.h"
#include "datagen/world.h"
#include "text/pipeline.h"

namespace newsdiff {

namespace {

constexpr char kNewsIndex[] = "news";
constexpr char kTweetsIndex[] = "tweets";

}  // namespace

core::PipelineOptions EngineOptions::PipelineView() const {
  core::PipelineOptions view = pipeline;
  view.parallelism = parallelism;
  return view;
}

core::PredictorOptions EngineOptions::PredictorView() const {
  core::PredictorOptions view = predictor;
  view.parallelism = parallelism;
  return view;
}

core::SupervisorOptions EngineOptions::SupervisorView() const {
  return supervisor;
}

std::string EngineOptions::IndexDir() const {
  if (!index_dir.empty()) return index_dir;
  if (!supervisor.snapshot_dir.empty()) {
    return supervisor.snapshot_dir + "/index";
  }
  return "";
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      supervisor_(core::Pipeline(options_.PipelineView()),
                  options_.SupervisorView()),
      indexes_(std::make_shared<const IndexMap>()) {}

std::shared_ptr<const Engine::IndexMap> Engine::IndexSnapshot() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return indexes_;
}

void Engine::SwapIndexes(IndexMap built, uint64_t generation) {
  std::shared_ptr<const IndexMap> next =
      std::make_shared<const IndexMap>(std::move(built));
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    indexes_ = std::move(next);
  }
  index_generation_.store(generation, std::memory_order_relaxed);
  counters_.index_swaps.fetch_add(1, std::memory_order_relaxed);
}

EngineStatsSnapshot Engine::stats() const {
  EngineStatsSnapshot s;
  s.trending_queries =
      counters_.trending_queries.load(std::memory_order_relaxed);
  s.interest_predictions =
      counters_.interest_predictions.load(std::memory_order_relaxed);
  s.serving_errors = counters_.serving_errors.load(std::memory_order_relaxed);
  s.not_found = counters_.not_found.load(std::memory_order_relaxed);
  s.index_swaps = counters_.index_swaps.load(std::memory_order_relaxed);
  s.docs_scored = counters_.docs_scored.load(std::memory_order_relaxed);
  s.blocks_decoded = counters_.blocks_decoded.load(std::memory_order_relaxed);
  return s;
}

FileIo& Engine::io() const {
  return options_.io != nullptr ? *options_.io : DefaultFileIo();
}

Status Engine::Recover(store::Database& db) {
  NEWSDIFF_RETURN_IF_ERROR(supervisor_.Recover(db));
  if (options_.IndexDir().empty()) return Status::OK();
  StatusOr<index::IndexLoadReport> report = LoadIndex();
  if (!report.ok()) return report.status();
  return Status::OK();
}

StatusOr<core::PipelineResult> Engine::RunPipeline(
    store::Database& db, const embed::PretrainedStore& embeddings) {
  return supervisor_.Run(db, embeddings);
}

StatusOr<BuildIndexReport> Engine::BuildIndex(store::Database& db) {
  StatusOr<std::vector<core::NewsRecord>> news = core::LoadNews(db);
  if (!news.ok()) return news.status();
  StatusOr<std::vector<core::TweetRecord>> tweets = core::LoadTweets(db);
  if (!tweets.ok()) return tweets.status();

  // The same tokenisation the offline event-detection stages use, so a
  // query phrased like a headline meets the corpus on equal terms.
  const corpus::Corpus news_corpus = core::BuildNewsED(*news);
  const corpus::Corpus tweet_corpus = core::BuildTwitterED(*tweets);

  std::vector<double> tweet_labels;
  tweet_labels.reserve(tweets->size());
  for (const core::TweetRecord& t : *tweets) {
    tweet_labels.push_back(
        static_cast<double>(datagen::EncodeCountClass(t.likes)));
  }

  StatusOr<index::InvertedIndex> news_ix =
      index::InvertedIndex::Build(news_corpus, options_.index);
  if (!news_ix.ok()) return news_ix.status();
  StatusOr<index::InvertedIndex> tweets_ix =
      index::InvertedIndex::Build(tweet_corpus, options_.index, tweet_labels);
  if (!tweets_ix.ok()) return tweets_ix.status();

  IndexMap built;
  built.emplace(kNewsIndex, std::move(*news_ix));
  built.emplace(kTweetsIndex, std::move(*tweets_ix));

  BuildIndexReport report;
  report.news_docs = news_corpus.size();
  report.tweet_docs = tweet_corpus.size();
  report.news_terms = built[kNewsIndex].num_terms();
  report.tweet_terms = built[kTweetsIndex].num_terms();

  const std::string dir = options_.IndexDir();
  if (!dir.empty()) {
    index::IndexStore store(io(), dir, options_.index_retain);
    NEWSDIFF_RETURN_IF_ERROR(store.Save(built));
    report.generation = store.generation();
  }
  SwapIndexes(std::move(built), report.generation);
  return report;
}

StatusOr<index::IndexLoadReport> Engine::LoadIndex() {
  const std::string dir = options_.IndexDir();
  if (dir.empty()) {
    return Status::FailedPrecondition("engine: no index directory configured");
  }
  index::IndexStore store(io(), dir, options_.index_retain);
  IndexMap loaded;
  StatusOr<index::IndexLoadReport> report = store.Load(&loaded);
  if (report.ok()) SwapIndexes(std::move(loaded), report->generation);
  return report;
}

const index::InvertedIndex* Engine::GetIndex(const std::string& name) const {
  std::shared_ptr<const IndexMap> snapshot = IndexSnapshot();
  auto it = snapshot->find(name);
  return it == snapshot->end() ? nullptr : &it->second;
}

StatusOr<std::vector<QueryHit>> Engine::Query(
    const std::string& index_name, const std::vector<std::string>& terms,
    size_t k, index::QueryStats* stats) const {
  // Pin the current generation: a concurrent BuildIndex/LoadIndex swap
  // retires the map we are reading only after this snapshot releases it.
  std::shared_ptr<const IndexMap> snapshot = IndexSnapshot();
  auto found = snapshot->find(index_name);
  if (found == snapshot->end()) {
    counters_.serving_errors.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "engine: index '" + index_name +
        "' not loaded; call BuildIndex or LoadIndex first");
  }
  const index::InvertedIndex* ix = &found->second;
  index::QueryStats local_stats;
  std::vector<QueryHit> hits;
  for (const index::SearchResult& r : ix->TopK(terms, k, &local_stats)) {
    const index::DocInfo& info = ix->doc(r.doc);
    QueryHit hit;
    hit.doc = r.doc;
    hit.external_id = info.external_id;
    hit.timestamp = info.timestamp;
    hit.score = r.score;
    hit.label = info.label;
    hits.push_back(hit);
  }
  counters_.docs_scored.fetch_add(local_stats.docs_scored,
                                  std::memory_order_relaxed);
  counters_.blocks_decoded.fetch_add(local_stats.blocks_decoded,
                                     std::memory_order_relaxed);
  if (stats != nullptr) *stats = local_stats;
  return hits;
}

StatusOr<std::vector<QueryHit>> Engine::QueryTrending(
    const std::string& query, size_t k, index::QueryStats* stats) const {
  counters_.trending_queries.fetch_add(1, std::memory_order_relaxed);
  return Query(kNewsIndex, text::PreprocessNewsED(query), k, stats);
}

StatusOr<InterestPrediction> Engine::PredictInterest(
    const std::string& draft, size_t k, index::QueryStats* stats) const {
  counters_.interest_predictions.fetch_add(1, std::memory_order_relaxed);
  StatusOr<std::vector<QueryHit>> hits =
      Query(kTweetsIndex, text::PreprocessNewsED(draft), k, stats);
  if (!hits.ok()) return hits.status();
  if (hits->empty()) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("engine: no tweets match the draft");
  }
  InterestPrediction prediction;
  const size_t num_classes = std::max<size_t>(options_.predictor.num_classes, 1);
  prediction.class_weights.assign(num_classes, 0.0);
  double total = 0.0;
  for (const QueryHit& h : *hits) {
    size_t cls = h.label >= 0.0 ? static_cast<size_t>(h.label) : 0;
    if (cls >= num_classes) cls = num_classes - 1;
    prediction.class_weights[cls] += h.score;
    total += h.score;
  }
  if (total > 0.0) {
    for (double& w : prediction.class_weights) w /= total;
  }
  for (size_t c = 1; c < num_classes; ++c) {
    if (prediction.class_weights[c] >
        prediction.class_weights[static_cast<size_t>(prediction.predicted_class)]) {
      prediction.predicted_class = static_cast<int>(c);
    }
  }
  prediction.confidence =
      prediction.class_weights[static_cast<size_t>(prediction.predicted_class)];
  prediction.neighbors = std::move(*hits);
  return prediction;
}

}  // namespace newsdiff
