#include "core/engine.h"

#include <algorithm>
#include <utility>

#include "core/collection.h"
#include "core/preprocess.h"
#include "datagen/world.h"
#include "serve/features.h"
#include "serve/trainer.h"
#include "text/pipeline.h"

namespace newsdiff {

namespace {

constexpr char kNewsIndex[] = "news";
constexpr char kTweetsIndex[] = "tweets";

}  // namespace

core::PipelineOptions EngineOptions::PipelineView() const {
  core::PipelineOptions view = pipeline;
  view.parallelism = parallelism;
  return view;
}

core::PredictorOptions EngineOptions::PredictorView() const {
  core::PredictorOptions view = predictor;
  view.parallelism = parallelism;
  return view;
}

core::SupervisorOptions EngineOptions::SupervisorView() const {
  return supervisor;
}

serve::ServingOptions EngineOptions::ServingView() const {
  serve::ServingOptions view = serving;
  view.model.parallelism = parallelism;
  view.server.parallelism = parallelism;
  // The serving model classifies into the predictor's class space so its
  // output lines up with the Table-2 likes classes the vote path uses.
  view.model.num_classes = std::max<size_t>(predictor.num_classes, 1);
  return view;
}

std::string EngineOptions::IndexDir() const {
  if (!index_dir.empty()) return index_dir;
  if (!supervisor.snapshot_dir.empty()) {
    return supervisor.snapshot_dir + "/index";
  }
  return "";
}

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      supervisor_(core::Pipeline(options_.PipelineView()),
                  options_.SupervisorView()),
      serving_(std::make_shared<const ServingData>()) {
  if (options_.serving.enable_model) {
    inference_ =
        std::make_unique<serve::InferenceServer>(options_.ServingView().server);
  }
}

std::shared_ptr<const Engine::ServingData> Engine::ServingSnapshot() const {
  std::lock_guard<std::mutex> lock(index_mu_);
  return serving_;
}

std::shared_ptr<const Engine::IndexMap> Engine::IndexSnapshot() const {
  // Aliasing constructor: the handle points at the index map but keeps the
  // whole serving snapshot (indexes + features) alive, preserving the
  // public pin-a-generation contract unchanged.
  std::shared_ptr<const ServingData> data = ServingSnapshot();
  return std::shared_ptr<const IndexMap>(data, &data->indexes);
}

void Engine::SwapIndexes(IndexMap built, uint64_t generation) {
  ServingData data;
  data.indexes = std::move(built);
  SwapServing(std::move(data), generation);
}

void Engine::SwapServing(ServingData data, uint64_t generation) {
  std::shared_ptr<const ServingData> next =
      std::make_shared<const ServingData>(std::move(data));
  {
    std::lock_guard<std::mutex> lock(index_mu_);
    serving_ = std::move(next);
  }
  index_generation_.store(generation, std::memory_order_relaxed);
  counters_.index_swaps.fetch_add(1, std::memory_order_relaxed);
}

EngineStatsSnapshot Engine::stats() const {
  EngineStatsSnapshot s;
  s.trending_queries =
      counters_.trending_queries.load(std::memory_order_relaxed);
  s.interest_predictions =
      counters_.interest_predictions.load(std::memory_order_relaxed);
  s.serving_errors = counters_.serving_errors.load(std::memory_order_relaxed);
  s.not_found = counters_.not_found.load(std::memory_order_relaxed);
  s.index_swaps = counters_.index_swaps.load(std::memory_order_relaxed);
  s.docs_scored = counters_.docs_scored.load(std::memory_order_relaxed);
  s.blocks_decoded = counters_.blocks_decoded.load(std::memory_order_relaxed);
  s.model_predictions =
      counters_.model_predictions.load(std::memory_order_relaxed);
  if (inference_ != nullptr) {
    const serve::InferenceServerStats is = inference_->stats();
    s.inference_batches = is.batches;
    s.inference_batched_rows = is.batched_rows;
    s.inference_queue_rejections = is.queue_full_rejections;
    s.model_swaps = is.model_swaps;
  }
  return s;
}

FileIo& Engine::io() const {
  return options_.io != nullptr ? *options_.io : DefaultFileIo();
}

Status Engine::Recover(store::Database& db) {
  NEWSDIFF_RETURN_IF_ERROR(supervisor_.Recover(db));
  if (options_.IndexDir().empty()) return Status::OK();
  StatusOr<index::IndexLoadReport> report = LoadIndex();
  if (!report.ok()) return report.status();
  return Status::OK();
}

StatusOr<core::PipelineResult> Engine::RunPipeline(
    store::Database& db, const embed::PretrainedStore& embeddings) {
  return supervisor_.Run(db, embeddings);
}

StatusOr<BuildIndexReport> Engine::BuildIndex(store::Database& db) {
  StatusOr<std::vector<core::NewsRecord>> news = core::LoadNews(db);
  if (!news.ok()) return news.status();
  StatusOr<std::vector<core::TweetRecord>> tweets = core::LoadTweets(db);
  if (!tweets.ok()) return tweets.status();

  // The same tokenisation the offline event-detection stages use, so a
  // query phrased like a headline meets the corpus on equal terms.
  const corpus::Corpus news_corpus = core::BuildNewsED(*news);
  const corpus::Corpus tweet_corpus = core::BuildTwitterED(*tweets);

  std::vector<double> tweet_labels;
  tweet_labels.reserve(tweets->size());
  for (const core::TweetRecord& t : *tweets) {
    tweet_labels.push_back(
        static_cast<double>(datagen::EncodeCountClass(t.likes)));
  }

  StatusOr<index::InvertedIndex> news_ix =
      index::InvertedIndex::Build(news_corpus, options_.index);
  if (!news_ix.ok()) return news_ix.status();
  StatusOr<index::InvertedIndex> tweets_ix =
      index::InvertedIndex::Build(tweet_corpus, options_.index, tweet_labels);
  if (!tweets_ix.ok()) return tweets_ix.status();

  IndexMap built;
  built.emplace(kNewsIndex, std::move(*news_ix));
  built.emplace(kTweetsIndex, std::move(*tweets_ix));

  BuildIndexReport report;
  report.news_docs = news_corpus.size();
  report.tweet_docs = tweet_corpus.size();
  report.news_terms = built[kNewsIndex].num_terms();
  report.tweet_terms = built[kTweetsIndex].num_terms();

  // Serving model: hashed features for every candidate tweet (row r
  // matches the tweets index's dense doc id r) and a fresh MLP generation
  // for the inference server. Features hash term STRINGS, so the model
  // keeps scoring across rebuilds even though vocabulary ids change.
  la::Matrix tweet_features;
  if (inference_ != nullptr && tweet_corpus.size() > 0) {
    const serve::ServingOptions serving = options_.ServingView();
    serve::HashedFeaturizer featurizer(serving.model.feature_dim);
    tweet_features = featurizer.FeaturizeCorpus(tweet_corpus);
    const int max_class = static_cast<int>(serving.model.num_classes) - 1;
    std::vector<int> labels;
    labels.reserve(tweet_labels.size());
    for (double l : tweet_labels) {
      labels.push_back(std::clamp(static_cast<int>(l), 0, max_class));
    }
    StatusOr<nn::Model> model =
        serve::TrainInterestModel(tweet_features, labels, serving.model);
    if (!model.ok()) return model.status();
    const uint64_t version =
        model_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
    inference_->LoadModel(std::move(*model), version);
  }

  const std::string dir = options_.IndexDir();
  if (!dir.empty()) {
    index::IndexStore store(io(), dir, options_.index_retain);
    NEWSDIFF_RETURN_IF_ERROR(store.Save(built));
    report.generation = store.generation();
  }
  ServingData data;
  data.indexes = std::move(built);
  data.tweet_features = std::move(tweet_features);
  SwapServing(std::move(data), report.generation);
  return report;
}

StatusOr<index::IndexLoadReport> Engine::LoadIndex() {
  const std::string dir = options_.IndexDir();
  if (dir.empty()) {
    return Status::FailedPrecondition("engine: no index directory configured");
  }
  index::IndexStore store(io(), dir, options_.index_retain);
  IndexMap loaded;
  StatusOr<index::IndexLoadReport> report = store.Load(&loaded);
  if (report.ok()) SwapIndexes(std::move(loaded), report->generation);
  return report;
}

const index::InvertedIndex* Engine::GetIndex(const std::string& name) const {
  std::shared_ptr<const IndexMap> snapshot = IndexSnapshot();
  auto it = snapshot->find(name);
  return it == snapshot->end() ? nullptr : &it->second;
}

StatusOr<std::vector<QueryHit>> Engine::QueryOn(
    const ServingData& data, const std::string& index_name,
    const std::vector<std::string>& terms, size_t k,
    index::QueryStats* stats) const {
  auto found = data.indexes.find(index_name);
  if (found == data.indexes.end()) {
    counters_.serving_errors.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(
        "engine: index '" + index_name +
        "' not loaded; call BuildIndex or LoadIndex first");
  }
  const index::InvertedIndex* ix = &found->second;
  index::QueryStats local_stats;
  std::vector<QueryHit> hits;
  for (const index::SearchResult& r : ix->TopK(terms, k, &local_stats)) {
    const index::DocInfo& info = ix->doc(r.doc);
    QueryHit hit;
    hit.doc = r.doc;
    hit.external_id = info.external_id;
    hit.timestamp = info.timestamp;
    hit.score = r.score;
    hit.label = info.label;
    hits.push_back(hit);
  }
  counters_.docs_scored.fetch_add(local_stats.docs_scored,
                                  std::memory_order_relaxed);
  counters_.blocks_decoded.fetch_add(local_stats.blocks_decoded,
                                     std::memory_order_relaxed);
  if (stats != nullptr) *stats = local_stats;
  return hits;
}

StatusOr<std::vector<QueryHit>> Engine::Query(
    const std::string& index_name, const std::vector<std::string>& terms,
    size_t k, index::QueryStats* stats) const {
  // Pin the current generation: a concurrent BuildIndex/LoadIndex swap
  // retires the snapshot we are reading only after this handle releases it.
  std::shared_ptr<const ServingData> snapshot = ServingSnapshot();
  return QueryOn(*snapshot, index_name, terms, k, stats);
}

StatusOr<std::vector<QueryHit>> Engine::QueryTrending(
    const std::string& query, size_t k, index::QueryStats* stats) const {
  counters_.trending_queries.fetch_add(1, std::memory_order_relaxed);
  return Query(kNewsIndex, text::PreprocessNewsED(query), k, stats);
}

namespace {

/// Copies the feature rows for `hits` (dense doc ids) out of the pinned
/// generation's feature matrix. Returns false if any hit has no feature row
/// (stale model against a feature-less snapshot) — callers then fall back
/// to the vote.
bool GatherCandidateFeatures(const la::Matrix& tweet_features,
                             const std::vector<QueryHit>& hits,
                             la::Matrix* out, size_t first_row) {
  for (const QueryHit& h : hits) {
    if (h.doc >= tweet_features.rows()) return false;
  }
  size_t row = first_row;
  for (const QueryHit& h : hits) {
    const double* src = tweet_features.RowPtr(h.doc);
    double* dst = out->RowPtr(row++);
    for (size_t c = 0; c < tweet_features.cols(); ++c) dst[c] = src[c];
  }
  return true;
}

}  // namespace

InterestPrediction Engine::VotePrediction(std::vector<QueryHit> hits) const {
  InterestPrediction prediction;
  const size_t num_classes =
      std::max<size_t>(options_.predictor.num_classes, 1);
  prediction.class_weights.assign(num_classes, 0.0);
  double total = 0.0;
  for (const QueryHit& h : hits) {
    size_t cls = h.label >= 0.0 ? static_cast<size_t>(h.label) : 0;
    if (cls >= num_classes) cls = num_classes - 1;
    prediction.class_weights[cls] += h.score;
    total += h.score;
  }
  if (total > 0.0) {
    for (double& w : prediction.class_weights) w /= total;
  }
  for (size_t c = 1; c < num_classes; ++c) {
    if (prediction.class_weights[c] >
        prediction
            .class_weights[static_cast<size_t>(prediction.predicted_class)]) {
      prediction.predicted_class = static_cast<int>(c);
    }
  }
  prediction.confidence =
      prediction.class_weights[static_cast<size_t>(prediction.predicted_class)];
  prediction.neighbors = std::move(hits);
  return prediction;
}

InterestPrediction Engine::CombineModelPrediction(std::vector<QueryHit> hits,
                                                  const la::Matrix& probs,
                                                  size_t first_row) const {
  InterestPrediction prediction;
  const size_t num_classes = probs.cols();
  prediction.class_weights.assign(num_classes, 0.0);

  // Retrieval-score-weighted average of the per-candidate class
  // distributions. Each softmax row sums to ~1, so the averaged weights do
  // too — preserving the "weights normalise to 1" contract of the vote
  // path without an explicit renormalisation.
  double total = 0.0;
  for (const QueryHit& h : hits) total += h.score;
  size_t row = first_row;
  for (QueryHit& h : hits) {
    const double* p = probs.RowPtr(row++);
    const double w = total > 0.0 ? h.score / total
                                 : 1.0 / static_cast<double>(hits.size());
    double expected = 0.0;
    for (size_t c = 0; c < num_classes; ++c) {
      prediction.class_weights[c] += w * p[c];
      expected += static_cast<double>(c) * p[c];
    }
    h.model_score = expected;
  }
  for (size_t c = 1; c < num_classes; ++c) {
    if (prediction.class_weights[c] >
        prediction
            .class_weights[static_cast<size_t>(prediction.predicted_class)]) {
      prediction.predicted_class = static_cast<int>(c);
    }
  }
  prediction.confidence =
      prediction.class_weights[static_cast<size_t>(prediction.predicted_class)];
  std::stable_sort(hits.begin(), hits.end(),
                   [](const QueryHit& a, const QueryHit& b) {
                     return a.model_score > b.model_score;
                   });
  prediction.neighbors = std::move(hits);
  prediction.model_reranked = true;
  return prediction;
}

StatusOr<InterestPrediction> Engine::PredictInterest(
    const std::string& draft, size_t k, index::QueryStats* stats) const {
  counters_.interest_predictions.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const ServingData> snapshot = ServingSnapshot();
  StatusOr<std::vector<QueryHit>> hits =
      QueryOn(*snapshot, kTweetsIndex, text::PreprocessNewsED(draft), k, stats);
  if (!hits.ok()) return hits.status();
  if (hits->empty()) {
    counters_.not_found.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("engine: no tweets match the draft");
  }

  // Model path only when this snapshot carries feature rows for every hit
  // and a model generation is installed; anything else votes. Features and
  // indexes were published by the same swap, so the rows line up by
  // construction — the guard covers feature-less snapshots (LoadIndex).
  if (inference_ != nullptr && inference_->has_model() &&
      snapshot->tweet_features.rows() > 0) {
    la::Matrix features(hits->size(), snapshot->tweet_features.cols());
    if (GatherCandidateFeatures(snapshot->tweet_features, *hits, &features,
                                0)) {
      const uint64_t version = inference_->model_version();
      StatusOr<la::Matrix> probs = options_.serving.coalesce
                                       ? inference_->Predict(features)
                                       : inference_->PredictDirect(features);
      if (!probs.ok()) {
        counters_.serving_errors.fetch_add(1, std::memory_order_relaxed);
        return probs.status();
      }
      counters_.model_predictions.fetch_add(1, std::memory_order_relaxed);
      InterestPrediction prediction =
          CombineModelPrediction(std::move(*hits), *probs, 0);
      prediction.model_version = version;
      return prediction;
    }
  }
  return VotePrediction(std::move(*hits));
}

std::vector<StatusOr<InterestPrediction>> Engine::PredictInterestBatch(
    const std::vector<std::string>& drafts, size_t k) const {
  std::vector<StatusOr<InterestPrediction>> results;
  results.reserve(drafts.size());
  std::shared_ptr<const ServingData> snapshot = ServingSnapshot();

  // Retrieval pass: collect candidates per draft, record which drafts can
  // take the model path, and count their total feature rows so all drafts
  // share ONE coalesced inference call.
  struct Pending {
    size_t result_index = 0;
    std::vector<QueryHit> hits;
    size_t first_row = 0;
  };
  std::vector<Pending> pending;
  size_t total_rows = 0;
  const bool model_live = inference_ != nullptr && inference_->has_model() &&
                          snapshot->tweet_features.rows() > 0;
  for (const std::string& draft : drafts) {
    counters_.interest_predictions.fetch_add(1, std::memory_order_relaxed);
    StatusOr<std::vector<QueryHit>> hits = QueryOn(
        *snapshot, kTweetsIndex, text::PreprocessNewsED(draft), k, nullptr);
    if (!hits.ok()) {
      results.push_back(hits.status());
      continue;
    }
    if (hits->empty()) {
      counters_.not_found.fetch_add(1, std::memory_order_relaxed);
      results.push_back(Status::NotFound("engine: no tweets match the draft"));
      continue;
    }
    bool rows_ok = model_live;
    if (rows_ok) {
      for (const QueryHit& h : *hits) {
        if (h.doc >= snapshot->tweet_features.rows()) rows_ok = false;
      }
    }
    if (!rows_ok) {
      results.push_back(VotePrediction(std::move(*hits)));
      continue;
    }
    Pending p;
    p.result_index = results.size();
    p.first_row = total_rows;
    total_rows += hits->size();
    p.hits = std::move(*hits);
    results.push_back(Status::Internal("pending"));  // overwritten below
    pending.push_back(std::move(p));
  }
  if (pending.empty()) return results;

  la::Matrix features(total_rows, snapshot->tweet_features.cols());
  for (const Pending& p : pending) {
    GatherCandidateFeatures(snapshot->tweet_features, p.hits, &features,
                            p.first_row);
  }
  const uint64_t version = inference_->model_version();
  StatusOr<la::Matrix> probs = options_.serving.coalesce
                                   ? inference_->Predict(features)
                                   : inference_->PredictDirect(features);
  if (!probs.ok()) {
    for (Pending& p : pending) {
      counters_.serving_errors.fetch_add(1, std::memory_order_relaxed);
      results[p.result_index] = probs.status();
    }
    return results;
  }
  for (Pending& p : pending) {
    counters_.model_predictions.fetch_add(1, std::memory_order_relaxed);
    InterestPrediction prediction =
        CombineModelPrediction(std::move(p.hits), *probs, p.first_row);
    prediction.model_version = version;
    results[p.result_index] = std::move(prediction);
  }
  return results;
}

}  // namespace newsdiff
