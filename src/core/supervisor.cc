#include "core/supervisor.h"

#include "common/crc32.h"
#include "common/logging.h"
#include "core/checkpoint.h"

namespace newsdiff::core {

namespace {

constexpr size_t kNumStages = sizeof(kStageNames) / sizeof(kStageNames[0]);

/// Fingerprint of the pipeline inputs. Ledger entries carry it so a stage
/// completed against a previous crawl is never served for a refreshed one:
/// a changed corpus changes the signature, which invalidates every entry.
int64_t InputSignature(const PipelineResult& result) {
  std::string key = "news=" + std::to_string(result.news.size()) +
                    ";tweets=" + std::to_string(result.tweets.size());
  // Mix in the time range so same-sized but different crawls diverge.
  if (!result.news.empty()) {
    key += ";n0=" + std::to_string(result.news.front().published);
    key += ";n1=" + std::to_string(result.news.back().published);
  }
  if (!result.tweets.empty()) {
    key += ";t0=" + std::to_string(result.tweets.front().created);
    key += ";t1=" + std::to_string(result.tweets.back().created);
  }
  return static_cast<int64_t>(Crc32(key));
}

bool LedgerDone(const store::Database& db, const std::string& stage,
                int64_t sig) {
  const store::Collection* ledger = db.Get(kStageLedgerCollection);
  if (ledger == nullptr) return false;
  bool done = false;
  ledger->ForEach(store::Filter(),
                  [&](store::DocId, const store::Value& doc) {
                    const store::Value* s = doc.Find("stage");
                    const store::Value* v = doc.Find("input_sig");
                    if (s != nullptr && v != nullptr && s->AsString() == stage &&
                        v->AsInt() == sig) {
                      done = true;
                      return false;
                    }
                    return true;
                  });
  return done;
}

Status AppendLedger(store::Database& db, const std::string& stage,
                    int64_t sig, size_t seq) {
  store::Collection& ledger = db.GetOrCreate(kStageLedgerCollection);
  StatusOr<store::DocId> id = ledger.Insert(store::MakeObject({
      {"stage", stage},
      {"input_sig", sig},
      {"seq", static_cast<int64_t>(seq)},
  }));
  return id.ok() ? Status::OK() : id.status();
}

}  // namespace

Status PipelineSupervisor::AcquireLeaseIfNeeded() {
  if (!options_.lease_enabled || options_.snapshot_dir.empty()) {
    return Status::OK();
  }
  if (lease_.has_value()) return Status::OK();
  // A promoted follower already holds the directory's lease (with the
  // fencing token that ended the previous writer); acquiring a second one
  // would fence ourselves.
  if (replica_ != nullptr && replica_->lease() != nullptr) return Status::OK();
  store::LeaseOptions lease_options = options_.lease;
  if (lease_options.io == nullptr) lease_options.io = options_.snapshot.io;
  if (lease_options.clock == nullptr) lease_options.clock = options_.clock;
  FileIo& io = lease_options.io != nullptr ? *lease_options.io
                                           : DefaultFileIo();
  NEWSDIFF_RETURN_IF_ERROR(io.CreateDirectories(options_.snapshot_dir));
  StatusOr<store::Lease> lease =
      store::Lease::Acquire(options_.snapshot_dir, lease_options);
  if (!lease.ok()) return lease.status();
  lease_.emplace(std::move(lease).value());
  NEWSDIFF_LOG(Info) << "supervisor: acquired lease on "
                     << options_.snapshot_dir << " (token "
                     << lease_->token() << ")";
  return Status::OK();
}

Status PipelineSupervisor::RenewLease() {
  if (lease_.has_value()) return lease_->Renew();
  if (replica_ != nullptr && replica_->lease() != nullptr) {
    return replica_->RenewLease();
  }
  return Status::OK();
}

store::WalOptions PipelineSupervisor::GatedWalOptions() {
  store::WalOptions wal = options_.wal;
  if (wal.io == nullptr) wal.io = options_.snapshot.io;
  if (wal.clock == nullptr) wal.clock = options_.clock;
  if (options_.lease_enabled && !wal.write_gate) {
    // The gate outlives nothing: the supervisor owns both the lease and
    // (via the Database the caller passes around) nothing else captures it.
    // A promoted follower's lease gates the same way.
    wal.write_gate = [this]() {
      if (lease_.has_value()) return lease_->Check();
      if (replica_ != nullptr && replica_->lease() != nullptr) {
        return replica_->lease()->Check();
      }
      return Status::OK();
    };
  }
  return wal;
}

Status PipelineSupervisor::Follow(store::Database& db) {
  if (options_.snapshot_dir.empty()) {
    return Status::InvalidArgument("follower mode requires a snapshot_dir");
  }
  store::ReplicaOptions replica_options;
  replica_options.snapshot = options_.snapshot;
  replica_options.clock = options_.clock;
  replica_ = std::make_unique<store::Replica>(options_.snapshot_dir, &db,
                                              replica_options);
  NEWSDIFF_RETURN_IF_ERROR(replica_->Bootstrap());
  NEWSDIFF_LOG(Info) << "supervisor: following " << options_.snapshot_dir
                     << " from checkpoint generation "
                     << replica_->stats().bootstrap_generation;
  return Status::OK();
}

Status PipelineSupervisor::PollFollower() {
  if (replica_ == nullptr) {
    return Status::FailedPrecondition("not in follower mode (call Follow)");
  }
  return replica_->Poll();
}

StatusOr<uint64_t> PipelineSupervisor::PromoteFollower() {
  if (replica_ == nullptr) {
    return Status::FailedPrecondition("not in follower mode (call Follow)");
  }
  store::LeaseOptions lease_options = options_.lease;
  if (lease_options.io == nullptr) lease_options.io = options_.snapshot.io;
  if (lease_options.clock == nullptr) lease_options.clock = options_.clock;
  StatusOr<uint64_t> token = replica_->Promote(lease_options, options_.wal);
  if (token.ok()) {
    NEWSDIFF_LOG(Info) << "supervisor: promoted follower of "
                       << options_.snapshot_dir << " (fencing token "
                       << token.value() << ")";
  }
  return token;
}

Status PipelineSupervisor::Recover(store::Database& db) {
  report_ = SupervisorReport{};
  if (options_.snapshot_dir.empty()) return Status::OK();
  FileIo& io =
      options_.snapshot.io != nullptr ? *options_.snapshot.io : DefaultFileIo();
  const bool first_run = !io.Exists(options_.snapshot_dir);
  // Exclusivity comes first: recovery replays the log and (in WAL mode)
  // attaches the write path, so no second writer may be active.
  NEWSDIFF_RETURN_IF_ERROR(AcquireLeaseIfNeeded());
  if (first_run) return Status::OK();
  if (options_.use_wal) {
    NEWSDIFF_RETURN_IF_ERROR(db.RecoverWal(options_.snapshot_dir,
                                           options_.snapshot, GatedWalOptions(),
                                           &report_.recovery));
    report_.recovered = true;
    NEWSDIFF_LOG(Info) << "supervisor: recovered checkpoint generation "
                       << report_.recovery.generation << " + "
                       << report_.recovery.wal_records_replayed
                       << " replayed wal records from "
                       << options_.snapshot_dir;
    return Status::OK();
  }
  NEWSDIFF_RETURN_IF_ERROR(db.LoadFromDir(
      options_.snapshot_dir, options_.snapshot, &report_.recovery));
  report_.recovered = true;
  NEWSDIFF_LOG(Info) << "supervisor: recovered snapshot generation "
                     << report_.recovery.generation << " from "
                     << options_.snapshot_dir;
  return Status::OK();
}

Status PipelineSupervisor::RunStage(const std::string& stage,
                                    const embed::PretrainedStore& store,
                                    PipelineResult* result) const {
  if (stage == "topics") return pipeline_.RunTopics(result);
  if (stage == "news_events") return pipeline_.RunNewsEvents(result);
  if (stage == "twitter_events") return pipeline_.RunTwitterEvents(result);
  if (stage == "trending") return pipeline_.RunTrending(store, result);
  if (stage == "correlations") return pipeline_.RunCorrelations(store, result);
  if (stage == "assignments") return pipeline_.RunAssignments(result);
  return Status::InvalidArgument("unknown pipeline stage: " + stage);
}

StatusOr<PipelineResult> PipelineSupervisor::Run(
    store::Database& db, const embed::PretrainedStore& store) {
  SupervisorReport report;
  report.recovery = report_.recovery;  // keep what Recover() learned
  report.recovered = report_.recovered;
  report_ = std::move(report);

  SystemClock system_clock;
  Clock* clock = options_.clock != nullptr ? options_.clock : &system_clock;
  const size_t max_attempts =
      options_.max_stage_attempts == 0 ? 1 : options_.max_stage_attempts;

  NEWSDIFF_RETURN_IF_ERROR(AcquireLeaseIfNeeded());
  const bool wal_mode = options_.use_wal && !options_.snapshot_dir.empty();
  if (wal_mode && !db.wal_attached()) {
    // Fresh store (no Recover, or first run): everything inserted so far —
    // the crawl — predates logging, so attach and immediately checkpoint.
    // From here on, every mutation hits the log before memory.
    NEWSDIFF_RETURN_IF_ERROR(
        db.AttachWal(options_.snapshot_dir, GatedWalOptions()));
    NEWSDIFF_RETURN_IF_ERROR(RenewLease());
    NEWSDIFF_RETURN_IF_ERROR(db.Checkpoint(options_.snapshot));
  }

  PipelineResult result;
  NEWSDIFF_RETURN_IF_ERROR(pipeline_.LoadInputs(db, &result));
  const int64_t sig = InputSignature(result);

  // Resumable prefix: the longest run of leading stages whose ledger entry
  // matches the current inputs. A stage after the first recomputed one is
  // never resumed — its checkpointed outputs were derived from upstream
  // outputs that are about to be replaced.
  size_t done_prefix = 0;
  if (options_.resume) {
    while (done_prefix < kNumStages &&
           LedgerDone(db, kStageNames[done_prefix], sig)) {
      ++done_prefix;
    }
  }

  // The ledger is rewritten from scratch so stale entries (older inputs,
  // stages past the resume point) cannot linger. A first run has no ledger
  // to drop.
  (void)db.Drop(kStageLedgerCollection);

  size_t resumed = 0;
  for (; resumed < done_prefix; ++resumed) {
    const std::string stage = kStageNames[resumed];
    Status loaded = LoadStageOutput(stage, db, &result);
    if (!loaded.ok()) {
      NEWSDIFF_LOG(Warning) << "supervisor: ledger marks '" << stage
                            << "' complete but its checkpoint failed to load ("
                            << loaded.message() << "); recomputing from here";
      break;
    }
    NEWSDIFF_RETURN_IF_ERROR(AppendLedger(db, stage, sig, resumed));
    StageRun run;
    run.name = stage;
    run.resumed = true;
    report_.stages.push_back(std::move(run));
    ++report_.stages_resumed;
  }

  for (size_t i = resumed; i < kNumStages; ++i) {
    const std::string stage = kStageNames[i];
    StageRun run;
    run.name = stage;

    Status status = Status::OK();
    for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
      run.attempts = attempt;
      if (attempt > 1) {
        ++report_.retries;
        if (options_.retry_backoff_ms > 0) {
          clock->SleepMillis(options_.retry_backoff_ms);
        }
      }
      if (options_.stage_fault_hook) {
        status = options_.stage_fault_hook(stage, attempt);
        if (!status.ok()) {
          NEWSDIFF_LOG(Warning) << "supervisor: injected fault in '" << stage
                                << "' attempt " << attempt << ": "
                                << status.message();
          continue;
        }
      }
      const int64_t start_ms = clock->NowMillis();
      status = RunStage(stage, store, &result);
      const int64_t elapsed_ms = clock->NowMillis() - start_ms;
      run.seconds = static_cast<double>(elapsed_ms) / 1000.0;
      if (status.ok() && options_.stage_deadline_ms > 0 &&
          elapsed_ms > options_.stage_deadline_ms) {
        status = Status::DeadlineExceeded(
            "stage '" + stage + "' took " + std::to_string(elapsed_ms) +
            "ms (deadline " + std::to_string(options_.stage_deadline_ms) +
            "ms)");
      }
      if (status.ok()) break;
      NEWSDIFF_LOG(Warning) << "supervisor: stage '" << stage << "' attempt "
                            << attempt << "/" << max_attempts
                            << " failed: " << status.message();
    }
    if (!status.ok()) return status;

    // Durability, in dependency order. The lease is renewed first so a
    // fenced writer fails here instead of publishing. In WAL mode the
    // outputs and the completion record get *separate* syncs: per-
    // collection logs flush independently, so one sync covering both could
    // crash with the ledger entry durable but the outputs it vouches for
    // still pending — a resume would then trust incomplete outputs. Split,
    // a crash can only leave outputs without a ledger entry, and the stage
    // recomputes deterministically. Snapshot mode needs no such care: the
    // whole-store save commits atomically at the manifest rename.
    NEWSDIFF_RETURN_IF_ERROR(RenewLease());
    NEWSDIFF_RETURN_IF_ERROR(SaveStageOutput(stage, result, db));
    if (wal_mode) {
      NEWSDIFF_RETURN_IF_ERROR(db.WalSync());
      NEWSDIFF_RETURN_IF_ERROR(AppendLedger(db, stage, sig, i));
      NEWSDIFF_RETURN_IF_ERROR(db.WalSync());
    } else {
      NEWSDIFF_RETURN_IF_ERROR(AppendLedger(db, stage, sig, i));
      if (!options_.snapshot_dir.empty()) {
        NEWSDIFF_RETURN_IF_ERROR(
            db.SaveToDir(options_.snapshot_dir, options_.snapshot));
      }
    }
    report_.stages.push_back(std::move(run));
    ++report_.stages_computed;
  }

  if (wal_mode) {
    // Fold the run's log tail into a fresh checkpoint so the next process
    // recovers from a snapshot plus a short log, not the whole run's log.
    NEWSDIFF_RETURN_IF_ERROR(RenewLease());
    NEWSDIFF_RETURN_IF_ERROR(db.Checkpoint(options_.snapshot));
  }
  if (lease_.has_value()) {
    // Clean exit: hand the directory to the next writer immediately. Error
    // paths above deliberately keep the lease — it expires on its own, the
    // crash-takeover contract.
    NEWSDIFF_RETURN_IF_ERROR(lease_->Release());
    lease_.reset();
  } else if (replica_ != nullptr && replica_->lease() != nullptr) {
    NEWSDIFF_RETURN_IF_ERROR(replica_->ReleaseLease());
  }

  NEWSDIFF_LOG(Info) << "supervisor: " << report_.stages_resumed
                     << " stages resumed, " << report_.stages_computed
                     << " computed, " << report_.retries << " retries";
  return result;
}

}  // namespace newsdiff::core
