#ifndef NEWSDIFF_CORE_EMBEDDING_CACHE_H_
#define NEWSDIFF_CORE_EMBEDDING_CACHE_H_

#include <string>

#include "common/status.h"
#include "embed/pretrained.h"

namespace newsdiff::core {

/// Configuration for the frozen background embedding store (the pretrained
/// Google News substitute; see DESIGN.md).
struct PretrainedConfig {
  size_t dimension = 300;          // the paper's Doc2Vec size
  size_t background_sentences = 8000;
  size_t epochs = 3;
  uint64_t seed = 4242;
};

/// Loads the store from `cache_path` if present; otherwise trains it on the
/// synthetic background corpus and writes the cache. Pass an empty path to
/// skip caching. The store is deterministic for a fixed config, so the
/// cache is safe to share across benches and examples.
StatusOr<embed::PretrainedStore> LoadOrTrainPretrained(
    const std::string& cache_path, const PretrainedConfig& config = {});

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_EMBEDDING_CACHE_H_
