#ifndef NEWSDIFF_CORE_TRENDING_H_
#define NEWSDIFF_CORE_TRENDING_H_

#include <vector>

#include "embed/pretrained.h"
#include "event/mabed.h"
#include "topic/topic_model.h"

namespace newsdiff::core {

/// A <news topic, news event> pair with high Doc2Vec cosine similarity —
/// the paper's *trending news topic* (§4.5, §5.5).
struct TrendingNewsTopic {
  size_t topic_id = 0;      // index into the topic list
  size_t news_event = 0;    // index into the news-event list
  double similarity = 0.0;  // NewsTopic2Vec . NewsEvent2Vec cosine
};

struct TrendingOptions {
  /// Minimum similarity to qualify (the paper keeps pairs > 0.7).
  double min_similarity = 0.7;
};

/// Encodes an event's main + related words as a single vector
/// (NewsEvent2Vec / TwitterEvent2Vec of §4.5-§4.6).
std::vector<double> EncodeEvent(const event::Event& ev,
                                const embed::PretrainedStore& store);

/// Encodes a topic's keywords (NewsTopic2Vec).
std::vector<double> EncodeTopic(const topic::Topic& t,
                                const embed::PretrainedStore& store);

/// For each topic, finds the best-matching news event; keeps pairs whose
/// similarity clears the threshold. One pair per topic at most.
std::vector<TrendingNewsTopic> ExtractTrendingTopics(
    const std::vector<topic::Topic>& topics,
    const std::vector<event::Event>& news_events,
    const embed::PretrainedStore& store, const TrendingOptions& options);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_TRENDING_H_
