#include "core/checkpoint.h"

namespace newsdiff::core {
namespace {

store::Value StringsToArray(const std::vector<std::string>& strings) {
  store::Array arr;
  arr.reserve(strings.size());
  for (const std::string& s : strings) arr.emplace_back(s);
  return store::Value(std::move(arr));
}

store::Value DoublesToArray(const std::vector<double>& values) {
  store::Array arr;
  arr.reserve(values.size());
  for (double v : values) arr.emplace_back(v);
  return store::Value(std::move(arr));
}

Status ReadStrings(const store::Value& doc, const std::string& key,
                   std::vector<std::string>* out) {
  const store::Value* v = doc.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::ParseError("missing array field " + key);
  }
  for (const store::Value& item : v->array()) {
    out->push_back(item.AsString());
  }
  return Status::OK();
}

Status ReadDoubles(const store::Value& doc, const std::string& key,
                   std::vector<double>* out) {
  const store::Value* v = doc.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::ParseError("missing array field " + key);
  }
  for (const store::Value& item : v->array()) {
    out->push_back(item.AsDouble());
  }
  return Status::OK();
}

store::Value EventToDoc(const event::Event& ev) {
  return store::MakeObject({
      {"main_word", ev.main_word},
      {"related_words", StringsToArray(ev.related_words)},
      {"related_weights", DoublesToArray(ev.related_weights)},
      {"start_time", ev.start_time},
      {"end_time", ev.end_time},
      {"magnitude", ev.magnitude},
      {"support", static_cast<int64_t>(ev.support)},
  });
}

StatusOr<event::Event> EventFromDoc(const store::Value& doc) {
  event::Event ev;
  if (const store::Value* v = doc.Find("main_word")) {
    ev.main_word = v->AsString();
  } else {
    return Status::ParseError("event missing main_word");
  }
  NEWSDIFF_RETURN_IF_ERROR(
      ReadStrings(doc, "related_words", &ev.related_words));
  NEWSDIFF_RETURN_IF_ERROR(
      ReadDoubles(doc, "related_weights", &ev.related_weights));
  if (const store::Value* v = doc.Find("start_time")) {
    ev.start_time = v->AsInt();
  }
  if (const store::Value* v = doc.Find("end_time")) ev.end_time = v->AsInt();
  if (const store::Value* v = doc.Find("magnitude")) {
    ev.magnitude = v->AsDouble();
  }
  if (const store::Value* v = doc.Find("support")) {
    ev.support = static_cast<size_t>(v->AsInt());
  }
  return ev;
}

Status SaveEvents(const std::vector<event::Event>& events,
                  store::Collection& coll) {
  for (const event::Event& ev : events) {
    StatusOr<store::DocId> id = coll.Insert(EventToDoc(ev));
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

Status LoadEvents(const store::Collection& coll,
                  std::vector<event::Event>* out) {
  Status status = Status::OK();
  coll.ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    StatusOr<event::Event> ev = EventFromDoc(doc);
    if (!ev.ok()) {
      status = ev.status();
      return false;
    }
    out->push_back(std::move(ev).value());
    return true;
  });
  return status;
}

}  // namespace

Status SaveCheckpoint(const PipelineResult& result, store::Database& db) {
  for (const char* name :
       {kTopicsCollection, kNewsEventsCollection, kTwitterEventsCollection,
        kTrendingCollection, kCorrelationsCollection}) {
    db.Drop(name);
  }

  store::Collection& topics = db.GetOrCreate(kTopicsCollection);
  for (const topic::Topic& t : result.topics) {
    StatusOr<store::DocId> id = topics.Insert(store::MakeObject({
        {"topic_id", static_cast<int64_t>(t.id)},
        {"keywords", StringsToArray(t.keywords)},
        {"weights", DoublesToArray(t.weights)},
    }));
    if (!id.ok()) return id.status();
  }

  NEWSDIFF_RETURN_IF_ERROR(
      SaveEvents(result.news_events, db.GetOrCreate(kNewsEventsCollection)));
  NEWSDIFF_RETURN_IF_ERROR(SaveEvents(
      result.twitter_events, db.GetOrCreate(kTwitterEventsCollection)));

  store::Collection& trending = db.GetOrCreate(kTrendingCollection);
  for (const TrendingNewsTopic& t : result.trending) {
    StatusOr<store::DocId> id = trending.Insert(store::MakeObject({
        {"topic_id", static_cast<int64_t>(t.topic_id)},
        {"news_event", static_cast<int64_t>(t.news_event)},
        {"similarity", t.similarity},
    }));
    if (!id.ok()) return id.status();
  }

  store::Collection& correlations = db.GetOrCreate(kCorrelationsCollection);
  for (const EventCorrelation& c : result.correlations) {
    StatusOr<store::DocId> id = correlations.Insert(store::MakeObject({
        {"trending", static_cast<int64_t>(c.trending)},
        {"twitter_event", static_cast<int64_t>(c.twitter_event)},
        {"similarity", c.similarity},
    }));
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

StatusOr<CheckpointData> LoadCheckpoint(const store::Database& db) {
  CheckpointData data;
  const store::Collection* topics = db.Get(kTopicsCollection);
  if (topics == nullptr) return Status::NotFound("no checkpoint in store");
  Status status = Status::OK();
  topics->ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    topic::Topic t;
    if (const store::Value* v = doc.Find("topic_id")) {
      t.id = static_cast<size_t>(v->AsInt());
    }
    status = ReadStrings(doc, "keywords", &t.keywords);
    if (!status.ok()) return false;
    status = ReadDoubles(doc, "weights", &t.weights);
    if (!status.ok()) return false;
    data.topics.push_back(std::move(t));
    return true;
  });
  NEWSDIFF_RETURN_IF_ERROR(status);

  const store::Collection* news_events = db.Get(kNewsEventsCollection);
  const store::Collection* twitter_events = db.Get(kTwitterEventsCollection);
  if (news_events == nullptr || twitter_events == nullptr) {
    return Status::ParseError("checkpoint is missing event collections");
  }
  NEWSDIFF_RETURN_IF_ERROR(LoadEvents(*news_events, &data.news_events));
  NEWSDIFF_RETURN_IF_ERROR(LoadEvents(*twitter_events, &data.twitter_events));

  if (const store::Collection* trending = db.Get(kTrendingCollection)) {
    trending->ForEach(store::Filter(),
                      [&](store::DocId, const store::Value& doc) {
                        TrendingNewsTopic t;
                        if (const store::Value* v = doc.Find("topic_id")) {
                          t.topic_id = static_cast<size_t>(v->AsInt());
                        }
                        if (const store::Value* v = doc.Find("news_event")) {
                          t.news_event = static_cast<size_t>(v->AsInt());
                        }
                        if (const store::Value* v = doc.Find("similarity")) {
                          t.similarity = v->AsDouble();
                        }
                        data.trending.push_back(t);
                        return true;
                      });
  }
  if (const store::Collection* correlations =
          db.Get(kCorrelationsCollection)) {
    correlations->ForEach(
        store::Filter(), [&](store::DocId, const store::Value& doc) {
          EventCorrelation c;
          if (const store::Value* v = doc.Find("trending")) {
            c.trending = static_cast<size_t>(v->AsInt());
          }
          if (const store::Value* v = doc.Find("twitter_event")) {
            c.twitter_event = static_cast<size_t>(v->AsInt());
          }
          if (const store::Value* v = doc.Find("similarity")) {
            c.similarity = v->AsDouble();
          }
          data.correlations.push_back(c);
          return true;
        });
  }
  return data;
}

}  // namespace newsdiff::core
