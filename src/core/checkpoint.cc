#include "core/checkpoint.h"

#include <algorithm>

namespace newsdiff::core {
namespace {

store::Value StringsToArray(const std::vector<std::string>& strings) {
  store::Array arr;
  arr.reserve(strings.size());
  for (const std::string& s : strings) arr.emplace_back(s);
  return store::Value(std::move(arr));
}

store::Value DoublesToArray(const std::vector<double>& values) {
  store::Array arr;
  arr.reserve(values.size());
  for (double v : values) arr.emplace_back(v);
  return store::Value(std::move(arr));
}

store::Value IndicesToArray(const std::vector<size_t>& values) {
  store::Array arr;
  arr.reserve(values.size());
  for (size_t v : values) arr.emplace_back(static_cast<int64_t>(v));
  return store::Value(std::move(arr));
}

Status ReadStrings(const store::Value& doc, const std::string& key,
                   std::vector<std::string>* out) {
  const store::Value* v = doc.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::ParseError("missing array field " + key);
  }
  for (const store::Value& item : v->array()) {
    out->push_back(item.AsString());
  }
  return Status::OK();
}

Status ReadDoubles(const store::Value& doc, const std::string& key,
                   std::vector<double>* out) {
  const store::Value* v = doc.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::ParseError("missing array field " + key);
  }
  for (const store::Value& item : v->array()) {
    out->push_back(item.AsDouble());
  }
  return Status::OK();
}

Status ReadIndices(const store::Value& doc, const std::string& key,
                   std::vector<size_t>* out) {
  const store::Value* v = doc.Find(key);
  if (v == nullptr || !v->is_array()) {
    return Status::ParseError("missing array field " + key);
  }
  for (const store::Value& item : v->array()) {
    out->push_back(static_cast<size_t>(item.AsInt()));
  }
  return Status::OK();
}

store::Value TermsToArray(const std::vector<uint32_t>& terms) {
  store::Array arr;
  arr.reserve(terms.size());
  for (uint32_t t : terms) arr.emplace_back(static_cast<int64_t>(t));
  return store::Value(std::move(arr));
}

store::Value EventToDoc(const event::Event& ev) {
  // Term ids and slice indices are relative to the corpus / time slicing,
  // both of which rebuild deterministically from the raw collections — so
  // they stay valid across a save/load cycle. DocumentBelongsToEvent
  // matches by term id, so dropping them would break restored events.
  return store::MakeObject({
      {"main_word", ev.main_word},
      {"main_term", static_cast<int64_t>(ev.main_term)},
      {"related_words", StringsToArray(ev.related_words)},
      {"related_weights", DoublesToArray(ev.related_weights)},
      {"related_terms", TermsToArray(ev.related_terms)},
      {"start_slice", static_cast<int64_t>(ev.start_slice)},
      {"end_slice", static_cast<int64_t>(ev.end_slice)},
      {"start_time", ev.start_time},
      {"end_time", ev.end_time},
      {"magnitude", ev.magnitude},
      {"support", static_cast<int64_t>(ev.support)},
  });
}

StatusOr<event::Event> EventFromDoc(const store::Value& doc) {
  event::Event ev;
  if (const store::Value* v = doc.Find("main_word")) {
    ev.main_word = v->AsString();
  } else {
    return Status::ParseError("event missing main_word");
  }
  NEWSDIFF_RETURN_IF_ERROR(
      ReadStrings(doc, "related_words", &ev.related_words));
  NEWSDIFF_RETURN_IF_ERROR(
      ReadDoubles(doc, "related_weights", &ev.related_weights));
  if (const store::Value* v = doc.Find("main_term")) {
    ev.main_term = static_cast<uint32_t>(v->AsInt());
  }
  if (const store::Value* v = doc.Find("related_terms")) {
    if (!v->is_array()) return Status::ParseError("related_terms not array");
    for (const store::Value& item : v->array()) {
      ev.related_terms.push_back(static_cast<uint32_t>(item.AsInt()));
    }
  }
  if (const store::Value* v = doc.Find("start_slice")) {
    ev.start_slice = static_cast<size_t>(v->AsInt());
  }
  if (const store::Value* v = doc.Find("end_slice")) {
    ev.end_slice = static_cast<size_t>(v->AsInt());
  }
  if (const store::Value* v = doc.Find("start_time")) {
    ev.start_time = v->AsInt();
  }
  if (const store::Value* v = doc.Find("end_time")) ev.end_time = v->AsInt();
  if (const store::Value* v = doc.Find("magnitude")) {
    ev.magnitude = v->AsDouble();
  }
  if (const store::Value* v = doc.Find("support")) {
    ev.support = static_cast<size_t>(v->AsInt());
  }
  return ev;
}

Status SaveEvents(const std::vector<event::Event>& events,
                  store::Collection& coll) {
  for (const event::Event& ev : events) {
    StatusOr<store::DocId> id = coll.Insert(EventToDoc(ev));
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

Status LoadEvents(const store::Collection& coll,
                  std::vector<event::Event>* out) {
  Status status = Status::OK();
  coll.ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    StatusOr<event::Event> ev = EventFromDoc(doc);
    if (!ev.ok()) {
      status = ev.status();
      return false;
    }
    out->push_back(std::move(ev).value());
    return true;
  });
  return status;
}

Status SaveTopics(const std::vector<topic::Topic>& in,
                  store::Collection& coll) {
  for (const topic::Topic& t : in) {
    StatusOr<store::DocId> id = coll.Insert(store::MakeObject({
        {"topic_id", static_cast<int64_t>(t.id)},
        {"keywords", StringsToArray(t.keywords)},
        {"weights", DoublesToArray(t.weights)},
    }));
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

Status LoadTopics(const store::Collection& coll,
                  std::vector<topic::Topic>* out) {
  Status status = Status::OK();
  coll.ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    topic::Topic t;
    if (const store::Value* v = doc.Find("topic_id")) {
      t.id = static_cast<size_t>(v->AsInt());
    }
    status = ReadStrings(doc, "keywords", &t.keywords);
    if (!status.ok()) return false;
    status = ReadDoubles(doc, "weights", &t.weights);
    if (!status.ok()) return false;
    out->push_back(std::move(t));
    return true;
  });
  return status;
}

Status SaveTrending(const std::vector<TrendingNewsTopic>& in,
                    store::Collection& coll) {
  for (const TrendingNewsTopic& t : in) {
    StatusOr<store::DocId> id = coll.Insert(store::MakeObject({
        {"topic_id", static_cast<int64_t>(t.topic_id)},
        {"news_event", static_cast<int64_t>(t.news_event)},
        {"similarity", t.similarity},
    }));
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

void LoadTrending(const store::Collection& coll,
                  std::vector<TrendingNewsTopic>* out) {
  coll.ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    TrendingNewsTopic t;
    if (const store::Value* v = doc.Find("topic_id")) {
      t.topic_id = static_cast<size_t>(v->AsInt());
    }
    if (const store::Value* v = doc.Find("news_event")) {
      t.news_event = static_cast<size_t>(v->AsInt());
    }
    if (const store::Value* v = doc.Find("similarity")) {
      t.similarity = v->AsDouble();
    }
    out->push_back(t);
    return true;
  });
}

Status SaveCorrelations(const std::vector<EventCorrelation>& in,
                        store::Collection& coll) {
  for (const EventCorrelation& c : in) {
    StatusOr<store::DocId> id = coll.Insert(store::MakeObject({
        {"trending", static_cast<int64_t>(c.trending)},
        {"twitter_event", static_cast<int64_t>(c.twitter_event)},
        {"similarity", c.similarity},
    }));
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

void LoadCorrelations(const store::Collection& coll,
                      std::vector<EventCorrelation>* out) {
  coll.ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    EventCorrelation c;
    if (const store::Value* v = doc.Find("trending")) {
      c.trending = static_cast<size_t>(v->AsInt());
    }
    if (const store::Value* v = doc.Find("twitter_event")) {
      c.twitter_event = static_cast<size_t>(v->AsInt());
    }
    if (const store::Value* v = doc.Find("similarity")) {
      c.similarity = v->AsDouble();
    }
    out->push_back(c);
    return true;
  });
}

Status SaveAssignments(const std::vector<EventTweetAssignment>& in,
                       store::Collection& coll) {
  for (const EventTweetAssignment& a : in) {
    StatusOr<store::DocId> id = coll.Insert(store::MakeObject({
        {"twitter_event", static_cast<int64_t>(a.twitter_event)},
        {"tweet_indices", IndicesToArray(a.tweet_indices)},
    }));
    if (!id.ok()) return id.status();
  }
  return Status::OK();
}

Status LoadAssignments(const store::Collection& coll,
                       std::vector<EventTweetAssignment>* out) {
  Status status = Status::OK();
  coll.ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    EventTweetAssignment a;
    if (const store::Value* v = doc.Find("twitter_event")) {
      a.twitter_event = static_cast<size_t>(v->AsInt());
    }
    status = ReadIndices(doc, "tweet_indices", &a.tweet_indices);
    if (!status.ok()) return false;
    out->push_back(std::move(a));
    return true;
  });
  return status;
}

}  // namespace

Status SaveStageOutput(const std::string& stage, const PipelineResult& result,
                       store::Database& db) {
  if (stage == "topics") {
    (void)db.Drop(kTopicsCollection);
    return SaveTopics(result.topics, db.GetOrCreate(kTopicsCollection));
  }
  if (stage == "news_events") {
    (void)db.Drop(kNewsEventsCollection);
    return SaveEvents(result.news_events,
                      db.GetOrCreate(kNewsEventsCollection));
  }
  if (stage == "twitter_events") {
    (void)db.Drop(kTwitterEventsCollection);
    return SaveEvents(result.twitter_events,
                      db.GetOrCreate(kTwitterEventsCollection));
  }
  if (stage == "trending") {
    (void)db.Drop(kTrendingCollection);
    return SaveTrending(result.trending, db.GetOrCreate(kTrendingCollection));
  }
  if (stage == "correlations") {
    (void)db.Drop(kCorrelationsCollection);
    return SaveCorrelations(result.correlations,
                            db.GetOrCreate(kCorrelationsCollection));
  }
  if (stage == "assignments") {
    (void)db.Drop(kAssignmentsCollection);
    return SaveAssignments(result.assignments,
                           db.GetOrCreate(kAssignmentsCollection));
  }
  return Status::InvalidArgument("unknown pipeline stage: " + stage);
}

Status LoadStageOutput(const std::string& stage, const store::Database& db,
                       PipelineResult* result) {
  auto find = [&](const char* name) -> const store::Collection* {
    return db.Get(name);
  };
  if (stage == "topics") {
    const store::Collection* c = find(kTopicsCollection);
    if (c == nullptr) return Status::NotFound("no topics checkpoint");
    result->topics.clear();
    return LoadTopics(*c, &result->topics);
  }
  if (stage == "news_events") {
    const store::Collection* c = find(kNewsEventsCollection);
    if (c == nullptr) return Status::NotFound("no news_events checkpoint");
    result->news_events.clear();
    return LoadEvents(*c, &result->news_events);
  }
  if (stage == "twitter_events") {
    const store::Collection* c = find(kTwitterEventsCollection);
    if (c == nullptr) return Status::NotFound("no twitter_events checkpoint");
    result->twitter_events.clear();
    return LoadEvents(*c, &result->twitter_events);
  }
  if (stage == "trending") {
    const store::Collection* c = find(kTrendingCollection);
    if (c == nullptr) return Status::NotFound("no trending checkpoint");
    result->trending.clear();
    LoadTrending(*c, &result->trending);
    return Status::OK();
  }
  if (stage == "correlations") {
    const store::Collection* c = find(kCorrelationsCollection);
    if (c == nullptr) return Status::NotFound("no correlations checkpoint");
    result->correlations.clear();
    LoadCorrelations(*c, &result->correlations);
    // Derived view; twitter_events must already be populated (the supervisor
    // restores stages in execution order, so it is).
    result->unrelated_twitter_events = UnrelatedTwitterEvents(
        result->correlations, result->twitter_events.size());
    return Status::OK();
  }
  if (stage == "assignments") {
    const store::Collection* c = find(kAssignmentsCollection);
    if (c == nullptr) return Status::NotFound("no assignments checkpoint");
    result->assignments.clear();
    return LoadAssignments(*c, &result->assignments);
  }
  return Status::InvalidArgument("unknown pipeline stage: " + stage);
}

Status SaveCheckpoint(const PipelineResult& result, store::Database& db) {
  for (const char* stage : kStageNames) {
    NEWSDIFF_RETURN_IF_ERROR(SaveStageOutput(stage, result, db));
  }
  return Status::OK();
}

StatusOr<CheckpointData> LoadCheckpoint(const store::Database& db) {
  if (db.Get(kTopicsCollection) == nullptr) {
    return Status::NotFound("no checkpoint in store");
  }
  if (db.Get(kNewsEventsCollection) == nullptr ||
      db.Get(kTwitterEventsCollection) == nullptr) {
    return Status::ParseError("checkpoint is missing event collections");
  }
  PipelineResult scratch;
  for (const char* stage : kStageNames) {
    Status status = LoadStageOutput(stage, db, &scratch);
    // Trending/correlation/assignment collections may be absent in old
    // checkpoints; treat that as empty rather than failing the load.
    if (!status.ok() && status.code() != StatusCode::kNotFound) return status;
  }
  CheckpointData data;
  data.topics = std::move(scratch.topics);
  data.news_events = std::move(scratch.news_events);
  data.twitter_events = std::move(scratch.twitter_events);
  data.trending = std::move(scratch.trending);
  data.correlations = std::move(scratch.correlations);
  data.assignments = std::move(scratch.assignments);
  return data;
}

}  // namespace newsdiff::core
