#include "core/tuning.h"

namespace newsdiff::core {

StatusOr<TuningResult> TunePredictor(
    const la::Matrix& x, const std::vector<int>& y,
    const std::vector<TuningCandidate>& candidates, size_t folds,
    const Parallelism& grid) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no candidates to tune over");
  }
  TuningResult result;
  result.per_candidate.assign(candidates.size(), CrossValidationResult{});
  std::vector<Status> statuses(candidates.size(), Status::OK());
  // Grid cells as coarse tasks: disjoint result slots, inline nested
  // regions — bitwise identical to the serial sweep (see tuning.h).
  ParallelFor(grid, candidates.size(), [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      StatusOr<CrossValidationResult> cv = CrossValidate(
          x, y, candidates[i].kind, candidates[i].options, folds);
      if (cv.ok()) {
        result.per_candidate[i] = std::move(cv).value();
      } else {
        statuses[i] = cv.status();
      }
    }
  });
  // Lowest failing cell wins, matching the serial loop's error order.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  // The winner is picked serially after the sweep — same scan the serial
  // loop interleaved with training (ties resolve to the first index).
  double best = -1.0;
  for (size_t i = 0; i < result.per_candidate.size(); ++i) {
    if (result.per_candidate[i].mean_accuracy > best) {
      best = result.per_candidate[i].mean_accuracy;
      result.best_index = i;
    }
  }
  return result;
}

std::vector<TuningCandidate> PaperSearchSpace(const PredictorOptions& base) {
  std::vector<TuningCandidate> out;
  for (NetworkKind arch : {NetworkKind::kMlp1, NetworkKind::kCnn1}) {
    const char* arch_name =
        (arch == NetworkKind::kMlp1) ? "MLP" : "CNN";
    for (double lr : {0.1, 0.5}) {
      TuningCandidate c;
      c.label = std::string(arch_name) + " + SGD lr=" +
                (lr == 0.1 ? "0.1" : "0.5");
      c.kind = arch;  // the *1 kinds select SGD
      c.options = base;
      c.options.sgd_learning_rate = lr;
      out.push_back(std::move(c));
    }
    for (double lr : {1.0, 2.0}) {
      TuningCandidate c;
      c.label = std::string(arch_name) + " + ADADELTA lr=" +
                (lr == 1.0 ? "1" : "2");
      c.kind = (arch == NetworkKind::kMlp1) ? NetworkKind::kMlp2
                                            : NetworkKind::kCnn2;
      c.options = base;
      c.options.adadelta_learning_rate = lr;
      out.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace newsdiff::core
