#ifndef NEWSDIFF_CORE_CROSS_VALIDATION_H_
#define NEWSDIFF_CORE_CROSS_VALIDATION_H_

#include <vector>

#include "core/predictor.h"

namespace newsdiff::core {

/// Result of a k-fold cross-validation run (§5.6: the paper selects its
/// four network configurations "after hyperparameter tuning and cross
/// validation").
struct CrossValidationResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  size_t folds = 0;
};

/// Seeded k-fold cross-validation of one network configuration: the data is
/// shuffled once, split into `folds` contiguous folds, and each fold serves
/// as the validation set exactly once while the rest trains a fresh model.
StatusOr<CrossValidationResult> CrossValidate(const la::Matrix& x,
                                              const std::vector<int>& y,
                                              NetworkKind kind,
                                              const PredictorOptions& options,
                                              size_t folds = 5);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_CROSS_VALIDATION_H_
