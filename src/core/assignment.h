#ifndef NEWSDIFF_CORE_ASSIGNMENT_H_
#define NEWSDIFF_CORE_ASSIGNMENT_H_

#include <vector>

#include "common/status.h"
#include "core/trending.h"
#include "la/matrix.h"

namespace newsdiff::core {

/// Optimal bipartite matching — the paper's future-work direction (§6:
/// "we plan to use other matching techniques, e.g., Minimum Cost Flow, to
/// correlate news topics, news events, and Twitter events"). A linear
/// assignment is the special case of min-cost flow with unit capacities,
/// solved here with the Hungarian algorithm (Jonker-Volgenant potentials,
/// O(n^2 m)).

/// Minimises total cost over a rows x cols matrix, assigning each row to
/// at most one column and vice versa. Requires rows <= cols. Returns for
/// each row the assigned column.
StatusOr<std::vector<int>> SolveAssignment(const la::Matrix& cost);

/// One-to-one topic-to-news-event matching maximising total similarity,
/// keeping only pairs above `options.min_similarity`. Unlike the deployed
/// greedy matcher (ExtractTrendingTopics), no two topics may claim the
/// same news event; the `ablation_matching` benchmark compares the two.
std::vector<TrendingNewsTopic> ExtractTrendingTopicsOptimal(
    const std::vector<topic::Topic>& topics,
    const std::vector<event::Event>& news_events,
    const embed::PretrainedStore& store, const TrendingOptions& options);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_ASSIGNMENT_H_
