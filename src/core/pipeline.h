#ifndef NEWSDIFF_CORE_PIPELINE_H_
#define NEWSDIFF_CORE_PIPELINE_H_

#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "core/collection.h"
#include "core/correlation.h"
#include "core/features.h"
#include "core/predictor.h"
#include "core/preprocess.h"
#include "core/trending.h"
#include "embed/pretrained.h"
#include "event/mabed.h"
#include "topic/topic_model.h"

namespace newsdiff::core {

/// End-to-end configuration of the architecture in the paper's Fig. 1.
/// Defaults are scaled for a single-core reproduction; benches override
/// individual fields where a paper experiment pins a value (e.g. 60-minute
/// news slices, 30-minute tweet slices, similarity thresholds).
struct PipelineOptions {
  topic::TopicModelOptions topics = [] {
    topic::TopicModelOptions o;
    o.num_topics = 24;
    o.keywords_per_topic = 10;
    o.nmf.max_iterations = 120;
    o.dtm.min_doc_freq = 3;
    o.dtm.max_doc_fraction = 0.5;
    return o;
  }();
  event::MabedOptions news_mabed = [] {
    event::MabedOptions o;
    o.time_slice_seconds = 60 * kSecondsPerMinute;  // paper: 60 min
    o.max_events = 100;
    o.min_support = 10;
    return o;
  }();
  event::MabedOptions twitter_mabed = [] {
    event::MabedOptions o;
    o.time_slice_seconds = 30 * kSecondsPerMinute;  // paper: 30 min
    o.max_events = 150;
    o.min_support = 10;
    return o;
  }();
  TrendingOptions trending;        // sim > 0.7
  CorrelationOptions correlation;  // sim > 0.65, 5-day window
  FeatureOptions features;         // >= 10 tweets, 20% related words
  /// Execution parallelism for the stage hot paths. The Pipeline
  /// constructor copies this into the NMF and the two MABED option
  /// structs, so one knob configures every stage; all of those kernels
  /// are map-style and bitwise invariant to it (see common/parallel.h).
  Parallelism parallelism;
};

/// Everything the pipeline produced, kept for the prediction stage and the
/// benchmark harnesses.
struct PipelineResult {
  // Stage inputs/corpora (index-aligned with the record vectors).
  std::vector<NewsRecord> news;
  std::vector<TweetRecord> tweets;
  /// Articles ingested in degraded form (scrape failed; body is only the
  /// first paragraph). They flow through every stage rather than being
  /// dropped — this counts them so operators can see the data quality.
  size_t degraded_news = 0;
  corpus::Corpus news_tm;
  corpus::Corpus news_ed;
  corpus::Corpus twitter_ed;

  // Stage outputs.
  std::vector<topic::Topic> topics;
  std::vector<event::Event> news_events;
  std::vector<event::Event> twitter_events;
  std::vector<TrendingNewsTopic> trending;
  std::vector<EventCorrelation> correlations;
  std::vector<size_t> unrelated_twitter_events;
  std::vector<EventTweetAssignment> assignments;

  // Timing breakdown (seconds).
  double topic_seconds = 0.0;
  double news_event_seconds = 0.0;
  double twitter_event_seconds = 0.0;
  double trending_seconds = 0.0;
  double correlation_seconds = 0.0;
  double assignment_seconds = 0.0;

  /// Indices (into twitter_events) of the distinct correlated events.
  std::vector<size_t> CorrelatedTwitterEventIndices() const;
};

/// Orchestrates steps (i)-(iv) of the proposed solution: collection ->
/// preprocessing -> topics -> news events -> Twitter events -> trending
/// topics -> correlation -> event-tweet assignment. Step (v), prediction,
/// is run on top via BuildDataset + TrainAndEvaluate so callers can sweep
/// dataset variants and networks.
class Pipeline {
 public:
  /// Copies `options.parallelism` into the per-stage option structs (NMF,
  /// both MABED detectors) so callers set parallelism in one place.
  explicit Pipeline(PipelineOptions options);

  /// Runs the full analysis over the store contents using the frozen
  /// embedding store.
  StatusOr<PipelineResult> Run(store::Database& db,
                               const embed::PretrainedStore& store) const;

  /// Stage-granular API used by PipelineSupervisor (core/supervisor.h) so
  /// a resumed process can re-run only the stages its ledger lacks. Each
  /// method fills its PipelineResult fields from earlier ones; Run is the
  /// composition of LoadInputs + the six stages in declaration order.
  Status LoadInputs(store::Database& db, PipelineResult* result) const;
  Status RunTopics(PipelineResult* result) const;
  Status RunNewsEvents(PipelineResult* result) const;
  Status RunTwitterEvents(PipelineResult* result) const;
  Status RunTrending(const embed::PretrainedStore& store,
                     PipelineResult* result) const;
  Status RunCorrelations(const embed::PretrainedStore& store,
                         PipelineResult* result) const;
  Status RunAssignments(PipelineResult* result) const;

  const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_PIPELINE_H_
