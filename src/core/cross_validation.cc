#include "core/cross_validation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"

namespace newsdiff::core {
namespace {

/// Trains and scores one fold. Self-contained by construction: the fold's
/// RNGs derive from options.seed + fold * 977, the model/optimizer/
/// standardization are all local, and the only shared inputs (x, y, order)
/// are read-only — which is what lets CrossValidate run folds as parallel
/// tasks without changing any result bit.
StatusOr<double> RunOneFold(const la::Matrix& x, const std::vector<int>& y,
                            const std::vector<size_t>& order,
                            NetworkKind kind, const PredictorOptions& options,
                            size_t fold, size_t folds) {
  const size_t n = x.rows();
  size_t lo = fold * n / folds;
  size_t hi = (fold + 1) * n / folds;
  size_t n_val = hi - lo;
  size_t n_train = n - n_val;

  la::Matrix train_x(n_train, x.cols());
  la::Matrix val_x(n_val, x.cols());
  std::vector<int> train_y(n_train), val_y(n_val);
  size_t ti = 0, vi = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t src = order[i];
    if (i >= lo && i < hi) {
      std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(), val_x.RowPtr(vi));
      val_y[vi++] = y[src];
    } else {
      std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(),
                train_x.RowPtr(ti));
      train_y[ti++] = y[src];
    }
  }

  // Reuse TrainAndEvaluate's preprocessing by training directly here with
  // the same standardization logic: delegate to TrainAndEvaluate on a
  // reassembled (train first, val last) matrix with a zero-shuffle split.
  // Simpler and equally correct: train a model on the fold split inline.
  PredictorOptions fold_options = options;
  fold_options.seed = options.seed + fold * 977;
  nn::Model model = BuildNetwork(kind, x.cols(), fold_options);
  std::unique_ptr<nn::Optimizer> optimizer =
      BuildOptimizer(kind, fold_options);

  if (options.standardize) {
    std::vector<double> mean(x.cols(), 0.0), stddev(x.cols(), 0.0);
    for (size_t i = 0; i < n_train; ++i) {
      const double* row = train_x.RowPtr(i);
      for (size_t c = 0; c < x.cols(); ++c) mean[c] += row[c];
    }
    for (size_t c = 0; c < x.cols(); ++c) {
      mean[c] /= static_cast<double>(n_train);
    }
    for (size_t i = 0; i < n_train; ++i) {
      const double* row = train_x.RowPtr(i);
      for (size_t c = 0; c < x.cols(); ++c) {
        double d = row[c] - mean[c];
        stddev[c] += d * d;
      }
    }
    for (size_t c = 0; c < x.cols(); ++c) {
      stddev[c] = std::sqrt(stddev[c] / static_cast<double>(n_train));
      if (stddev[c] < 1e-9) stddev[c] = 1.0;
    }
    auto apply = [&](la::Matrix& m) {
      for (size_t i = 0; i < m.rows(); ++i) {
        double* row = m.RowPtr(i);
        for (size_t c = 0; c < m.cols(); ++c) {
          row[c] = (row[c] - mean[c]) / stddev[c];
        }
      }
    };
    apply(train_x);
    apply(val_x);
  }

  nn::FitOptions fit;
  fit.epochs = options.max_epochs;
  fit.batch_size = options.batch_size;
  fit.early_stopping = options.early_stopping;
  fit.clip_norm = options.clip_norm;
  fit.seed = fold_options.seed + 1;
  fit.parallelism = options.parallelism;
  StatusOr<nn::FitHistory> history =
      model.Fit(train_x, train_y, *optimizer, fit);
  if (!history.ok()) return history.status();

  std::vector<int> pred = model.Predict(val_x);
  return nn::Accuracy(val_y, pred);
}

}  // namespace

StatusOr<CrossValidationResult> CrossValidate(
    const la::Matrix& x, const std::vector<int>& y, NetworkKind kind,
    const PredictorOptions& options, size_t folds) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("x rows != y size");
  }
  if (x.rows() < folds * 2) {
    return Status::InvalidArgument("too few examples for the fold count");
  }

  Rng rng(options.seed);
  std::vector<size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);

  CrossValidationResult result;
  result.folds = folds;
  result.fold_accuracies.assign(folds, 0.0);

  // Coarse grain: whole folds are the work items. Each fold writes its own
  // accuracy/status slot, and nested ParallelFor calls issued while a fold
  // trains run inline (single-region pool), so the numbers are bitwise
  // identical to the serial loop no matter how fold_parallelism is set.
  std::vector<Status> statuses(folds, Status::OK());
  ParallelFor(options.fold_parallelism, folds,
              [&](size_t, size_t begin, size_t end) {
    for (size_t fold = begin; fold < end; ++fold) {
      StatusOr<double> acc =
          RunOneFold(x, y, order, kind, options, fold, folds);
      if (acc.ok()) {
        result.fold_accuracies[fold] = acc.value();
      } else {
        statuses[fold] = acc.status();
      }
    }
  });
  // Deterministic error reporting: the lowest failing fold wins, exactly as
  // the serial loop would have reported it.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  double sum = 0.0;
  for (double a : result.fold_accuracies) sum += a;
  result.mean_accuracy = sum / static_cast<double>(folds);
  double var = 0.0;
  for (double a : result.fold_accuracies) {
    var += (a - result.mean_accuracy) * (a - result.mean_accuracy);
  }
  result.stddev_accuracy = std::sqrt(var / static_cast<double>(folds));
  return result;
}

}  // namespace newsdiff::core
