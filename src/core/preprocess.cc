#include "core/preprocess.h"

#include "text/pipeline.h"

namespace newsdiff::core {

corpus::Corpus BuildNewsTM(const std::vector<NewsRecord>& news) {
  corpus::Corpus corp;
  for (const NewsRecord& rec : news) {
    std::string full = rec.title + " " + rec.body;
    corp.AddDocument(text::PreprocessNewsTM(full), rec.published, rec.id);
  }
  return corp;
}

corpus::Corpus BuildNewsED(const std::vector<NewsRecord>& news) {
  corpus::Corpus corp;
  for (const NewsRecord& rec : news) {
    std::string full = rec.title + " " + rec.body;
    corp.AddDocument(text::PreprocessNewsED(full), rec.published, rec.id);
  }
  return corp;
}

corpus::Corpus BuildTwitterED(const std::vector<TweetRecord>& tweets) {
  corpus::Corpus corp;
  for (const TweetRecord& rec : tweets) {
    corp.AddDocument(text::PreprocessTwitterED(rec.text), rec.created,
                     rec.id);
  }
  return corp;
}

}  // namespace newsdiff::core
