#ifndef NEWSDIFF_CORE_CHECKPOINT_H_
#define NEWSDIFF_CORE_CHECKPOINT_H_

#include "common/status.h"
#include "core/pipeline.h"
#include "store/database.h"

namespace newsdiff::core {

/// Stage-output checkpointing (§4.9): the deployed system refreshes its
/// datasets every two hours and resumes "from checkpoints or from scratch"
/// after each update. These helpers persist the analysis outputs (topics,
/// events, trending topics, correlations) into the same document store the
/// raw data lives in, so a restarted process — or a dashboard — can read
/// the previous results without recomputation.
///
/// Corpora and tweet/news records are NOT checkpointed (they are already in
/// the store as raw collections); a loaded checkpoint therefore restores the
/// analysis outputs only, which is exactly what the correlation/report
/// consumers need.

/// Collection names used by the checkpoint.
inline constexpr char kTopicsCollection[] = "ckpt_topics";
inline constexpr char kNewsEventsCollection[] = "ckpt_news_events";
inline constexpr char kTwitterEventsCollection[] = "ckpt_twitter_events";
inline constexpr char kTrendingCollection[] = "ckpt_trending";
inline constexpr char kCorrelationsCollection[] = "ckpt_correlations";
inline constexpr char kAssignmentsCollection[] = "ckpt_assignments";
/// Stage-completion ledger written by PipelineSupervisor (one doc per
/// finished stage); lives beside the checkpoints so a snapshot of the
/// store captures both atomically.
inline constexpr char kStageLedgerCollection[] = "stage_ledger";

/// The analysis stages in execution order, as named in the stage ledger.
inline constexpr const char* kStageNames[] = {
    "topics",      "news_events",  "twitter_events",
    "trending",    "correlations", "assignments",
};

/// Writes the analysis outputs of `result` into `db`, replacing any
/// previous checkpoint.
Status SaveCheckpoint(const PipelineResult& result, store::Database& db);

/// Analysis outputs restored from a checkpoint.
struct CheckpointData {
  std::vector<topic::Topic> topics;
  std::vector<event::Event> news_events;
  std::vector<event::Event> twitter_events;
  std::vector<TrendingNewsTopic> trending;
  std::vector<EventCorrelation> correlations;
  std::vector<EventTweetAssignment> assignments;
};

/// Reads a checkpoint previously written by SaveCheckpoint.
StatusOr<CheckpointData> LoadCheckpoint(const store::Database& db);

/// Stage-granular checkpoint IO for the supervisor: persists / restores the
/// outputs of a single named stage (one of kStageNames). Saving replaces
/// that stage's collection only; loading fails with NotFound when the
/// stage's collection is absent.
Status SaveStageOutput(const std::string& stage, const PipelineResult& result,
                       store::Database& db);
Status LoadStageOutput(const std::string& stage, const store::Database& db,
                       PipelineResult* result);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_CHECKPOINT_H_
