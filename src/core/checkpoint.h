#ifndef NEWSDIFF_CORE_CHECKPOINT_H_
#define NEWSDIFF_CORE_CHECKPOINT_H_

#include "common/status.h"
#include "core/pipeline.h"
#include "store/database.h"

namespace newsdiff::core {

/// Stage-output checkpointing (§4.9): the deployed system refreshes its
/// datasets every two hours and resumes "from checkpoints or from scratch"
/// after each update. These helpers persist the analysis outputs (topics,
/// events, trending topics, correlations) into the same document store the
/// raw data lives in, so a restarted process — or a dashboard — can read
/// the previous results without recomputation.
///
/// Corpora and tweet/news records are NOT checkpointed (they are already in
/// the store as raw collections); a loaded checkpoint therefore restores the
/// analysis outputs only, which is exactly what the correlation/report
/// consumers need.

/// Collection names used by the checkpoint.
inline constexpr char kTopicsCollection[] = "ckpt_topics";
inline constexpr char kNewsEventsCollection[] = "ckpt_news_events";
inline constexpr char kTwitterEventsCollection[] = "ckpt_twitter_events";
inline constexpr char kTrendingCollection[] = "ckpt_trending";
inline constexpr char kCorrelationsCollection[] = "ckpt_correlations";

/// Writes the analysis outputs of `result` into `db`, replacing any
/// previous checkpoint.
Status SaveCheckpoint(const PipelineResult& result, store::Database& db);

/// Analysis outputs restored from a checkpoint.
struct CheckpointData {
  std::vector<topic::Topic> topics;
  std::vector<event::Event> news_events;
  std::vector<event::Event> twitter_events;
  std::vector<TrendingNewsTopic> trending;
  std::vector<EventCorrelation> correlations;
};

/// Reads a checkpoint previously written by SaveCheckpoint.
StatusOr<CheckpointData> LoadCheckpoint(const store::Database& db);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_CHECKPOINT_H_
