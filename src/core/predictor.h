#ifndef NEWSDIFF_CORE_PREDICTOR_H_
#define NEWSDIFF_CORE_PREDICTOR_H_

#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "la/matrix.h"
#include "nn/architectures.h"
#include "nn/model.h"

namespace newsdiff::core {

/// The four tuned network configurations of §5.6:
///   MLP 1: MLP + SGD, lr = 0.5      MLP 2: MLP + ADADELTA, lr = 2
///   CNN 1: CNN + SGD, lr = 0.5      CNN 2: CNN + ADADELTA, lr = 2
enum class NetworkKind { kMlp1, kMlp2, kCnn1, kCnn2 };

const char* NetworkKindName(NetworkKind k);
const std::vector<NetworkKind>& AllNetworkKinds();

struct PredictorOptions {
  /// Architecture sizes (scaled for a single-core reproduction; the paper's
  /// shapes, smaller widths).
  std::vector<size_t> mlp_hidden = {64, 32};
  size_t cnn_filters = 8;
  size_t cnn_kernel = 8;
  size_t cnn_pool = 4;
  size_t cnn_dense = 32;
  size_t num_classes = 3;
  /// Training regime.
  size_t max_epochs = 100;
  size_t batch_size = 128;
  nn::EarlyStoppingOptions early_stopping{true, 1e-4, 5};
  double test_fraction = 0.2;
  uint64_t seed = 99;
  /// Standardize each feature column (z-score, statistics from the training
  /// split only) before training. Keeps the metadata one-hots on the same
  /// footing as the embedding coordinates so the optimizer can exploit both.
  bool standardize = true;
  /// If a fit collapses to the majority class (accuracy within 0.02 of the
  /// majority share) and stopped early, restart with a fresh init seed up
  /// to this many times and keep the best outcome.
  size_t max_restarts = 2;
  /// Global gradient-norm clip passed to the trainer (0 disables; the
  /// paper's Keras setup does not clip).
  double clip_norm = 5.0;
  /// Optimizer settings (paper values).
  double sgd_learning_rate = 0.5;
  double sgd_momentum = 0.0;
  double adadelta_learning_rate = 2.0;
  /// Execution parallelism forwarded to nn::FitOptions (see the determinism
  /// notes there — trained weights do not depend on `threads`). Also carries
  /// the KernelConfig selecting the blocked or naive GEMM kernels.
  Parallelism parallelism;
  /// Coarse-grain parallelism for CrossValidate: whole folds run as tasks
  /// on the shared pool. Folds are fully seed-isolated (each derives its
  /// own RNG from seed + fold * 977, trains a fresh model, and writes a
  /// disjoint result slot), and any intra-op ParallelFor issued from inside
  /// a fold executes inline, so fold results are bitwise identical to a
  /// serial run at ANY fold parallelism. Defaults to serial folds.
  Parallelism fold_parallelism;
};

/// Outcome of one train/evaluate run on a held-out split.
struct EvalOutcome {
  double accuracy = 0.0;          // plain categorical accuracy
  double average_accuracy = 0.0;  // the paper's Eq. 17
  size_t train_size = 0;
  size_t test_size = 0;
  nn::FitHistory history;
};

/// Builds the network for `kind`, splits (x, y) into train/validation with
/// a seeded shuffle, trains with the kind's optimizer, and evaluates on the
/// held-out part.
StatusOr<EvalOutcome> TrainAndEvaluate(const la::Matrix& x,
                                       const std::vector<int>& y,
                                       NetworkKind kind,
                                       const PredictorOptions& options);

/// Builds just the model for `kind` with the given input width (benches use
/// this for timing runs).
nn::Model BuildNetwork(NetworkKind kind, size_t input_size,
                       const PredictorOptions& options);

/// Builds the optimizer for `kind`.
std::unique_ptr<nn::Optimizer> BuildOptimizer(NetworkKind kind,
                                              const PredictorOptions& options);

}  // namespace newsdiff::core

#endif  // NEWSDIFF_CORE_PREDICTOR_H_
