#include "core/predictor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "nn/metrics.h"
#include "nn/optimizer.h"

namespace newsdiff::core {

const char* NetworkKindName(NetworkKind k) {
  switch (k) {
    case NetworkKind::kMlp1:
      return "MLP 1";
    case NetworkKind::kMlp2:
      return "MLP 2";
    case NetworkKind::kCnn1:
      return "CNN 1";
    case NetworkKind::kCnn2:
      return "CNN 2";
  }
  return "?";
}

const std::vector<NetworkKind>& AllNetworkKinds() {
  static const auto* kAll = new std::vector<NetworkKind>{
      NetworkKind::kMlp1, NetworkKind::kMlp2, NetworkKind::kCnn1,
      NetworkKind::kCnn2};
  return *kAll;
}

nn::Model BuildNetwork(NetworkKind kind, size_t input_size,
                       const PredictorOptions& options) {
  if (kind == NetworkKind::kMlp1 || kind == NetworkKind::kMlp2) {
    nn::MlpConfig cfg;
    cfg.input_size = input_size;
    cfg.hidden_sizes = options.mlp_hidden;
    cfg.num_classes = options.num_classes;
    cfg.seed = options.seed;
    return nn::BuildMlp(cfg);
  }
  nn::CnnConfig cfg;
  cfg.input_size = input_size;
  cfg.filters = options.cnn_filters;
  cfg.kernel_size = options.cnn_kernel;
  cfg.pool_size = options.cnn_pool;
  cfg.dense_size = options.cnn_dense;
  cfg.num_classes = options.num_classes;
  cfg.seed = options.seed;
  return nn::BuildCnn(cfg);
}

std::unique_ptr<nn::Optimizer> BuildOptimizer(
    NetworkKind kind, const PredictorOptions& options) {
  if (kind == NetworkKind::kMlp1 || kind == NetworkKind::kCnn1) {
    nn::SgdOptions sgd;
    sgd.learning_rate = options.sgd_learning_rate;
    sgd.momentum = options.sgd_momentum;
    return std::make_unique<nn::Sgd>(sgd);
  }
  nn::AdadeltaOptions ada;
  ada.learning_rate = options.adadelta_learning_rate;
  return std::make_unique<nn::Adadelta>(ada);
}

StatusOr<EvalOutcome> TrainAndEvaluate(const la::Matrix& x,
                                       const std::vector<int>& y,
                                       NetworkKind kind,
                                       const PredictorOptions& options) {
  if (x.rows() != y.size()) {
    return Status::InvalidArgument("x rows != y size");
  }
  if (x.rows() < 10) {
    return Status::InvalidArgument("need at least 10 examples");
  }
  // Seeded shuffle split.
  Rng rng(options.seed);
  std::vector<size_t> order(x.rows());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  size_t n_test = static_cast<size_t>(options.test_fraction *
                                      static_cast<double>(x.rows()));
  n_test = std::clamp<size_t>(n_test, 1, x.rows() - 1);
  size_t n_train = x.rows() - n_test;

  la::Matrix train_x(n_train, x.cols());
  la::Matrix test_x(n_test, x.cols());
  std::vector<int> train_y(n_train), test_y(n_test);
  for (size_t i = 0; i < n_train; ++i) {
    std::copy(x.RowPtr(order[i]), x.RowPtr(order[i]) + x.cols(),
              train_x.RowPtr(i));
    train_y[i] = y[order[i]];
  }
  for (size_t i = 0; i < n_test; ++i) {
    size_t src = order[n_train + i];
    std::copy(x.RowPtr(src), x.RowPtr(src) + x.cols(), test_x.RowPtr(i));
    test_y[i] = y[src];
  }

  if (options.standardize) {
    // Column statistics from the training split only; applied to both.
    std::vector<double> mean(x.cols(), 0.0), stddev(x.cols(), 0.0);
    for (size_t i = 0; i < n_train; ++i) {
      const double* row = train_x.RowPtr(i);
      for (size_t c = 0; c < x.cols(); ++c) mean[c] += row[c];
    }
    for (size_t c = 0; c < x.cols(); ++c) {
      mean[c] /= static_cast<double>(n_train);
    }
    for (size_t i = 0; i < n_train; ++i) {
      const double* row = train_x.RowPtr(i);
      for (size_t c = 0; c < x.cols(); ++c) {
        double d = row[c] - mean[c];
        stddev[c] += d * d;
      }
    }
    for (size_t c = 0; c < x.cols(); ++c) {
      stddev[c] = std::sqrt(stddev[c] / static_cast<double>(n_train));
      if (stddev[c] < 1e-9) stddev[c] = 1.0;
    }
    auto apply = [&](la::Matrix& m) {
      for (size_t i = 0; i < m.rows(); ++i) {
        double* row = m.RowPtr(i);
        for (size_t c = 0; c < m.cols(); ++c) {
          row[c] = (row[c] - mean[c]) / stddev[c];
        }
      }
    };
    apply(train_x);
    apply(test_x);
  }

  // Majority-class share of the training labels; a fit that cannot beat it
  // has collapsed and deserves a restart with a different initialisation.
  std::vector<size_t> class_counts(options.num_classes, 0);
  for (int label : train_y) ++class_counts[static_cast<size_t>(label)];
  double majority =
      static_cast<double>(*std::max_element(class_counts.begin(),
                                            class_counts.end())) /
      static_cast<double>(n_train);

  EvalOutcome best;
  bool have_best = false;
  for (size_t attempt = 0; attempt <= options.max_restarts; ++attempt) {
    PredictorOptions attempt_options = options;
    attempt_options.seed = options.seed + attempt * 101;
    nn::Model model = BuildNetwork(kind, x.cols(), attempt_options);
    std::unique_ptr<nn::Optimizer> optimizer =
        BuildOptimizer(kind, attempt_options);

    nn::FitOptions fit;
    fit.epochs = options.max_epochs;
    fit.batch_size = options.batch_size;
    fit.early_stopping = options.early_stopping;
    fit.clip_norm = options.clip_norm;
    fit.seed = attempt_options.seed + 1;
    fit.parallelism = options.parallelism;
    StatusOr<nn::FitHistory> history =
        model.Fit(train_x, train_y, *optimizer, fit);
    if (!history.ok()) return history.status();

    EvalOutcome outcome;
    outcome.history = std::move(history).value();
    outcome.train_size = n_train;
    outcome.test_size = n_test;
    std::vector<int> pred = model.Predict(test_x);
    nn::ConfusionMatrix cm(test_y, pred, options.num_classes);
    outcome.accuracy = cm.Accuracy();
    outcome.average_accuracy = cm.AverageAccuracy();
    if (!have_best || outcome.accuracy > best.accuracy) {
      best = std::move(outcome);
      have_best = true;
    }
    if (best.accuracy > majority + 0.02) break;  // healthy fit
  }
  return best;
}

}  // namespace newsdiff::core
