#include "core/collection.h"

#include <unordered_map>

#include "datagen/world.h"

namespace newsdiff::core {

StatusOr<std::vector<NewsRecord>> LoadNews(const store::Database& db) {
  const store::Collection* coll = db.Get("news");
  if (coll == nullptr) return Status::NotFound("no 'news' collection");
  std::vector<NewsRecord> out;
  out.reserve(coll->size());
  coll->ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    NewsRecord rec;
    if (const store::Value* v = doc.Find("article_id")) rec.id = v->AsInt();
    if (const store::Value* v = doc.Find("title")) rec.title = v->AsString();
    if (const store::Value* v = doc.Find("body")) rec.body = v->AsString();
    if (const store::Value* v = doc.Find("published")) {
      rec.published = v->AsInt();
    }
    if (const store::Value* v = doc.Find("degraded")) {
      rec.degraded = v->is_bool() && v->bool_value();
    }
    out.push_back(std::move(rec));
    return true;
  });
  return out;
}

StatusOr<std::vector<TweetRecord>> LoadTweets(store::Database& db) {
  store::Collection* tweets = db.Get("tweets");
  if (tweets == nullptr) return Status::NotFound("no 'tweets' collection");
  store::Collection* users = db.Get("users");
  if (users == nullptr) return Status::NotFound("no 'users' collection");
  users->CreateIndex("user_id");

  // Resolve follower counts once per user.
  std::unordered_map<int64_t, int64_t> followers_by_user;
  std::vector<TweetRecord> out;
  out.reserve(tweets->size());
  Status error = Status::OK();
  tweets->ForEach(store::Filter(), [&](store::DocId, const store::Value& doc) {
    TweetRecord rec;
    if (const store::Value* v = doc.Find("tweet_id")) rec.id = v->AsInt();
    if (const store::Value* v = doc.Find("user_id")) rec.user_id = v->AsInt();
    if (const store::Value* v = doc.Find("text")) rec.text = v->AsString();
    if (const store::Value* v = doc.Find("created")) rec.created = v->AsInt();
    if (const store::Value* v = doc.Find("likes")) rec.likes = v->AsInt();
    if (const store::Value* v = doc.Find("retweets")) {
      rec.retweets = v->AsInt();
    }
    auto it = followers_by_user.find(rec.user_id);
    if (it == followers_by_user.end()) {
      StatusOr<store::Value> user = users->FindOne(
          store::Filter().Eq("user_id", store::Value(rec.user_id)));
      int64_t followers = 0;
      if (user.ok()) {
        if (const store::Value* v = user->Find("followers")) {
          followers = v->AsInt();
        }
      }
      it = followers_by_user.emplace(rec.user_id, followers).first;
    }
    rec.followers = it->second;
    rec.follower_class = datagen::EncodeCountClass(rec.followers);
    rec.follower_bucket = datagen::FollowerBucket7(rec.followers);
    out.push_back(std::move(rec));
    return true;
  });
  if (!error.ok()) return error;
  return out;
}

}  // namespace newsdiff::core
