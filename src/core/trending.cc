#include "core/trending.h"

#include "embed/doc2vec.h"
#include "la/matrix.h"

namespace newsdiff::core {

std::vector<double> EncodeEvent(const event::Event& ev,
                                const embed::PretrainedStore& store) {
  std::vector<std::string> words;
  words.reserve(ev.related_words.size() + 1);
  words.push_back(ev.main_word);
  for (const std::string& w : ev.related_words) words.push_back(w);
  return embed::EmbedKeywords(words, store);
}

std::vector<double> EncodeTopic(const topic::Topic& t,
                                const embed::PretrainedStore& store) {
  return embed::EmbedKeywords(t.keywords, store);
}

std::vector<TrendingNewsTopic> ExtractTrendingTopics(
    const std::vector<topic::Topic>& topics,
    const std::vector<event::Event>& news_events,
    const embed::PretrainedStore& store, const TrendingOptions& options) {
  std::vector<TrendingNewsTopic> out;
  if (news_events.empty()) return out;

  std::vector<std::vector<double>> event_vecs;
  event_vecs.reserve(news_events.size());
  for (const event::Event& ev : news_events) {
    event_vecs.push_back(EncodeEvent(ev, store));
  }

  for (size_t t = 0; t < topics.size(); ++t) {
    std::vector<double> tv = EncodeTopic(topics[t], store);
    double best = -1.0;
    size_t best_ev = 0;
    for (size_t e = 0; e < news_events.size(); ++e) {
      double sim = la::CosineSimilarity(tv, event_vecs[e]);
      if (sim > best) {
        best = sim;
        best_ev = e;
      }
    }
    if (best > options.min_similarity) {
      out.push_back({t, best_ev, best});
    }
  }
  return out;
}

}  // namespace newsdiff::core
