#include "store/value.h"

#include <cmath>

namespace newsdiff::store {

double Value::AsDouble(double fallback) const {
  if (is_int()) return static_cast<double>(int_value());
  if (is_double()) return double_value();
  return fallback;
}

int64_t Value::AsInt(int64_t fallback) const {
  if (is_int()) return int_value();
  if (is_double()) return static_cast<int64_t>(double_value());
  return fallback;
}

std::string Value::AsString(std::string fallback) const {
  if (is_string()) return string_value();
  return fallback;
}

const Value* Value::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object()) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Value::Set(const std::string& key, Value v) {
  if (is_null()) data_ = Object{};
  Object& obj = object();
  for (auto& [k, existing] : obj) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj.emplace_back(key, std::move(v));
}

bool Value::Equals(const Value& other) const { return Compare(other) == 0; }

int Value::Compare(const Value& other) const {
  // Numbers compare across int/double; otherwise order by type first.
  if (is_number() && other.is_number()) {
    double a = AsDouble();
    double b = other.AsDouble();
    if (a < b) return -1;
    if (a > b) return 1;
    return 0;
  }
  if (type() != other.type()) {
    return static_cast<int>(type()) < static_cast<int>(other.type()) ? -1 : 1;
  }
  switch (type()) {
    case Type::kNull:
      return 0;
    case Type::kBool:
      return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
    case Type::kString:
      return string_value().compare(other.string_value());
    case Type::kArray: {
      const Array& a = array();
      const Array& b = other.array();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].Compare(b[i]);
        if (c != 0) return c;
      }
      if (a.size() < b.size()) return -1;
      if (a.size() > b.size()) return 1;
      return 0;
    }
    case Type::kObject: {
      const Object& a = object();
      const Object& b = other.object();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int c = a[i].first.compare(b[i].first);
        if (c != 0) return c;
        c = a[i].second.Compare(b[i].second);
        if (c != 0) return c;
      }
      if (a.size() < b.size()) return -1;
      if (a.size() > b.size()) return 1;
      return 0;
    }
    default:
      return 0;  // numbers handled above
  }
}

Value MakeObject(
    std::initializer_list<std::pair<std::string, Value>> fields) {
  Object obj;
  obj.reserve(fields.size());
  for (const auto& f : fields) obj.push_back(f);
  return Value(std::move(obj));
}

}  // namespace newsdiff::store
