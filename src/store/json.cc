#include "store/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace newsdiff::store {
namespace {

void AppendEscaped(const std::string& s, std::string& out) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

void AppendNumber(double d, std::string& out) {
  if (!std::isfinite(d)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  out += buf;
}

void Serialize(const Value& v, std::string& out, int indent, int depth) {
  auto newline = [&]() {
    if (indent >= 0) {
      out += '\n';
      out.append(static_cast<size_t>(indent * depth), ' ');
    }
  };
  switch (v.type()) {
    case Value::Type::kNull:
      out += "null";
      break;
    case Value::Type::kBool:
      out += v.bool_value() ? "true" : "false";
      break;
    case Value::Type::kInt:
      out += std::to_string(v.int_value());
      break;
    case Value::Type::kDouble:
      AppendNumber(v.double_value(), out);
      break;
    case Value::Type::kString:
      AppendEscaped(v.string_value(), out);
      break;
    case Value::Type::kArray: {
      const Array& arr = v.array();
      if (arr.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (size_t i = 0; i < arr.size(); ++i) {
        if (i > 0) out += ',';
        ++depth;
        newline();
        --depth;
        Serialize(arr[i], out, indent, depth + 1);
      }
      newline();
      out += ']';
      break;
    }
    case Value::Type::kObject: {
      const Object& obj = v.object();
      if (obj.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (size_t i = 0; i < obj.size(); ++i) {
        if (i > 0) out += ',';
        ++depth;
        newline();
        --depth;
        AppendEscaped(obj[i].first, out);
        out += ':';
        if (indent >= 0) out += ' ';
        Serialize(obj[i].second, out, indent, depth + 1);
      }
      newline();
      out += '}';
      break;
    }
  }
}

/// Recursive-descent JSON parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text), pos_(0) {}

  StatusOr<Value> Parse() {
    SkipWs();
    StatusOr<Value> v = ParseValue(0);
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters at offset " +
                                std::to_string(pos_));
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status Err(const std::string& what) {
    return Status::ParseError(what + " at offset " + std::to_string(pos_));
  }

  StatusOr<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case 'n':
        if (ConsumeLiteral("null")) return Value();
        return Err("invalid literal");
      case 't':
        if (ConsumeLiteral("true")) return Value(true);
        return Err("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return Value(false);
        return Err("invalid literal");
      case '"':
        return ParseString();
      case '[':
        return ParseArray(depth);
      case '{':
        return ParseObject(depth);
      default:
        return ParseNumber();
    }
  }

  StatusOr<Value> ParseString() {
    if (!Consume('"')) return Err("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Value(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("short \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Err("bad \\u escape");
              }
            }
            // Encode as UTF-8 (surrogate pairs are passed through as two
            // 3-byte sequences; sufficient for the store's needs).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Err("unterminated string");
  }

  StatusOr<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // '+'/'-' only valid after e/E, but strtod validates for us.
        is_double = is_double || c == '.' || c == 'e' || c == 'E';
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return Err("expected value");
    std::string tok(text_.substr(start, pos_ - start));
    if (!is_double) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(tok.c_str(), &end, 10);
      if (errno == 0 && end == tok.c_str() + tok.size()) {
        return Value(static_cast<int64_t>(v));
      }
      // Overflowed int64: fall through to double.
    }
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) return Err("malformed number");
    if (errno == ERANGE && (d == HUGE_VAL || d == -HUGE_VAL)) {
      return Err("number out of range");
    }
    return Value(d);
  }

  StatusOr<Value> ParseArray(int depth) {
    Consume('[');
    Array arr;
    SkipWs();
    if (Consume(']')) return Value(std::move(arr));
    while (true) {
      SkipWs();
      StatusOr<Value> v = ParseValue(depth + 1);
      if (!v.ok()) return v;
      arr.push_back(std::move(v).value());
      SkipWs();
      if (Consume(']')) return Value(std::move(arr));
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
  }

  StatusOr<Value> ParseObject(int depth) {
    Consume('{');
    Object obj;
    SkipWs();
    if (Consume('}')) return Value(std::move(obj));
    while (true) {
      SkipWs();
      StatusOr<Value> key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      StatusOr<Value> v = ParseValue(depth + 1);
      if (!v.ok()) return v;
      obj.emplace_back(key->string_value(), std::move(v).value());
      SkipWs();
      if (Consume('}')) return Value(std::move(obj));
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_;
};

}  // namespace

std::string ToJson(const Value& v) {
  std::string out;
  Serialize(v, out, -1, 0);
  return out;
}

std::string ToPrettyJson(const Value& v) {
  std::string out;
  Serialize(v, out, 2, 0);
  return out;
}

StatusOr<Value> ParseJson(std::string_view text) {
  Parser p(text);
  return p.Parse();
}

}  // namespace newsdiff::store
