#include "store/wal.h"

#include <algorithm>
#include <cstdio>

#include "common/crc32.h"
#include "common/strings.h"
#include "store/json.h"

namespace newsdiff::store {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32le length + u32le CRC-32
constexpr char kWalSuffix[] = ".wal";
constexpr size_t kGenDigits = 10;
constexpr size_t kPartDigits = 6;

void AppendU32Le(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

std::string PaddedDecimal(uint64_t value, size_t digits) {
  std::string raw = std::to_string(value);
  if (raw.size() >= digits) return raw;
  return std::string(digits - raw.size(), '0') + raw;
}

/// Renders the text payload for one record.
std::string RecordPayload(const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kSegmentHeader:
      return "seg " + record.collection + " " +
             std::to_string(record.base_generation) + " " +
             std::to_string(record.part) + " " +
             std::to_string(record.slot_count);
    case WalRecord::Type::kPut:
      return "put " + std::to_string(record.id) + " " + record.doc_json;
    case WalRecord::Type::kDelete:
      return "del " + std::to_string(record.id);
    case WalRecord::Type::kDrop:
      return "drop";
    case WalRecord::Type::kCheckpoint:
      return "ckpt " + std::to_string(record.generation);
    case WalRecord::Type::kPromotion:
      return "promo " + std::to_string(record.token) +
             (record.owner.empty() ? "" : " " + record.owner);
  }
  return "";  // unreachable
}

}  // namespace

std::string EncodeWalRecord(const WalRecord& record) {
  const std::string payload = RecordPayload(record);
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendU32Le(static_cast<uint32_t>(payload.size()), &frame);
  AppendU32Le(Crc32(payload), &frame);
  frame += payload;
  return frame;
}

StatusOr<WalRecord> ParseWalPayload(const std::string& payload) {
  const size_t space = payload.find(' ');
  const std::string op =
      space == std::string::npos ? payload : payload.substr(0, space);
  const std::string rest =
      space == std::string::npos ? "" : payload.substr(space + 1);
  WalRecord record;
  if (op == "put") {
    record.type = WalRecord::Type::kPut;
    const size_t id_end = rest.find(' ');
    uint64_t id = 0;
    if (id_end == std::string::npos ||
        !ParseU64(std::string_view(rest).substr(0, id_end), &id)) {
      return Status::ParseError("wal: malformed put record");
    }
    record.id = static_cast<DocId>(id);
    record.doc_json = rest.substr(id_end + 1);
    // The document itself is validated at replay; an unparseable body is
    // indistinguishable from bit rot and rejects the tail there.
    return record;
  }
  if (op == "del") {
    record.type = WalRecord::Type::kDelete;
    uint64_t id = 0;
    if (!ParseU64(rest, &id)) {
      return Status::ParseError("wal: malformed del record");
    }
    record.id = static_cast<DocId>(id);
    return record;
  }
  if (op == "seg") {
    record.type = WalRecord::Type::kSegmentHeader;
    // The collection name cannot contain spaces (ValidateCollectionName),
    // so the header is exactly four space-separated fields after the op.
    const std::vector<std::string> fields = SplitWhitespace(rest);
    if (fields.size() != 4 || !ParseU64(fields[1], &record.base_generation) ||
        !ParseU64(fields[2], &record.part) ||
        !ParseU64(fields[3], &record.slot_count)) {
      return Status::ParseError("wal: malformed seg header");
    }
    record.collection = fields[0];
    return record;
  }
  if (op == "drop") {
    if (!rest.empty()) return Status::ParseError("wal: malformed drop record");
    record.type = WalRecord::Type::kDrop;
    return record;
  }
  if (op == "ckpt") {
    record.type = WalRecord::Type::kCheckpoint;
    if (!ParseU64(rest, &record.generation)) {
      return Status::ParseError("wal: malformed ckpt record");
    }
    return record;
  }
  if (op == "promo") {
    record.type = WalRecord::Type::kPromotion;
    // Owner is free-form (it may contain spaces), so it is everything after
    // the token rather than a whitespace-split field.
    const size_t token_end = rest.find(' ');
    const std::string_view token_text =
        std::string_view(rest).substr(0, token_end);
    if (!ParseU64(token_text, &record.token)) {
      return Status::ParseError("wal: malformed promo record");
    }
    if (token_end != std::string::npos) {
      record.owner = rest.substr(token_end + 1);
    }
    return record;
  }
  return Status::ParseError("wal: unknown record op '" + op + "'");
}

WalSegmentContents DecodeWalSegment(const std::string& bytes) {
  WalSegmentContents out;
  size_t pos = 0;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) {
      out.truncated = 1;
      out.problem = "incomplete frame header at offset " + std::to_string(pos);
      return out;
    }
    const uint32_t length = ReadU32Le(bytes.data() + pos);
    const uint32_t crc = ReadU32Le(bytes.data() + pos + 4);
    if (length == 0) {
      // A zero-length payload is never written; treat it as damage, not a
      // torn tail (the header bytes themselves are wrong).
      out.rejected = 1;
      out.problem = "zero-length frame at offset " + std::to_string(pos);
      return out;
    }
    if (bytes.size() - pos - kFrameHeaderBytes < length) {
      out.truncated = 1;
      out.problem = "torn frame at offset " + std::to_string(pos);
      return out;
    }
    const std::string payload = bytes.substr(pos + kFrameHeaderBytes, length);
    if (Crc32(payload) != crc) {
      out.rejected = 1;
      out.problem = "CRC mismatch at offset " + std::to_string(pos);
      return out;
    }
    StatusOr<WalRecord> record = ParseWalPayload(payload);
    if (!record.ok()) {
      out.rejected = 1;
      out.problem = record.status().message() + " at offset " +
                    std::to_string(pos);
      return out;
    }
    out.records.push_back(std::move(record).value());
    pos += kFrameHeaderBytes + length;
  }
  return out;
}

std::string WalSegmentFileName(const std::string& collection,
                               uint64_t base_generation, uint64_t part) {
  return collection + "-" + PaddedDecimal(base_generation, kGenDigits) + "-" +
         PaddedDecimal(part, kPartDigits) + kWalSuffix;
}

StatusOr<WalSegmentName> ParseWalSegmentFileName(const std::string& name) {
  const auto malformed = [&name] {
    return Status::ParseError("not a WAL segment file name: " + name);
  };
  // Parse from the right: collection names may themselves contain '-'.
  const std::string suffix(kWalSuffix);
  if (name.size() <= suffix.size() + kGenDigits + kPartDigits + 2) {
    return malformed();
  }
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return malformed();
  }
  const std::string stem = name.substr(0, name.size() - suffix.size());
  const size_t part_dash = stem.size() - kPartDigits - 1;
  const size_t gen_dash = part_dash - kGenDigits - 1;
  if (stem[part_dash] != '-' || stem[gen_dash] != '-') return malformed();
  WalSegmentName parsed;
  if (!ParseU64(std::string_view(stem).substr(part_dash + 1), &parsed.part)) {
    return malformed();
  }
  if (!ParseU64(std::string_view(stem).substr(gen_dash + 1, kGenDigits),
                &parsed.base_generation)) {
    return malformed();
  }
  if (gen_dash == 0) return malformed();  // empty collection name
  parsed.collection = stem.substr(0, gen_dash);
  return parsed;
}

std::vector<WalSegmentInfo> ListWalSegments(
    const std::vector<std::string>& listing) {
  std::vector<WalSegmentInfo> segments;
  for (const std::string& name : listing) {
    StatusOr<WalSegmentName> parsed = ParseWalSegmentFileName(name);
    if (!parsed.ok()) continue;
    WalSegmentInfo info;
    info.collection = std::move(parsed->collection);
    info.base_generation = parsed->base_generation;
    info.part = parsed->part;
    info.file = name;
    segments.push_back(std::move(info));
  }
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              if (a.collection != b.collection) {
                return a.collection < b.collection;
              }
              if (a.base_generation != b.base_generation) {
                return a.base_generation < b.base_generation;
              }
              return a.part < b.part;
            });
  return segments;
}

WalWriter::WalWriter(std::string dir, WalOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

FileIo& WalWriter::io() const {
  return options_.io != nullptr ? *options_.io : DefaultFileIo();
}

Clock& WalWriter::clock() const {
  static SystemClock system_clock;
  return options_.clock != nullptr ? *options_.clock : system_clock;
}

WalWriter::CollectionLog& WalWriter::Log(const std::string& collection) {
  auto it = logs_.find(collection);
  if (it != logs_.end()) return it->second;
  CollectionLog log;
  log.base = base_generation_;
  return logs_.emplace(collection, std::move(log)).first->second;
}

void WalWriter::OpenSegment(const std::string& collection,
                            uint64_t slot_count) {
  auto it = logs_.find(collection);
  if (it != logs_.end()) return;
  CollectionLog& log = Log(collection);
  log.header_slot_count = slot_count;
  log.slot_hint = slot_count;
}

void WalWriter::ResumeSegment(const std::string& collection,
                              uint64_t base_generation, uint64_t next_part,
                              uint64_t slot_count) {
  CollectionLog log;
  log.base = base_generation;
  log.part = next_part;
  log.header_slot_count = slot_count;
  log.slot_hint = slot_count;
  logs_[collection] = std::move(log);
}

Status WalWriter::Buffer(const std::string& collection,
                         const WalRecord& record) {
  CollectionLog& log = Log(collection);
  if (log.pending_records == 0) log.first_pending_ms = clock().NowMillis();
  log.pending += EncodeWalRecord(record);
  ++log.pending_records;
  ++stats_.records_logged;
  if (record.type == WalRecord::Type::kPut) {
    log.slot_hint = std::max(log.slot_hint,
                             static_cast<uint64_t>(record.id) + 1);
  } else if (record.type == WalRecord::Type::kDrop) {
    log.slot_hint = 0;
  }
  return SyncLog(collection, log, /*force=*/false);
}

Status WalWriter::LogPut(const std::string& collection, DocId id,
                         const Value& doc) {
  WalRecord record;
  record.type = WalRecord::Type::kPut;
  record.id = id;
  record.doc_json = ToJson(doc);
  return Buffer(collection, record);
}

Status WalWriter::LogDelete(const std::string& collection, DocId id) {
  WalRecord record;
  record.type = WalRecord::Type::kDelete;
  record.id = id;
  return Buffer(collection, record);
}

Status WalWriter::LogDrop(const std::string& collection) {
  WalRecord record;
  record.type = WalRecord::Type::kDrop;
  return Buffer(collection, record);
}

Status WalWriter::LogPromotion(const std::string& collection, uint64_t token,
                               const std::string& owner) {
  WalRecord record;
  record.type = WalRecord::Type::kPromotion;
  record.token = token;
  record.owner = owner;
  return Buffer(collection, record);
}

Status WalWriter::SyncLog(const std::string& collection, CollectionLog& log,
                          bool force) {
  if (log.pending_records == 0) return Status::OK();
  if (!force) {
    const bool by_count = log.pending_records >= options_.sync_every_records;
    const bool by_time =
        clock().NowMillis() - log.first_pending_ms >= options_.sync_every_ms;
    if (!by_count && !by_time) return Status::OK();
  }
  // Fencing: a writer whose lease was taken over must never reach the log.
  if (options_.write_gate) {
    Status gate = options_.write_gate();
    if (!gate.ok()) return gate;
  }
  std::string batch;
  if (log.header_pending) {
    WalRecord header;
    header.type = WalRecord::Type::kSegmentHeader;
    header.collection = collection;
    header.base_generation = log.base;
    header.part = log.part;
    header.slot_count = log.header_slot_count;
    batch = EncodeWalRecord(header);
  }
  batch += log.pending;
  const std::string path =
      dir_ + "/" + WalSegmentFileName(collection, log.base, log.part);
  ++stats_.syncs;
  Status append = io().AppendFile(path, batch);
  if (!append.ok()) {
    // The segment may now carry a torn tail. Poison this part: the next
    // attempt starts a fresh part whose header re-describes the base state
    // (still valid — the pending records were never applied durably).
    ++stats_.sync_failures;
    ++log.part;
    log.header_pending = true;
    log.segment_bytes = 0;
    return append;
  }
  stats_.records_synced += log.pending_records;
  stats_.bytes_synced += batch.size();
  log.segment_bytes += batch.size();
  log.header_pending = false;
  log.pending.clear();
  log.pending_records = 0;
  if (log.segment_bytes >= options_.max_segment_bytes) {
    ++log.part;
    log.header_pending = true;
    log.header_slot_count = log.slot_hint;
    log.segment_bytes = 0;
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  Status first_error = Status::OK();
  for (auto& [collection, log] : logs_) {
    Status sync = SyncLog(collection, log, /*force=*/true);
    if (!sync.ok() && first_error.ok()) first_error = sync;
  }
  return first_error;
}

Status WalWriter::Checkpoint(
    uint64_t generation,
    const std::map<std::string, uint64_t>& slot_counts) {
  // The caller synced before saving the snapshot, so pending buffers should
  // be empty; any records logged since belong to the post-checkpoint state
  // and must move to the new segments untouched.
  for (auto it = logs_.begin(); it != logs_.end();) {
    const std::string& collection = it->first;
    CollectionLog& log = it->second;
    if (!log.header_pending || log.segment_bytes > 0) {
      // The old segment exists on disk: mark it finished. Best effort — a
      // failed marker append only costs replay work, never correctness,
      // because pruning is driven by the committed manifest, not markers.
      WalRecord marker;
      marker.type = WalRecord::Type::kCheckpoint;
      marker.generation = generation;
      const std::string path =
          dir_ + "/" + WalSegmentFileName(collection, log.base, log.part);
      Status marker_append = io().AppendFile(path, EncodeWalRecord(marker));
      (void)marker_append;
    }
    auto counts_it = slot_counts.find(collection);
    if (counts_it == slot_counts.end()) {
      // Dropped collection: its log closes with the checkpoint.
      it = logs_.erase(it);
      continue;
    }
    const std::string carry = std::move(log.pending);
    const size_t carry_records = log.pending_records;
    const int64_t carry_ms = log.first_pending_ms;
    CollectionLog fresh;
    fresh.base = generation;
    fresh.part = 1;
    fresh.header_slot_count = counts_it->second;
    fresh.slot_hint = std::max<uint64_t>(counts_it->second, log.slot_hint);
    fresh.pending = carry;
    fresh.pending_records = carry_records;
    fresh.first_pending_ms = carry_ms;
    log = std::move(fresh);
    ++it;
  }
  // Collections created since the last mutation was logged (none in
  // practice — GetOrCreate opens the log) start at the new base too.
  base_generation_ = generation;
  return Status::OK();
}

void WalWriter::PruneSegments(uint64_t min_base) {
  StatusOr<std::vector<std::string>> listing = io().ListDir(dir_);
  if (!listing.ok()) return;
  for (const WalSegmentInfo& segment : ListWalSegments(listing.value())) {
    if (segment.base_generation < min_base) {
      Status removed = io().Remove(dir_ + "/" + segment.file);
      (void)removed;
    }
  }
}

}  // namespace newsdiff::store
