#include "store/database.h"

#include <filesystem>
#include <fstream>

#include "store/json.h"

namespace newsdiff::store {

namespace fs = std::filesystem;

Collection& Database::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return *it->second;
}

Collection* Database::Get(const std::string& name) {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

const Collection* Database::Get(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

bool Database::Drop(const std::string& name) {
  return collections_.erase(name) > 0;
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

Status Database::SaveToDir(const std::string& dir) const {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir + ": " + ec.message());
  for (const auto& [name, coll] : collections_) {
    // Write-to-temp then rename, so a crash mid-write never leaves a
    // truncated collection file behind.
    fs::path final_path = fs::path(dir) / (name + ".jsonl");
    fs::path tmp_path = fs::path(dir) / (name + ".jsonl.tmp");
    {
      std::ofstream out(tmp_path, std::ios::trunc);
      if (!out) {
        return Status::IoError("cannot open " + tmp_path.string() +
                               " for writing");
      }
      for (const Value& doc : coll->All()) {
        out << ToJson(doc) << '\n';
      }
      out.flush();
      if (!out) return Status::IoError("write failed for " + tmp_path.string());
    }
    fs::rename(tmp_path, final_path, ec);
    if (ec) {
      return Status::IoError("cannot replace " + final_path.string() + ": " +
                             ec.message());
    }
  }
  return Status::OK();
}

Status Database::LoadFromDir(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::NotFound(dir + " is not a directory");
  }
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());
    if (!entry.is_regular_file()) continue;
    fs::path p = entry.path();
    if (p.extension() != ".jsonl") continue;
    std::string name = p.stem().string();
    std::ifstream in(p);
    if (!in) return Status::IoError("cannot open " + p.string());
    Drop(name);
    Collection& coll = GetOrCreate(name);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      if (line.empty()) continue;
      StatusOr<Value> doc = ParseJson(line);
      if (!doc.ok()) {
        return Status::ParseError(p.string() + ":" + std::to_string(lineno) +
                                  ": " + doc.status().message());
      }
      StatusOr<DocId> id = coll.Insert(std::move(doc).value());
      if (!id.ok()) return id.status();
    }
  }
  return Status::OK();
}

}  // namespace newsdiff::store
