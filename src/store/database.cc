#include "store/database.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/strings.h"
#include "store/json.h"

namespace newsdiff::store {

namespace {

/// Collection names double as snapshot file-name stems, so they must be
/// safe path components.
Status ValidateCollectionName(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty collection name");
  for (char c : name) {
    if (c == '/' || c == '\\' || c == ' ' || c == '\n' || c == '\r' ||
        c == '\t') {
      return Status::InvalidArgument("collection name unsafe for snapshot: " +
                                     name);
    }
  }
  return Status::OK();
}

/// Parses one collection's JSONL bytes into a fresh Collection. `expect_docs`
/// of SIZE_MAX skips the count check (legacy files carry no manifest).
StatusOr<std::unique_ptr<Collection>> ParseCollectionFile(
    const std::string& name, const std::string& contents,
    const std::string& diag_path, uint64_t expect_docs) {
  auto coll = std::make_unique<Collection>(name);
  uint64_t docs = 0;
  size_t lineno = 0;
  for (std::string_view line : Split(contents, '\n')) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    StatusOr<Value> doc = ParseJson(line);
    if (!doc.ok()) {
      return Status::ParseError(diag_path + ":" + std::to_string(lineno) +
                                ": " + doc.status().message());
    }
    StatusOr<DocId> id = coll->Insert(std::move(doc).value());
    if (!id.ok()) return id.status();
    ++docs;
  }
  if (expect_docs != UINT64_MAX && docs != expect_docs) {
    return Status::ParseError(diag_path + ": has " + std::to_string(docs) +
                              " documents, manifest expects " +
                              std::to_string(expect_docs));
  }
  return coll;
}

bool IsSnapshotArtifact(const std::string& name) {
  uint64_t gen = 0;
  if (ParseManifestFileName(name, &gen)) return true;
  auto ends_with = [&name](const char* suffix) {
    std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".jsonl") || ends_with(".tmp");
}

}  // namespace

Collection& Database::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
  }
  return *it->second;
}

Collection* Database::Get(const std::string& name) {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

const Collection* Database::Get(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

bool Database::Drop(const std::string& name) {
  return collections_.erase(name) > 0;
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

Status Database::SaveToDir(const std::string& dir) const {
  return SaveToDir(dir, SnapshotOptions{});
}

Status Database::SaveToDir(const std::string& dir,
                           const SnapshotOptions& options) const {
  FileIo& io = options.io != nullptr ? *options.io : DefaultFileIo();
  NEWSDIFF_RETURN_IF_ERROR(io.CreateDirectories(dir));

  // The next generation follows the newest manifest present, committed or
  // not — a gap in the sequence is harmless, a reused number is not.
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return listing.status();
  uint64_t generation = 0;
  for (const std::string& name : *listing) {
    uint64_t gen = 0;
    std::string stem = name;
    const std::string tmp_suffix = ".tmp";
    if (stem.size() > tmp_suffix.size() &&
        stem.compare(stem.size() - tmp_suffix.size(), tmp_suffix.size(),
                     tmp_suffix) == 0) {
      stem.resize(stem.size() - tmp_suffix.size());
    }
    if (ParseManifestFileName(stem, &gen)) generation = std::max(generation, gen);
  }
  ++generation;

  Manifest manifest;
  manifest.generation = generation;
  for (const auto& [name, coll] : collections_) {
    NEWSDIFF_RETURN_IF_ERROR(ValidateCollectionName(name));
    std::string contents;
    for (const Value& doc : coll->All()) {
      contents += ToJson(doc);
      contents += '\n';
    }
    ManifestEntry entry;
    entry.collection = name;
    entry.file = SnapshotCollectionFileName(name, generation);
    entry.docs = coll->size();
    entry.crc32 = Crc32(contents);
    NEWSDIFF_RETURN_IF_ERROR(
        WriteFileAtomic(io, dir + "/" + entry.file, contents));
    manifest.entries.push_back(std::move(entry));
  }

  // Commit point: once the manifest rename lands, this generation is the
  // one recovery will load.
  NEWSDIFF_RETURN_IF_ERROR(WriteFileAtomic(
      io, dir + "/" + ManifestFileName(generation), SerializeManifest(manifest)));

  GarbageCollect(dir, io, options.retain_generations);
  return Status::OK();
}

void Database::GarbageCollect(const std::string& dir, FileIo& io,
                              size_t retain_generations) {
  // Best-effort: a failed deletion never fails the save that triggered it;
  // the next save retries.
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return;
  std::vector<uint64_t> generations;
  for (const std::string& name : *listing) {
    uint64_t gen = 0;
    if (ParseManifestFileName(name, &gen)) generations.push_back(gen);
  }
  std::sort(generations.rbegin(), generations.rend());
  if (retain_generations == 0) retain_generations = 1;
  std::set<uint64_t> retained(
      generations.begin(),
      generations.begin() +
          std::min(retain_generations, generations.size()));

  std::set<std::string> referenced;
  for (uint64_t gen : retained) {
    referenced.insert(ManifestFileName(gen));
    StatusOr<std::string> text = io.ReadFile(dir + "/" + ManifestFileName(gen));
    if (!text.ok()) continue;
    StatusOr<Manifest> manifest = ParseManifest(*text);
    if (!manifest.ok()) continue;
    for (const ManifestEntry& entry : manifest->entries) {
      referenced.insert(entry.file);
    }
  }

  for (const std::string& name : *listing) {
    // Only reap snapshot-owned artifacts: manifests, collection files
    // (including pre-snapshot legacy ones and files for since-dropped
    // collections), and torn temp files. Foreign files are left alone.
    if (referenced.count(name) > 0 || !IsSnapshotArtifact(name)) continue;
    Status removed = io.Remove(dir + "/" + name);
    if (!removed.ok()) {
      NEWSDIFF_LOG(Warning) << "snapshot gc: " << removed.message();
    }
  }
}

Status Database::LoadFromDir(const std::string& dir) {
  return LoadFromDir(dir, SnapshotOptions{});
}

Status Database::LoadFromDir(const std::string& dir,
                             const SnapshotOptions& options,
                             SnapshotLoadReport* report) {
  FileIo& io = options.io != nullptr ? *options.io : DefaultFileIo();
  SnapshotLoadReport local_report;
  if (report == nullptr) report = &local_report;

  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return listing.status();

  std::vector<uint64_t> generations;
  for (const std::string& name : *listing) {
    uint64_t gen = 0;
    if (ParseManifestFileName(name, &gen)) generations.push_back(gen);
  }
  if (generations.empty()) return LoadLegacyDir(dir, io, *listing, report);
  std::sort(generations.rbegin(), generations.rend());

  for (uint64_t gen : generations) {
    // Stage the whole generation before touching installed state, so a
    // generation that fails verification halfway leaves the database
    // exactly as it was.
    std::map<std::string, std::unique_ptr<Collection>> staged;
    std::string problem;
    Status verdict = Status::OK();
    do {
      const std::string manifest_path = dir + "/" + ManifestFileName(gen);
      StatusOr<std::string> text = io.ReadFile(manifest_path);
      if (!text.ok()) {
        verdict = text.status();
        break;
      }
      StatusOr<Manifest> manifest = ParseManifest(*text);
      if (!manifest.ok()) {
        verdict = manifest.status();
        break;
      }
      if (manifest->generation != gen) {
        verdict = Status::ParseError(manifest_path + ": generation " +
                                     std::to_string(manifest->generation) +
                                     " does not match file name");
        break;
      }
      for (const ManifestEntry& entry : manifest->entries) {
        const std::string path = dir + "/" + entry.file;
        StatusOr<std::string> contents = io.ReadFile(path);
        if (!contents.ok()) {
          verdict = contents.status();
          break;
        }
        if (Crc32(*contents) != entry.crc32) {
          verdict = Status::ParseError(path + ": checksum mismatch");
          break;
        }
        StatusOr<std::unique_ptr<Collection>> coll = ParseCollectionFile(
            entry.collection, *contents, path, entry.docs);
        if (!coll.ok()) {
          verdict = coll.status();
          break;
        }
        staged[entry.collection] = std::move(coll).value();
      }
    } while (false);

    if (verdict.ok()) {
      for (auto& [name, coll] : staged) {
        collections_[name] = std::move(coll);
      }
      report->generation = gen;
      if (report->generations_skipped > 0) {
        NEWSDIFF_LOG(Warning)
            << "snapshot recovery: fell back to generation " << gen
            << " after skipping " << report->generations_skipped
            << " damaged generation(s) in " << dir;
      }
      return Status::OK();
    }
    ++report->generations_skipped;
    report->problems.push_back("generation " + std::to_string(gen) + ": " +
                               verdict.message());
  }

  std::string detail;
  for (const std::string& p : report->problems) detail += "; " + p;
  return Status::IoError("no intact snapshot generation in " + dir + detail);
}

Status Database::LoadLegacyDir(const std::string& dir, FileIo& io,
                               const std::vector<std::string>& listing,
                               SnapshotLoadReport* report) {
  report->legacy_format = true;
  for (const std::string& name : listing) {
    const std::string suffix = ".jsonl";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    std::string stem = name.substr(0, name.size() - suffix.size());
    const std::string path = dir + "/" + name;
    StatusOr<std::string> contents = io.ReadFile(path);
    if (!contents.ok()) return contents.status();
    StatusOr<std::unique_ptr<Collection>> coll =
        ParseCollectionFile(stem, *contents, path, UINT64_MAX);
    if (!coll.ok()) return coll.status();
    collections_[stem] = std::move(coll).value();
  }
  return Status::OK();
}

}  // namespace newsdiff::store
