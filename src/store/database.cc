#include "store/database.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/crc32.h"
#include "common/logging.h"
#include "common/strings.h"
#include "store/json.h"

namespace newsdiff::store {

namespace {

/// Collection names double as snapshot file-name stems, so they must be
/// safe path components.
Status ValidateCollectionName(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("empty collection name");
  for (char c : name) {
    if (c == '/' || c == '\\' || c == ' ' || c == '\n' || c == '\r' ||
        c == '\t') {
      return Status::InvalidArgument("collection name unsafe for snapshot: " +
                                     name);
    }
  }
  return Status::OK();
}

/// Parses one collection's JSONL bytes into a fresh Collection. `expect_docs`
/// of SIZE_MAX skips the count check (legacy files carry no manifest).
/// `preserve_ids` restores each document into the slot its "_id" names (WAL
/// recovery); otherwise ids are renumbered densely in line order.
StatusOr<std::unique_ptr<Collection>> ParseCollectionFile(
    const std::string& name, const std::string& contents,
    const std::string& diag_path, uint64_t expect_docs, bool preserve_ids) {
  auto coll = std::make_unique<Collection>(name);
  uint64_t docs = 0;
  size_t lineno = 0;
  for (std::string_view line : Split(contents, '\n')) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    StatusOr<Value> doc = ParseJson(line);
    if (!doc.ok()) {
      return Status::ParseError(diag_path + ":" + std::to_string(lineno) +
                                ": " + doc.status().message());
    }
    if (preserve_ids) {
      const Value* id_field = doc->Find("_id");
      if (id_field == nullptr || !id_field->is_int() ||
          id_field->int_value() < 0) {
        return Status::ParseError(diag_path + ":" + std::to_string(lineno) +
                                  ": document lacks a usable _id");
      }
      const DocId id = id_field->int_value();
      if (static_cast<size_t>(id) < coll->slot_count()) {
        return Status::ParseError(diag_path + ":" + std::to_string(lineno) +
                                  ": _id " + std::to_string(id) +
                                  " out of order or duplicated");
      }
      NEWSDIFF_RETURN_IF_ERROR(coll->RestorePut(id, std::move(doc).value()));
    } else {
      StatusOr<DocId> id = coll->Insert(std::move(doc).value());
      if (!id.ok()) return id.status();
    }
    ++docs;
  }
  if (expect_docs != UINT64_MAX && docs != expect_docs) {
    return Status::ParseError(diag_path + ": has " + std::to_string(docs) +
                              " documents, manifest expects " +
                              std::to_string(expect_docs));
  }
  return coll;
}

bool IsSnapshotArtifact(const std::string& name) {
  if (ParseManifestFileName(name).ok()) return true;
  auto ends_with = [&name](const char* suffix) {
    std::string s(suffix);
    return name.size() >= s.size() &&
           name.compare(name.size() - s.size(), s.size(), s) == 0;
  };
  return ends_with(".jsonl") || ends_with(".tmp");
}

}  // namespace

Collection& Database::GetOrCreate(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    it = collections_.emplace(name, std::make_unique<Collection>(name)).first;
    AttachObserver(*it->second);
  }
  return *it->second;
}

Collection* Database::Get(const std::string& name) {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

const Collection* Database::Get(const std::string& name) const {
  auto it = collections_.find(name);
  return it == collections_.end() ? nullptr : it->second.get();
}

Status Database::Drop(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("no collection named " + name);
  }
  if (wal_ != nullptr) LogDrop(*it->second);
  collections_.erase(it);
  return Status::OK();
}

std::vector<std::string> Database::CollectionNames() const {
  std::vector<std::string> names;
  names.reserve(collections_.size());
  for (const auto& [name, _] : collections_) names.push_back(name);
  return names;
}

Status Database::SaveToDir(const std::string& dir) const {
  return SaveToDir(dir, SnapshotOptions{});
}

Status Database::SaveToDir(const std::string& dir,
                           const SnapshotOptions& options) const {
  FileIo& io = options.io != nullptr ? *options.io : DefaultFileIo();
  NEWSDIFF_RETURN_IF_ERROR(io.CreateDirectories(dir));

  // The next generation follows the newest manifest present, committed or
  // not — a gap in the sequence is harmless, a reused number is not.
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return listing.status();
  uint64_t generation = 0;
  for (const std::string& name : *listing) {
    std::string stem = name;
    const std::string tmp_suffix = ".tmp";
    if (stem.size() > tmp_suffix.size() &&
        stem.compare(stem.size() - tmp_suffix.size(), tmp_suffix.size(),
                     tmp_suffix) == 0) {
      stem.resize(stem.size() - tmp_suffix.size());
    }
    StatusOr<uint64_t> gen = ParseManifestFileName(stem);
    if (gen.ok()) generation = std::max(generation, *gen);
  }
  ++generation;

  Manifest manifest;
  manifest.generation = generation;
  for (const auto& [name, coll] : collections_) {
    NEWSDIFF_RETURN_IF_ERROR(ValidateCollectionName(name));
    std::string contents;
    for (const Value& doc : coll->All()) {
      contents += ToJson(doc);
      contents += '\n';
    }
    ManifestEntry entry;
    entry.collection = name;
    entry.file = SnapshotCollectionFileName(name, generation);
    entry.docs = coll->size();
    entry.crc32 = Crc32(contents);
    NEWSDIFF_RETURN_IF_ERROR(
        WriteFileAtomic(io, dir + "/" + entry.file, contents));
    manifest.entries.push_back(std::move(entry));
  }

  // Commit point: once the manifest rename lands, this generation is the
  // one recovery will load.
  NEWSDIFF_RETURN_IF_ERROR(WriteFileAtomic(
      io, dir + "/" + ManifestFileName(generation), SerializeManifest(manifest)));

  GarbageCollect(dir, io, options.retain_generations);
  return Status::OK();
}

void Database::GarbageCollect(const std::string& dir, FileIo& io,
                              size_t retain_generations) {
  // Best-effort: a failed deletion never fails the save that triggered it;
  // the next save retries.
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return;
  std::vector<uint64_t> generations;
  for (const std::string& name : *listing) {
    StatusOr<uint64_t> gen = ParseManifestFileName(name);
    if (gen.ok()) generations.push_back(*gen);
  }
  std::sort(generations.rbegin(), generations.rend());
  if (retain_generations == 0) retain_generations = 1;
  std::set<uint64_t> retained(
      generations.begin(),
      generations.begin() +
          std::min(retain_generations, generations.size()));

  // WAL pinning: a log segment's records only make sense on top of the
  // checkpoint generation they are based on. Deleting that generation
  // while its segments survive would strand them, so any base generation a
  // segment still references stays retained even past the retention count.
  const std::set<uint64_t> all_generations(generations.begin(),
                                           generations.end());
  for (const std::string& name : *listing) {
    StatusOr<WalSegmentName> segment = ParseWalSegmentFileName(name);
    if (segment.ok() && all_generations.count(segment->base_generation) > 0) {
      retained.insert(segment->base_generation);
    }
  }

  std::set<std::string> referenced;
  for (uint64_t gen : retained) {
    referenced.insert(ManifestFileName(gen));
    StatusOr<std::string> text = io.ReadFile(dir + "/" + ManifestFileName(gen));
    if (!text.ok()) {
      // An unreadable retained manifest might reference anything; reaping
      // on a transient read fault could delete a live generation's files.
      // Skip the whole reap — the next save retries it.
      NEWSDIFF_LOG(Warning) << "snapshot gc: " << text.status().message();
      return;
    }
    StatusOr<Manifest> manifest = ParseManifest(*text);
    // A manifest that reads cleanly but does not parse is durably corrupt:
    // recovery skips its generation, so its files are safe to reap.
    if (!manifest.ok()) continue;
    for (const ManifestEntry& entry : manifest->entries) {
      referenced.insert(entry.file);
    }
  }

  for (const std::string& name : *listing) {
    // Only reap snapshot-owned artifacts: manifests, collection files
    // (including pre-snapshot legacy ones and files for since-dropped
    // collections), and torn temp files. Foreign files are left alone.
    if (referenced.count(name) > 0 || !IsSnapshotArtifact(name)) continue;
    Status removed = io.Remove(dir + "/" + name);
    if (!removed.ok()) {
      NEWSDIFF_LOG(Warning) << "snapshot gc: " << removed.message();
    }
  }
}

Status Database::LoadFromDir(const std::string& dir) {
  return LoadFromDir(dir, SnapshotOptions{});
}

Status Database::LoadFromDir(const std::string& dir,
                             const SnapshotOptions& options,
                             SnapshotLoadReport* report) {
  FileIo& io = options.io != nullptr ? *options.io : DefaultFileIo();
  SnapshotLoadReport local_report;
  if (report == nullptr) report = &local_report;

  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return listing.status();

  std::vector<uint64_t> generations;
  for (const std::string& name : *listing) {
    StatusOr<uint64_t> gen = ParseManifestFileName(name);
    if (gen.ok()) generations.push_back(*gen);
  }
  if (generations.empty()) return LoadLegacyDir(dir, io, *listing, report);
  std::sort(generations.rbegin(), generations.rend());

  for (uint64_t gen : generations) {
    // Stage the whole generation before touching installed state, so a
    // generation that fails verification halfway leaves the database
    // exactly as it was.
    std::map<std::string, std::unique_ptr<Collection>> staged;
    std::string problem;
    Status verdict = Status::OK();
    do {
      const std::string manifest_path = dir + "/" + ManifestFileName(gen);
      StatusOr<std::string> text = io.ReadFile(manifest_path);
      if (!text.ok()) {
        verdict = text.status();
        break;
      }
      StatusOr<Manifest> manifest = ParseManifest(*text);
      if (!manifest.ok()) {
        verdict = manifest.status();
        break;
      }
      if (manifest->generation != gen) {
        verdict = Status::ParseError(manifest_path + ": generation " +
                                     std::to_string(manifest->generation) +
                                     " does not match file name");
        break;
      }
      for (const ManifestEntry& entry : manifest->entries) {
        const std::string path = dir + "/" + entry.file;
        StatusOr<std::string> contents = io.ReadFile(path);
        if (!contents.ok()) {
          verdict = contents.status();
          break;
        }
        if (Crc32(*contents) != entry.crc32) {
          verdict = Status::ParseError(path + ": checksum mismatch");
          break;
        }
        StatusOr<std::unique_ptr<Collection>> coll = ParseCollectionFile(
            entry.collection, *contents, path, entry.docs,
            options.preserve_doc_ids);
        if (!coll.ok()) {
          verdict = coll.status();
          break;
        }
        staged[entry.collection] = std::move(coll).value();
      }
    } while (false);

    if (verdict.ok()) {
      for (auto& [name, coll] : staged) {
        AttachObserver(*coll);
        collections_[name] = std::move(coll);
      }
      report->generation = gen;
      if (report->generations_skipped > 0) {
        NEWSDIFF_LOG(Warning)
            << "snapshot recovery: fell back to generation " << gen
            << " after skipping " << report->generations_skipped
            << " damaged generation(s) in " << dir;
      }
      return Status::OK();
    }
    ++report->generations_skipped;
    report->problems.push_back("generation " + std::to_string(gen) + ": " +
                               verdict.message());
  }

  std::string detail;
  for (const std::string& p : report->problems) detail += "; " + p;
  return Status::IoError("no intact snapshot generation in " + dir + detail);
}

/// CollectionObserver that turns mutations into WAL records. Heap-allocated
/// and owned by the Database so the observer pointer installed in each
/// collection stays valid across Database moves.
struct Database::WalBinding : public CollectionObserver {
  WalWriter writer;

  WalBinding(std::string dir, WalOptions options)
      : writer(std::move(dir), std::move(options)) {}

  // Buffering cannot fail; a non-OK status from LogPut/LogDelete is a
  // group-commit sync failure. The records stay pending (the writer moved
  // them to a fresh segment part), and the error resurfaces at the next
  // WalSync()/Checkpoint(), where the caller can act on it.
  void OnPut(const Collection& collection, DocId id,
             const Value& doc) override {
    writer.OpenSegment(collection.name(), collection.slot_count());
    Status logged = writer.LogPut(collection.name(), id, doc);
    (void)logged;
  }

  void OnDelete(const Collection& collection, DocId id) override {
    writer.OpenSegment(collection.name(), collection.slot_count());
    Status logged = writer.LogDelete(collection.name(), id);
    (void)logged;
  }
};

Database::Database() = default;
Database::~Database() = default;
Database::Database(Database&&) noexcept = default;
Database& Database::operator=(Database&&) noexcept = default;

void Database::AttachObserver(Collection& collection) {
  if (wal_ != nullptr) collection.SetObserver(wal_.get());
}

void Database::LogDrop(Collection& collection) {
  wal_->writer.OpenSegment(collection.name(), collection.slot_count());
  Status logged = wal_->writer.LogDrop(collection.name());
  (void)logged;
}

WalWriter* Database::wal() {
  return wal_ != nullptr ? &wal_->writer : nullptr;
}

Status Database::AttachWal(const std::string& dir, const WalOptions& options) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a WAL is already attached");
  }
  FileIo& io = options.io != nullptr ? *options.io : DefaultFileIo();
  NEWSDIFF_RETURN_IF_ERROR(io.CreateDirectories(dir));
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return listing.status();

  uint64_t newest_gen = 0;
  for (const std::string& name : *listing) {
    StatusOr<uint64_t> gen = ParseManifestFileName(name);
    if (gen.ok()) newest_gen = std::max(newest_gen, *gen);
  }
  // Never append after a possibly-torn tail: each collection resumes one
  // part past the newest segment already on disk.
  std::map<std::string, std::pair<uint64_t, uint64_t>> resume;
  for (const WalSegmentInfo& segment : ListWalSegments(*listing)) {
    auto& point = resume[segment.collection];
    point = std::max(point,
                     std::make_pair(segment.base_generation, segment.part));
  }

  wal_ = std::make_unique<WalBinding>(dir, options);
  wal_->writer.set_base_generation(newest_gen);
  for (auto& [name, coll] : collections_) {
    auto it = resume.find(name);
    if (it != resume.end() && it->second.first >= newest_gen) {
      wal_->writer.ResumeSegment(name, it->second.first, it->second.second + 1,
                                 coll->slot_count());
    } else {
      // No segments, or only stale ones from before the newest checkpoint —
      // a fresh segment based on that checkpoint cannot collide with them.
      wal_->writer.OpenSegment(name, coll->slot_count());
    }
    coll->SetObserver(wal_.get());
  }
  return Status::OK();
}

Status Database::WalSync() {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition("no WAL attached");
  }
  return wal_->writer.Sync();
}

Status Database::Checkpoint(const SnapshotOptions& options) {
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "Checkpoint requires an attached WAL (AttachWal/RecoverWal)");
  }
  const std::string dir = wal_->writer.dir();
  // 1. Everything acknowledged must be durable before the snapshot can
  //    claim to supersede it.
  NEWSDIFF_RETURN_IF_ERROR(wal_->writer.Sync());
  // 2. Commit the new generation. The garbage collector inside pins any
  //    generation still referenced by a log segment.
  NEWSDIFF_RETURN_IF_ERROR(SaveToDir(dir, options));

  FileIo& io = options.io != nullptr ? *options.io : DefaultFileIo();
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return listing.status();
  std::vector<uint64_t> generations;
  for (const std::string& name : *listing) {
    StatusOr<uint64_t> gen = ParseManifestFileName(name);
    if (gen.ok()) generations.push_back(*gen);
  }
  if (generations.empty()) {
    return Status::Internal("checkpoint committed but no manifest found in " +
                            dir);
  }
  std::sort(generations.rbegin(), generations.rend());
  const uint64_t committed = generations.front();

  // 3. Mark the old segments finished and rotate every collection's log to
  //    the new base.
  std::map<std::string, uint64_t> slot_counts;
  for (const auto& [name, coll] : collections_) {
    slot_counts[name] = coll->slot_count();
  }
  NEWSDIFF_RETURN_IF_ERROR(wal_->writer.Checkpoint(committed, slot_counts));

  // 4. Prune segments whose base fell out of count-based retention. (Not
  //    "out of the retained set": generations pinned by these very
  //    segments would keep their own logs alive forever.)
  size_t keep = options.retain_generations == 0 ? 1 : options.retain_generations;
  keep = std::min(keep, generations.size());
  wal_->writer.PruneSegments(generations[keep - 1]);
  return Status::OK();
}

Status Database::RecoverWal(const std::string& dir,
                            const SnapshotOptions& snapshot_options,
                            const WalOptions& wal_options,
                            SnapshotLoadReport* report) {
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a WAL is already attached");
  }
  SnapshotLoadReport local_report;
  if (report == nullptr) report = &local_report;
  FileIo& io =
      snapshot_options.io != nullptr ? *snapshot_options.io : DefaultFileIo();
  NEWSDIFF_RETURN_IF_ERROR(io.CreateDirectories(dir));
  StatusOr<std::vector<std::string>> listing = io.ListDir(dir);
  if (!listing.ok()) return listing.status();

  bool have_manifest = false;
  for (const std::string& name : *listing) {
    if (ParseManifestFileName(name).ok()) have_manifest = true;
  }
  if (have_manifest) {
    // Ids must survive the load verbatim: the log addresses documents by
    // the ids of the original run.
    SnapshotOptions load_options = snapshot_options;
    load_options.preserve_doc_ids = true;
    NEWSDIFF_RETURN_IF_ERROR(LoadFromDir(dir, load_options, report));
  }
  const uint64_t base = report->generation;

  // Replay every intact record from segments based on the loaded
  // generation or later (later bases appear when a newer checkpoint's
  // manifest was damaged; full-segment replay of physical records passes
  // through that checkpoint's state on the way).
  for (const WalSegmentInfo& segment : ListWalSegments(*listing)) {
    if (segment.base_generation < base) continue;
    ++report->wal_segments;
    StatusOr<std::string> bytes = io.ReadFile(dir + "/" + segment.file);
    if (!bytes.ok()) {
      ++report->wal_records_rejected;
      report->problems.push_back("wal " + segment.file + ": " +
                                 bytes.status().message());
      continue;
    }
    WalSegmentContents decoded = DecodeWalSegment(*bytes);
    report->wal_records_truncated += decoded.truncated;
    report->wal_records_rejected += decoded.rejected;
    if (!decoded.problem.empty()) {
      report->problems.push_back("wal " + segment.file + ": " +
                                 decoded.problem);
    }
    if (decoded.records.empty()) continue;
    // The first record must be this segment's own header; anything else
    // means the file was renamed or damaged, and none of it can be trusted.
    const WalRecord& header = decoded.records.front();
    if (header.type != WalRecord::Type::kSegmentHeader ||
        header.collection != segment.collection ||
        header.base_generation != segment.base_generation ||
        header.part != segment.part) {
      report->wal_records_rejected += decoded.records.size();
      report->problems.push_back("wal " + segment.file +
                                 ": header does not match file name");
      continue;
    }
    GetOrCreate(segment.collection).PadSlots(header.slot_count);
    for (size_t i = 1; i < decoded.records.size(); ++i) {
      const WalRecord& record = decoded.records[i];
      switch (record.type) {
        case WalRecord::Type::kPut: {
          StatusOr<Value> doc = ParseJson(record.doc_json);
          if (!doc.ok() || !doc->is_object()) {
            // Indistinguishable from bit rot inside a CRC collision; stop
            // trusting the segment.
            ++report->wal_records_rejected;
            report->problems.push_back("wal " + segment.file +
                                       ": unparseable put document");
            i = decoded.records.size();
            break;
          }
          NEWSDIFF_RETURN_IF_ERROR(GetOrCreate(segment.collection)
                                       .RestorePut(record.id,
                                                   std::move(doc).value()));
          ++report->wal_records_replayed;
          break;
        }
        case WalRecord::Type::kDelete:
          GetOrCreate(segment.collection).RestoreDelete(record.id);
          ++report->wal_records_replayed;
          break;
        case WalRecord::Type::kDrop:
          // Dropping an already-absent collection during replay is benign.
          (void)Drop(segment.collection);
          ++report->wal_records_replayed;
          break;
        case WalRecord::Type::kCheckpoint:
          // End-of-segment marker; the state it names was captured by that
          // checkpoint's snapshot. Nothing to apply.
          break;
        case WalRecord::Type::kPromotion:
          // Replication control: a fenced failover happened here. Mutates
          // nothing; surface the token for operators and replicas.
          report->wal_fencing_token =
              std::max(report->wal_fencing_token, record.token);
          break;
        case WalRecord::Type::kSegmentHeader:
          // A second header mid-segment is damage.
          ++report->wal_records_rejected;
          report->problems.push_back("wal " + segment.file +
                                     ": unexpected mid-segment header");
          i = decoded.records.size();
          break;
      }
    }
  }

  return AttachWal(dir, wal_options);
}

Status Database::LoadLegacyDir(const std::string& dir, FileIo& io,
                               const std::vector<std::string>& listing,
                               SnapshotLoadReport* report) {
  report->legacy_format = true;
  for (const std::string& name : listing) {
    const std::string suffix = ".jsonl";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    std::string stem = name.substr(0, name.size() - suffix.size());
    const std::string path = dir + "/" + name;
    StatusOr<std::string> contents = io.ReadFile(path);
    if (!contents.ok()) return contents.status();
    StatusOr<std::unique_ptr<Collection>> coll =
        ParseCollectionFile(stem, *contents, path, UINT64_MAX,
                            /*preserve_ids=*/false);
    if (!coll.ok()) return coll.status();
    collections_[stem] = std::move(coll).value();
  }
  return Status::OK();
}

}  // namespace newsdiff::store
