#include "store/replica.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "store/json.h"
#include "store/snapshot.h"

namespace newsdiff::store {

Replica::Replica(std::string dir, Database* db, ReplicaOptions options)
    : dir_(std::move(dir)), db_(db), options_(std::move(options)) {}

FileIo& Replica::io() const {
  return options_.snapshot.io != nullptr ? *options_.snapshot.io
                                         : DefaultFileIo();
}

Clock& Replica::clock() const {
  static SystemClock system_clock;
  return options_.clock != nullptr ? *options_.clock : system_clock;
}

const WalTailerStats* Replica::tailer_stats() const {
  return tailer_ != nullptr ? &tailer_->stats() : nullptr;
}

Status Replica::Bootstrap() {
  if (promoted_) {
    return Status::FailedPrecondition("replica already promoted");
  }
  if (db_->wal_attached()) {
    return Status::FailedPrecondition(
        "replica database must not have a WAL before promotion");
  }
  // Start from scratch every time: Bootstrap doubles as Resync's reset.
  for (const std::string& name : db_->CollectionNames()) {
    (void)db_->Drop(name);
  }
  NEWSDIFF_RETURN_IF_ERROR(io().CreateDirectories(dir_));
  StatusOr<std::vector<std::string>> listing = io().ListDir(dir_);
  if (!listing.ok()) return listing.status();
  bool have_manifest = false;
  for (const std::string& name : *listing) {
    if (ParseManifestFileName(name).ok()) have_manifest = true;
  }
  SnapshotLoadReport report;
  if (have_manifest) {
    // The log addresses documents by the writer's ids; the checkpoint must
    // load with id assignment intact.
    SnapshotOptions load = options_.snapshot;
    load.preserve_doc_ids = true;
    NEWSDIFF_RETURN_IF_ERROR(db_->LoadFromDir(dir_, load, &report));
  }
  stats_.bootstrap_generation = report.generation;
  stats_.fencing_token = std::max(stats_.fencing_token, report.wal_fencing_token);

  WalTailerOptions tailer_options;
  tailer_options.io = options_.snapshot.io;
  tailer_options.max_reject_polls = options_.max_reject_polls;
  tailer_ = std::make_unique<WalTailer>(dir_, report.generation,
                                        tailer_options);
  stats_.bytes_behind = 0;
  stats_.caught_up = false;
  last_caught_up_ms_ = clock().NowMillis();
  return Status::OK();
}

Status Replica::ApplyRecord(const std::string& collection,
                            const WalRecord& record) {
  switch (record.type) {
    case WalRecord::Type::kSegmentHeader:
      // Restore trailing dead slots so id assignment matches the writer.
      db_->GetOrCreate(collection).PadSlots(record.slot_count);
      return Status::OK();
    case WalRecord::Type::kPut: {
      StatusOr<Value> doc = ParseJson(record.doc_json);
      if (!doc.ok() || !doc->is_object()) {
        // CRC-valid but unusable: bit rot inside a CRC collision. The
        // tailer stops trusting the segment, as recovery would.
        return Status::ParseError("unparseable put document");
      }
      NEWSDIFF_RETURN_IF_ERROR(db_->GetOrCreate(collection)
                                   .RestorePut(record.id,
                                               std::move(doc).value()));
      ++stats_.records_applied;
      return Status::OK();
    }
    case WalRecord::Type::kDelete:
      db_->GetOrCreate(collection).RestoreDelete(record.id);
      ++stats_.records_applied;
      return Status::OK();
    case WalRecord::Type::kDrop:
      // Replaying a drop of an already-absent collection is benign.
      (void)db_->Drop(collection);
      ++stats_.records_applied;
      return Status::OK();
    case WalRecord::Type::kCheckpoint:
      stats_.checkpoint_generation =
          std::max(stats_.checkpoint_generation, record.generation);
      return Status::OK();
    case WalRecord::Type::kPromotion:
      stats_.fencing_token = std::max(stats_.fencing_token, record.token);
      return Status::OK();
  }
  return Status::Internal("unhandled wal record type");
}

Status Replica::Poll() {
  if (promoted_) {
    return Status::FailedPrecondition("replica already promoted");
  }
  if (tailer_ == nullptr) {
    NEWSDIFF_RETURN_IF_ERROR(Bootstrap());
  }
  ++stats_.polls;
  const size_t failures_before = tailer_->stats().read_failures;
  Status polled = tailer_->Poll(
      [this](const std::string& collection, const WalRecord& record) {
        return ApplyRecord(collection, record);
      });
  if (!polled.ok()) {
    // The writer pruned a segment we still needed; everything it held is
    // in a newer snapshot, so start over from there.
    return Resync();
  }
  const WalTailerStats& tailed = tailer_->stats();
  stats_.bytes_behind = tailed.bytes_behind;
  stats_.checkpoint_generation =
      std::max(stats_.checkpoint_generation, tailed.checkpoint_generation);
  stats_.fencing_token = std::max(stats_.fencing_token, tailed.fencing_token);
  // A poll that hit a read fault may have missed durable bytes — it proves
  // nothing, so it cannot reset the staleness clock.
  stats_.caught_up = tailed.bytes_behind == 0 &&
                     tailed.read_failures == failures_before;
  const int64_t now_ms = clock().NowMillis();
  if (stats_.caught_up) last_caught_up_ms_ = now_ms;
  stats_.staleness_ms = now_ms - last_caught_up_ms_;
  return Status::OK();
}

Status Replica::Resync() {
  ++stats_.resyncs;
  tailer_.reset();  // a failed resync retries from Bootstrap on next Poll
  return Bootstrap();
}

Status Replica::DrainUntilQuiet() {
  // Hard cap so a permanently failing filesystem cannot spin forever.
  const size_t max_polls = std::max<size_t>(options_.promote_drain_polls, 1) * 64;
  size_t quiet = 0;
  for (size_t i = 0; i < max_polls; ++i) {
    const size_t delivered_before =
        tailer_ != nullptr ? tailer_->stats().records_delivered : 0;
    const size_t failures_before =
        tailer_ != nullptr ? tailer_->stats().read_failures : 0;
    const size_t resyncs_before = stats_.resyncs;
    const Status polled = Poll();
    if (!polled.ok()) {
      // A resync that died on a transient read fault; the next poll
      // re-bootstraps from scratch, so keep draining until the cap.
      quiet = 0;
      continue;
    }
    const size_t delivered_after =
        tailer_ != nullptr ? tailer_->stats().records_delivered : 0;
    const size_t failures_after =
        tailer_ != nullptr ? tailer_->stats().read_failures : 0;
    const bool progressed = delivered_after != delivered_before ||
                            stats_.resyncs != resyncs_before ||
                            failures_after != failures_before;
    quiet = progressed ? 0 : quiet + 1;
    if (quiet >= options_.promote_drain_polls) return Status::OK();
  }
  return Status::Unavailable("replica could not drain the log");
}

StatusOr<uint64_t> Replica::Promote(const LeaseOptions& lease_options,
                                    const WalOptions& wal_options) {
  if (promoted_) {
    return Status::FailedPrecondition("replica already promoted");
  }
  if (tailer_ == nullptr) {
    const Status booted = Bootstrap();
    (void)booted;  // transient faults retry inside the drain loops below
  }
  // Best-effort pre-catch-up keeps the fenced-but-not-serving window short;
  // correctness comes from the post-acquire drain, so transient poll
  // failures here are ignored rather than aborting the takeover.
  for (size_t i = 0; i < options_.promote_drain_polls && !stats_.caught_up;
       ++i) {
    const Status polled = Poll();
    (void)polled;
  }

  // Acquire the lease: from here every earlier writer is fenced — its next
  // group-commit sync fails at the write gate, so the durable log can no
  // longer grow under us. Transient read faults can make an attempt fail
  // spuriously; retry a few times.
  LeaseOptions lease_opts = lease_options;
  if (lease_opts.io == nullptr) lease_opts.io = options_.snapshot.io;
  if (lease_opts.clock == nullptr) lease_opts.clock = options_.clock;
  Status acquire_error = Status::OK();
  for (size_t attempt = 0; attempt < std::max<size_t>(options_.promote_attempts, 1);
       ++attempt) {
    StatusOr<Lease> acquired = Lease::Acquire(dir_, lease_opts);
    if (acquired.ok()) {
      lease_.emplace(std::move(acquired).value());
      acquire_error = Status::OK();
      break;
    }
    acquire_error = acquired.status();
    if (acquire_error.code() == StatusCode::kUnavailable) break;  // held
  }
  NEWSDIFF_RETURN_IF_ERROR(acquire_error);

  // Consume everything the old writer managed to sync before it was
  // fenced. Torn tails that never complete are exactly the unacknowledged
  // bytes recovery drops.
  NEWSDIFF_RETURN_IF_ERROR(DrainUntilQuiet());

  // Become the writer: gate every durable append on the held lease, then
  // announce the takeover in each collection's log and checkpoint so the
  // store opens a fresh generation under the new token.
  WalOptions gated = wal_options;
  if (gated.io == nullptr) gated.io = options_.snapshot.io;
  if (gated.clock == nullptr) gated.clock = options_.clock;
  gated.write_gate = [this]() {
    return lease_.has_value() ? lease_->Check() : Status::OK();
  };
  Status step = Status::OK();
  for (size_t attempt = 0; attempt < std::max<size_t>(options_.promote_attempts, 1);
       ++attempt) {
    if (!db_->wal_attached()) {
      // Attaching lists the directory to resume past existing segments; a
      // transient read fault here is retried like any other step.
      step = db_->AttachWal(dir_, gated);
      if (!step.ok()) continue;
    }
    step = Status::OK();
    WalWriter* wal = db_->wal();
    for (const std::string& name : db_->CollectionNames()) {
      wal->OpenSegment(name, db_->Get(name)->slot_count());
      step = wal->LogPromotion(name, lease_->token(), lease_opts.owner);
      if (!step.ok()) break;
    }
    if (step.ok()) step = db_->WalSync();
    if (step.ok()) step = db_->Checkpoint(options_.snapshot);
    if (step.ok()) {
      // Re-announce in the fresh generation: the pre-checkpoint record is
      // pruned with its segment, and tailers that resync from the new
      // snapshot must still find the token in the live log (duplicate
      // promotion records are idempotent control records).
      for (const std::string& name : db_->CollectionNames()) {
        step = wal->LogPromotion(name, lease_->token(), lease_opts.owner);
        if (!step.ok()) break;
      }
      if (step.ok()) step = db_->WalSync();
    }
    if (step.ok()) break;
  }
  NEWSDIFF_RETURN_IF_ERROR(step);

  promoted_ = true;
  tailer_.reset();
  stats_.fencing_token = std::max(stats_.fencing_token, lease_->token());
  stats_.caught_up = true;
  stats_.bytes_behind = 0;
  stats_.staleness_ms = 0;
  return lease_->token();
}

Status Replica::ReleaseLease() {
  if (!lease_.has_value()) return Status::OK();
  Status released = lease_->Release();
  lease_.reset();
  return released;
}

Status Replica::RenewLease() {
  if (!lease_.has_value()) {
    return Status::FailedPrecondition("replica holds no lease");
  }
  return lease_->Renew();
}

}  // namespace newsdiff::store
