#ifndef NEWSDIFF_STORE_SNAPSHOT_H_
#define NEWSDIFF_STORE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/status.h"

namespace newsdiff::store {

/// Generation-numbered snapshot format used by Database::SaveToDir.
///
/// Each save writes a fresh *generation*: every collection goes to
/// `<name>-<gen>.jsonl` (via temp+rename), then a `MANIFEST-<gen>` file —
/// listing each collection's file, document count, and CRC-32, plus a
/// self-CRC — is committed last via rename. The manifest rename is the
/// commit point: a crash anywhere before it leaves the previous generation
/// untouched, so recovery never sees mixed-generation state.
///
/// Recovery walks manifests newest-first and installs the first generation
/// whose manifest and every referenced collection file verify (checksum,
/// document count, line-level JSON parse). Damaged newer generations are
/// skipped, not fatal. After a successful save, generations older than
/// `retain_generations` and any unreferenced snapshot files (dropped
/// collections, torn temp files, pre-snapshot legacy `<name>.jsonl` files)
/// are garbage-collected.

struct SnapshotOptions {
  /// How many committed generations to keep on disk (>= 1). Older
  /// generations and files referenced by no retained manifest are deleted
  /// after each successful save.
  size_t retain_generations = 3;
  /// Filesystem seam; nullptr uses the real filesystem. Tests inject
  /// datagen::FaultyFileIo here.
  FileIo* io = nullptr;
  /// Restore each document into the slot named by its "_id" field instead
  /// of renumbering densely. WAL recovery requires this: log records
  /// address documents by their original ids, so the checkpoint must load
  /// with id assignment intact (including gaps left by removals). The
  /// legacy manifest-less format always renumbers regardless.
  bool preserve_doc_ids = false;
};

/// What recovery actually did, for operators and tests.
struct SnapshotLoadReport {
  /// Generation installed (0 when the directory held no manifest and the
  /// legacy per-file format was loaded instead).
  uint64_t generation = 0;
  /// Newer generations rejected as damaged before one verified.
  size_t generations_skipped = 0;
  bool legacy_format = false;
  /// Human-readable reason each damaged generation was skipped.
  std::vector<std::string> problems;
  /// Write-ahead log replay (Database::RecoverWal): segments scanned, and
  /// per-record dispositions — applied on top of the checkpoint, dropped as
  /// a torn tail (incomplete trailing frame), or rejected outright (CRC or
  /// parse failure; that segment's scan stops so damage is never applied).
  size_t wal_segments = 0;
  size_t wal_records_replayed = 0;
  size_t wal_records_truncated = 0;
  size_t wal_records_rejected = 0;
  /// Highest fencing token among replication promotion records replayed
  /// (0 when the log never changed writers; see store/replica.h).
  uint64_t wal_fencing_token = 0;
};

struct ManifestEntry {
  std::string collection;
  std::string file;   // file name within the snapshot directory
  uint64_t docs = 0;  // non-empty JSONL lines
  uint32_t crc32 = 0;
};

struct Manifest {
  uint64_t generation = 0;
  std::vector<ManifestEntry> entries;
};

/// Renders the manifest in its on-disk form (self-CRC trailer included).
std::string SerializeManifest(const Manifest& manifest);

/// Parses and verifies a manifest file's bytes. Total on arbitrary input:
/// corruption yields kParseError, never a crash.
StatusOr<Manifest> ParseManifest(const std::string& text);

/// "MANIFEST-0000000042" for generation 42.
std::string ManifestFileName(uint64_t generation);

/// Recovers the generation number from a manifest file name; kParseError
/// if the name is not a well-formed manifest name.
StatusOr<uint64_t> ParseManifestFileName(const std::string& name);

/// "news-0000000042.jsonl" for collection "news", generation 42.
std::string SnapshotCollectionFileName(const std::string& collection,
                                       uint64_t generation);

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_SNAPSHOT_H_
