#ifndef NEWSDIFF_STORE_REPLICATION_H_
#define NEWSDIFF_STORE_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/file_io.h"
#include "common/status.h"
#include "store/wal.h"

namespace newsdiff::store {

/// Incremental reader for a live writer's write-ahead log (store/wal.h).
///
/// A WalTailer follows the per-collection segment files of a store another
/// process is writing, through the same FileIo seam the writer uses. Each
/// Poll() lists the directory, reads only the bytes appended since the last
/// poll (FileIo::ReadFileFrom — catch-up traffic is O(delta), not
/// O(store)), verifies each frame's CRC, and hands verified records to the
/// caller in exactly the order recovery (Database::RecoverWal) would replay
/// them. The tailer is the read half of replication; store/replica.h wraps
/// it with a Database and fenced promotion.
///
/// Reading a log that someone else is appending to means every anomaly is
/// ambiguous at first sight, and the tailer resolves each one the way that
/// keeps it byte-identical to recovery:
///
///   - *Torn tail*: an incomplete frame at the end of an open segment is
///     usually an append in flight (or a transient torn read) — the tailer
///     waits and re-reads from the same offset next poll. Only when a later
///     part for the collection exists is the segment closed, and a closed
///     segment's torn tail is permanent (a poisoned part the writer rotated
///     away from) — exactly the bytes recovery drops.
///   - *CRC mismatch*: could be in-flight bit rot on the read path
///     (transient — the next read redraws) or durable rot in the file. The
///     tailer never advances past an unverified frame; it declares the
///     damage durable only after `max_reject_polls` consecutive polls
///     observe the *identical* rejected bytes (a transient flip virtually
///     never repeats byte-for-byte), then stops scanning the segment, just
///     as recovery stops at the first damaged frame. Closed segments are
///     re-read whole (ReadFile, which cannot race an append), so their
///     verdicts are immediate and final.
///   - *Checkpoint marker*: records the generation and moves on to the
///     segment the writer rotated to.
///   - *Vanished segment*: a segment pruned while the cursor still needed
///     it means the tailer fell behind checkpoint retention; Poll returns
///     kUnavailable and the caller must resync from a newer snapshot
///     (Replica::Resync does this automatically).
///
/// Transient I/O failures (unreadable file or directory this instant) are
/// counted and retried on the next poll — Poll stays OK. Single-threaded,
/// like everything in the store; "concurrent" writer/tailer interleavings
/// are driven by alternating calls in tests.
struct WalTailerOptions {
  /// Filesystem seam; nullptr uses the real filesystem. Chaos tests inject
  /// datagen::FaultyFileIo with read_tear_rate / read_flip_rate here.
  FileIo* io = nullptr;
  /// How many consecutive polls must observe byte-identical rejected data
  /// before the damage is declared durable and the segment abandoned.
  size_t max_reject_polls = 3;
};

struct WalTailerStats {
  size_t polls = 0;
  size_t segments_tracked = 0;   // segments the tailer started reading
  size_t records_delivered = 0;  // verified records handed to the callback
  size_t bytes_read = 0;         // bytes fetched across all polls
  size_t torn_waits = 0;         // polls that ended at an incomplete tail
  size_t read_failures = 0;      // transient I/O errors, retried next poll
  size_t damaged_segments = 0;   // segments abandoned at durable damage
  uint64_t checkpoint_generation = 0;  // newest ckpt marker observed
  uint64_t fencing_token = 0;          // newest promotion token observed
  /// Bytes observed in the log but not yet consumed when the last poll
  /// finished — 0 means the tailer is caught up with everything durable.
  uint64_t bytes_behind = 0;
};

class WalTailer {
 public:
  /// Receives each verified record in replay order. Segment headers are
  /// delivered too (they carry the slot count replicas must pad to). A
  /// non-OK return means the record is unusable (e.g. a CRC-valid put
  /// whose document does not parse) — the tailer treats the segment as
  /// damaged and stops scanning it, mirroring recovery.
  using Apply =
      std::function<Status(const std::string& collection, const WalRecord&)>;

  /// Tails the segments under `dir` whose base generation is at least
  /// `base_generation` (the snapshot generation the caller's state was
  /// bootstrapped from).
  WalTailer(std::string dir, uint64_t base_generation,
            WalTailerOptions options = {});

  /// One incremental pass over the log. OK covers both progress and
  /// transient hiccups; kUnavailable means a needed segment was pruned and
  /// the caller must resync from a newer snapshot.
  Status Poll(const Apply& apply);

  const WalTailerStats& stats() const { return stats_; }
  uint64_t base_generation() const { return base_generation_; }
  const std::string& dir() const { return dir_; }

 private:
  /// Read position within one collection's segment sequence.
  struct Cursor {
    uint64_t base = 0;
    uint64_t part = 0;
    bool positioned = false;  // cursor points at a real segment
    uint64_t offset = 0;      // bytes consumed (verified frame boundary)
    bool started = false;     // segment header verified
    bool done = false;        // finished with this segment; advance
    std::string last_reject;  // unverified remainder at the last reject
    size_t reject_polls = 0;  // consecutive polls rejecting those bytes
    uint64_t unconsumed = 0;  // observed-but-unapplied bytes (behindness)
  };

  FileIo& io() const;
  /// Consumes the frames in `bytes` (the segment's contents from
  /// cursor.offset on). `closed` marks a segment that can no longer grow;
  /// its anomalies are final instead of awaited.
  void ConsumeDelta(const std::string& collection, Cursor& cursor,
                    const std::string& bytes, bool closed, const Apply& apply);
  /// Marks the cursor's segment abandoned at durable damage.
  void AbandonSegment(Cursor& cursor);

  std::string dir_;
  uint64_t base_generation_ = 0;
  WalTailerOptions options_;
  std::map<std::string, Cursor> cursors_;
  WalTailerStats stats_;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_REPLICATION_H_
