#include "store/snapshot.h"

#include <cinttypes>
#include <cstdio>

#include "common/crc32.h"
#include "common/strings.h"

namespace newsdiff::store {

namespace {

constexpr char kMagic[] = "newsdiff-snapshot";
constexpr int kFormatVersion = 1;
constexpr char kManifestPrefix[] = "MANIFEST-";
constexpr size_t kGenDigits = 10;

std::string GenToken(uint64_t generation) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%010" PRIu64, generation);
  return std::string(buf);
}

bool ParseU64(const std::string& token, uint64_t* out) {
  if (token.empty() || token.size() > 20) return false;
  uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - digit) / 10) return false;
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

}  // namespace

std::string SerializeManifest(const Manifest& manifest) {
  std::string body = std::string(kMagic) + " " +
                     std::to_string(kFormatVersion) + "\n";
  body += "generation " + std::to_string(manifest.generation) + "\n";
  for (const ManifestEntry& e : manifest.entries) {
    body += "collection " + e.collection + " " + e.file + " " +
            std::to_string(e.docs) + " " + Crc32Hex(e.crc32) + "\n";
  }
  body += "crc " + Crc32Hex(Crc32(body)) + "\n";
  return body;
}

StatusOr<Manifest> ParseManifest(const std::string& text) {
  // The trailer line ("crc <hex>\n") covers every byte before it; verify it
  // before trusting any field.
  size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::ParseError("manifest missing crc trailer");
  }
  std::string crc_line = text.substr(crc_pos);
  while (!crc_line.empty() &&
         (crc_line.back() == '\n' || crc_line.back() == '\r')) {
    crc_line.pop_back();
  }
  uint32_t stated = 0;
  if (!ParseCrc32Hex(std::string_view(crc_line).substr(4), &stated)) {
    return Status::ParseError("manifest crc trailer malformed");
  }
  std::string body = text.substr(0, crc_pos);
  if (Crc32(body) != stated) {
    return Status::ParseError("manifest checksum mismatch");
  }

  Manifest manifest;
  bool saw_magic = false;
  bool saw_generation = false;
  for (std::string& line : Split(body, '\n')) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::vector<std::string> tokens = Split(line, ' ');
    if (!saw_magic) {
      uint64_t version = 0;
      if (tokens.size() != 2 || tokens[0] != kMagic ||
          !ParseU64(tokens[1], &version)) {
        return Status::ParseError("not a snapshot manifest");
      }
      if (version != static_cast<uint64_t>(kFormatVersion)) {
        return Status::ParseError("unsupported snapshot version " +
                                  tokens[1]);
      }
      saw_magic = true;
      continue;
    }
    if (tokens[0] == "generation") {
      if (tokens.size() != 2 || !ParseU64(tokens[1], &manifest.generation)) {
        return Status::ParseError("malformed generation line");
      }
      saw_generation = true;
    } else if (tokens[0] == "collection") {
      if (tokens.size() != 5) {
        return Status::ParseError("malformed collection line: " + line);
      }
      ManifestEntry entry;
      entry.collection = tokens[1];
      entry.file = tokens[2];
      if (entry.collection.empty() || entry.file.empty() ||
          entry.file.find('/') != std::string::npos ||
          entry.file.find("..") != std::string::npos) {
        return Status::ParseError("malformed collection entry: " + line);
      }
      uint64_t docs = 0;
      if (!ParseU64(tokens[3], &docs) ||
          !ParseCrc32Hex(tokens[4], &entry.crc32)) {
        return Status::ParseError("malformed collection entry: " + line);
      }
      entry.docs = docs;
      manifest.entries.push_back(std::move(entry));
    } else {
      return Status::ParseError("unknown manifest directive: " + tokens[0]);
    }
  }
  if (!saw_magic) return Status::ParseError("empty manifest");
  if (!saw_generation) return Status::ParseError("manifest missing generation");
  return manifest;
}

std::string ManifestFileName(uint64_t generation) {
  return std::string(kManifestPrefix) + GenToken(generation);
}

StatusOr<uint64_t> ParseManifestFileName(const std::string& name) {
  const size_t prefix_len = sizeof(kManifestPrefix) - 1;
  uint64_t generation = 0;
  if (name.size() != prefix_len + kGenDigits ||
      name.compare(0, prefix_len, kManifestPrefix) != 0 ||
      !ParseU64(name.substr(prefix_len), &generation)) {
    return Status::ParseError("not a manifest file name: " + name);
  }
  return generation;
}

std::string SnapshotCollectionFileName(const std::string& collection,
                                       uint64_t generation) {
  return collection + "-" + GenToken(generation) + ".jsonl";
}

}  // namespace newsdiff::store
