#include "store/collection.h"

#include <algorithm>

#include "store/json.h"

namespace newsdiff::store {

Filter& Filter::Eq(std::string field, Value v) {
  conditions_.push_back({std::move(field), FilterOp::kEq, std::move(v)});
  return *this;
}
Filter& Filter::Ne(std::string field, Value v) {
  conditions_.push_back({std::move(field), FilterOp::kNe, std::move(v)});
  return *this;
}
Filter& Filter::Lt(std::string field, Value v) {
  conditions_.push_back({std::move(field), FilterOp::kLt, std::move(v)});
  return *this;
}
Filter& Filter::Lte(std::string field, Value v) {
  conditions_.push_back({std::move(field), FilterOp::kLte, std::move(v)});
  return *this;
}
Filter& Filter::Gt(std::string field, Value v) {
  conditions_.push_back({std::move(field), FilterOp::kGt, std::move(v)});
  return *this;
}
Filter& Filter::Gte(std::string field, Value v) {
  conditions_.push_back({std::move(field), FilterOp::kGte, std::move(v)});
  return *this;
}
Filter& Filter::Exists(std::string field) {
  conditions_.push_back({std::move(field), FilterOp::kExists, Value()});
  return *this;
}
Filter& Filter::Contains(std::string field, std::string substring) {
  conditions_.push_back(
      {std::move(field), FilterOp::kContains, Value(std::move(substring))});
  return *this;
}

bool Filter::Matches(const Value& doc) const {
  for (const Condition& c : conditions_) {
    const Value* f = doc.Find(c.field);
    if (f == nullptr) {
      if (c.op == FilterOp::kNe) continue;  // absent != anything
      return false;
    }
    switch (c.op) {
      case FilterOp::kEq:
        if (!f->Equals(c.value)) return false;
        break;
      case FilterOp::kNe:
        if (f->Equals(c.value)) return false;
        break;
      case FilterOp::kLt:
        if (f->Compare(c.value) >= 0) return false;
        break;
      case FilterOp::kLte:
        if (f->Compare(c.value) > 0) return false;
        break;
      case FilterOp::kGt:
        if (f->Compare(c.value) <= 0) return false;
        break;
      case FilterOp::kGte:
        if (f->Compare(c.value) < 0) return false;
        break;
      case FilterOp::kExists:
        break;  // presence already checked
      case FilterOp::kContains:
        if (!f->is_string() || !c.value.is_string()) return false;
        if (f->string_value().find(c.value.string_value()) ==
            std::string::npos) {
          return false;
        }
        break;
    }
  }
  return true;
}

Collection::Collection(std::string name) : name_(std::move(name)) {}

std::string Collection::IndexKey(const Value& v) { return ToJson(v); }

StatusOr<DocId> Collection::Insert(Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("Insert requires an object document");
  }
  DocId id = static_cast<DocId>(slots_.size());
  doc.Set("_id", Value(id));
  if (observer_ != nullptr) observer_->OnPut(*this, id, doc);
  IndexInsert(id, doc);
  slots_.push_back({std::move(doc), true});
  ++live_count_;
  return id;
}

StatusOr<Value> Collection::Get(DocId id) const {
  if (id < 0 || static_cast<size_t>(id) >= slots_.size() ||
      !slots_[static_cast<size_t>(id)].live) {
    return Status::NotFound("no document with _id " + std::to_string(id));
  }
  return slots_[static_cast<size_t>(id)].doc;
}

std::vector<DocId> Collection::Candidates(const Filter& filter,
                                          bool& used_index) const {
  used_index = false;
  for (const Condition& c : filter.conditions()) {
    if (c.op != FilterOp::kEq) continue;
    auto idx_it = indexes_.find(c.field);
    if (idx_it == indexes_.end()) continue;
    used_index = true;
    auto bucket = idx_it->second.find(IndexKey(c.value));
    if (bucket == idx_it->second.end()) return {};
    return bucket->second;
  }
  std::vector<DocId> all;
  all.reserve(live_count_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].live) all.push_back(static_cast<DocId>(i));
  }
  return all;
}

std::vector<Value> Collection::Find(const Filter& filter) const {
  std::vector<Value> out;
  ForEach(filter, [&](DocId, const Value& doc) {
    out.push_back(doc);
    return true;
  });
  return out;
}

std::vector<Value> Collection::Find(const Filter& filter,
                                    const FindOptions& options) const {
  std::vector<Value> matches = Find(filter);
  if (!options.sort_field.empty()) {
    static const Value kNull;
    std::stable_sort(matches.begin(), matches.end(),
                     [&](const Value& a, const Value& b) {
                       const Value* va = a.Find(options.sort_field);
                       const Value* vb = b.Find(options.sort_field);
                       int cmp = (va != nullptr ? *va : kNull)
                                     .Compare(vb != nullptr ? *vb : kNull);
                       return options.descending ? cmp > 0 : cmp < 0;
                     });
  }
  if (options.skip > 0) {
    if (options.skip >= matches.size()) {
      matches.clear();
    } else {
      matches.erase(matches.begin(),
                    matches.begin() + static_cast<ptrdiff_t>(options.skip));
    }
  }
  if (matches.size() > options.limit) matches.resize(options.limit);
  if (!options.projection.empty()) {
    for (Value& doc : matches) {
      Object projected;
      for (const auto& [key, value] : doc.object()) {
        bool keep = key == "_id";
        for (const std::string& field : options.projection) {
          if (key == field) {
            keep = true;
            break;
          }
        }
        if (keep) projected.emplace_back(key, value);
      }
      doc = Value(std::move(projected));
    }
  }
  return matches;
}

std::map<std::string, size_t> Collection::CountBy(
    const Filter& filter, const std::string& field) const {
  std::map<std::string, size_t> groups;
  ForEach(filter, [&](DocId, const Value& doc) {
    const Value* v = doc.Find(field);
    ++groups[v != nullptr ? IndexKey(*v) : "null"];
    return true;
  });
  return groups;
}

StatusOr<Value> Collection::FindOne(const Filter& filter) const {
  StatusOr<Value> result = Status::NotFound("no matching document");
  ForEach(filter, [&](DocId, const Value& doc) {
    result = doc;
    return false;
  });
  return result;
}

void Collection::ForEach(
    const Filter& filter,
    const std::function<bool(DocId, const Value&)>& fn) const {
  bool used_index = false;
  std::vector<DocId> cands = Candidates(filter, used_index);
  for (DocId id : cands) {
    const Slot& slot = slots_[static_cast<size_t>(id)];
    if (!slot.live) continue;
    if (!filter.Matches(slot.doc)) continue;
    if (!fn(id, slot.doc)) return;
  }
}

size_t Collection::Count(const Filter& filter) const {
  size_t n = 0;
  ForEach(filter, [&](DocId, const Value&) {
    ++n;
    return true;
  });
  return n;
}

size_t Collection::UpdateSet(const Filter& filter, const std::string& field,
                             Value v) {
  bool used_index = false;
  std::vector<DocId> cands = Candidates(filter, used_index);
  size_t n = 0;
  for (DocId id : cands) {
    Slot& slot = slots_[static_cast<size_t>(id)];
    if (!slot.live || !filter.Matches(slot.doc)) continue;
    if (observer_ != nullptr) {
      // Log-before-apply: hand the observer the post-image this update
      // will produce, then mutate.
      Value post = slot.doc;
      post.Set(field, v);
      observer_->OnPut(*this, id, post);
    }
    IndexRemove(id, slot.doc);
    slot.doc.Set(field, v);
    IndexInsert(id, slot.doc);
    ++n;
  }
  return n;
}

StatusOr<DocId> Collection::Upsert(const Filter& filter, Value doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("Upsert requires an object document");
  }
  DocId target = -1;
  ForEach(filter, [&](DocId id, const Value&) {
    target = id;
    return false;
  });
  if (target < 0) return Insert(std::move(doc));
  Slot& slot = slots_[static_cast<size_t>(target)];
  doc.Set("_id", Value(target));
  if (observer_ != nullptr) observer_->OnPut(*this, target, doc);
  IndexRemove(target, slot.doc);
  slot.doc = std::move(doc);
  IndexInsert(target, slot.doc);
  return target;
}

size_t Collection::Remove(const Filter& filter) {
  bool used_index = false;
  std::vector<DocId> cands = Candidates(filter, used_index);
  size_t n = 0;
  for (DocId id : cands) {
    Slot& slot = slots_[static_cast<size_t>(id)];
    if (!slot.live || !filter.Matches(slot.doc)) continue;
    if (observer_ != nullptr) observer_->OnDelete(*this, id);
    IndexRemove(id, slot.doc);
    slot.live = false;
    slot.doc = Value();
    --live_count_;
    ++n;
  }
  return n;
}

void Collection::CreateIndex(const std::string& field) {
  if (indexes_.count(field) > 0) return;
  auto& index = indexes_[field];
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live) continue;
    const Value* f = slots_[i].doc.Find(field);
    if (f != nullptr) {
      index[IndexKey(*f)].push_back(static_cast<DocId>(i));
    }
  }
}

bool Collection::HasIndex(const std::string& field) const {
  return indexes_.count(field) > 0;
}

std::vector<Value> Collection::All() const { return Find(Filter()); }

Status Collection::RestorePut(DocId id, Value doc) {
  if (id < 0) return Status::InvalidArgument("RestorePut: negative id");
  if (!doc.is_object()) {
    return Status::InvalidArgument("RestorePut requires an object document");
  }
  PadSlots(static_cast<size_t>(id) + 1);
  Slot& slot = slots_[static_cast<size_t>(id)];
  doc.Set("_id", Value(id));
  if (slot.live) {
    IndexRemove(id, slot.doc);
  } else {
    slot.live = true;
    ++live_count_;
  }
  slot.doc = std::move(doc);
  IndexInsert(id, slot.doc);
  return Status::OK();
}

void Collection::RestoreDelete(DocId id) {
  if (id < 0 || static_cast<size_t>(id) >= slots_.size()) return;
  Slot& slot = slots_[static_cast<size_t>(id)];
  if (!slot.live) return;
  IndexRemove(id, slot.doc);
  slot.live = false;
  slot.doc = Value();
  --live_count_;
}

void Collection::PadSlots(size_t n) {
  if (slots_.size() < n) slots_.resize(n);
}

void Collection::IndexInsert(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    const Value* f = doc.Find(field);
    if (f != nullptr) index[IndexKey(*f)].push_back(id);
  }
}

void Collection::IndexRemove(DocId id, const Value& doc) {
  for (auto& [field, index] : indexes_) {
    const Value* f = doc.Find(field);
    if (f == nullptr) continue;
    auto bucket = index.find(IndexKey(*f));
    if (bucket == index.end()) continue;
    auto& ids = bucket->second;
    ids.erase(std::remove(ids.begin(), ids.end(), id), ids.end());
    if (ids.empty()) index.erase(bucket);
  }
}

}  // namespace newsdiff::store
