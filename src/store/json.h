#ifndef NEWSDIFF_STORE_JSON_H_
#define NEWSDIFF_STORE_JSON_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "store/value.h"

namespace newsdiff::store {

/// Serialises `v` to compact JSON (no extra whitespace). Non-finite doubles
/// are emitted as null, matching MongoDB's JSON export behaviour.
std::string ToJson(const Value& v);

/// Serialises with 2-space indentation, for human consumption.
std::string ToPrettyJson(const Value& v);

/// Parses one JSON value from `text`. The whole input must be consumed
/// (modulo trailing whitespace). Supports the JSON core grammar: null, true,
/// false, numbers (int64 when exactly representable, double otherwise),
/// strings with \" \\ \/ \b \f \n \r \t \uXXXX escapes, arrays, objects.
StatusOr<Value> ParseJson(std::string_view text);

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_JSON_H_
