#ifndef NEWSDIFF_STORE_DATABASE_H_
#define NEWSDIFF_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/collection.h"
#include "store/snapshot.h"

namespace newsdiff::store {

/// A named set of collections with JSONL persistence — the embedded
/// substitute for the paper's MongoDB deployment. Collections are created
/// on first access. Persistence writes crash-safe, generation-numbered
/// snapshots (see store/snapshot.h): one `<collection>-<gen>.jsonl` per
/// collection plus a checksummed `MANIFEST-<gen>` committed last, so a
/// crash at any point leaves the previous generation loadable. Loading
/// replays the documents in order (fresh "_id"s are assigned, preserving
/// relative order) from the newest generation that verifies, falling back
/// past damaged ones. Directories written by the pre-snapshot format
/// (bare `<collection>.jsonl`, no manifest) still load.
class Database {
 public:
  /// Creates an empty in-memory database.
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Returns the collection, creating it if absent.
  Collection& GetOrCreate(const std::string& name);

  /// Returns the collection or nullptr if it does not exist.
  Collection* Get(const std::string& name);
  const Collection* Get(const std::string& name) const;

  /// Drops a collection; returns true if it existed.
  bool Drop(const std::string& name);

  /// Names of all collections, sorted.
  std::vector<std::string> CollectionNames() const;

  /// Writes a new snapshot generation under `dir` (creating it if needed):
  /// every collection as `<name>-<gen>.jsonl` (one compact JSON document
  /// per line, written via temp+rename), then the checksummed manifest as
  /// the commit point. Retains the last `options.retain_generations`
  /// generations and garbage-collects everything else — including stale
  /// files from collections dropped since the previous save.
  Status SaveToDir(const std::string& dir) const;
  Status SaveToDir(const std::string& dir,
                   const SnapshotOptions& options) const;

  /// Loads the newest intact snapshot generation in `dir`, verifying the
  /// manifest self-CRC and every collection's CRC/doc count, and falling
  /// back to older generations when a newer one is damaged. Collections in
  /// the loaded generation replace same-named in-memory collections.
  /// Directories without a manifest load in the legacy per-file format
  /// (every `*.jsonl`, strict: any malformed line fails).
  Status LoadFromDir(const std::string& dir);
  Status LoadFromDir(const std::string& dir, const SnapshotOptions& options,
                     SnapshotLoadReport* report = nullptr);

 private:
  /// Deletes manifests beyond the newest `retain_generations` and snapshot
  /// artifacts referenced by no retained manifest. Best-effort.
  static void GarbageCollect(const std::string& dir, FileIo& io,
                             size_t retain_generations);

  /// Pre-snapshot format: every bare `*.jsonl` file, strict parsing.
  Status LoadLegacyDir(const std::string& dir, FileIo& io,
                       const std::vector<std::string>& listing,
                       SnapshotLoadReport* report);

  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_DATABASE_H_
