#ifndef NEWSDIFF_STORE_DATABASE_H_
#define NEWSDIFF_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/collection.h"

namespace newsdiff::store {

/// A named set of collections with JSONL persistence — the embedded
/// substitute for the paper's MongoDB deployment. Collections are created
/// on first access. Persistence writes one `<collection>.jsonl` file per
/// collection under a directory; loading replays the documents in order
/// (fresh "_id"s are assigned, preserving relative order).
class Database {
 public:
  /// Creates an empty in-memory database.
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Returns the collection, creating it if absent.
  Collection& GetOrCreate(const std::string& name);

  /// Returns the collection or nullptr if it does not exist.
  Collection* Get(const std::string& name);
  const Collection* Get(const std::string& name) const;

  /// Drops a collection; returns true if it existed.
  bool Drop(const std::string& name);

  /// Names of all collections, sorted.
  std::vector<std::string> CollectionNames() const;

  /// Writes every collection to `dir/<name>.jsonl` (one compact JSON
  /// document per line). Creates `dir` if needed.
  Status SaveToDir(const std::string& dir) const;

  /// Loads every `*.jsonl` file in `dir` into a same-named collection,
  /// replacing any existing collection of that name.
  Status LoadFromDir(const std::string& dir);

 private:
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_DATABASE_H_
