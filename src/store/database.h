#ifndef NEWSDIFF_STORE_DATABASE_H_
#define NEWSDIFF_STORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/collection.h"
#include "store/snapshot.h"
#include "store/wal.h"

namespace newsdiff::store {

/// A named set of collections with JSONL persistence — the embedded
/// substitute for the paper's MongoDB deployment. Collections are created
/// on first access. Persistence writes crash-safe, generation-numbered
/// snapshots (see store/snapshot.h): one `<collection>-<gen>.jsonl` per
/// collection plus a checksummed `MANIFEST-<gen>` committed last, so a
/// crash at any point leaves the previous generation loadable. Loading
/// replays the documents in order (fresh "_id"s are assigned, preserving
/// relative order) from the newest generation that verifies, falling back
/// past damaged ones. Directories written by the pre-snapshot format
/// (bare `<collection>.jsonl`, no manifest) still load.
class Database {
 public:
  /// Creates an empty in-memory database.
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  // Defined out of line: the WAL binding is an incomplete type here.
  Database(Database&&) noexcept;
  Database& operator=(Database&&) noexcept;

  /// Returns the collection, creating it if absent.
  Collection& GetOrCreate(const std::string& name);

  /// Returns the collection or nullptr if it does not exist.
  Collection* Get(const std::string& name);
  const Collection* Get(const std::string& name) const;

  /// Drops a collection; kNotFound if it does not exist (callers that
  /// treat "already gone" as success can ignore that code explicitly).
  Status Drop(const std::string& name);

  /// Names of all collections, sorted.
  std::vector<std::string> CollectionNames() const;

  /// Writes a new snapshot generation under `dir` (creating it if needed):
  /// every collection as `<name>-<gen>.jsonl` (one compact JSON document
  /// per line, written via temp+rename), then the checksummed manifest as
  /// the commit point. Retains the last `options.retain_generations`
  /// generations and garbage-collects everything else — including stale
  /// files from collections dropped since the previous save.
  Status SaveToDir(const std::string& dir) const;
  Status SaveToDir(const std::string& dir,
                   const SnapshotOptions& options) const;

  /// Loads the newest intact snapshot generation in `dir`, verifying the
  /// manifest self-CRC and every collection's CRC/doc count, and falling
  /// back to older generations when a newer one is damaged. Collections in
  /// the loaded generation replace same-named in-memory collections.
  /// Directories without a manifest load in the legacy per-file format
  /// (every `*.jsonl`, strict: any malformed line fails).
  Status LoadFromDir(const std::string& dir);
  Status LoadFromDir(const std::string& dir, const SnapshotOptions& options,
                     SnapshotLoadReport* report = nullptr);

  /// Write-ahead logging (storage engine v2; see store/wal.h). Once a WAL
  /// is attached, every mutation on every collection is logged before it is
  /// applied, and durability becomes O(delta): WalSync() flushes the
  /// group-commit buffer instead of rewriting the store. Snapshots turn
  /// into checkpoints taken via Checkpoint().
  ///
  /// Attaches a WAL under `dir` (the snapshot/checkpoint directory).
  /// Existing collections resume logging past any segment files already on
  /// disk — a recovered writer never appends after a possibly-torn tail.
  Status AttachWal(const std::string& dir, const WalOptions& options = {});

  bool wal_attached() const { return wal_ != nullptr; }

  /// The attached writer (stats, tests); nullptr when no WAL is attached.
  WalWriter* wal();

  /// Flushes all pending WAL records. After OK, every acknowledged
  /// mutation survives a crash. kFailedPrecondition when no WAL is
  /// attached, or when the write gate reports this writer fenced.
  Status WalSync();

  /// Checkpoint protocol: sync the WAL, write a snapshot generation (the
  /// manifest commit makes it the recovery base), append checkpoint
  /// markers and rotate every collection's log to the new base, then prune
  /// segments older than the oldest *retained* generation — a fallback
  /// generation keeps its log tail. Requires an attached WAL.
  Status Checkpoint(const SnapshotOptions& options = {});

  /// Crash recovery for a WAL-enabled store: loads the newest intact
  /// snapshot generation (preserving document ids), replays every intact
  /// log record based on it, reports replay statistics in `report`, and
  /// attaches the WAL for the write path. The result is byte-identical to
  /// the uninterrupted run up to the group-commit boundary. Works on a
  /// fresh or empty directory (starts empty with the WAL attached).
  Status RecoverWal(const std::string& dir,
                    const SnapshotOptions& snapshot_options,
                    const WalOptions& wal_options,
                    SnapshotLoadReport* report = nullptr);

 private:
  struct WalBinding;

  /// Points `collection`'s mutation observer at the attached WAL binding
  /// (no-op when none is attached).
  void AttachObserver(Collection& collection);

  /// Buffers a drop record for `collection` on the attached WAL.
  void LogDrop(Collection& collection);
  /// Deletes manifests beyond the newest `retain_generations` and snapshot
  /// artifacts referenced by no retained manifest. Best-effort.
  static void GarbageCollect(const std::string& dir, FileIo& io,
                             size_t retain_generations);

  /// Pre-snapshot format: every bare `*.jsonl` file, strict parsing.
  Status LoadLegacyDir(const std::string& dir, FileIo& io,
                       const std::vector<std::string>& listing,
                       SnapshotLoadReport* report);

  std::map<std::string, std::unique_ptr<Collection>> collections_;
  /// Observer + writer for the attached WAL (heap-allocated so the
  /// observer pointers held by collections survive a Database move).
  std::unique_ptr<WalBinding> wal_;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_DATABASE_H_
