#include "store/replication.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/crc32.h"

namespace newsdiff::store {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32le length + u32le CRC-32

uint32_t ReadU32Le(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

}  // namespace

WalTailer::WalTailer(std::string dir, uint64_t base_generation,
                     WalTailerOptions options)
    : dir_(std::move(dir)),
      base_generation_(base_generation),
      options_(options) {}

FileIo& WalTailer::io() const {
  return options_.io != nullptr ? *options_.io : DefaultFileIo();
}

void WalTailer::AbandonSegment(Cursor& cursor) {
  ++stats_.damaged_segments;
  cursor.done = true;
  cursor.unconsumed = 0;  // the bytes past the damage will never be applied
  cursor.last_reject.clear();
  cursor.reject_polls = 0;
}

void WalTailer::ConsumeDelta(const std::string& collection, Cursor& cursor,
                             const std::string& bytes, bool closed,
                             const Apply& apply) {
  size_t pos = 0;
  while (true) {
    const size_t remaining = bytes.size() - pos;
    if (remaining == 0) {
      // Clean frame boundary: everything observed is applied.
      cursor.last_reject.clear();
      cursor.reject_polls = 0;
      cursor.unconsumed = 0;
      // A closed segment that ends cleanly (no ckpt marker — the writer
      // rotated on size or a poisoned append) is simply finished.
      if (closed) cursor.done = true;
      return;
    }

    // Frame header and payload must be complete before anything verifies.
    bool torn = remaining < kFrameHeaderBytes;
    uint32_t length = 0;
    if (!torn) {
      length = ReadU32Le(bytes.data() + pos);
      torn = length != 0 && remaining - kFrameHeaderBytes < length;
    }
    if (torn) {
      if (closed) {
        // Nothing more will ever arrive: this is the poisoned tail of a
        // part the writer rotated away from — the bytes recovery drops.
        cursor.done = true;
        cursor.unconsumed = 0;
        cursor.last_reject.clear();
        cursor.reject_polls = 0;
      } else {
        // An append in flight, or a transiently torn read; wait it out.
        ++stats_.torn_waits;
        cursor.unconsumed = remaining;
      }
      return;
    }

    const uint32_t stated_crc = ReadU32Le(bytes.data() + pos + 4);
    const std::string payload =
        length == 0 ? std::string()
                    : bytes.substr(pos + kFrameHeaderBytes, length);
    if (length == 0 || Crc32(payload) != stated_crc) {
      // Unverifiable bytes: in-flight rot on the read path redraws next
      // poll, durable rot in the file repeats byte-for-byte.
      if (closed) {
        // Closed segments are read with ReadFile, which cannot race an
        // append — the damage is already known durable.
        AbandonSegment(cursor);
        return;
      }
      const std::string chunk = bytes.substr(pos);
      if (chunk == cursor.last_reject) {
        if (++cursor.reject_polls >= options_.max_reject_polls) {
          AbandonSegment(cursor);
          return;
        }
      } else {
        cursor.last_reject = chunk;
        cursor.reject_polls = 1;
      }
      cursor.unconsumed = remaining;
      return;
    }

    StatusOr<WalRecord> record = ParseWalPayload(payload);
    if (!record.ok()) {
      // CRC-valid garbage is durable logical damage, not a transient read
      // artifact; stop trusting the segment, as recovery does.
      AbandonSegment(cursor);
      return;
    }

    if (!cursor.started) {
      // The first record must be this segment's own header; anything else
      // means the file was renamed or damaged.
      if (record->type != WalRecord::Type::kSegmentHeader ||
          record->collection != collection ||
          record->base_generation != cursor.base ||
          record->part != cursor.part) {
        AbandonSegment(cursor);
        return;
      }
      cursor.started = true;
    } else {
      switch (record->type) {
        case WalRecord::Type::kSegmentHeader:
          // A second header mid-segment is damage.
          AbandonSegment(cursor);
          return;
        case WalRecord::Type::kCheckpoint:
          stats_.checkpoint_generation =
              std::max(stats_.checkpoint_generation, record->generation);
          // End-of-segment marker: the writer rotated to the new base.
          cursor.done = true;
          break;
        case WalRecord::Type::kPromotion:
          stats_.fencing_token =
              std::max(stats_.fencing_token, record->token);
          break;
        default:
          break;
      }
    }

    const Status applied = apply(collection, *record);
    if (!applied.ok()) {
      AbandonSegment(cursor);
      return;
    }
    pos += kFrameHeaderBytes + length;
    cursor.offset += kFrameHeaderBytes + length;
    cursor.last_reject.clear();
    cursor.reject_polls = 0;
    ++stats_.records_delivered;
    if (cursor.done) {
      cursor.unconsumed = 0;
      return;
    }
  }
}

Status WalTailer::Poll(const Apply& apply) {
  ++stats_.polls;
  StatusOr<std::vector<std::string>> listing = io().ListDir(dir_);
  if (!listing.ok()) {
    ++stats_.read_failures;
    return Status::OK();  // transient; retry next poll
  }

  std::map<std::string, std::vector<WalSegmentInfo>> groups;
  for (WalSegmentInfo& segment : ListWalSegments(*listing)) {
    if (segment.base_generation < base_generation_) continue;
    groups[segment.collection].push_back(std::move(segment));
  }

  // A cursor whose collection lost every segment mid-read fell out of
  // checkpoint retention; nothing it still needed can be recovered here.
  for (const auto& [collection, cursor] : cursors_) {
    if (!cursor.done && groups.find(collection) == groups.end()) {
      return Status::Unavailable("wal segments for '" + collection +
                                 "' pruned under the tailer; resync");
    }
  }

  for (auto& [collection, segments] : groups) {
    Cursor& cursor = cursors_[collection];
    if (!cursor.positioned) {
      cursor.positioned = true;
      cursor.base = segments.front().base_generation;
      cursor.part = segments.front().part;
      ++stats_.segments_tracked;
    }
    while (true) {
      if (cursor.done) {
        // Advance to the next segment in (base, part) order, if one exists
        // in this listing.
        const WalSegmentInfo* next = nullptr;
        for (const WalSegmentInfo& segment : segments) {
          if (std::make_pair(segment.base_generation, segment.part) >
              std::make_pair(cursor.base, cursor.part)) {
            next = &segment;
            break;
          }
        }
        if (next == nullptr) break;  // caught up; wait for rotation
        cursor.base = next->base_generation;
        cursor.part = next->part;
        cursor.offset = 0;
        cursor.started = false;
        cursor.done = false;
        cursor.last_reject.clear();
        cursor.reject_polls = 0;
        cursor.unconsumed = 0;
        ++stats_.segments_tracked;
      }

      const WalSegmentInfo* current = nullptr;
      bool later_exists = false;
      for (const WalSegmentInfo& segment : segments) {
        const auto key = std::make_pair(segment.base_generation, segment.part);
        const auto here = std::make_pair(cursor.base, cursor.part);
        if (key == here) current = &segment;
        if (key > here) later_exists = true;
      }
      if (current == nullptr) {
        // The segment under the cursor vanished before it was finished —
        // the prune race. Whatever it still held is only in newer
        // snapshots now.
        return Status::Unavailable(
            "wal segment " +
            WalSegmentFileName(collection, cursor.base, cursor.part) +
            " pruned under the tailer; resync");
      }

      const std::string path = dir_ + "/" + current->file;
      const bool closed = later_exists;
      std::string delta;
      if (closed) {
        // A closed segment cannot race an append, so read it whole: the
        // result is its final contents and every verdict on it is final.
        StatusOr<std::string> whole = io().ReadFile(path);
        if (!whole.ok()) {
          ++stats_.read_failures;
          break;  // transient; retry next poll
        }
        if (whole->size() > cursor.offset) delta = whole->substr(cursor.offset);
      } else {
        StatusOr<std::string> tail = io().ReadFileFrom(path, cursor.offset);
        if (!tail.ok()) {
          ++stats_.read_failures;
          break;  // transient; retry next poll
        }
        delta = std::move(tail).value();
      }
      stats_.bytes_read += delta.size();
      ConsumeDelta(collection, cursor, delta, closed, apply);
      if (!cursor.done) break;  // waiting for more bytes in an open segment
    }
  }

  uint64_t behind = 0;
  for (const auto& [collection, cursor] : cursors_) {
    behind += cursor.unconsumed;
  }
  stats_.bytes_behind = behind;
  return Status::OK();
}

}  // namespace newsdiff::store
