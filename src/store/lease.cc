#include "store/lease.h"

#include <algorithm>
#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "common/strings.h"

namespace newsdiff::store {

namespace {

constexpr char kLeaseFile[] = "LEASE";
constexpr char kHighWaterFile[] = "LEASE.hwm";
constexpr char kMagic[] = "newsdiff-lease";
constexpr char kHwmMagic[] = "newsdiff-lease-hwm";
constexpr int kFormatVersion = 1;

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseI64(std::string_view text, int64_t* out) {
  bool negative = false;
  if (!text.empty() && text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseU64(text, &magnitude)) return false;
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

}  // namespace

std::string SerializeLeaseRecord(const LeaseRecord& record) {
  std::string body = std::string(kMagic) + " " +
                     std::to_string(kFormatVersion) + "\n";
  body += "owner " + record.owner + "\n";
  body += "token " + std::to_string(record.token) + "\n";
  body += "expires_ms " + std::to_string(record.expires_ms) + "\n";
  body += "crc " + Crc32Hex(Crc32(body)) + "\n";
  return body;
}

StatusOr<LeaseRecord> ParseLeaseRecord(const std::string& text) {
  size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::ParseError("lease missing crc trailer");
  }
  std::string crc_line = text.substr(crc_pos);
  while (!crc_line.empty() &&
         (crc_line.back() == '\n' || crc_line.back() == '\r')) {
    crc_line.pop_back();
  }
  uint32_t stated = 0;
  if (!ParseCrc32Hex(std::string_view(crc_line).substr(4), &stated)) {
    return Status::ParseError("lease crc trailer malformed");
  }
  if (Crc32(text.substr(0, crc_pos)) != stated) {
    return Status::ParseError("lease checksum mismatch");
  }

  LeaseRecord record;
  bool saw_magic = false, saw_owner = false, saw_token = false,
       saw_expiry = false;
  for (const std::string& line : Split(text.substr(0, crc_pos), '\n')) {
    if (line.empty()) continue;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == kMagic) {
      if (tokens.size() != 2 || tokens[1] != std::to_string(kFormatVersion)) {
        return Status::ParseError("unsupported lease format: " + line);
      }
      saw_magic = true;
    } else if (tokens[0] == "owner") {
      // Owner names are free-form but whitespace-free (they come from
      // SupervisorOptions); rejoin defensively anyway.
      record.owner = line.substr(std::string("owner ").size());
      saw_owner = true;
    } else if (tokens[0] == "token") {
      if (tokens.size() != 2 || !ParseU64(tokens[1], &record.token)) {
        return Status::ParseError("malformed lease token: " + line);
      }
      saw_token = true;
    } else if (tokens[0] == "expires_ms") {
      if (tokens.size() != 2 || !ParseI64(tokens[1], &record.expires_ms)) {
        return Status::ParseError("malformed lease expiry: " + line);
      }
      saw_expiry = true;
    } else {
      return Status::ParseError("unknown lease directive: " + tokens[0]);
    }
  }
  if (!saw_magic || !saw_owner || !saw_token || !saw_expiry) {
    return Status::ParseError("lease file missing required fields");
  }
  return record;
}

std::string Lease::FileName() { return kLeaseFile; }

std::string Lease::HighWaterFileName() { return kHighWaterFile; }

std::string Lease::path() const { return dir_ + "/" + kLeaseFile; }

FileIo& Lease::io() const {
  return options_.io != nullptr ? *options_.io : DefaultFileIo();
}

Clock& Lease::clock() const {
  static SystemClock system_clock;
  return options_.clock != nullptr ? *options_.clock : system_clock;
}

StatusOr<LeaseRecord> Lease::ReadRecord() const {
  if (!io().Exists(path())) return Status::NotFound("no lease file");
  StatusOr<std::string> contents = io().ReadFile(path());
  if (!contents.ok()) {
    // A failed read proves nothing about the file's contents: claiming on
    // top of it could mint a token the live holder already owns. Propagate
    // the fault and let the caller retry; only a file that reads cleanly
    // but fails its CRC (below) is durably corrupt and claimable.
    return contents.status();
  }
  StatusOr<LeaseRecord> record = ParseLeaseRecord(contents.value());
  if (!record.ok()) {
    return Status::NotFound("corrupt lease file: " +
                            record.status().message());
  }
  return record;
}

Status Lease::WriteRecord(const LeaseRecord& record) const {
  return WriteFileAtomic(io(), path(), SerializeLeaseRecord(record));
}

StatusOr<uint64_t> Lease::ReadTokenHighWater() const {
  const std::string hwm_path = dir_ + "/" + kHighWaterFile;
  if (!io().Exists(hwm_path)) return uint64_t{0};
  StatusOr<std::string> contents = io().ReadFile(hwm_path);
  // A transient read fault must not be mistaken for an absent mark: the
  // mark is exactly what keeps a re-minted token above every fenced one.
  if (!contents.ok()) return contents.status();
  // Format: "newsdiff-lease-hwm <token>\ncrc <hex>\n". A mark that fails
  // its CRC is treated as absent — the incumbent lease record still bounds
  // the token, so a lost mark only matters when both files are damaged at
  // once, and even then the fallback is the pre-mark behaviour.
  const std::vector<std::string> lines = Split(contents.value(), '\n');
  if (lines.size() < 2) return uint64_t{0};
  const std::vector<std::string> head = SplitWhitespace(lines[0]);
  const std::vector<std::string> trailer = SplitWhitespace(lines[1]);
  if (head.size() != 2 || head[0] != kHwmMagic) return uint64_t{0};
  if (trailer.size() != 2 || trailer[0] != "crc") return uint64_t{0};
  uint32_t stated = 0;
  if (!ParseCrc32Hex(trailer[1], &stated)) return uint64_t{0};
  if (Crc32(lines[0] + "\n") != stated) return uint64_t{0};
  uint64_t token = 0;
  if (!ParseU64(head[1], &token)) return uint64_t{0};
  return token;
}

StatusOr<Lease> Lease::Acquire(const std::string& dir,
                               const LeaseOptions& options) {
  Lease lease(dir, options, /*token=*/0);
  const int64_t give_up_ms = lease.clock().NowMillis() + options.wait_ms;
  while (true) {
    StatusOr<LeaseRecord> incumbent = lease.ReadRecord();
    if (!incumbent.ok() &&
        incumbent.status().code() != StatusCode::kNotFound) {
      // Transient read fault: retrying is the caller's call, claiming on
      // an unproven view of the incumbent is not.
      return incumbent.status();
    }
    const int64_t now_ms = lease.clock().NowMillis();
    StatusOr<uint64_t> hwm = lease.ReadTokenHighWater();
    if (!hwm.ok()) return hwm.status();
    uint64_t floor = *hwm;
    bool claimable = true;
    if (incumbent.ok()) {
      floor = std::max(floor, incumbent->token);
      claimable = incumbent->expires_ms <= now_ms;  // holder presumed dead
    }
    if (claimable) {
      const uint64_t next_token = floor + 1;
      // Persist the high-water mark *before* the lease record: if we crash
      // between the two, the next claimant still starts above next_token,
      // so a fenced writer can never be handed its own token back even
      // when the lease file is later lost or corrupted.
      const std::string hwm_line =
          std::string(kHwmMagic) + " " + std::to_string(next_token) + "\n";
      NEWSDIFF_RETURN_IF_ERROR(WriteFileAtomic(
          lease.io(), dir + "/" + kHighWaterFile,
          hwm_line + "crc " + Crc32Hex(Crc32(hwm_line)) + "\n"));
      LeaseRecord record;
      record.owner = options.owner;
      record.token = next_token;
      record.expires_ms = now_ms + options.ttl_ms;
      NEWSDIFF_RETURN_IF_ERROR(lease.WriteRecord(record));
      lease.token_ = next_token;
      return lease;
    }
    if (now_ms >= give_up_ms) {
      return Status::Unavailable(
          "lease on " + dir + " held by " + incumbent->owner + " (token " +
          std::to_string(incumbent->token) + ", expires in " +
          std::to_string(incumbent->expires_ms - now_ms) + "ms)");
    }
    lease.clock().SleepMillis(options.poll_ms);
  }
}

Status Lease::Check() {
  StatusOr<LeaseRecord> current = ReadRecord();
  if (!current.ok()) {
    if (current.status().code() != StatusCode::kNotFound) {
      // A transient read fault is retryable — it is not evidence that
      // someone else took the lease, so do not self-fence on it.
      return current.status();
    }
    // Our own lease file vanished or turned to garbage under us. We cannot
    // prove we still hold exclusivity, so the safe verdict is "fenced".
    return Status::FailedPrecondition("lease lost: " +
                                      current.status().message());
  }
  if (current->token != token_ || current->owner != options_.owner) {
    return Status::FailedPrecondition(
        "fenced: lease token " + std::to_string(current->token) + " (held by " +
        current->owner + ") supersedes ours (" + std::to_string(token_) + ")");
  }
  return Status::OK();
}

Status Lease::Renew() {
  NEWSDIFF_RETURN_IF_ERROR(Check());
  LeaseRecord record;
  record.owner = options_.owner;
  record.token = token_;
  record.expires_ms = clock().NowMillis() + options_.ttl_ms;
  return WriteRecord(record);
}

Status Lease::Release() {
  NEWSDIFF_RETURN_IF_ERROR(Check());
  return io().Remove(path());
}

}  // namespace newsdiff::store
