#include "store/lease.h"

#include <string_view>
#include <vector>

#include "common/crc32.h"
#include "common/strings.h"

namespace newsdiff::store {

namespace {

constexpr char kLeaseFile[] = "LEASE";
constexpr char kMagic[] = "newsdiff-lease";
constexpr int kFormatVersion = 1;

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool ParseI64(std::string_view text, int64_t* out) {
  bool negative = false;
  if (!text.empty() && text.front() == '-') {
    negative = true;
    text.remove_prefix(1);
  }
  uint64_t magnitude = 0;
  if (!ParseU64(text, &magnitude)) return false;
  *out = negative ? -static_cast<int64_t>(magnitude)
                  : static_cast<int64_t>(magnitude);
  return true;
}

}  // namespace

std::string SerializeLeaseRecord(const LeaseRecord& record) {
  std::string body = std::string(kMagic) + " " +
                     std::to_string(kFormatVersion) + "\n";
  body += "owner " + record.owner + "\n";
  body += "token " + std::to_string(record.token) + "\n";
  body += "expires_ms " + std::to_string(record.expires_ms) + "\n";
  body += "crc " + Crc32Hex(Crc32(body)) + "\n";
  return body;
}

StatusOr<LeaseRecord> ParseLeaseRecord(const std::string& text) {
  size_t crc_pos = text.rfind("crc ");
  if (crc_pos == std::string::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::ParseError("lease missing crc trailer");
  }
  std::string crc_line = text.substr(crc_pos);
  while (!crc_line.empty() &&
         (crc_line.back() == '\n' || crc_line.back() == '\r')) {
    crc_line.pop_back();
  }
  uint32_t stated = 0;
  if (!ParseCrc32Hex(std::string_view(crc_line).substr(4), &stated)) {
    return Status::ParseError("lease crc trailer malformed");
  }
  if (Crc32(text.substr(0, crc_pos)) != stated) {
    return Status::ParseError("lease checksum mismatch");
  }

  LeaseRecord record;
  bool saw_magic = false, saw_owner = false, saw_token = false,
       saw_expiry = false;
  for (const std::string& line : Split(text.substr(0, crc_pos), '\n')) {
    if (line.empty()) continue;
    const std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == kMagic) {
      if (tokens.size() != 2 || tokens[1] != std::to_string(kFormatVersion)) {
        return Status::ParseError("unsupported lease format: " + line);
      }
      saw_magic = true;
    } else if (tokens[0] == "owner") {
      // Owner names are free-form but whitespace-free (they come from
      // SupervisorOptions); rejoin defensively anyway.
      record.owner = line.substr(std::string("owner ").size());
      saw_owner = true;
    } else if (tokens[0] == "token") {
      if (tokens.size() != 2 || !ParseU64(tokens[1], &record.token)) {
        return Status::ParseError("malformed lease token: " + line);
      }
      saw_token = true;
    } else if (tokens[0] == "expires_ms") {
      if (tokens.size() != 2 || !ParseI64(tokens[1], &record.expires_ms)) {
        return Status::ParseError("malformed lease expiry: " + line);
      }
      saw_expiry = true;
    } else {
      return Status::ParseError("unknown lease directive: " + tokens[0]);
    }
  }
  if (!saw_magic || !saw_owner || !saw_token || !saw_expiry) {
    return Status::ParseError("lease file missing required fields");
  }
  return record;
}

std::string Lease::FileName() { return kLeaseFile; }

std::string Lease::path() const { return dir_ + "/" + kLeaseFile; }

FileIo& Lease::io() const {
  return options_.io != nullptr ? *options_.io : DefaultFileIo();
}

Clock& Lease::clock() const {
  static SystemClock system_clock;
  return options_.clock != nullptr ? *options_.clock : system_clock;
}

StatusOr<LeaseRecord> Lease::ReadRecord() const {
  if (!io().Exists(path())) return Status::NotFound("no lease file");
  StatusOr<std::string> contents = io().ReadFile(path());
  if (!contents.ok()) {
    // An unreadable lease file is indistinguishable from a torn renewal;
    // treat it like a corrupt one (claimable) rather than wedging every
    // future writer forever.
    return Status::NotFound("unreadable lease file: " +
                            contents.status().message());
  }
  StatusOr<LeaseRecord> record = ParseLeaseRecord(contents.value());
  if (!record.ok()) {
    return Status::NotFound("corrupt lease file: " +
                            record.status().message());
  }
  return record;
}

Status Lease::WriteRecord(const LeaseRecord& record) const {
  return WriteFileAtomic(io(), path(), SerializeLeaseRecord(record));
}

StatusOr<Lease> Lease::Acquire(const std::string& dir,
                               const LeaseOptions& options) {
  Lease lease(dir, options, /*token=*/0);
  const int64_t give_up_ms = lease.clock().NowMillis() + options.wait_ms;
  while (true) {
    StatusOr<LeaseRecord> incumbent = lease.ReadRecord();
    const int64_t now_ms = lease.clock().NowMillis();
    uint64_t next_token = 1;
    bool claimable = true;
    if (incumbent.ok()) {
      next_token = incumbent->token + 1;
      claimable = incumbent->expires_ms <= now_ms;  // holder presumed dead
    }
    if (claimable) {
      LeaseRecord record;
      record.owner = options.owner;
      record.token = next_token;
      record.expires_ms = now_ms + options.ttl_ms;
      NEWSDIFF_RETURN_IF_ERROR(lease.WriteRecord(record));
      lease.token_ = next_token;
      return lease;
    }
    if (now_ms >= give_up_ms) {
      return Status::Unavailable(
          "lease on " + dir + " held by " + incumbent->owner + " (token " +
          std::to_string(incumbent->token) + ", expires in " +
          std::to_string(incumbent->expires_ms - now_ms) + "ms)");
    }
    lease.clock().SleepMillis(options.poll_ms);
  }
}

Status Lease::Check() {
  StatusOr<LeaseRecord> current = ReadRecord();
  if (!current.ok()) {
    // Our own lease file vanished or turned to garbage under us. We cannot
    // prove we still hold exclusivity, so the safe verdict is "fenced".
    return Status::FailedPrecondition("lease lost: " +
                                      current.status().message());
  }
  if (current->token != token_) {
    return Status::FailedPrecondition(
        "fenced: lease token " + std::to_string(current->token) + " (held by " +
        current->owner + ") supersedes ours (" + std::to_string(token_) + ")");
  }
  return Status::OK();
}

Status Lease::Renew() {
  NEWSDIFF_RETURN_IF_ERROR(Check());
  LeaseRecord record;
  record.owner = options_.owner;
  record.token = token_;
  record.expires_ms = clock().NowMillis() + options_.ttl_ms;
  return WriteRecord(record);
}

Status Lease::Release() {
  NEWSDIFF_RETURN_IF_ERROR(Check());
  return io().Remove(path());
}

}  // namespace newsdiff::store
