#ifndef NEWSDIFF_STORE_REPLICA_H_
#define NEWSDIFF_STORE_REPLICA_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "store/database.h"
#include "store/lease.h"
#include "store/replication.h"

namespace newsdiff::store {

/// A read replica of a WAL-enabled store, with fenced failover.
///
/// The replica bootstraps a caller-provided Database from the newest intact
/// snapshot generation in the writer's directory, then follows the live log
/// with a WalTailer (store/replication.h): each Poll() applies the records
/// the writer has synced since the last one, through the same idempotent
/// restore path crash recovery uses, so the replica's state is always some
/// synced prefix of the writer's history — never a torn or reordered view.
/// The Database serves reads throughout; it must have no WAL attached until
/// promotion (the replica replays, it does not re-log).
///
/// Bounded staleness: after every poll the replica knows how many durable
/// bytes it has yet to consume (bytes_behind) and how long it has been
/// since it was last provably caught up (staleness_ms, on the injectable
/// Clock). A poll that suffered a transient read fault cannot prove
/// anything, so it never resets the staleness clock.
///
/// Failover (Promote) is fenced against split-brain by the store lease
/// (store/lease.h): the replica acquires the lease — obtaining a fencing
/// token strictly above every token ever issued for the directory — then
/// drains the log until provably dry, announces itself with a promotion
/// record in every collection's log, and checkpoints to open a fresh
/// generation. A partitioned stale writer that wakes up later fails its
/// next group-commit sync at the write gate (its lease token no longer
/// matches), so no record it buffered after the takeover can ever reach
/// the shared log: every record acknowledged-as-synced before the takeover
/// is in the promoted replica, and nothing after it is double-applied.
///
/// The Replica owns the lease it acquires, and the promoted Database's
/// write gate points back at it — the Replica must outlive any use of that
/// Database's WAL.
struct ReplicaOptions {
  /// Snapshot seam and retention, used for bootstrap, resync, and the
  /// post-promotion checkpoint. `snapshot.io` is also the tailer's and the
  /// lease's filesystem seam.
  SnapshotOptions snapshot;
  /// Clock for staleness accounting (and the lease, unless its options
  /// name one); nullptr uses the wall clock.
  Clock* clock = nullptr;
  /// Forwarded to WalTailerOptions::max_reject_polls.
  size_t max_reject_polls = 3;
  /// Promotion declares the log drained after this many consecutive polls
  /// that made no progress and hit no read fault. Each clean poll consumes
  /// every durable frame, so requiring several in a row makes missing
  /// synced data vanishingly unlikely even under heavy read-fault rates.
  size_t promote_drain_polls = 16;
  /// Transiently-failing promotion steps (lease reads, checkpoint I/O) are
  /// retried this many times before Promote gives up.
  size_t promote_attempts = 8;
};

struct ReplicaStats {
  uint64_t bootstrap_generation = 0;  // snapshot generation last loaded
  size_t polls = 0;
  size_t records_applied = 0;  // mutations applied to the local Database
  size_t resyncs = 0;          // re-bootstraps after falling behind pruning
  uint64_t bytes_behind = 0;
  uint64_t fencing_token = 0;  // newest promotion token seen (or held)
  uint64_t checkpoint_generation = 0;  // newest ckpt marker followed
  bool caught_up = false;      // last poll proved nothing durable is left
  int64_t staleness_ms = 0;    // time since last provably-caught-up poll
};

class Replica {
 public:
  /// Follows the store under `dir` into `*db` (not owned; must outlive the
  /// replica and have no WAL attached).
  Replica(std::string dir, Database* db, ReplicaOptions options = {});

  /// Loads the newest intact snapshot generation (empty directory = empty
  /// store) and positions the tailer after it. Called implicitly by the
  /// first Poll(); call it directly to surface bootstrap errors early.
  Status Bootstrap();

  /// One catch-up pass: applies every record the writer synced since the
  /// last poll. Falling behind segment pruning triggers an automatic
  /// Resync(). kFailedPrecondition once promoted.
  Status Poll();

  /// Drops local state and re-bootstraps from the newest snapshot.
  Status Resync();

  /// Fenced failover: drain, acquire the lease (fencing every earlier
  /// writer), drain again until provably dry, attach a gated WAL, log a
  /// promotion record in every collection, and checkpoint. On OK the
  /// Database is the store's writer and returns the fencing token held.
  StatusOr<uint64_t> Promote(const LeaseOptions& lease_options,
                             const WalOptions& wal_options = {});

  /// Releases the held lease (clean handoff); no-op when none is held.
  Status ReleaseLease();

  /// Renews the held lease; kFailedPrecondition when fenced or none held.
  Status RenewLease();

  bool promoted() const { return promoted_; }
  Lease* lease() { return lease_.has_value() ? &*lease_ : nullptr; }
  const ReplicaStats& stats() const { return stats_; }
  /// Tailer counters (null before the first Bootstrap).
  const WalTailerStats* tailer_stats() const;
  const std::string& dir() const { return dir_; }
  Database* db() { return db_; }

 private:
  FileIo& io() const;
  Clock& clock() const;
  /// The tailer's Apply callback: replays one record into `*db_`.
  Status ApplyRecord(const std::string& collection, const WalRecord& record);
  /// Polls until `promote_drain_polls` consecutive quiet polls (no new
  /// records, no read faults, no resync) prove the fenced log is dry.
  Status DrainUntilQuiet();

  std::string dir_;
  Database* db_;  // not owned
  ReplicaOptions options_;
  std::unique_ptr<WalTailer> tailer_;
  std::optional<Lease> lease_;
  bool promoted_ = false;
  int64_t last_caught_up_ms_ = 0;
  ReplicaStats stats_;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_REPLICA_H_
