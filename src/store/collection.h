#ifndef NEWSDIFF_STORE_COLLECTION_H_
#define NEWSDIFF_STORE_COLLECTION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "store/value.h"

namespace newsdiff::store {

/// Comparison / predicate operators supported by filters.
enum class FilterOp {
  kEq,        // field == value
  kNe,        // field != value
  kLt,        // field < value
  kLte,       // field <= value
  kGt,        // field > value
  kGte,       // field >= value
  kExists,    // field present (value ignored)
  kContains,  // string field contains value (substring)
};

/// One condition on a top-level field.
struct Condition {
  std::string field;
  FilterOp op;
  Value value;
};

/// A conjunction of conditions (MongoDB's implicit AND semantics).
class Filter {
 public:
  Filter() = default;

  /// Fluent builders; each returns *this for chaining.
  Filter& Eq(std::string field, Value v);
  Filter& Ne(std::string field, Value v);
  Filter& Lt(std::string field, Value v);
  Filter& Lte(std::string field, Value v);
  Filter& Gt(std::string field, Value v);
  Filter& Gte(std::string field, Value v);
  Filter& Exists(std::string field);
  Filter& Contains(std::string field, std::string substring);

  const std::vector<Condition>& conditions() const { return conditions_; }

  /// True if `doc` satisfies every condition. Missing fields fail all
  /// operators except kNe (which succeeds, as in MongoDB).
  bool Matches(const Value& doc) const;

 private:
  std::vector<Condition> conditions_;
};

/// Document id assigned by the collection on insert.
using DocId = int64_t;

class Collection;

/// Mutation hook for write-ahead logging. The collection invokes the
/// observer *before* touching its in-memory state, with the post-image the
/// mutation will produce — append-to-log-then-apply ordering. Callbacks are
/// infallible by design: the WAL binding only buffers here; durability
/// errors surface at the group-commit sync, not at the mutation site.
class CollectionObserver {
 public:
  virtual ~CollectionObserver() = default;

  /// `doc` is the full post-image (with "_id" set) about to occupy slot
  /// `id` — an insert, upsert replacement, or field update alike.
  virtual void OnPut(const Collection& collection, DocId id,
                     const Value& doc) = 0;

  /// The document in slot `id` is about to be removed.
  virtual void OnDelete(const Collection& collection, DocId id) = 0;
};

/// Query modifiers for Find: sorting, pagination, and projection
/// (mirroring MongoDB's sort/skip/limit/projection options).
struct FindOptions {
  /// Field to order by; empty keeps insertion order. Documents missing the
  /// field sort first (their value compares as null).
  std::string sort_field;
  bool descending = false;
  /// Skip this many matches, then return at most `limit`.
  size_t skip = 0;
  size_t limit = SIZE_MAX;
  /// Keep only these fields (plus "_id"); empty keeps every field.
  std::vector<std::string> projection;
};

/// An in-memory collection of JSON documents with optional hash indexes on
/// top-level fields. Insert assigns a monotonically increasing "_id".
/// Equality conditions on indexed fields are served from the index; other
/// queries scan. Not thread-safe (single-writer model, like the pipeline).
class Collection {
 public:
  /// Creates an empty collection named `name`.
  explicit Collection(std::string name);

  const std::string& name() const { return name_; }
  size_t size() const { return live_count_; }

  /// Total slots ever assigned (live + dead). Ids are never reused, so this
  /// is also the next id Insert would assign — the WAL records it in each
  /// segment header so recovery reproduces id assignment bit for bit.
  size_t slot_count() const { return slots_.size(); }

  /// Installs (or clears, with nullptr) the mutation observer. The observer
  /// must outlive the collection or be cleared first.
  void SetObserver(CollectionObserver* observer) { observer_ = observer; }
  CollectionObserver* observer() const { return observer_; }

  /// Inserts `doc` (must be an object). A fresh "_id" field is added
  /// (replacing any caller-provided one). Returns the id.
  StatusOr<DocId> Insert(Value doc);

  /// Returns the document with the given id, or NotFound.
  StatusOr<Value> Get(DocId id) const;

  /// Returns copies of all documents matching `filter`, in insertion order.
  std::vector<Value> Find(const Filter& filter) const;

  /// Find with sort / pagination / projection modifiers.
  std::vector<Value> Find(const Filter& filter,
                          const FindOptions& options) const;

  /// Groups matches by the value of `field` (serialised as compact JSON)
  /// and counts each group. Documents missing the field group under "null".
  std::map<std::string, size_t> CountBy(const Filter& filter,
                                        const std::string& field) const;

  /// Returns the first match, or NotFound.
  StatusOr<Value> FindOne(const Filter& filter) const;

  /// Calls `fn` for each matching document (no copies). Stops early if `fn`
  /// returns false.
  void ForEach(const Filter& filter,
               const std::function<bool(DocId, const Value&)>& fn) const;

  /// Counts matches.
  size_t Count(const Filter& filter) const;

  /// Sets `field` to `v` on all documents matching `filter`; returns the
  /// number updated.
  size_t UpdateSet(const Filter& filter, const std::string& field, Value v);

  /// Replaces the first document matching `filter` with `doc` (its "_id" is
  /// preserved); inserts `doc` when nothing matches. Returns the affected
  /// document's id.
  StatusOr<DocId> Upsert(const Filter& filter, Value doc);

  /// Removes matching documents; returns the number removed.
  size_t Remove(const Filter& filter);

  /// Builds a hash index on a top-level field. Subsequent equality
  /// conditions on that field use the index. Indexing an already-indexed
  /// field is a no-op.
  void CreateIndex(const std::string& field);

  /// True if `field` has an index.
  bool HasIndex(const std::string& field) const;

  /// All live documents in insertion order (copies).
  std::vector<Value> All() const;

  /// WAL-replay restore path: places `doc` in slot `id` exactly (padding
  /// dead slots as needed), preserving the id assignment of the original
  /// run. Unlike Insert, never renumbers and never notifies the observer —
  /// replayed records must not be re-logged. Replaying a record whose
  /// effect is already present is a no-op (physical records are
  /// idempotent).
  Status RestorePut(DocId id, Value doc);

  /// WAL-replay counterpart of Remove for a single slot; out-of-range or
  /// already-dead slots are a no-op (idempotent).
  void RestoreDelete(DocId id);

  /// Extends the slot vector with dead slots up to `n` total, so the next
  /// Insert assigns id `n`. Used to restore trailing dead slots that no
  /// surviving document pins. Never shrinks.
  void PadSlots(size_t n);

 private:
  struct Slot {
    Value doc;
    bool live = false;
  };

  // Key for index buckets: serialised form of the field value.
  static std::string IndexKey(const Value& v);

  void IndexInsert(DocId id, const Value& doc);
  void IndexRemove(DocId id, const Value& doc);

  // Returns candidate slot ids for the filter: either an index bucket or
  // all ids. `used_index` reports whether an index was applied.
  std::vector<DocId> Candidates(const Filter& filter, bool& used_index) const;

  std::string name_;
  std::vector<Slot> slots_;  // slot index == DocId
  size_t live_count_ = 0;
  CollectionObserver* observer_ = nullptr;  // not owned
  // field -> (index key -> doc ids)
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<DocId>>>
      indexes_;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_COLLECTION_H_
