#ifndef NEWSDIFF_STORE_VALUE_H_
#define NEWSDIFF_STORE_VALUE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace newsdiff::store {

class Value;

/// Ordered list of key/value fields. Preserves insertion order (like BSON
/// documents); key lookup is linear, which is fine for the small documents
/// the pipeline stores.
using Object = std::vector<std::pair<std::string, Value>>;
using Array = std::vector<Value>;

/// A JSON-like dynamically-typed value: null, bool, int64, double, string,
/// array, or object. This is the unit the document store persists; it plays
/// the role MongoDB's BSON documents play in the original system.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  /// Constructs null.
  Value() : data_(std::monostate{}) {}
  Value(bool b) : data_(b) {}                      // NOLINT(runtime/explicit)
  Value(int64_t i) : data_(i) {}                   // NOLINT(runtime/explicit)
  Value(int i) : data_(static_cast<int64_t>(i)) {} // NOLINT(runtime/explicit)
  Value(double d) : data_(d) {}                    // NOLINT(runtime/explicit)
  Value(const char* s) : data_(std::string(s)) {}  // NOLINT(runtime/explicit)
  Value(std::string s) : data_(std::move(s)) {}    // NOLINT(runtime/explicit)
  Value(Array a) : data_(std::move(a)) {}          // NOLINT(runtime/explicit)
  Value(Object o) : data_(std::move(o)) {}         // NOLINT(runtime/explicit)

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  /// Typed accessors; calling the wrong one is a programming error
  /// (undefined via std::get). Use the as_* forms for tolerant access.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double double_value() const { return std::get<double>(data_); }
  const std::string& string_value() const {
    return std::get<std::string>(data_);
  }
  const Array& array() const { return std::get<Array>(data_); }
  Array& array() { return std::get<Array>(data_); }
  const Object& object() const { return std::get<Object>(data_); }
  Object& object() { return std::get<Object>(data_); }

  /// Numeric value as double regardless of int/double storage; `fallback`
  /// for non-numeric values.
  double AsDouble(double fallback = 0.0) const;

  /// Numeric value as int64 (doubles are truncated); `fallback` otherwise.
  int64_t AsInt(int64_t fallback = 0) const;

  /// String value, or `fallback` for non-strings.
  std::string AsString(std::string fallback = "") const;

  /// Object field lookup; returns nullptr if this is not an object or the
  /// key is absent.
  const Value* Find(const std::string& key) const;

  /// Sets (or replaces) an object field. Requires is_object() or is_null()
  /// (null is promoted to an empty object).
  void Set(const std::string& key, Value v);

  /// Deep equality.
  bool Equals(const Value& other) const;

  /// Total order over values: first by type index, then by value. Gives the
  /// store a deterministic sort for range queries over mixed types.
  int Compare(const Value& other) const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

/// Convenience: builds an object value from an initializer-style list.
Value MakeObject(std::initializer_list<std::pair<std::string, Value>> fields);

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_VALUE_H_
