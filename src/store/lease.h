#ifndef NEWSDIFF_STORE_LEASE_H_
#define NEWSDIFF_STORE_LEASE_H_

#include <cstdint>
#include <string>

#include "common/file_io.h"
#include "common/retry.h"
#include "common/status.h"

namespace newsdiff::store {

/// Multi-writer exclusion for a store directory.
///
/// The store is single-writer by design; the lease makes that safe when two
/// supervisors point at the same directory. A writer acquires the lease
/// before Recover+Run, renews it while working, and releases it on clean
/// exit. A second writer either fails fast (kUnavailable), waits for the
/// holder to finish, or takes over once the lease's TTL expires without a
/// renewal (the holder is presumed dead).
///
/// Takeover is fenced: every acquisition increments a monotonically
/// increasing token stored in the lease file. A stale writer that wakes up
/// after losing its lease sees the larger token on its next Renew()/Check()
/// and gets kFailedPrecondition — wired into the WAL's write_gate, that
/// stops its buffered records from ever reaching the shared log.
///
/// The lease file lives *inside* the store directory (`LEASE`), is updated
/// with WriteFileAtomic, and carries a CRC trailer like the snapshot
/// manifest; a corrupt lease file is treated as absent (safe: corruption
/// means the holder's last renewal never landed intact). Expiry compares
/// timestamps from the acquirer's own Clock, so this protects processes on
/// one host (or simulated processes sharing a ManualClock in tests), not
/// machines with unsynchronised clocks.
///
/// TTL boundary semantics (promotion correctness depends on these; the
/// LeaseBoundary tests lock them in):
///   - A lease whose `expires_ms` equals `now` is *expired*: takeover is
///     allowed at exactly the expiry instant, and one clock tick before it
///     is not.
///   - An expired-but-untaken lease still belongs to its holder: Check()
///     and Renew() compare tokens only, so the incumbent may resurrect its
///     own expired lease right up until someone else claims it. Whichever
///     write lands last wins, and the token decides who is fenced.
///   - Fencing tokens are monotonic across takeovers even when the lease
///     file itself is lost or corrupted: every acquisition also persists a
///     token high-water mark (`LEASE.hwm`, CRC'd, written before the lease
///     record) and claims strictly above both the incumbent's token and
///     that mark. Without it, a corrupt lease file would restart tokens at
///     1 and could hand a long-fenced writer its own token back.
struct LeaseOptions {
  /// Identifies the holder in the lease file (diagnostics only; exclusion
  /// is by token, so two writers may even share a name).
  std::string owner = "writer";
  /// Renewal deadline: a lease not renewed for this long is presumed
  /// abandoned and may be taken over.
  int64_t ttl_ms = 10'000;
  /// How long Acquire() polls for a held lease to free up before giving up
  /// with kUnavailable. 0 = fail fast.
  int64_t wait_ms = 0;
  /// Poll interval while waiting (slept on `clock`).
  int64_t poll_ms = 100;
  Clock* clock = nullptr;  // nullptr uses the wall clock
  FileIo* io = nullptr;    // nullptr uses the real filesystem
};

/// Decoded contents of a lease file.
struct LeaseRecord {
  std::string owner;
  uint64_t token = 0;
  int64_t expires_ms = 0;
};

std::string SerializeLeaseRecord(const LeaseRecord& record);
StatusOr<LeaseRecord> ParseLeaseRecord(const std::string& text);

class Lease {
 public:
  /// Tries to take the lease for `dir`. Missing, expired, or corrupt lease
  /// files are claimed immediately (with a fencing token one above the
  /// incumbent's); a live lease is polled for up to `options.wait_ms`, then
  /// kUnavailable.
  static StatusOr<Lease> Acquire(const std::string& dir,
                                 const LeaseOptions& options);

  /// Extends the expiry by another TTL. kFailedPrecondition ("fenced") if
  /// another writer has taken over — the caller must stop writing.
  Status Renew();

  /// Verifies this holder still owns the lease without extending it. Cheap
  /// enough to use as the WAL's write_gate.
  Status Check();

  /// Removes the lease file so the next writer acquires instantly. Only on
  /// clean exit — a crashing holder leaves the file to expire naturally.
  Status Release();

  const std::string& dir() const { return dir_; }
  uint64_t token() const { return token_; }
  const LeaseOptions& options() const { return options_; }

  /// Name of the lease file within the store directory.
  static std::string FileName();

  /// Name of the token high-water-mark file within the store directory.
  static std::string HighWaterFileName();

 private:
  Lease(std::string dir, LeaseOptions options, uint64_t token)
      : dir_(std::move(dir)), options_(std::move(options)), token_(token) {}

  /// Reads the current lease file; kNotFound when absent or durably
  /// corrupt, any other error when the read itself failed (retryable).
  StatusOr<LeaseRecord> ReadRecord() const;
  /// Writes `record` atomically.
  Status WriteRecord(const LeaseRecord& record) const;
  /// Highest token ever persisted for this directory (0 when the mark is
  /// absent or fails its CRC); an error only when the read itself failed.
  StatusOr<uint64_t> ReadTokenHighWater() const;
  std::string path() const;

  FileIo& io() const;
  Clock& clock() const;

  std::string dir_;
  LeaseOptions options_;
  uint64_t token_ = 0;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_LEASE_H_
