#ifndef NEWSDIFF_STORE_WAL_H_
#define NEWSDIFF_STORE_WAL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/retry.h"
#include "common/status.h"
#include "store/collection.h"

namespace newsdiff::store {

/// Per-collection write-ahead logging (storage engine v2).
///
/// Snapshots (store/snapshot.h) rewrite every collection per generation —
/// O(store) bytes per refresh. The WAL makes the refresh cycle O(delta):
/// each mutation appends one length-prefixed, CRC-32'd record to its
/// collection's current log segment, and a group-commit policy syncs the
/// buffered tail every N records / T ms. Snapshots become *checkpoints*:
/// recovery loads the newest intact generation, then replays the log
/// segments based on it (and on any later committed generation) in order.
/// Crash loss is bounded by the unsynced group-commit window.
///
/// Records are *physical*: `put <id> <doc>` / `del <id>` describe absolute
/// slot state, so replaying a record that is already reflected in the
/// checkpoint is a no-op — replay is idempotent, which is what makes
/// crash-at-any-byte recovery byte-identical to an uninterrupted run.
///
/// Segment files are named `<collection>-<base_gen>-<part>.wal`: `base_gen`
/// is the snapshot generation the segment's records build on, `part` a
/// monotonically increasing piece number (rotation on size, on a poisoned
/// tail after a failed append, and on recovery — a recovered process never
/// appends after a torn tail, it starts a fresh part). Every segment begins
/// with a `seg` header record carrying the collection's slot count at the
/// segment's base state, so trailing dead slots survive recovery and DocId
/// assignment stays bitwise identical. A `ckpt <gen>` marker is appended
/// when a later checkpoint commits; segments are pruned only once their
/// base generation falls out of snapshot retention, and snapshot GC never
/// reaps a generation still referenced by a live segment.

/// One decoded log record.
struct WalRecord {
  enum class Type {
    kSegmentHeader,
    kPut,
    kDelete,
    kDrop,
    kCheckpoint,
    // Replication control: a new writer took over the store with fencing
    // token `token`. Tailing replicas record the token (ReplicaStats) and
    // use it to order leadership changes; it mutates no data.
    kPromotion,
  };
  Type type = Type::kPut;
  // kSegmentHeader: identity of the segment (validated against its file
  // name) plus the collection's slot count at the segment's base state.
  std::string collection;
  uint64_t base_generation = 0;
  uint64_t part = 0;
  uint64_t slot_count = 0;
  // kPut / kDelete.
  DocId id = 0;
  std::string doc_json;  // kPut only: compact JSON of the post-image
  // kCheckpoint: the snapshot generation whose manifest committed.
  uint64_t generation = 0;
  // kPromotion: the fencing token the promoted writer acquired, plus its
  // owner string (diagnostics; may contain spaces, parsed as the tail).
  uint64_t token = 0;
  std::string owner;
};

/// Renders one record in its framed on-disk form:
/// [u32le payload length][u32le CRC-32(payload)][payload].
std::string EncodeWalRecord(const WalRecord& record);

/// Parses a frame payload. Total on arbitrary input: damage yields
/// kParseError, never a crash.
StatusOr<WalRecord> ParseWalPayload(const std::string& payload);

/// Result of scanning one segment file. Scanning stops at the first
/// damaged frame: everything after an unverifiable length/CRC is
/// untrusted, so it is dropped rather than guessed at.
struct WalSegmentContents {
  std::vector<WalRecord> records;  // verified records, in append order
  size_t truncated = 0;  // incomplete frame at the tail (torn append)
  size_t rejected = 0;   // CRC/parse failure (bit rot) stopped the scan
  std::string problem;   // reason the scan stopped early, for operators
};

/// Decodes a segment's bytes record by record.
WalSegmentContents DecodeWalSegment(const std::string& bytes);

/// "news-0000000042-000003.wal" for collection "news", base generation 42,
/// part 3.
std::string WalSegmentFileName(const std::string& collection,
                               uint64_t base_generation, uint64_t part);

/// The components of a WAL segment file name.
struct WalSegmentName {
  std::string collection;
  uint64_t base_generation = 0;
  uint64_t part = 0;
};

/// Inverse of WalSegmentFileName; kParseError if `name` is not a
/// well-formed segment name.
StatusOr<WalSegmentName> ParseWalSegmentFileName(const std::string& name);

/// One segment discovered in a store directory.
struct WalSegmentInfo {
  std::string collection;
  uint64_t base_generation = 0;
  uint64_t part = 0;
  std::string file;  // name within the directory
};

/// Extracts and orders (collection, base, part) the WAL segments from a
/// directory listing.
std::vector<WalSegmentInfo> ListWalSegments(
    const std::vector<std::string>& listing);

struct WalOptions {
  /// Group commit: buffered records are synced to the segment file once
  /// this many accumulate...
  size_t sync_every_records = 32;
  /// ...or once this many milliseconds pass since the oldest buffered
  /// record (checked at the next append — there is no background flusher;
  /// Sync() flushes unconditionally).
  int64_t sync_every_ms = 50;
  /// A segment rotates to a new part once its synced bytes exceed this.
  size_t max_segment_bytes = 4u << 20;
  /// Filesystem seam; nullptr uses the real filesystem.
  FileIo* io = nullptr;
  /// Clock for the time-based sync trigger; nullptr uses the wall clock.
  Clock* clock = nullptr;
  /// Fencing hook: consulted before every durable append. A non-OK return
  /// (e.g. store::Lease::Check after a lease takeover) fails the sync
  /// without writing, so a stale writer can never reach the shared log.
  std::function<Status()> write_gate;
};

struct WalWriterStats {
  size_t records_logged = 0;  // buffered (acknowledged to the caller)
  size_t records_synced = 0;  // durably appended
  size_t syncs = 0;           // AppendFile batches issued
  size_t bytes_synced = 0;
  size_t sync_failures = 0;   // failed appends (segment part poisoned)
};

/// Appender for a store directory's per-collection logs. Not thread-safe
/// (single-writer model, like the store itself — the lease enforces it
/// across processes).
class WalWriter {
 public:
  WalWriter(std::string dir, WalOptions options);

  /// Ensures a log is open for `collection`, whose in-memory slot count is
  /// `slot_count` *before* the mutation about to be logged. No-op when the
  /// collection's log is already open.
  void OpenSegment(const std::string& collection, uint64_t slot_count);

  /// Continues `collection`'s log after recovery: the next append goes to
  /// part `next_part` of base `base_generation` (never appending after a
  /// possibly-torn tail in an earlier part).
  void ResumeSegment(const std::string& collection, uint64_t base_generation,
                     uint64_t next_part, uint64_t slot_count);

  /// Buffers one record; may trigger a group-commit sync of this
  /// collection's pending tail. Record-buffering itself cannot fail; a
  /// non-OK return is a sync failure (the records stay pending and move to
  /// a fresh segment part for the next attempt).
  Status LogPut(const std::string& collection, DocId id, const Value& doc);
  Status LogDelete(const std::string& collection, DocId id);
  Status LogDrop(const std::string& collection);

  /// Buffers a replication-control promotion record (fenced failover, see
  /// store/replica.h): announces to every tailing replica that the writer
  /// holding fencing token `token` now owns this collection's log.
  Status LogPromotion(const std::string& collection, uint64_t token,
                      const std::string& owner);

  /// Flushes every collection's pending records. After an OK return the
  /// log covers every acknowledged mutation.
  Status Sync();

  /// Checkpoint protocol, called after generation `generation`'s manifest
  /// committed: appends a `ckpt` marker to each live segment, then rotates
  /// every collection's log to `<collection>-<generation>-000001.wal`.
  /// `slot_counts` holds each surviving collection's current slot count
  /// (collections absent from it were dropped and their logs closed).
  Status Checkpoint(uint64_t generation,
                    const std::map<std::string, uint64_t>& slot_counts);

  /// Best-effort deletion of segments whose base generation is older than
  /// `min_base` (their records are all reflected in every retained
  /// snapshot generation).
  void PruneSegments(uint64_t min_base);

  /// Base generation for segments of newly created collections.
  void set_base_generation(uint64_t generation) { base_generation_ = generation; }
  uint64_t base_generation() const { return base_generation_; }

  const std::string& dir() const { return dir_; }
  const WalOptions& options() const { return options_; }
  const WalWriterStats& stats() const { return stats_; }

 private:
  struct CollectionLog {
    uint64_t base = 0;
    uint64_t part = 1;
    bool header_pending = true;    // `seg` header not yet durably written
    uint64_t header_slot_count = 0;  // slot count at the segment base
    uint64_t slot_hint = 0;        // running slot count (for rotations)
    std::string pending;           // framed records awaiting group commit
    size_t pending_records = 0;
    int64_t first_pending_ms = 0;
    size_t segment_bytes = 0;      // durably appended to the current part
  };

  FileIo& io() const;
  Clock& clock() const;
  CollectionLog& Log(const std::string& collection);
  Status Buffer(const std::string& collection, const WalRecord& record);
  /// Syncs one collection's pending tail if the group-commit policy says
  /// so (`force` bypasses the policy).
  Status SyncLog(const std::string& collection, CollectionLog& log,
                 bool force);

  std::string dir_;
  WalOptions options_;
  uint64_t base_generation_ = 0;
  std::map<std::string, CollectionLog> logs_;
  WalWriterStats stats_;
};

}  // namespace newsdiff::store

#endif  // NEWSDIFF_STORE_WAL_H_
