#ifndef NEWSDIFF_COMMON_ARENA_H_
#define NEWSDIFF_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace newsdiff {

class Arena;

/// RAII checkout of one scratch buffer. Move-only; the buffer returns to
/// its arena's free list on destruction (or an explicit Release()). The
/// handle must be destroyed on the thread that acquired it — arenas are
/// single-threaded by design (see Arena).
class ArenaBuffer {
 public:
  ArenaBuffer() = default;
  ArenaBuffer(ArenaBuffer&& other) noexcept;
  ArenaBuffer& operator=(ArenaBuffer&& other) noexcept;
  ArenaBuffer(const ArenaBuffer&) = delete;
  ArenaBuffer& operator=(const ArenaBuffer&) = delete;
  ~ArenaBuffer();

  /// 64-byte-aligned storage of at least size() doubles. Contents are
  /// UNINITIALIZED (possibly stale from a previous checkout) — callers
  /// that need zeros must fill.
  double* data() const { return data_; }
  /// The requested element count (the underlying capacity may be larger).
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

  /// Returns the buffer to the arena early. No-op on an empty handle.
  void Release();

 private:
  friend class Arena;
  ArenaBuffer(Arena* arena, size_t slot, double* data, size_t size)
      : arena_(arena), slot_(slot), data_(data), size_(size) {}

  Arena* arena_ = nullptr;
  size_t slot_ = 0;
  double* data_ = nullptr;
  size_t size_ = 0;
};

/// A reusable scratch-buffer pool for kernel packing panels and minibatch
/// temporaries: checkout/checkin instead of malloc/free per call. Buffers
/// are 64-byte aligned (la/ kernel requirement) and persist on a free
/// list, so steady-state hot loops allocate nothing.
///
/// Arenas are deliberately NOT thread-safe. Every thread — the caller and
/// each pool worker — uses its own instance via ThreadLocal(), which makes
/// aliasing between buffers checked out on different threads structurally
/// impossible and keeps Acquire() lock-free. Two buffers live at the same
/// time on one thread never alias either: a slot is handed out only while
/// marked free.
class Arena {
 public:
  Arena() = default;
  ~Arena();
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// The calling thread's arena. Worker threads of the parallel pool are
  /// persistent, so their arenas amortize across every region they run.
  static Arena& ThreadLocal();

  /// Checks out a buffer of at least `doubles` elements (a zero request
  /// is rounded up to one bucket). Best-fit over the free list; allocates
  /// a fresh power-of-two-capacity buffer only when nothing fits.
  ArenaBuffer Acquire(size_t doubles);

  /// Frees all pooled buffers. No-op while anything is checked out
  /// (handles hold slot indices that must stay stable).
  void Trim();

  // --- introspection (tests, leak checks) ---
  /// Buffers currently checked out.
  size_t outstanding() const { return outstanding_; }
  /// Buffers owned by the arena (checked out + free).
  size_t buffer_count() const { return slots_.size(); }
  /// Checkouts served by a fresh allocation.
  uint64_t fresh_allocations() const { return fresh_allocations_; }
  /// Checkouts served from the free list.
  uint64_t reuses() const { return reuses_; }

 private:
  friend class ArenaBuffer;

  struct Slot {
    double* mem = nullptr;
    size_t capacity = 0;
    bool in_use = false;
  };

  void ReleaseSlot(size_t slot);

  std::vector<Slot> slots_;
  size_t outstanding_ = 0;
  uint64_t fresh_allocations_ = 0;
  uint64_t reuses_ = 0;
};

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_ARENA_H_
