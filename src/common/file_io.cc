#include "common/file_io.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace newsdiff {

namespace fs = std::filesystem;

Status RealFileIo::WriteFile(const std::string& path,
                             const std::string& contents) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

Status RealFileIo::AppendFile(const std::string& path,
                              const std::string& contents) {
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for appending");
  out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
  out.flush();
  if (!out) return Status::IoError("append failed for " + path);
  return Status::OK();
}

StatusOr<std::string> RealFileIo::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  return std::move(buf).str();
}

StatusOr<std::string> RealFileIo::ReadFileFrom(const std::string& path,
                                               uint64_t offset) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  in.seekg(static_cast<std::streamoff>(offset), std::ios::beg);
  if (!in) return std::string();  // offset at or past EOF
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed for " + path);
  return std::move(buf).str();
}

Status RealFileIo::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IoError("cannot rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

Status RealFileIo::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
  if (ec) {
    return Status::IoError("cannot remove " + path + ": " + ec.message());
  }
  return Status::OK();
}

Status RealFileIo::CreateDirectories(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + dir + ": " + ec.message());
  }
  return Status::OK();
}

StatusOr<std::vector<std::string>> RealFileIo::ListDir(
    const std::string& dir) {
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return Status::IoError("cannot list " + dir + ": " + ec.message());
  std::vector<std::string> names;
  // The constructor error is checked above; each increment can fail too
  // (e.g. the directory turns unreadable mid-iteration), so step manually
  // and examine the error_code every time.
  for (fs::directory_iterator end; it != end; it.increment(ec)) {
    if (ec) {
      return Status::IoError("cannot list " + dir + ": " + ec.message());
    }
    bool regular = it->is_regular_file(ec);
    if (ec) {
      return Status::IoError("cannot stat " + it->path().string() + ": " +
                             ec.message());
    }
    if (regular) names.push_back(it->path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

bool RealFileIo::Exists(const std::string& path) {
  std::error_code ec;
  return fs::exists(path, ec) && !ec;
}

StatusOr<std::string> FileIo::ReadFileFrom(const std::string& path,
                                           uint64_t offset) {
  StatusOr<std::string> whole = ReadFile(path);
  if (!whole.ok()) return whole.status();
  if (offset >= whole->size()) return std::string();
  return whole->substr(offset);
}

FileIo& DefaultFileIo() {
  static RealFileIo io;
  return io;
}

Status WriteFileAtomic(FileIo& io, const std::string& path,
                       const std::string& contents) {
  const std::string tmp = path + ".tmp";
  Status write = io.WriteFile(tmp, contents);
  if (!write.ok()) {
    io.Remove(tmp);
    return write;
  }
  Status rename = io.Rename(tmp, path);
  if (!rename.ok()) {
    io.Remove(tmp);
    return rename;
  }
  return Status::OK();
}

}  // namespace newsdiff
