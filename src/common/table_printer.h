#ifndef NEWSDIFF_COMMON_TABLE_PRINTER_H_
#define NEWSDIFF_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace newsdiff {

/// Fixed-width ASCII table renderer used by the benchmark harnesses to print
/// paper-style result tables (paper value next to measured value).
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a data row; must have the same arity as the headers.
  void AddRow(std::vector<std::string> row);

  /// Renders the table (header, separator, rows) to a string.
  std::string ToString() const;

  /// Renders and writes the table to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_TABLE_PRINTER_H_
