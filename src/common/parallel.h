#ifndef NEWSDIFF_COMMON_PARALLEL_H_
#define NEWSDIFF_COMMON_PARALLEL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace newsdiff {

/// Selects the implementation of the la/ compute kernels (dense GEMMs and
/// the CSR·dense products). Lives here, next to Parallelism, because the
/// two travel together through every stage config.
enum class KernelKind : uint8_t {
  /// Cache-blocked, register-tiled kernels (la/kernels.cc): panels of the
  /// operands are packed into scratch buffers and consumed by a fixed
  /// micro-kernel. Block traversal is a pure function of (shape, block
  /// sizes), so results are run-to-run and thread-count deterministic —
  /// but the accumulation grouping differs from the naive loops, so
  /// outputs match kNaive only to ~1e-9 relative, not bitwise.
  kBlocked,
  /// The original scalar loops, kept as a fallback. Bitwise identical to
  /// the pre-kernel-layer (seed) outputs on every platform.
  kNaive,
};

/// Kernel-layer configuration: which kernels run and how they block.
/// Defaults are tuned for a 32K L1 / 256K+ L2 core; the determinism
/// contract holds for ANY block sizes (they fix the traversal, threads
/// never do).
struct KernelConfig {
  KernelKind kind = KernelKind::kBlocked;
  /// Rows of the left operand per L2-resident block (rounded up to the
  /// micro-kernel height internally).
  size_t mc = 64;
  /// Depth (k extent) of one packed panel.
  size_t kc = 256;
  /// Columns of the right operand per packed panel (rounded up to the
  /// micro-kernel width internally).
  size_t nc = 128;
  /// Opt-in int8 quantized path for inference GEMMs served from the
  /// packed-weight cache (la/weight_cache.h). The float dispatchers ignore
  /// this flag — kBlocked stays the bitwise-deterministic reference mode —
  /// and only cache-aware consumers (nn::Dense inference,
  /// serve::InferenceServer) read it to select la::Int8MatMulPrepacked.
  bool int8_inference = false;
};

/// Execution configuration for the parallel primitives, threaded through
/// every stage that has a parallelized hot loop (core/pipeline fans it out).
///
/// The determinism contract (see DESIGN.md "Parallel execution"):
///   - `threads` is pure execution width. It NEVER influences results: the
///     same work items run in the same per-shard order whether shards
///     execute on one thread or sixteen.
///   - `shards` is the fixed partition count. Shard boundaries are a pure
///     function of (range, shards) — ShardBounds below — so any two
///     machines, at any thread count, produce bitwise-identical outputs.
///   - Map-style kernels (disjoint output writes, per-element work
///     independent of shard boundaries — all the la/ GEMMs, elementwise
///     matrix ops, the MABED scan) are additionally invariant to `shards`,
///     i.e. bitwise equal to the pre-parallel serial code.
///   - Reductions and sharded-semantics stages (ParallelReduce, PV-DBOW
///     epochs) depend on the *resolved shard count* only; pin `shards` when
///     comparing runs.
struct Parallelism {
  /// Worker count. 1 (default) executes shards inline on the calling
  /// thread, reproducing single-threaded behaviour exactly.
  size_t threads = 1;
  /// Partition count. 0 resolves to 1 when threads <= 1 (legacy serial
  /// semantics) and to kDefaultShards otherwise — a constant, so results
  /// do not vary with the machine's core count.
  size_t shards = 0;
  /// Kernel selection for the la/ products invoked under this config.
  /// Rides along with the thread/shard knobs so one struct configures a
  /// stage's execution completely.
  KernelConfig kernels = {};

  bool serial() const { return threads <= 1; }
};

/// Default shard count used when Parallelism::shards == 0 and threads > 1.
/// Deliberately a constant (not hardware_concurrency) so auto-sharded
/// reductions are machine-invariant.
inline constexpr size_t kDefaultShards = 16;

/// Number of shards a range will actually be split into: explicit shards
/// clamped to the range, else 1 (serial) or kDefaultShards. Returns 0 only
/// for an empty range.
size_t ResolveShards(const Parallelism& par, size_t range);

/// Half-open element range [begin, end) owned by one shard.
struct ShardRange {
  size_t begin = 0;
  size_t end = 0;
  size_t size() const { return end - begin; }
};

/// Fixed partition of [0, range) into num_shards contiguous chunks whose
/// sizes differ by at most one (the first range % num_shards shards get the
/// extra element). Pure function of its arguments.
ShardRange ShardBounds(size_t range, size_t num_shards, size_t shard);

/// Best-effort hardware thread count (>= 1).
size_t HardwareThreads();

/// True while the calling thread is executing a ParallelFor shard body.
/// ParallelFor calls made in that state run inline (no pool re-entry).
bool InParallelRegion();

/// Runs `body(shard, begin, end)` for every shard of the fixed partition of
/// [0, range). Shard writes must be disjoint. With par.serial(), inside a
/// parallel region, or a single resolved shard, shards run inline in shard
/// order on the calling thread; otherwise they are executed by a shared
/// persistent pool (the caller participates). If bodies throw, every shard
/// still runs/joins and the exception from the lowest-numbered throwing
/// shard is rethrown — deterministically, regardless of scheduling.
void ParallelFor(
    const Parallelism& par, size_t range,
    const std::function<void(size_t shard, size_t begin, size_t end)>& body);

/// Ordered per-shard partial reduction: partials are computed per shard
/// (possibly concurrently) and combined serially in shard order, so the
/// result is a pure function of (range, resolved shards) — never of thread
/// count or scheduling. combine(identity, x) must return x for the first
/// fold to be exact.
template <typename T, typename MapFn, typename CombineFn>
T ParallelReduce(const Parallelism& par, size_t range, T identity, MapFn map,
                 CombineFn combine) {
  const size_t num_shards = ResolveShards(par, range);
  if (num_shards == 0) return identity;
  std::vector<T> partials(num_shards, identity);
  ParallelFor(par, range, [&](size_t shard, size_t begin, size_t end) {
    partials[shard] = map(shard, begin, end);
  });
  T acc = std::move(partials[0]);
  for (size_t s = 1; s < num_shards; ++s) {
    acc = combine(std::move(acc), std::move(partials[s]));
  }
  return acc;
}

/// Derives the RNG stream for one shard of a sharded stochastic stage.
/// Streams are decorrelated (two splitmix64 rounds over seed and stream id)
/// and depend only on (seed, stream), matching the checkpoint/resume
/// determinism contract: the same seed and shard layout reproduce the same
/// draws on any machine at any thread count.
Rng ShardRng(uint64_t seed, uint64_t stream);

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_PARALLEL_H_
