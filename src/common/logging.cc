#include "common/logging.h"

#include <cstdio>
#include <cstring>

namespace newsdiff {
namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }

LogLevel GetLogLevel() { return g_min_level; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_min_level), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  (void)level_;
}

}  // namespace internal_logging
}  // namespace newsdiff
