#ifndef NEWSDIFF_COMMON_RNG_H_
#define NEWSDIFF_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace newsdiff {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Every stochastic component in the library takes an explicit seed and uses
/// this generator, so that tests and benchmark harnesses are bit-reproducible
/// across runs and platforms (std::mt19937 distributions are not guaranteed
/// to produce identical streams across standard library implementations).
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns a uniform integer in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a standard normal variate (Box-Muller, cached pair).
  double Gaussian();

  /// Returns a normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns true with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a sample from Poisson(lambda). Uses Knuth's method for small
  /// lambda and a normal approximation for lambda > 64.
  int Poisson(double lambda);

  /// Returns an index in [0, weights.size()) sampled proportionally to
  /// weights (must be non-negative, not all zero).
  size_t Categorical(const std::vector<double>& weights);

  /// Returns a Zipf-distributed value in [1, n] with exponent s.
  /// Implemented by inverse-CDF over precomputed weights is too costly for
  /// repeated use; this uses rejection-inversion (Hörmann).
  uint64_t Zipf(uint64_t n, double s);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (size_t i = v.size() - 1; i > 0; --i) {
      size_t j = NextBelow(i + 1);
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Derives an independent generator from this one (splitmix of a draw).
  Rng Split();

  /// Complete generator state, for checkpoint/resume. A restored generator
  /// continues the exact stream the saved one would have produced —
  /// including a cached Box-Muller Gaussian pair, which is why the state is
  /// six words and not four.
  struct State {
    uint64_t s[4] = {0, 0, 0, 0};
    bool has_cached_gaussian = false;
    double cached_gaussian = 0.0;
  };
  State SaveState() const;
  void RestoreState(const State& state);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_RNG_H_
