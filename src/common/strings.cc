#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace newsdiff {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) out.emplace_back(input.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return std::string(buf);
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace newsdiff
