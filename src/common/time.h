#ifndef NEWSDIFF_COMMON_TIME_H_
#define NEWSDIFF_COMMON_TIME_H_

#include <chrono>
#include <cstdint>
#include <string>

namespace newsdiff {

/// Seconds since the Unix epoch. All timestamps in the library (articles,
/// tweets, event intervals) use this representation.
using UnixSeconds = int64_t;

constexpr int64_t kSecondsPerMinute = 60;
constexpr int64_t kSecondsPerHour = 3600;
constexpr int64_t kSecondsPerDay = 86400;

/// Day of week for a Unix timestamp, 0 = Monday ... 6 = Sunday.
/// (1970-01-01 was a Thursday.)
int DayOfWeek(UnixSeconds t);

/// Formats as "YYYY-MM-DD HH:MM:SS" (UTC). Valid for t >= 0.
std::string FormatTimestamp(UnixSeconds t);

/// Parses "YYYY-MM-DD HH:MM:SS" (UTC). Returns -1 on malformed input.
UnixSeconds ParseTimestamp(const std::string& s);

/// Wall-clock stopwatch used by the benchmark harnesses.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_TIME_H_
