#ifndef NEWSDIFF_COMMON_STATUS_H_
#define NEWSDIFF_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace newsdiff {

/// Error categories used across the library. Modelled after the
/// Status idiom common in storage systems (RocksDB, Arrow): no exceptions
/// cross public API boundaries; fallible operations return Status or
/// StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kIoError = 7,
  kParseError = 8,
  // Transient upstream conditions (see common/retry.h for the
  // retryable/fatal classification these drive).
  kUnavailable = 9,         // service temporarily down / connection refused
  kResourceExhausted = 10,  // rate limit / quota hit
  kDeadlineExceeded = 11,   // operation timed out
};

/// Returns a short human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result. Cheap to copy on the OK path
/// (no allocation); error messages allocate.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and a diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored StatusOr is a programming error (asserts in debug builds).
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit by design, mirroring absl::StatusOr).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}

  /// Constructs from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  /// The rvalue overload moves the contained value out instead of copying
  /// it, so `std::move(status_or).value_or(fb)` is copy-free on the OK path.
  template <typename U = T>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U = T>
  T value_or(U&& fallback) && {
    return ok() ? std::move(*value_) : static_cast<T>(std::forward<U>(fallback));
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define NEWSDIFF_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::newsdiff::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_STATUS_H_
