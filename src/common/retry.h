#ifndef NEWSDIFF_COMMON_RETRY_H_
#define NEWSDIFF_COMMON_RETRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace newsdiff {

/// Injectable time source for the retry machinery. Production code uses
/// SystemClock; tests and fault-injected crawls use ManualClock so that
/// backoff sleeps and circuit-breaker cooldowns elapse instantly.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic milliseconds; the epoch is arbitrary.
  virtual int64_t NowMillis() = 0;

  /// Blocks (or pretends to block) for `ms` milliseconds.
  virtual void SleepMillis(int64_t ms) = 0;
};

/// Real steady-clock time and real sleeping.
class SystemClock : public Clock {
 public:
  int64_t NowMillis() override;
  void SleepMillis(int64_t ms) override;
};

/// Deterministic clock for tests and simulations: sleeping advances
/// simulated time, so a 10-second backoff schedule runs in microseconds.
/// The counter is atomic so one thread can Advance() while another polls
/// NowMillis() (the inference server's deadline tests do exactly that).
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_ms = 0) : now_ms_(start_ms) {}

  int64_t NowMillis() override {
    return now_ms_.load(std::memory_order_relaxed);
  }
  void SleepMillis(int64_t ms) override {
    now_ms_.fetch_add(ms, std::memory_order_relaxed);
  }

  /// Advances time without anyone sleeping (e.g. to cool down a breaker).
  void Advance(int64_t ms) { now_ms_.fetch_add(ms, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_ms_;
};

/// True for the transient upstream conditions worth retrying —
/// kUnavailable, kResourceExhausted (rate limits) and kDeadlineExceeded
/// (timeouts). Every other code is fatal for the attempted operation.
bool IsRetryable(StatusCode code);

/// Exponential backoff with decorrelated jitter (the AWS builders'-library
/// scheme): sleep_{n+1} = min(cap, Uniform(base, 3 * sleep_n)). With jitter
/// disabled the schedule is plain exponential: base * multiplier^n.
struct RetryPolicy {
  int max_attempts = 5;
  int64_t initial_backoff_ms = 100;
  int64_t max_backoff_ms = 10000;
  double multiplier = 2.0;  // growth factor when jitter is disabled
  bool decorrelated_jitter = true;
  /// An attempt observed to take longer than this is converted to
  /// kDeadlineExceeded even if it eventually returned OK — the caller has
  /// already abandoned it, so its result must not be used. 0 disables.
  int64_t attempt_timeout_ms = 0;
  /// Overall wall-time budget across attempts and backoff. 0 disables.
  int64_t overall_deadline_ms = 0;
};

/// Counters accumulated across Run() calls (cumulative; callers diff
/// snapshots to attribute counts to a window of work).
struct RetryStats {
  int64_t attempts = 0;     // operations actually invoked
  int64_t retries = 0;      // failed retryable attempts
  int64_t exhausted = 0;    // Run() calls that gave up
  int64_t backoff_ms = 0;   // total (possibly simulated) time slept
  int64_t breaker_rejections = 0;  // attempts skipped: breaker open
  // Failed attempts by classification.
  int64_t unavailable = 0;
  int64_t resource_exhausted = 0;
  int64_t deadline_exceeded = 0;
  int64_t fatal = 0;
};

/// Per-endpoint circuit breaker. Closed passes requests through; a run of
/// consecutive failures opens it (requests rejected without touching the
/// endpoint); after a cooldown it half-opens and admits probe requests,
/// closing again after enough probe successes, reopening on any probe
/// failure.
struct CircuitBreakerOptions {
  int failure_threshold = 5;  // consecutive failures that open the circuit
  int64_t open_ms = 2000;     // cooldown before the half-open probe
  int half_open_successes = 2;  // probe successes required to close
};

class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  CircuitBreaker(CircuitBreakerOptions options, Clock* clock,
                 std::string name = "");

  /// True if a request may be issued now. A cooled-down open breaker
  /// transitions to half-open and admits probes.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  /// Number of closed/half-open -> open transitions so far.
  int64_t trips() const { return trips_; }
  const std::string& name() const { return name_; }

 private:
  void Trip();

  CircuitBreakerOptions options_;
  Clock* clock_;
  std::string name_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_seen_ = 0;
  int64_t open_until_ms_ = 0;
  int64_t trips_ = 0;
};

/// Runs fallible operations under a RetryPolicy, optionally gated by a
/// CircuitBreaker. Backoff jitter draws from a seeded Rng, so retry timing
/// is deterministic given (policy, seed, failure sequence).
class Retrier {
 public:
  Retrier(RetryPolicy policy, Clock* clock, uint64_t seed = 0x5eedull);

  /// Invokes `op` until it returns OK, a non-retryable status, the attempt
  /// budget is exhausted, or the overall deadline passes; sleeps the
  /// backoff schedule between attempts. When `breaker` is given, each
  /// attempt consults it first; attempts while it is open are skipped
  /// (counted as breaker_rejections) but still consume backoff, which is
  /// what gives the breaker time to half-open.
  Status Run(const std::function<Status()>& op,
             CircuitBreaker* breaker = nullptr);

  const RetryStats& stats() const { return stats_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  int64_t NextBackoff(int64_t prev_ms);

  RetryPolicy policy_;
  Clock* clock_;
  Rng rng_;
  RetryStats stats_;
};

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_RETRY_H_
