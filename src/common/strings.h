#ifndef NEWSDIFF_COMMON_STRINGS_H_
#define NEWSDIFF_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace newsdiff {

/// Splits `input` on any occurrence of `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits `input` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Lowercases ASCII letters in place; other bytes are untouched.
std::string ToLowerAscii(std::string_view s);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character in `s` is an ASCII digit (and `s` is non-empty).
bool IsDigits(std::string_view s);

/// Formats `v` with `digits` decimal places ("%.*f").
std::string FormatDouble(double v, int digits);

/// Stable 64-bit FNV-1a hash of `s` (used for deterministic per-token
/// pseudo-random vectors).
uint64_t Fnv1a64(std::string_view s);

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_STRINGS_H_
