#ifndef NEWSDIFF_COMMON_FILE_IO_H_
#define NEWSDIFF_COMMON_FILE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace newsdiff {

/// Injectable filesystem seam. Everything durability-critical (the store's
/// snapshot engine, model checkpoints) routes its file operations through
/// this interface, so the storage fault injector (datagen::FaultyFileIo)
/// can interpose torn writes, bit flips, rename failures, and mid-save
/// crashes — the same seeded-fault discipline the feed decorators apply to
/// the network path.
class FileIo {
 public:
  virtual ~FileIo() = default;

  /// Replaces `path` with `contents` (truncating write + flush). NOT
  /// atomic — callers that need all-or-nothing semantics use
  /// WriteFileAtomic below.
  virtual Status WriteFile(const std::string& path,
                           const std::string& contents) = 0;

  /// Appends `contents` to the end of `path`, creating it if absent, and
  /// flushes. This is the write-ahead log's durability primitive: an OK
  /// return is the group-commit acknowledgement. The fault injector models
  /// the ways real disks betray it — torn tails, fsyncs that lie.
  virtual Status AppendFile(const std::string& path,
                            const std::string& contents) = 0;

  /// Reads the whole file.
  virtual StatusOr<std::string> ReadFile(const std::string& path) = 0;

  /// Reads the file's bytes from `offset` to end-of-file; empty when
  /// `offset` is at or past the end. This is the WAL tailer's incremental
  /// primitive: a replica following a live log re-reads only the bytes
  /// appended since its last poll, keeping catch-up traffic O(delta). The
  /// default implementation reads the whole file and slices; RealFileIo
  /// seeks instead, and the fault injector overrides it to model reads
  /// racing appends (torn reads, in-flight bit flips).
  virtual StatusOr<std::string> ReadFileFrom(const std::string& path,
                                             uint64_t offset);

  /// Atomically renames `from` to `to`, replacing `to` if it exists.
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Deletes a file; missing files are not an error.
  virtual Status Remove(const std::string& path) = 0;

  virtual Status CreateDirectories(const std::string& dir) = 0;

  /// Names (not paths) of the regular files directly in `dir`, sorted.
  virtual StatusOr<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual bool Exists(const std::string& path) = 0;
};

/// The real filesystem.
class RealFileIo : public FileIo {
 public:
  Status WriteFile(const std::string& path,
                   const std::string& contents) override;
  Status AppendFile(const std::string& path,
                    const std::string& contents) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  StatusOr<std::string> ReadFileFrom(const std::string& path,
                                     uint64_t offset) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status CreateDirectories(const std::string& dir) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;
};

/// Process-wide RealFileIo instance (the default when no seam is injected).
FileIo& DefaultFileIo();

/// Write-to-temp-then-rename: `path` either keeps its old contents or holds
/// all of `contents`, never a torn mix. The temp file (`path` + ".tmp") is
/// cleaned up on failure.
Status WriteFileAtomic(FileIo& io, const std::string& path,
                       const std::string& contents);

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_FILE_IO_H_
