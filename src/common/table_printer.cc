#include "common/table_printer.h"

#include <cassert>
#include <cstdio>

namespace newsdiff {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c];
      line.append(widths[c] - row[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string sep = "+";
  for (size_t c = 0; c < headers_.size(); ++c) {
    sep.append(widths[c] + 2, '-');
    sep += "+";
  }
  sep += "\n";
  std::string out = sep + render_row(headers_) + sep;
  for (const auto& row : rows_) out += render_row(row);
  out += sep;
  return out;
}

void TablePrinter::Print() const {
  std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
}

}  // namespace newsdiff
