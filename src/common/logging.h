#ifndef NEWSDIFF_COMMON_LOGGING_H_
#define NEWSDIFF_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace newsdiff {

/// Log severities, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum severity; messages below it are dropped.
/// Default is kInfo. Thread-compatible (set once at startup).
void SetLogLevel(LogLevel level);

/// Returns the current global minimum severity.
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace newsdiff

#define NEWSDIFF_LOG(severity)                                        \
  ::newsdiff::internal_logging::LogMessage(                           \
      ::newsdiff::LogLevel::k##severity, __FILE__, __LINE__)

#endif  // NEWSDIFF_COMMON_LOGGING_H_
