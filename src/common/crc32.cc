#include "common/crc32.h"

#include <array>
#include <cstdio>

namespace newsdiff {
namespace {

constexpr uint32_t kPoly = 0xedb88320u;  // reflected IEEE polynomial

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  const std::array<uint32_t, 256>& table = Table();
  uint32_t c = seed ^ 0xffffffffu;
  for (unsigned char byte : data) {
    c = table[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::string Crc32Hex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return std::string(buf);
}

bool ParseCrc32Hex(std::string_view hex, uint32_t* out) {
  if (hex.size() != 8) return false;
  uint32_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint32_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<uint32_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace newsdiff
