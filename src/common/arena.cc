#include "common/arena.h"

#include <cassert>
#include <new>

namespace newsdiff {
namespace {

constexpr size_t kAlignment = 64;
/// Smallest bucket handed out (doubles). Keeps tiny requests from
/// fragmenting the free list into many useless slots.
constexpr size_t kMinCapacity = 64;

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

double* AllocAligned(size_t doubles) {
  return static_cast<double*>(
      ::operator new(doubles * sizeof(double), std::align_val_t(kAlignment)));
}

void FreeAligned(double* p) {
  ::operator delete(p, std::align_val_t(kAlignment));
}

}  // namespace

ArenaBuffer::ArenaBuffer(ArenaBuffer&& other) noexcept
    : arena_(other.arena_),
      slot_(other.slot_),
      data_(other.data_),
      size_(other.size_) {
  other.arena_ = nullptr;
  other.data_ = nullptr;
  other.size_ = 0;
}

ArenaBuffer& ArenaBuffer::operator=(ArenaBuffer&& other) noexcept {
  if (this != &other) {
    Release();
    arena_ = other.arena_;
    slot_ = other.slot_;
    data_ = other.data_;
    size_ = other.size_;
    other.arena_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

ArenaBuffer::~ArenaBuffer() { Release(); }

void ArenaBuffer::Release() {
  if (arena_ != nullptr) {
    arena_->ReleaseSlot(slot_);
    arena_ = nullptr;
    data_ = nullptr;
    size_ = 0;
  }
}

Arena::~Arena() {
  assert(outstanding_ == 0 && "buffers outlived their arena");
  for (Slot& s : slots_) FreeAligned(s.mem);
}

Arena& Arena::ThreadLocal() {
  static thread_local Arena arena;
  return arena;
}

ArenaBuffer Arena::Acquire(size_t doubles) {
  const size_t need = doubles == 0 ? 1 : doubles;
  // Best fit: the smallest free slot that holds the request.
  size_t best = slots_.size();
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& s = slots_[i];
    if (s.in_use || s.capacity < need) continue;
    if (best == slots_.size() || s.capacity < slots_[best].capacity) best = i;
  }
  if (best == slots_.size()) {
    Slot s;
    s.capacity = NextPow2(need < kMinCapacity ? kMinCapacity : need);
    s.mem = AllocAligned(s.capacity);
    slots_.push_back(s);
    ++fresh_allocations_;
  } else {
    ++reuses_;
  }
  Slot& s = slots_[best];
  s.in_use = true;
  ++outstanding_;
  return ArenaBuffer(this, best, s.mem, doubles);
}

void Arena::Trim() {
  // Outstanding handles hold slot indices, so trimming is only safe when
  // nothing is checked out; otherwise leave the list untouched.
  if (outstanding_ != 0) return;
  for (Slot& s : slots_) FreeAligned(s.mem);
  slots_.clear();
}

void Arena::ReleaseSlot(size_t slot) {
  assert(slot < slots_.size() && slots_[slot].in_use);
  slots_[slot].in_use = false;
  assert(outstanding_ > 0);
  --outstanding_;
}

}  // namespace newsdiff
