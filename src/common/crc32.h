#ifndef NEWSDIFF_COMMON_CRC32_H_
#define NEWSDIFF_COMMON_CRC32_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace newsdiff {

/// CRC-32 (IEEE 802.3, the zlib polynomial). Used by the snapshot engine
/// and the model-checkpoint format to detect torn writes and bit rot.
/// Incremental: feed the previous return value back in as `seed` to
/// checksum a stream in chunks. `seed` is the *finalised* CRC of the
/// preceding data (0 for none), matching zlib's crc32() contract.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Lower-case 8-hex-digit rendering ("00000000".."ffffffff").
std::string Crc32Hex(uint32_t crc);

/// Parses an 8-hex-digit CRC; returns false on malformed input.
bool ParseCrc32Hex(std::string_view hex, uint32_t* out);

}  // namespace newsdiff

#endif  // NEWSDIFF_COMMON_CRC32_H_
