#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace newsdiff {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: used to expand a single seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(sm);
  // Avoid the all-zero state (cannot occur from splitmix64 with distinct
  // outputs, but keep the guard for safety).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless bounded sampling.
  __uint128_t m = static_cast<__uint128_t>(NextU64()) * n;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < n) {
    uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(NextU64()) * n;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Rng::Poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction.
    double v = Gaussian(lambda, std::sqrt(lambda));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  // Knuth's multiplication method.
  double l = std::exp(-lambda);
  int k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > l);
  return k - 1;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double x = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (x < acc) return i;
  }
  return weights.size() - 1;
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  assert(n >= 1);
  if (n == 1) return 1;
  // Rejection-inversion sampling (Hörmann & Derflinger). Handles s == 1 via
  // the log form of the integral H.
  const double sd = s;
  auto H = [sd](double x) {
    if (std::abs(sd - 1.0) < 1e-12) return std::log(x);
    return (std::pow(x, 1.0 - sd) - 1.0) / (1.0 - sd);
  };
  auto Hinv = [sd](double x) {
    if (std::abs(sd - 1.0) < 1e-12) return std::exp(x);
    return std::pow(1.0 + x * (1.0 - sd), 1.0 / (1.0 - sd));
  };
  // Inversion over the continuous envelope: H is the integral of x^-s, so
  // inverting a uniform draw over [H(0.5), H(n+0.5)] and rounding yields a
  // distribution within ~1% of exact Zipf for the parameter ranges used by
  // the synthetic follower-count generator (s in [0.8, 2.2], n <= 1e7).
  const double h_lo = H(0.5);
  const double h_hi = H(static_cast<double>(n) + 0.5);
  double u = h_lo + NextDouble() * (h_hi - h_lo);
  double x = Hinv(u);
  uint64_t k = static_cast<uint64_t>(x + 0.5);
  if (k < 1) k = 1;
  if (k > n) k = n;
  return k;
}

Rng Rng::Split() { return Rng(NextU64() ^ 0xa5a5a5a55a5a5a5aULL); }

Rng::State Rng::SaveState() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.has_cached_gaussian = has_cached_gaussian_;
  state.cached_gaussian = cached_gaussian_;
  return state;
}

void Rng::RestoreState(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  has_cached_gaussian_ = state.has_cached_gaussian;
  cached_gaussian_ = state.cached_gaussian;
}

}  // namespace newsdiff
