#include "common/time.h"

#include <cstdio>

namespace newsdiff {
namespace {

struct CivilDate {
  int year;
  int month;  // 1-12
  int day;    // 1-31
};

// Howard Hinnant's days-from-civil / civil-from-days algorithms.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

CivilDate CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return {static_cast<int>(y + (m <= 2)), static_cast<int>(m),
          static_cast<int>(d)};
}

}  // namespace

int DayOfWeek(UnixSeconds t) {
  int64_t days = t / kSecondsPerDay;
  if (t < 0 && t % kSecondsPerDay != 0) --days;
  // Day 0 (1970-01-01) was a Thursday == index 3 with Monday = 0.
  int64_t dow = (days + 3) % 7;
  if (dow < 0) dow += 7;
  return static_cast<int>(dow);
}

std::string FormatTimestamp(UnixSeconds t) {
  int64_t days = t / kSecondsPerDay;
  int64_t rem = t % kSecondsPerDay;
  if (rem < 0) {
    rem += kSecondsPerDay;
    --days;
  }
  CivilDate cd = CivilFromDays(days);
  int hh = static_cast<int>(rem / kSecondsPerHour);
  int mm = static_cast<int>((rem % kSecondsPerHour) / kSecondsPerMinute);
  int ss = static_cast<int>(rem % kSecondsPerMinute);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", cd.year,
                cd.month, cd.day, hh, mm, ss);
  return std::string(buf);
}

UnixSeconds ParseTimestamp(const std::string& s) {
  int y, mo, d, hh, mm, ss;
  if (std::sscanf(s.c_str(), "%d-%d-%d %d:%d:%d", &y, &mo, &d, &hh, &mm,
                  &ss) != 6) {
    return -1;
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || hh < 0 || hh > 23 || mm < 0 ||
      mm > 59 || ss < 0 || ss > 60) {
    return -1;
  }
  return DaysFromCivil(y, mo, d) * kSecondsPerDay + hh * kSecondsPerHour +
         mm * kSecondsPerMinute + ss;
}

}  // namespace newsdiff
