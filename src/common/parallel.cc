#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace newsdiff {
namespace {

thread_local bool t_in_parallel_region = false;

/// Guard that marks the current thread as inside a shard body.
struct RegionGuard {
  RegionGuard() : prev(t_in_parallel_region) { t_in_parallel_region = true; }
  ~RegionGuard() { t_in_parallel_region = prev; }
  bool prev;
};

/// One in-flight parallel region. Tasks are shard indices claimed with a
/// fetch_add ticket; which thread runs a shard never matters because shard
/// boundaries (and therefore the work) are fixed up front.
struct Job {
  const std::function<void(size_t, size_t, size_t)>* body = nullptr;
  size_t range = 0;
  size_t num_shards = 0;
  std::vector<std::exception_ptr>* errors = nullptr;
  std::atomic<size_t> next{0};
};

/// Persistent worker pool shared by every ParallelFor in the process. One
/// region runs at a time (a second concurrent caller waits its turn);
/// nested regions never reach the pool — ParallelFor inlines them.
class ThreadPool {
 public:
  static ThreadPool& Instance() {
    static ThreadPool* pool = new ThreadPool();  // leaked: workers may
    return *pool;  // outlive static destruction order otherwise
  }

  void Run(size_t threads_wanted, size_t num_shards, size_t range,
           const std::function<void(size_t, size_t, size_t)>& body,
           std::vector<std::exception_ptr>* errors) {
    std::lock_guard<std::mutex> region_lock(region_mutex_);
    const size_t helpers =
        std::min(threads_wanted, num_shards) - 1;  // caller participates
    EnsureWorkers(helpers);
    // Shared ownership: a worker that wakes just as the region finishes may
    // still hold the job after this frame would have destroyed it.
    auto job = std::make_shared<Job>();
    job->body = &body;
    job->range = range;
    job->num_shards = num_shards;
    job->errors = errors;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      job_ = job;
      done_ = 0;
      ++generation_;
    }
    cv_.notify_all();
    RunShards(*job);
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] { return done_ == job->num_shards; });
    job_ = nullptr;
  }

 private:
  ThreadPool() = default;

  void EnsureWorkers(size_t wanted) {
    // Oversubscription is allowed (tests use it); cap only as a backstop.
    wanted = std::min<size_t>(wanted, 256);
    while (workers_.size() < wanted) {
      workers_.emplace_back([this] { WorkerMain(); });
    }
  }

  void WorkerMain() {
    uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lk(mutex_);
        cv_.wait(lk, [&] { return job_ != nullptr && generation_ != seen; });
        seen = generation_;
        job = job_;
      }
      RunShards(*job);
    }
  }

  void RunShards(Job& job) {
    size_t shard;
    while ((shard = job.next.fetch_add(1, std::memory_order_relaxed)) <
           job.num_shards) {
      ShardRange r = ShardBounds(job.range, job.num_shards, shard);
      {
        RegionGuard guard;
        try {
          (*job.body)(shard, r.begin, r.end);
        } catch (...) {
          (*job.errors)[shard] = std::current_exception();
        }
      }
      std::lock_guard<std::mutex> lk(mutex_);
      if (++done_ == job.num_shards) done_cv_.notify_all();
    }
  }

  std::mutex region_mutex_;  // serializes whole regions
  std::mutex mutex_;         // guards job_/done_/generation_
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  size_t done_ = 0;
  uint64_t generation_ = 0;
};

inline uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

size_t ResolveShards(const Parallelism& par, size_t range) {
  if (range == 0) return 0;
  if (par.shards > 0) return std::min(par.shards, range);
  if (par.serial()) return 1;
  return std::min(kDefaultShards, range);
}

ShardRange ShardBounds(size_t range, size_t num_shards, size_t shard) {
  const size_t chunk = range / num_shards;
  const size_t rem = range % num_shards;
  ShardRange r;
  r.begin = shard * chunk + std::min(shard, rem);
  r.end = r.begin + chunk + (shard < rem ? 1 : 0);
  return r;
}

size_t HardwareThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

bool InParallelRegion() { return t_in_parallel_region; }

void ParallelFor(
    const Parallelism& par, size_t range,
    const std::function<void(size_t shard, size_t begin, size_t end)>& body) {
  const size_t num_shards = ResolveShards(par, range);
  if (num_shards == 0) return;

  // Inline path: serial config, single shard, or a nested call from inside
  // a shard body. Shards still run in shard order so results match the
  // pooled path bitwise.
  if (par.serial() || num_shards == 1 || InParallelRegion()) {
    std::exception_ptr first_error;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      ShardRange r = ShardBounds(range, num_shards, shard);
      RegionGuard guard;
      try {
        body(shard, r.begin, r.end);
      } catch (...) {
        // Match the pooled path: every shard runs, lowest shard's
        // exception wins.
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  std::vector<std::exception_ptr> errors(num_shards);
  ThreadPool::Instance().Run(par.threads, num_shards, range, body, &errors);
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

Rng ShardRng(uint64_t seed, uint64_t stream) {
  return Rng(Mix64(Mix64(seed) ^ Mix64(0x9e3779b97f4a7c15ULL * (stream + 1))));
}

}  // namespace newsdiff
