#include "common/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

namespace newsdiff {

int64_t SystemClock::NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMillis(int64_t ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
    case StatusCode::kDeadlineExceeded:
      return true;
    default:
      return false;
  }
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, Clock* clock,
                               std::string name)
    : options_(options), clock_(clock), name_(std::move(name)) {}

bool CircuitBreaker::AllowRequest() {
  if (state_ == State::kOpen && clock_->NowMillis() >= open_until_ms_) {
    state_ = State::kHalfOpen;
    half_open_successes_seen_ = 0;
  }
  return state_ != State::kOpen;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ == State::kHalfOpen &&
      ++half_open_successes_seen_ >= options_.half_open_successes) {
    state_ = State::kClosed;
  }
}

void CircuitBreaker::RecordFailure() {
  switch (state_) {
    case State::kHalfOpen:
      Trip();  // a failed probe reopens immediately
      break;
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) Trip();
      break;
    case State::kOpen:
      // A straggler failure while open just extends the cooldown.
      open_until_ms_ = clock_->NowMillis() + options_.open_ms;
      break;
  }
}

void CircuitBreaker::Trip() {
  state_ = State::kOpen;
  consecutive_failures_ = 0;
  open_until_ms_ = clock_->NowMillis() + options_.open_ms;
  ++trips_;
}

Retrier::Retrier(RetryPolicy policy, Clock* clock, uint64_t seed)
    : policy_(policy), clock_(clock), rng_(seed) {}

int64_t Retrier::NextBackoff(int64_t prev_ms) {
  int64_t next;
  if (policy_.decorrelated_jitter) {
    next = static_cast<int64_t>(rng_.Uniform(
        static_cast<double>(policy_.initial_backoff_ms),
        static_cast<double>(prev_ms) * 3.0));
  } else {
    next = static_cast<int64_t>(static_cast<double>(prev_ms) *
                                policy_.multiplier);
  }
  return std::clamp(next, policy_.initial_backoff_ms, policy_.max_backoff_ms);
}

Status Retrier::Run(const std::function<Status()>& op,
                    CircuitBreaker* breaker) {
  const int64_t start_ms = clock_->NowMillis();
  int64_t backoff_ms = policy_.initial_backoff_ms;
  Status last = Status::Unavailable("retry: no attempt was made");
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      clock_->SleepMillis(backoff_ms);
      stats_.backoff_ms += backoff_ms;
      backoff_ms = NextBackoff(backoff_ms);
      if (policy_.overall_deadline_ms > 0 &&
          clock_->NowMillis() - start_ms >= policy_.overall_deadline_ms) {
        ++stats_.exhausted;
        return Status::DeadlineExceeded(
            "retry deadline exceeded; last error: " + last.ToString());
      }
    }
    if (breaker != nullptr && !breaker->AllowRequest()) {
      // Keep backing off without consuming an endpoint call; the breaker
      // half-opens once its cooldown elapses during our sleeps.
      ++stats_.breaker_rejections;
      last = Status::Unavailable("circuit breaker '" + breaker->name() +
                                 "' is open");
      continue;
    }
    ++stats_.attempts;
    const int64_t attempt_start_ms = clock_->NowMillis();
    Status s = op();
    const int64_t elapsed_ms = clock_->NowMillis() - attempt_start_ms;
    if (policy_.attempt_timeout_ms > 0 &&
        elapsed_ms > policy_.attempt_timeout_ms) {
      // The caller abandoned this attempt mid-flight; its result (even an
      // OK one) must not be used.
      s = Status::DeadlineExceeded(
          "attempt took " + std::to_string(elapsed_ms) + "ms (limit " +
          std::to_string(policy_.attempt_timeout_ms) + "ms)");
    }
    if (s.ok()) {
      if (breaker != nullptr) breaker->RecordSuccess();
      return s;
    }
    switch (s.code()) {
      case StatusCode::kUnavailable:
        ++stats_.unavailable;
        break;
      case StatusCode::kResourceExhausted:
        ++stats_.resource_exhausted;
        break;
      case StatusCode::kDeadlineExceeded:
        ++stats_.deadline_exceeded;
        break;
      default:
        ++stats_.fatal;
        break;
    }
    if (breaker != nullptr) breaker->RecordFailure();
    if (!IsRetryable(s.code())) return s;
    ++stats_.retries;
    last = std::move(s);
  }
  ++stats_.exhausted;
  return last;
}

}  // namespace newsdiff
