#include "datagen/feeds.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

namespace newsdiff::datagen {
namespace {

constexpr int64_t kMaxSinceId = std::numeric_limits<int64_t>::max();

/// First sentence of a body (up to and including the first period).
std::string FirstParagraph(const std::string& body) {
  size_t pos = body.find(". ");
  if (pos == std::string::npos) return body;
  return body.substr(0, pos + 1);
}

}  // namespace

std::vector<ArticleHeader> NewsApiClient::FetchLatest(
    UnixSeconds now, UnixSeconds older_than) const {
  // world_->articles is sorted by publish time ascending.
  const auto& articles = world_->articles;
  UnixSeconds upper = older_than > 0 ? std::min(now, older_than - 1) : now;
  // Find the last article published <= upper.
  auto it = std::upper_bound(
      articles.begin(), articles.end(), upper,
      [](UnixSeconds t, const NewsArticle& a) { return t < a.published; });
  std::vector<ArticleHeader> page;
  while (it != articles.begin() && page.size() < kPageLimit) {
    --it;
    ArticleHeader header;
    header.article_id = it->id;
    header.outlet = it->outlet;
    header.title = it->title;
    header.first_paragraph = FirstParagraph(it->body);
    header.published = it->published;
    page.push_back(std::move(header));
  }
  return page;  // newest first
}

StatusOr<std::string> ArticleScraper::FetchBody(int64_t article_id) const {
  for (const NewsArticle& a : world_->articles) {
    if (a.id == article_id) return a.body;
  }
  return Status::NotFound("no article with id " + std::to_string(article_id));
}

std::vector<TweetPayload> TwitterClient::Search(
    const std::vector<std::string>& keywords, UnixSeconds since,
    UnixSeconds until, int64_t since_id) const {
  std::vector<TweetPayload> page;
  for (const Tweet& t : world_->tweets) {  // sorted ascending by (time, id)
    if (t.created < since) continue;
    if (t.created == since && t.id <= since_id) continue;
    if (t.created > until) break;
    if (!keywords.empty()) {
      bool hit = false;
      for (const std::string& kw : keywords) {
        if (t.text.find(kw) != std::string::npos) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
    }
    TweetPayload payload;
    payload.tweet_id = t.id;
    payload.user_id = t.user;
    payload.text = t.text;
    payload.created = t.created;
    payload.likes = t.likes;
    payload.retweets = t.retweets;
    payload.author_followers = world_->users[t.user].followers;
    page.push_back(std::move(payload));
    if (page.size() >= kPageLimit) break;
  }
  return page;
}

uint32_t BodyChecksum(const std::string& text) {
  uint32_t h = 2166136261u;  // FNV-1a
  for (unsigned char c : text) {
    h ^= c;
    h *= 16777619u;
  }
  return h;
}

StatusOr<ScrapedBody> DirectBodyFetcher::FetchBody(int64_t article_id) {
  StatusOr<std::string> body = scraper_.FetchBody(article_id);
  if (!body.ok()) return body.status();
  ScrapedBody out;
  out.text = std::move(body).value();
  out.declared_length = out.text.size();
  out.checksum = BodyChecksum(out.text);
  return out;
}

FeedCrawler::FeedCrawler(const World& world, store::Database& db)
    : world_(&world),
      db_(&db),
      owned_news_(std::make_unique<DirectNewsFeed>(world)),
      owned_scraper_(std::make_unique<DirectBodyFetcher>(world)),
      owned_twitter_(std::make_unique<DirectTweetFeed>(world)),
      owned_clock_(std::make_unique<SystemClock>()),
      news_(owned_news_.get()),
      scraper_(owned_scraper_.get()),
      twitter_(owned_twitter_.get()),
      clock_(owned_clock_.get()),
      options_(),
      retrier_(options_.retry, clock_, options_.retry_seed),
      news_breaker_(options_.breaker, clock_, "news"),
      scraper_breaker_(options_.breaker, clock_, "scraper"),
      twitter_breaker_(options_.breaker, clock_, "twitter"),
      cursor_(world.options.start_time - 1),
      news_done_until_(cursor_),
      tweet_since_(cursor_),
      tweet_since_id_(kMaxSinceId) {
  LoadCursor();
}

FeedCrawler::FeedCrawler(const World& world, store::Database& db,
                         NewsFeed& news, BodyFetcher& scraper,
                         TweetFeed& twitter, Clock& clock,
                         CrawlerOptions options)
    : world_(&world),
      db_(&db),
      news_(&news),
      scraper_(&scraper),
      twitter_(&twitter),
      clock_(&clock),
      options_(options),
      retrier_(options_.retry, clock_, options_.retry_seed),
      news_breaker_(options_.breaker, clock_, "news"),
      scraper_breaker_(options_.breaker, clock_, "scraper"),
      twitter_breaker_(options_.breaker, clock_, "twitter"),
      cursor_(world.options.start_time - 1),
      news_done_until_(cursor_),
      tweet_since_(cursor_),
      tweet_since_id_(kMaxSinceId) {
  LoadCursor();
}

void FeedCrawler::EnsureUsersLoaded() {
  if (users_loaded_) return;
  store::Collection& users = db_->GetOrCreate("users");
  if (users.size() < world_->users.size()) {
    users.CreateIndex("user_id");
    for (const UserProfile& u : world_->users) {
      users.Upsert(
          store::Filter().Eq("user_id",
                             store::Value(static_cast<int64_t>(u.id))),
          store::MakeObject({
              {"user_id", static_cast<int64_t>(u.id)},
              {"handle", u.handle},
              {"followers", u.followers},
          }));
    }
  }
  users_loaded_ = true;
}

void FeedCrawler::LoadCursor() {
  const store::Collection* state = db_->Get(kStateCollection);
  if (state == nullptr) return;
  StatusOr<store::Value> doc =
      state->FindOne(store::Filter().Eq("key", store::Value("crawler")));
  if (!doc.ok()) return;
  if (const store::Value* v = doc->Find("cursor")) cursor_ = v->AsInt();
  news_done_until_ = cursor_;
  if (const store::Value* v = doc->Find("news_done_until")) {
    news_done_until_ = v->AsInt();
  }
  tweet_since_ = cursor_;
  tweet_since_id_ = kMaxSinceId;
  if (const store::Value* v = doc->Find("tweet_since")) {
    tweet_since_ = v->AsInt();
  }
  if (const store::Value* v = doc->Find("tweet_since_id")) {
    tweet_since_id_ = v->AsInt();
  }
}

void FeedCrawler::PersistCursor() {
  store::Collection& state = db_->GetOrCreate(kStateCollection);
  state.Upsert(store::Filter().Eq("key", store::Value("crawler")),
               store::MakeObject({
                   {"key", "crawler"},
                   {"cursor", cursor_},
                   {"news_done_until", news_done_until_},
                   {"tweet_since", tweet_since_},
                   {"tweet_since_id", tweet_since_id_},
               }));
}

void FeedCrawler::DeadLetter(const ArticleHeader& header,
                             const Status& status) {
  store::Collection& dead = db_->GetOrCreate(kDeadLetterCollection);
  dead.Upsert(
      store::Filter().Eq("article_id", store::Value(header.article_id)),
      store::MakeObject({
          {"article_id", header.article_id},
          {"stage", "scrape"},
          {"code", StatusCodeName(status.code())},
          {"message", status.message()},
          {"published", header.published},
      }));
}

Status FeedCrawler::CrawlNewsCycle(UnixSeconds cycle_end, CrawlStats& stats) {
  store::Collection& news = db_->GetOrCreate("news");
  // Page backwards through FetchLatest until the (news_done_until_,
  // cycle_end] window is covered. Pages may arrive shuffled or replayed, so
  // collection is order-insensitive: keep everything past the cursor,
  // dedupe by id, and only trust the page's *oldest* timestamp to decide
  // whether the window is covered.
  std::vector<ArticleHeader> fresh;
  std::set<int64_t> seen;
  UnixSeconds older_than = 0;
  while (true) {
    std::vector<ArticleHeader> page;
    Status s = retrier_.Run(
        [&]() -> Status {
          StatusOr<std::vector<ArticleHeader>> r =
              news_->FetchLatest(cycle_end, older_than);
          if (!r.ok()) return r.status();
          page = std::move(r).value();
          return Status::OK();
        },
        &news_breaker_);
    if (!s.ok()) return s;
    if (page.empty()) break;
    UnixSeconds oldest = page.front().published;
    for (const ArticleHeader& h : page) oldest = std::min(oldest, h.published);
    for (ArticleHeader& h : page) {
      if (h.published > news_done_until_ &&
          seen.insert(h.article_id).second) {
        fresh.push_back(std::move(h));
      }
    }
    if (oldest <= news_done_until_ ||
        page.size() < NewsApiClient::kPageLimit) {
      break;
    }
    if (older_than != 0 && oldest >= older_than) {
      // A replayed page: paging backwards from `older_than` must yield
      // strictly older articles. Discard and re-request the same window.
      ++stats.duplicate_pages;
      continue;
    }
    older_than = oldest;
  }

  // Ingest oldest-first so store order matches publish order (ties broken
  // by id, matching World::LoadInto). The header body is truncated, so
  // scrape the full text (as the paper did), validating payload integrity.
  std::sort(fresh.begin(), fresh.end(),
            [](const ArticleHeader& a, const ArticleHeader& b) {
              if (a.published != b.published) return a.published < b.published;
              return a.article_id < b.article_id;
            });
  for (const ArticleHeader& h : fresh) {
    ScrapedBody body;
    Status s = retrier_.Run(
        [&]() -> Status {
          StatusOr<ScrapedBody> r = scraper_->FetchBody(h.article_id);
          if (!r.ok()) return r.status();
          if (!r->Valid()) {
            ++stats.corrupt_payloads;
            return Status::Unavailable(
                "corrupt payload for article " +
                std::to_string(h.article_id) + " (integrity check failed)");
          }
          body = std::move(r).value();
          return Status::OK();
        },
        &scraper_breaker_);
    bool degraded = false;
    if (!s.ok()) {
      // A still-retryable failure here means the endpoint is genuinely down
      // (retries exhausted / breaker stuck open): abort the crawl and let a
      // later CrawlUntil resume from the persisted cursors.
      if (IsRetryable(s.code())) return s;
      // Permanently failed article: dead-letter it and degrade to the
      // header's first paragraph rather than dropping the document.
      DeadLetter(h, s);
      ++stats.dead_lettered;
      degraded = true;
    }
    store::Value doc = store::MakeObject({
        {"article_id", h.article_id},
        {"outlet", h.outlet},
        {"title", h.title},
        {"body", degraded ? h.first_paragraph : body.text},
        {"published", h.published},
    });
    if (degraded) {
      doc.Set("degraded", store::Value(true));
      ++stats.degraded_articles;
    }
    size_t before = news.size();
    news.Upsert(store::Filter().Eq("article_id", store::Value(h.article_id)),
                std::move(doc));
    if (news.size() > before) ++stats.articles;
  }
  return Status::OK();
}

Status FeedCrawler::CrawlTweetCycle(UnixSeconds cycle_end, CrawlStats& stats) {
  store::Collection& tweets = db_->GetOrCreate("tweets");
  // Page forward through Search, keyed by (created, id) so same-second
  // tweets at a page boundary are never skipped. Pages may arrive shuffled
  // or replayed; sorting plus the monotonic cursor makes both harmless.
  while (true) {
    std::vector<TweetPayload> page;
    Status s = retrier_.Run(
        [&]() -> Status {
          StatusOr<std::vector<TweetPayload>> r =
              twitter_->Search({}, tweet_since_, cycle_end, tweet_since_id_);
          if (!r.ok()) return r.status();
          page = std::move(r).value();
          return Status::OK();
        },
        &twitter_breaker_);
    if (!s.ok()) return s;
    if (page.empty()) break;
    std::sort(page.begin(), page.end(),
              [](const TweetPayload& a, const TweetPayload& b) {
                if (a.created != b.created) return a.created < b.created;
                return a.tweet_id < b.tweet_id;
              });
    bool advanced = false;
    for (const TweetPayload& t : page) {
      if (t.created < tweet_since_ ||
          (t.created == tweet_since_ && t.tweet_id <= tweet_since_id_)) {
        continue;  // replayed delivery from before the cursor
      }
      if (t.created > cycle_end) continue;  // outside this cycle's window
      size_t before = tweets.size();
      tweets.Upsert(
          store::Filter().Eq("tweet_id", store::Value(t.tweet_id)),
          store::MakeObject({
              {"tweet_id", t.tweet_id},
              {"user_id", t.user_id},
              {"text", t.text},
              {"created", t.created},
              {"likes", t.likes},
              {"retweets", t.retweets},
          }));
      if (tweets.size() > before) ++stats.tweets;
      tweet_since_ = t.created;
      tweet_since_id_ = t.tweet_id;
      advanced = true;
    }
    if (advanced) {
      PersistCursor();
    } else {
      ++stats.duplicate_pages;  // a full page of already-seen tweets
    }
    if (page.size() < TwitterClient::kPageLimit) break;
  }
  return Status::OK();
}

FeedCrawler::CrawlStats FeedCrawler::CrawlUntil(UnixSeconds now) {
  CrawlStats stats;
  const RetryStats retry_before = retrier_.stats();
  const int64_t trips_before = news_breaker_.trips() +
                               scraper_breaker_.trips() +
                               twitter_breaker_.trips();
  EnsureUsersLoaded();
  db_->GetOrCreate("news").CreateIndex("article_id");
  db_->GetOrCreate("tweets").CreateIndex("tweet_id");

  while (cursor_ < now) {
    UnixSeconds cycle_end = std::min<UnixSeconds>(cursor_ + kCycleSeconds, now);
    ++stats.cycles;

    if (news_done_until_ < cycle_end) {
      Status s = CrawlNewsCycle(cycle_end, stats);
      if (!s.ok()) {
        stats.status = s;
        break;
      }
      news_done_until_ = cycle_end;
      PersistCursor();
    }

    Status s = CrawlTweetCycle(cycle_end, stats);
    if (!s.ok()) {
      stats.status = s;
      break;
    }
    cursor_ = cycle_end;
    tweet_since_ = cycle_end;
    tweet_since_id_ = kMaxSinceId;
    PersistCursor();
  }

  const RetryStats& after = retrier_.stats();
  stats.retries = static_cast<size_t>(after.retries - retry_before.retries);
  stats.transient_failures =
      static_cast<size_t>(after.unavailable - retry_before.unavailable);
  stats.rate_limited = static_cast<size_t>(after.resource_exhausted -
                                           retry_before.resource_exhausted);
  stats.timeouts = static_cast<size_t>(after.deadline_exceeded -
                                       retry_before.deadline_exceeded);
  stats.breaker_trips = static_cast<size_t>(
      news_breaker_.trips() + scraper_breaker_.trips() +
      twitter_breaker_.trips() - trips_before);
  return stats;
}

}  // namespace newsdiff::datagen
