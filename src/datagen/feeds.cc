#include "datagen/feeds.h"

#include <algorithm>

namespace newsdiff::datagen {
namespace {

/// First sentence of a body (up to and including the first period).
std::string FirstParagraph(const std::string& body) {
  size_t pos = body.find(". ");
  if (pos == std::string::npos) return body;
  return body.substr(0, pos + 1);
}

}  // namespace

std::vector<ArticleHeader> NewsApiClient::FetchLatest(
    UnixSeconds now, UnixSeconds older_than) const {
  // world_->articles is sorted by publish time ascending.
  const auto& articles = world_->articles;
  UnixSeconds upper = older_than > 0 ? std::min(now, older_than - 1) : now;
  // Find the last article published <= upper.
  auto it = std::upper_bound(
      articles.begin(), articles.end(), upper,
      [](UnixSeconds t, const NewsArticle& a) { return t < a.published; });
  std::vector<ArticleHeader> page;
  while (it != articles.begin() && page.size() < kPageLimit) {
    --it;
    ArticleHeader header;
    header.article_id = it->id;
    header.outlet = it->outlet;
    header.title = it->title;
    header.first_paragraph = FirstParagraph(it->body);
    header.published = it->published;
    page.push_back(std::move(header));
  }
  return page;  // newest first
}

StatusOr<std::string> ArticleScraper::FetchBody(int64_t article_id) const {
  for (const NewsArticle& a : world_->articles) {
    if (a.id == article_id) return a.body;
  }
  return Status::NotFound("no article with id " + std::to_string(article_id));
}

std::vector<TweetPayload> TwitterClient::Search(
    const std::vector<std::string>& keywords, UnixSeconds since,
    UnixSeconds until, int64_t since_id) const {
  std::vector<TweetPayload> page;
  for (const Tweet& t : world_->tweets) {  // sorted ascending by (time, id)
    if (t.created < since) continue;
    if (t.created == since && t.id <= since_id) continue;
    if (t.created > until) break;
    if (!keywords.empty()) {
      bool hit = false;
      for (const std::string& kw : keywords) {
        if (t.text.find(kw) != std::string::npos) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
    }
    TweetPayload payload;
    payload.tweet_id = t.id;
    payload.user_id = t.user;
    payload.text = t.text;
    payload.created = t.created;
    payload.likes = t.likes;
    payload.retweets = t.retweets;
    payload.author_followers = world_->users[t.user].followers;
    page.push_back(std::move(payload));
    if (page.size() >= kPageLimit) break;
  }
  return page;
}

FeedCrawler::FeedCrawler(const World& world, store::Database& db)
    : world_(&world),
      db_(&db),
      news_api_(world),
      scraper_(world),
      twitter_(world),
      cursor_(world.options.start_time - 1) {}

void FeedCrawler::EnsureUsersLoaded() {
  if (users_loaded_) return;
  store::Collection& users = db_->GetOrCreate("users");
  for (const UserProfile& u : world_->users) {
    users.Insert(store::MakeObject({
        {"user_id", static_cast<int64_t>(u.id)},
        {"handle", u.handle},
        {"followers", u.followers},
    }));
  }
  users_loaded_ = true;
}

FeedCrawler::CrawlStats FeedCrawler::CrawlUntil(UnixSeconds now) {
  EnsureUsersLoaded();
  CrawlStats stats;
  store::Collection& news = db_->GetOrCreate("news");
  store::Collection& tweets = db_->GetOrCreate("tweets");

  while (cursor_ < now) {
    UnixSeconds cycle_end = std::min<UnixSeconds>(cursor_ + kCycleSeconds, now);
    ++stats.cycles;

    // News: page backwards through FetchLatest until we cross the cursor.
    std::vector<ArticleHeader> fresh;
    UnixSeconds older_than = 0;
    while (true) {
      std::vector<ArticleHeader> page =
          news_api_.FetchLatest(cycle_end, older_than);
      if (page.empty()) break;
      bool crossed = false;
      for (const ArticleHeader& h : page) {
        if (h.published <= cursor_) {
          crossed = true;
          break;
        }
        fresh.push_back(h);
      }
      if (crossed || page.size() < NewsApiClient::kPageLimit) break;
      older_than = page.back().published;
      if (older_than <= cursor_) break;
    }
    // Insert oldest-first so store order matches publish order; the header
    // body is truncated, so scrape the full text (as the paper did).
    for (auto it = fresh.rbegin(); it != fresh.rend(); ++it) {
      StatusOr<std::string> body = scraper_.FetchBody(it->article_id);
      news.Insert(store::MakeObject({
          {"article_id", it->article_id},
          {"outlet", it->outlet},
          {"title", it->title},
          {"body", body.ok() ? *body : it->first_paragraph},
          {"published", it->published},
      }));
      ++stats.articles;
    }

    // Tweets: page forward through Search, keyed by (created, id) so
    // same-second tweets at a page boundary are never skipped.
    UnixSeconds since = cursor_;
    int64_t since_id = 9223372036854775807LL;  // cursor_ second fully done
    while (true) {
      std::vector<TweetPayload> page =
          twitter_.Search({}, since, cycle_end, since_id);
      for (const TweetPayload& t : page) {
        tweets.Insert(store::MakeObject({
            {"tweet_id", t.tweet_id},
            {"user_id", t.user_id},
            {"text", t.text},
            {"created", t.created},
            {"likes", t.likes},
            {"retweets", t.retweets},
        }));
        ++stats.tweets;
        since = t.created;
        since_id = t.tweet_id;
      }
      if (page.size() < TwitterClient::kPageLimit) break;
    }

    cursor_ = cycle_end;
  }
  return stats;
}

}  // namespace newsdiff::datagen
