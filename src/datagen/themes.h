#ifndef NEWSDIFF_DATAGEN_THEMES_H_
#define NEWSDIFF_DATAGEN_THEMES_H_

#include <string>
#include <vector>

namespace newsdiff::datagen {

/// A thematic domain: a named vocabulary of content words plus named
/// entities. Themes mirror the news domains visible in the paper's
/// Tables 3-5 (Brexit, trade war, Huawei, Iran, Gaza, Japan, impeachment,
/// the Kentucky derby, ...), so the reproduced tables read like the
/// originals.
struct Theme {
  std::string name;
  /// Content words (lowercase) characteristic of the theme.
  std::vector<std::string> words;
  /// Multi-word named entities in surface form ("Theresa May").
  std::vector<std::string> entities;
  /// True for generic-chatter themes (food, TV...) that the paper's
  /// Table 7 shows as Twitter events unrelated to any news topic.
  bool chatter = false;
};

/// The built-in news themes (12).
const std::vector<Theme>& NewsThemes();

/// The built-in chatter themes (5), used only for tweets.
const std::vector<Theme>& ChatterThemes();

/// Generic filler vocabulary shared by all documents.
const std::vector<std::string>& GenericWords();

}  // namespace newsdiff::datagen

#endif  // NEWSDIFF_DATAGEN_THEMES_H_
