#include "datagen/faults.h"

#include <utility>

namespace newsdiff::datagen {
namespace {

/// splitmix64 finaliser — the per-id hash behind PermanentlyFails.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultOptions options, Clock* clock)
    : options_(options), clock_(clock), rng_(options.seed) {}

Status FaultInjector::NextFault() {
  ++counters_.ops;
  if (counters_.ops > options_.fail_all_after_ops) {
    ++counters_.unavailable;
    return Status::Unavailable("hard outage injected (op " +
                               std::to_string(counters_.ops) + ")");
  }
  double u = rng_.NextDouble();
  if (u < options_.transient_failure_rate) {
    ++counters_.unavailable;
    return Status::Unavailable("injected transient unavailability");
  }
  u -= options_.transient_failure_rate;
  if (u < options_.rate_limit_rate) {
    ++counters_.rate_limited;
    return Status::ResourceExhausted("injected rate limit; retry later");
  }
  u -= options_.rate_limit_rate;
  if (u < options_.timeout_rate) {
    ++counters_.timeouts;
    if (clock_ != nullptr) clock_->SleepMillis(options_.timeout_ms);
    return Status::DeadlineExceeded("injected timeout after " +
                                    std::to_string(options_.timeout_ms) +
                                    "ms");
  }
  return Status::OK();
}

bool FaultInjector::ShouldCorrupt() {
  bool hit = rng_.Bernoulli(options_.corrupt_body_rate);
  if (hit) ++counters_.corrupted;
  return hit;
}

bool FaultInjector::ShouldDuplicate() {
  bool hit = rng_.Bernoulli(options_.duplicate_page_rate);
  if (hit) ++counters_.duplicated;
  return hit;
}

bool FaultInjector::ShouldShuffle() {
  bool hit = rng_.Bernoulli(options_.shuffle_page_rate);
  if (hit) ++counters_.shuffled;
  return hit;
}

bool FaultInjector::PermanentlyFails(int64_t article_id) const {
  if (options_.permanent_body_failure_rate <= 0.0) return false;
  uint64_t h = Mix64(static_cast<uint64_t>(article_id) ^ options_.seed);
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
  return u < options_.permanent_body_failure_rate;
}

std::string FaultInjector::CorruptPayload(const std::string& payload) {
  if (payload.empty()) return payload;
  std::string out = payload;
  if (rng_.Bernoulli(0.5)) {
    // Truncation: the connection dropped mid-transfer.
    out.resize(rng_.NextBelow(out.size()));
  } else {
    // Bit rot: flip a few bytes in place.
    size_t flips = 1 + rng_.NextBelow(3);
    for (size_t i = 0; i < flips; ++i) {
      size_t pos = rng_.NextBelow(out.size());
      out[pos] = static_cast<char>(
          out[pos] ^ static_cast<char>(1 + rng_.NextBelow(255)));
    }
  }
  return out;
}

StatusOr<std::vector<ArticleHeader>> FaultyNewsFeed::FetchLatest(
    UnixSeconds now, UnixSeconds older_than) {
  Status fault = injector_->NextFault();
  if (!fault.ok()) return fault;
  // Duplicate delivery is only injected mid-pagination and only for full
  // pages, mirroring real retry/cache replays: page-size decisions (a short
  // page ends pagination) always reflect a genuine response.
  if (older_than != 0 && last_page_.size() == NewsApiClient::kPageLimit &&
      injector_->ShouldDuplicate()) {
    return last_page_;
  }
  StatusOr<std::vector<ArticleHeader>> r = inner_->FetchLatest(now, older_than);
  if (!r.ok()) return r;
  std::vector<ArticleHeader> page = std::move(r).value();
  if (page.size() >= 2 && injector_->ShouldShuffle()) {
    injector_->rng().Shuffle(page);
  }
  last_page_ = page;
  return page;
}

StatusOr<ScrapedBody> FaultyBodyFetcher::FetchBody(int64_t article_id) {
  Status fault = injector_->NextFault();
  if (!fault.ok()) return fault;
  if (injector_->PermanentlyFails(article_id)) {
    return Status::NotFound("article " + std::to_string(article_id) +
                            " is permanently unscrapable (injected)");
  }
  StatusOr<ScrapedBody> r = inner_->FetchBody(article_id);
  if (!r.ok()) return r;
  ScrapedBody body = std::move(r).value();
  if (injector_->ShouldCorrupt()) {
    // Damage the text but keep the integrity metadata, so Valid() fails.
    body.text = injector_->CorruptPayload(body.text);
  }
  return body;
}

StatusOr<std::vector<TweetPayload>> FaultyTweetFeed::Search(
    const std::vector<std::string>& keywords, UnixSeconds since,
    UnixSeconds until, int64_t since_id) {
  Status fault = injector_->NextFault();
  if (!fault.ok()) return fault;
  if (last_page_.size() == TwitterClient::kPageLimit &&
      injector_->ShouldDuplicate()) {
    return last_page_;
  }
  StatusOr<std::vector<TweetPayload>> r =
      inner_->Search(keywords, since, until, since_id);
  if (!r.ok()) return r;
  std::vector<TweetPayload> page = std::move(r).value();
  if (page.size() >= 2 && injector_->ShouldShuffle()) {
    injector_->rng().Shuffle(page);
  }
  last_page_ = page;
  return page;
}

FaultyFileIo::FaultyFileIo(FileIo& inner, StorageFaultOptions options)
    : inner_(&inner), options_(options), rng_(options.seed) {}

void FaultyFileIo::Reboot() {
  counters_.crashed = false;
  options_.crash_after_ops = SIZE_MAX;
  // Power loss resolves every outstanding fsync lie: bytes past each
  // path's durable floor were acknowledged but never persisted, so the
  // "reboot" truncates them away.
  for (const auto& [path, floor] : durable_floor_) {
    StatusOr<std::string> contents = inner_->ReadFile(path);
    if (!contents.ok() || contents->size() <= floor) continue;
    inner_->WriteFile(path, contents->substr(0, floor));
  }
  durable_floor_.clear();
}

void FaultyFileIo::MarkDurable(const std::string& path) {
  durable_floor_.erase(path);
}

void FaultyFileIo::NoteVolatileFloor(const std::string& path) {
  if (durable_floor_.count(path) > 0) return;  // floor already recorded
  StatusOr<std::string> contents = inner_->ReadFile(path);
  durable_floor_[path] = contents.ok() ? contents->size() : 0;
}

Status FaultyFileIo::ChargeOp(const std::string* torn_target,
                              const std::string* contents) {
  ++counters_.ops;
  if (counters_.crashed || counters_.ops > options_.crash_after_ops) {
    if (!counters_.crashed && torn_target != nullptr && contents != nullptr &&
        !contents->empty()) {
      // The op that trips the crash point tears its own write: a prefix
      // lands, the rest is lost with the process.
      inner_->WriteFile(*torn_target,
                        contents->substr(0, rng_.NextBelow(contents->size())));
      ++counters_.torn_writes;
    }
    counters_.crashed = true;
    return Status::IoError("injected crash (op " +
                           std::to_string(counters_.ops) + ")");
  }
  return Status::OK();
}

Status FaultyFileIo::WriteFile(const std::string& path,
                               const std::string& contents) {
  const bool was_crashed = counters_.crashed;
  Status crash = ChargeOp(&path, &contents);
  if (!crash.ok()) {
    // The op that trips the crash replaces the file with a torn prefix, so
    // any unsynced tail from an earlier lying append is gone with it.
    if (!was_crashed && !contents.empty()) MarkDurable(path);
    return crash;
  }
  if (rng_.Bernoulli(options_.write_failure_rate)) {
    ++counters_.write_failures;
    if (!contents.empty() && rng_.Bernoulli(0.5)) {
      // Torn write: some bytes made it down before the failure.
      inner_->WriteFile(path,
                        contents.substr(0, rng_.NextBelow(contents.size())));
      ++counters_.torn_writes;
      MarkDurable(path);
    }
    return Status::IoError("injected write failure for " + path);
  }
  // Every remaining branch rewrites the file, replacing any unsynced tail.
  MarkDurable(path);
  if (!contents.empty() && rng_.Bernoulli(options_.lost_tail_rate)) {
    // Reported as durable, but the tail never hit the platter.
    ++counters_.lost_tails;
    ++counters_.torn_writes;
    return inner_->WriteFile(
        path, contents.substr(0, rng_.NextBelow(contents.size())));
  }
  if (!contents.empty() && rng_.Bernoulli(options_.bit_flip_rate)) {
    ++counters_.bit_flips;
    std::string damaged = contents;
    size_t flips = 1 + rng_.NextBelow(3);
    for (size_t i = 0; i < flips; ++i) {
      size_t pos = rng_.NextBelow(damaged.size());
      damaged[pos] = static_cast<char>(
          damaged[pos] ^ static_cast<char>(1 + rng_.NextBelow(255)));
    }
    return inner_->WriteFile(path, damaged);
  }
  return inner_->WriteFile(path, contents);
}

Status FaultyFileIo::AppendFile(const std::string& path,
                                const std::string& contents) {
  const bool was_crashed = counters_.crashed;
  Status crash = ChargeOp();
  if (!crash.ok()) {
    if (!was_crashed && !contents.empty()) {
      // The crashing append tears: a prefix of the chunk lands beyond any
      // durable floor already recorded, so Reboot() reaps it too.
      NoteVolatileFloor(path);
      inner_->AppendFile(path,
                         contents.substr(0, rng_.NextBelow(contents.size())));
      ++counters_.torn_writes;
    }
    return crash;
  }
  ++counters_.appends;
  if (rng_.Bernoulli(options_.append_failure_rate)) {
    ++counters_.append_failures;
    if (!contents.empty()) {
      // Reported failed, but a torn tail landed (and was never synced).
      NoteVolatileFloor(path);
      inner_->AppendFile(path,
                         contents.substr(0, rng_.NextBelow(contents.size())));
      ++counters_.torn_writes;
    }
    return Status::IoError("injected append failure for " + path);
  }
  if (!contents.empty() && rng_.Bernoulli(options_.append_lie_rate)) {
    // fsync lie: acked, visible to reads, dropped by Reboot().
    ++counters_.append_lies;
    NoteVolatileFloor(path);
    return inner_->AppendFile(path, contents);
  }
  if (!contents.empty() && rng_.Bernoulli(options_.partial_append_rate)) {
    // Acked as durable, but the chunk's tail silently never landed.
    ++counters_.partial_appends;
    ++counters_.torn_writes;
    Status s = inner_->AppendFile(
        path, contents.substr(0, rng_.NextBelow(contents.size())));
    if (s.ok()) MarkDurable(path);  // what did land was genuinely synced
    return s;
  }
  Status s = inner_->AppendFile(path, contents);
  if (s.ok()) MarkDurable(path);  // a real fsync flushes earlier lies too
  return s;
}

StatusOr<std::string> FaultyFileIo::ReadFile(const std::string& path) {
  NEWSDIFF_RETURN_IF_ERROR(ChargeOp());
  if (rng_.Bernoulli(options_.read_failure_rate)) {
    ++counters_.read_failures;
    return Status::IoError("injected read failure for " + path);
  }
  return inner_->ReadFile(path);
}

StatusOr<std::string> FaultyFileIo::ReadFileFrom(const std::string& path,
                                                 uint64_t offset) {
  NEWSDIFF_RETURN_IF_ERROR(ChargeOp());
  if (rng_.Bernoulli(options_.read_failure_rate)) {
    ++counters_.read_failures;
    return Status::IoError("injected read failure for " + path);
  }
  StatusOr<std::string> bytes = inner_->ReadFileFrom(path, offset);
  if (!bytes.ok()) return bytes;
  // Both faults are transient, against the returned copy only: the file on
  // disk keeps its real bytes, so the tailer's next poll redraws.
  if (!bytes->empty() && rng_.Bernoulli(options_.read_tear_rate)) {
    ++counters_.read_tears;
    return bytes->substr(0, rng_.NextBelow(bytes->size()));
  }
  if (!bytes->empty() && rng_.Bernoulli(options_.read_flip_rate)) {
    ++counters_.read_flips;
    std::string damaged = std::move(bytes).value();
    const size_t pos = rng_.NextBelow(damaged.size());
    damaged[pos] = static_cast<char>(
        damaged[pos] ^ static_cast<char>(1 + rng_.NextBelow(255)));
    return damaged;
  }
  return bytes;
}

Status FaultyFileIo::Rename(const std::string& from, const std::string& to) {
  NEWSDIFF_RETURN_IF_ERROR(ChargeOp());
  if (rng_.Bernoulli(options_.rename_failure_rate)) {
    ++counters_.rename_failures;
    return Status::IoError("injected rename failure: " + from + " -> " + to);
  }
  Status s = inner_->Rename(from, to);
  if (s.ok()) {
    // The unsynced-tail bookkeeping follows the file to its new name.
    auto it = durable_floor_.find(from);
    durable_floor_.erase(to);
    if (it != durable_floor_.end()) {
      durable_floor_[to] = it->second;
      durable_floor_.erase(it);
    }
  }
  return s;
}

Status FaultyFileIo::Remove(const std::string& path) {
  NEWSDIFF_RETURN_IF_ERROR(ChargeOp());
  Status s = inner_->Remove(path);
  if (s.ok()) durable_floor_.erase(path);
  return s;
}

Status FaultyFileIo::CreateDirectories(const std::string& dir) {
  NEWSDIFF_RETURN_IF_ERROR(ChargeOp());
  return inner_->CreateDirectories(dir);
}

StatusOr<std::vector<std::string>> FaultyFileIo::ListDir(
    const std::string& dir) {
  NEWSDIFF_RETURN_IF_ERROR(ChargeOp());
  if (rng_.Bernoulli(options_.read_failure_rate)) {
    ++counters_.read_failures;
    return Status::IoError("injected unreadable directory: " + dir);
  }
  return inner_->ListDir(dir);
}

bool FaultyFileIo::Exists(const std::string& path) {
  return inner_->Exists(path);
}

}  // namespace newsdiff::datagen
