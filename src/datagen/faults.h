#ifndef NEWSDIFF_DATAGEN_FAULTS_H_
#define NEWSDIFF_DATAGEN_FAULTS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/file_io.h"
#include "common/retry.h"
#include "common/rng.h"
#include "common/status.h"
#include "datagen/feeds.h"

namespace newsdiff::datagen {

/// Deterministic, seeded fault injection for the simulated feeds — the
/// degraded-upstream phenomena the paper's real deployment had to survive
/// (§4.1/§4.9): NewsAPI rate limits and truncated bodies, scraper failures
/// on individual articles, Twitter API timeouts, and duplicate/out-of-order
/// page deliveries. Wrap the Direct* feeds in the Faulty* decorators below
/// and hand them to FeedCrawler.

struct FaultOptions {
  uint64_t seed = 2021;
  /// Per-call probability of each injected transient condition.
  double transient_failure_rate = 0.0;  // kUnavailable
  double rate_limit_rate = 0.0;         // kResourceExhausted
  double timeout_rate = 0.0;            // kDeadlineExceeded
  /// How long a timed-out call hangs before the client gives up; charged
  /// to the injector's clock (if any) so simulated time advances.
  int64_t timeout_ms = 1500;
  /// Probability that a scraped body is truncated/garbled in transit
  /// (integrity metadata is preserved, so clients can detect it).
  double corrupt_body_rate = 0.0;
  /// Probability that a full page is re-served (duplicate delivery) or
  /// delivered with its rows shuffled (out-of-order delivery).
  double duplicate_page_rate = 0.0;
  double shuffle_page_rate = 0.0;
  /// Fraction of article ids whose body scrape *always* fails (decided by a
  /// deterministic per-id hash, so the verdict survives restarts). These
  /// end up in the crawler's dead-letter collection.
  double permanent_body_failure_rate = 0.0;
  /// Test hook for hard outages: after this many upstream calls, every
  /// subsequent call fails with kUnavailable.
  size_t fail_all_after_ops = SIZE_MAX;
};

struct FaultCounters {
  size_t ops = 0;  // upstream calls intercepted
  size_t unavailable = 0;
  size_t rate_limited = 0;
  size_t timeouts = 0;
  size_t corrupted = 0;
  size_t duplicated = 0;
  size_t shuffled = 0;
};

class FaultInjector {
 public:
  /// `clock` (optional) is advanced by timeout_ms for each injected
  /// timeout; it must outlive the injector.
  explicit FaultInjector(FaultOptions options, Clock* clock = nullptr);

  /// Draws the fault, if any, for the next upstream call. OK = no fault.
  Status NextFault();

  /// Single draws for payload-level faults; counters are incremented on
  /// true, so call these only when the fault would actually be applied.
  bool ShouldCorrupt();
  bool ShouldDuplicate();
  bool ShouldShuffle();

  /// Deterministic per-id verdict: true for ids whose scrape always fails.
  bool PermanentlyFails(int64_t article_id) const;

  /// Truncates or garbles `payload`; never returns non-empty input
  /// unchanged. Also used by the fuzz tests to corrupt JSON documents.
  std::string CorruptPayload(const std::string& payload);

  Rng& rng() { return rng_; }
  const FaultCounters& counters() const { return counters_; }
  const FaultOptions& options() const { return options_; }

 private:
  FaultOptions options_;
  Clock* clock_;
  Rng rng_;
  FaultCounters counters_;
};

/// NewsFeed decorator. Replays the previous full page mid-pagination
/// (duplicate delivery) and shuffles pages (out-of-order delivery), on top
/// of the injector's transient faults.
class FaultyNewsFeed : public NewsFeed {
 public:
  FaultyNewsFeed(NewsFeed& inner, FaultInjector& injector)
      : inner_(&inner), injector_(&injector) {}

  StatusOr<std::vector<ArticleHeader>> FetchLatest(
      UnixSeconds now, UnixSeconds older_than) override;

 private:
  NewsFeed* inner_;
  FaultInjector* injector_;
  std::vector<ArticleHeader> last_page_;
};

/// BodyFetcher decorator: transient faults, permanently-unscrapable ids,
/// and corrupted payloads (text damaged, integrity metadata intact).
class FaultyBodyFetcher : public BodyFetcher {
 public:
  FaultyBodyFetcher(BodyFetcher& inner, FaultInjector& injector)
      : inner_(&inner), injector_(&injector) {}

  StatusOr<ScrapedBody> FetchBody(int64_t article_id) override;

 private:
  BodyFetcher* inner_;
  FaultInjector* injector_;
};

/// TweetFeed decorator: transient faults plus duplicate/shuffled full-page
/// deliveries.
class FaultyTweetFeed : public TweetFeed {
 public:
  FaultyTweetFeed(TweetFeed& inner, FaultInjector& injector)
      : inner_(&inner), injector_(&injector) {}

  StatusOr<std::vector<TweetPayload>> Search(
      const std::vector<std::string>& keywords, UnixSeconds since,
      UnixSeconds until, int64_t since_id) override;

 private:
  TweetFeed* inner_;
  FaultInjector* injector_;
  std::vector<TweetPayload> last_page_;
};

/// Seeded fault injection for the storage path — the disk-level analogue of
/// the feed decorators above. Wraps a FileIo and damages durability
/// operations the way real disks and crashes do: torn writes, fsync-lost
/// tails, bit rot, failed renames, unreadable directories, and a hard
/// crash point after N operations (every subsequent call fails, leaving
/// whatever half-written state the snapshot engine must recover from).
struct StorageFaultOptions {
  uint64_t seed = 2021;
  /// WriteFile reports failure; a coin decides whether the target is left
  /// untouched or holds a torn prefix (power loss mid-write).
  double write_failure_rate = 0.0;
  /// WriteFile reports success but only a prefix actually lands — the
  /// kernel acknowledged, the drive lost the tail (fsync lie).
  double lost_tail_rate = 0.0;
  /// WriteFile reports success with a few bytes flipped in flight.
  double bit_flip_rate = 0.0;
  /// Rename fails; source and destination are both left as they were.
  double rename_failure_rate = 0.0;
  /// ReadFile / ListDir fails (unreadable file or directory).
  double read_failure_rate = 0.0;
  /// AppendFile reports failure and leaves a torn tail: a prefix of the
  /// appended chunk landed before the failure (power loss mid-append).
  double append_failure_rate = 0.0;
  /// fsync-that-lies: AppendFile reports success and the bytes are visible
  /// to reads (page cache), but they were never persisted — Reboot() drops
  /// them. A later successful append to the same path flushes them for
  /// real (the next fsync covers the whole file).
  double append_lie_rate = 0.0;
  /// AppendFile reports success but only a prefix of the chunk actually
  /// lands, durably — a silent hole at the end of the log.
  double partial_append_rate = 0.0;
  /// ReadFileFrom (the WAL tailer's incremental read) returns only a
  /// prefix of the available bytes — a read racing an in-flight append
  /// observes a torn tail that a later read will see completed. The file
  /// itself is untouched (the fault is transient, unlike append faults).
  double read_tear_rate = 0.0;
  /// ReadFileFrom returns the bytes with a bit flipped in transit — a bad
  /// DMA / cable on the read path. Transient: the next read redraws.
  double read_flip_rate = 0.0;
  /// Hard crash: after this many intercepted operations every call fails.
  /// If the crashing operation is a write, a torn prefix is left behind —
  /// exactly what a killed process leaves on disk.
  size_t crash_after_ops = SIZE_MAX;
};

struct StorageFaultCounters {
  size_t ops = 0;  // operations intercepted
  size_t write_failures = 0;
  size_t torn_writes = 0;  // writes that left a partial file behind
  size_t lost_tails = 0;
  size_t bit_flips = 0;
  size_t rename_failures = 0;
  size_t read_failures = 0;
  size_t appends = 0;          // AppendFile calls intercepted
  size_t append_failures = 0;  // reported-failed appends (torn tail left)
  size_t append_lies = 0;      // acked appends whose bytes Reboot() drops
  size_t partial_appends = 0;  // acked appends that silently lost a tail
  size_t read_tears = 0;       // incremental reads returning a torn prefix
  size_t read_flips = 0;       // incremental reads with in-transit bit rot
  bool crashed = false;
};

class FaultyFileIo : public FileIo {
 public:
  FaultyFileIo(FileIo& inner, StorageFaultOptions options);

  Status WriteFile(const std::string& path,
                   const std::string& contents) override;
  Status AppendFile(const std::string& path,
                    const std::string& contents) override;
  StatusOr<std::string> ReadFile(const std::string& path) override;
  StatusOr<std::string> ReadFileFrom(const std::string& path,
                                     uint64_t offset) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status CreateDirectories(const std::string& dir) override;
  StatusOr<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool Exists(const std::string& path) override;

  const StorageFaultCounters& counters() const { return counters_; }
  const StorageFaultOptions& options() const { return options_; }

  /// Clears the crash so the same instance can model a process restart.
  /// Bytes acknowledged by a lying append but never truly persisted are
  /// dropped here — that is the moment the lie becomes data loss.
  void Reboot();

 private:
  /// Charges one op; returns the crash fault once the crash point is hit.
  /// `torn_target` (optional) is a write destination to leave a torn
  /// prefix of `contents` in when this op is the one that crashes.
  Status ChargeOp(const std::string* torn_target = nullptr,
                  const std::string* contents = nullptr);

  /// Marks everything currently in `path` as durable (a genuine fsync
  /// happened); clears its floor entry.
  void MarkDurable(const std::string& path);
  /// Records `path`'s current size as its durable floor if it has none:
  /// bytes landing beyond the floor are page-cache-only until the next
  /// genuine sync, and Reboot() truncates back to the floor.
  void NoteVolatileFloor(const std::string& path);

  FileIo* inner_;
  StorageFaultOptions options_;
  Rng rng_;
  StorageFaultCounters counters_;
  /// path -> durable size floor. Present only for paths with acknowledged
  /// but unpersisted tail bytes (fsync lies); Reboot() truncates each such
  /// file to its floor, turning the lie into visible data loss.
  std::map<std::string, size_t> durable_floor_;
};

}  // namespace newsdiff::datagen

#endif  // NEWSDIFF_DATAGEN_FAULTS_H_
