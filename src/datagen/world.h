#ifndef NEWSDIFF_DATAGEN_WORLD_H_
#define NEWSDIFF_DATAGEN_WORLD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "datagen/themes.h"
#include "store/database.h"

namespace newsdiff::datagen {

/// A synthetic social-media user. Follower counts follow a heavy-tailed
/// distribution; the top of the tail are the paper's *influencers*.
struct UserProfile {
  uint32_t id = 0;
  std::string handle;
  int64_t followers = 0;
  /// Table 2 encoding of the follower count: 0 (<100), 1 ([100, 1000]),
  /// 2 (>1000).
  int follower_class = 0;
  /// Finer-grained follower-magnitude bucket in [0, 7) used for the
  /// one-hot part of the metadata vector (§4.7/§5.6).
  int follower_bucket = 0;
};

/// Ground truth for one planted bursty event. News coverage bursts over
/// [news_start, news_end]; the Twitter echo bursts over
/// [twitter_start, twitter_end] with twitter_start in
/// [news_start, news_start + 5 days] (the correlation window of §5.5).
/// Chatter events have no news interval.
struct PlantedEvent {
  int id = 0;
  size_t theme = 0;        // index into NewsThemes() or ChatterThemes()
  bool chatter = false;
  std::vector<std::string> keywords;  // burst vocabulary (theme subset)
  UnixSeconds news_start = 0;
  UnixSeconds news_end = 0;
  UnixSeconds twitter_start = 0;
  UnixSeconds twitter_end = 0;
  /// Relative article/tweet volume.
  double intensity = 1.0;
  /// Base engagement level on the log scale; the "does it go viral" factor.
  double virality = 4.0;
};

/// A synthetic news article.
struct NewsArticle {
  int64_t id = 0;
  std::string outlet;
  std::string title;
  std::string body;
  UnixSeconds published = 0;
  int event_id = -1;   // -1 for background coverage
  size_t theme = 0;
};

/// A synthetic tweet with engagement counts.
struct Tweet {
  int64_t id = 0;
  uint32_t user = 0;
  std::string text;
  UnixSeconds created = 0;
  int64_t likes = 0;
  int64_t retweets = 0;
  int event_id = -1;   // -1 for unplanted chatter
  size_t theme = 0;
  bool chatter = false;
};

/// Generator knobs. Defaults produce a laptop-scale world with the same
/// qualitative structure as the paper's 5-month crawl.
struct WorldOptions {
  uint64_t seed = 2021;
  /// Timeline start (2019-04-01, matching the paper's collection window).
  UnixSeconds start_time = 1554076800;
  int64_t duration_days = 150;  // ~5 months
  size_t num_users = 1500;
  size_t num_articles = 6000;
  size_t num_tweets = 16000;
  /// One event per theme by default: distinct events then occupy distinct
  /// regions of embedding space, as distinct real-world stories do.
  size_t num_news_events = 12;
  size_t num_chatter_events = 5;
  /// Fraction of articles / tweets attached to planted events.
  double event_article_fraction = 0.6;
  double event_tweet_fraction = 0.75;
  /// Engagement model coefficients (log scale). Likes:
  ///   g = virality + author_boost[class] + dow_boost[dow] + N(0, noise)
  double like_noise = 0.65;
  /// Retweets propagate through the author's network, so they weigh the
  /// author's reach more and the content's appeal less than likes do:
  ///   g_rt = retweet_virality_weight * virality + retweet_intercept
  ///        + retweet_author_boost[class] + dow_boost[dow] + N(0, noise)
  double retweet_virality_weight = 0.6;
  double retweet_intercept = 0.8;
  double retweet_noise = 0.55;
  double retweet_author_boost[3] = {0.0, 1.1, 2.2};
  /// Additive boost per Table-2 follower class {0, 1, 2} (likes).
  double author_boost[3] = {0.0, 0.8, 1.7};
  /// Additive boost per day of week (Mon..Sun) — the day-of-week
  /// consumption effect of Bentley et al. the paper leans on.
  double dow_boost[7] = {0.0, -0.1, -0.2, 0.0, 0.3, 0.7, 0.6};
  /// Probability that a tweet carries a rare token absent from the
  /// background corpus (exercises the OOV path of RND_Doc2Vec).
  double rare_token_prob = 0.12;
};

/// The generated world: ground truth plus the raw corpora.
struct World {
  WorldOptions options;
  std::vector<UserProfile> users;
  std::vector<PlantedEvent> events;
  std::vector<NewsArticle> articles;
  std::vector<Tweet> tweets;

  /// Bulk-loads the world into `db` as the collections "users", "news",
  /// and "tweets" (the shapes the pipeline's collection modules expect).
  void LoadInto(store::Database& db) const;
};

/// Generates a deterministic world from `options`.
World GenerateWorld(const WorldOptions& options);

/// Builds a large background corpus over the full theme + generic
/// vocabulary, used to train the frozen PretrainedStore (the Google News
/// substitute). Disjoint from any particular world's documents, but shares
/// the vocabulary except for rare tokens.
std::vector<std::vector<std::string>> BackgroundSentences(size_t count,
                                                          uint64_t seed);

/// Table 2 encoding of a count: 0 (<100), 1 ([100, 1000]), 2 (>1000).
int EncodeCountClass(int64_t count);

/// Finer 7-way follower-magnitude bucket for the metadata one-hot.
int FollowerBucket7(int64_t followers);

}  // namespace newsdiff::datagen

#endif  // NEWSDIFF_DATAGEN_WORLD_H_
