#ifndef NEWSDIFF_DATAGEN_FEEDS_H_
#define NEWSDIFF_DATAGEN_FEEDS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "datagen/world.h"
#include "store/database.h"

namespace newsdiff::datagen {

/// API-shaped feed clients backed by the synthetic world — the simulated
/// counterparts of the paper's data-collection modules (§4.1): News River
/// API, NewsAPI (first paragraph only + scraper), and the Twitter API.
/// Each client serves documents in time order with the page limits the
/// real services impose, so the crawler exercises genuine pagination and
/// incremental-fetch logic. The crawler itself talks to the Status-returning
/// NewsFeed / BodyFetcher / TweetFeed interfaces below, which is where
/// datagen/faults.h splices in degraded-upstream behaviour.

/// A page of article headers as NewsAPI returns them: metadata plus only
/// the first paragraph of content (the paper notes NewsAPI truncates the
/// body, which is why the original system needed a scraper).
struct ArticleHeader {
  int64_t article_id = 0;
  std::string outlet;
  std::string title;
  std::string first_paragraph;
  UnixSeconds published = 0;
};

/// NewsAPI simulation: "the latest 100 news" per request.
class NewsApiClient {
 public:
  /// The client holds a reference to the world; it must outlive the client.
  explicit NewsApiClient(const World& world) : world_(&world) {}

  static constexpr size_t kPageLimit = 100;

  /// Latest articles published at or before `now`, newest first, at most
  /// kPageLimit. `older_than` (exclusive, 0 = disabled) pages further back.
  std::vector<ArticleHeader> FetchLatest(UnixSeconds now,
                                         UnixSeconds older_than = 0) const;

 private:
  const World* world_;
};

/// Article scraper simulation: resolves an article id to its full body
/// (the paper: "We developed a scrapper to obtain the entire content").
class ArticleScraper {
 public:
  explicit ArticleScraper(const World& world) : world_(&world) {}

  /// Full body text, or NotFound for an unknown id.
  StatusOr<std::string> FetchBody(int64_t article_id) const;

 private:
  const World* world_;
};

/// A tweet as the Twitter API returns it.
struct TweetPayload {
  int64_t tweet_id = 0;
  int64_t user_id = 0;
  std::string text;
  UnixSeconds created = 0;
  int64_t likes = 0;
  int64_t retweets = 0;
  int64_t author_followers = 0;
};

/// Twitter API simulation: keyword search over tweets in a time range.
class TwitterClient {
 public:
  explicit TwitterClient(const World& world) : world_(&world) {}

  static constexpr size_t kPageLimit = 100;

  /// Tweets created in (since, until] whose text contains any of
  /// `keywords` (empty = all tweets), oldest first, at most kPageLimit.
  /// `since_id` breaks ties among tweets sharing the `since` timestamp, so
  /// pagination never skips same-second tweets.
  std::vector<TweetPayload> Search(const std::vector<std::string>& keywords,
                                   UnixSeconds since, UnixSeconds until,
                                   int64_t since_id = -1) const;

 private:
  const World* world_;
};

/// FNV-1a 32-bit digest over the body bytes, carried alongside scraped
/// payloads so corruption in transit is detectable client-side.
uint32_t BodyChecksum(const std::string& text);

/// A scraped article body plus the upstream integrity metadata
/// (Content-Length and a digest). Fault injection may corrupt the text in
/// transit without touching the metadata; Valid() is the client's check.
struct ScrapedBody {
  std::string text;
  size_t declared_length = 0;
  uint32_t checksum = 0;

  bool Valid() const {
    return text.size() == declared_length && BodyChecksum(text) == checksum;
  }
};

/// Status-returning feed interfaces the crawler consumes. The Direct*
/// adapters below wrap the perfect simulated clients; datagen/faults.h
/// provides fault-injecting decorators with the same shape.
class NewsFeed {
 public:
  virtual ~NewsFeed() = default;
  virtual StatusOr<std::vector<ArticleHeader>> FetchLatest(
      UnixSeconds now, UnixSeconds older_than) = 0;
};

class BodyFetcher {
 public:
  virtual ~BodyFetcher() = default;
  virtual StatusOr<ScrapedBody> FetchBody(int64_t article_id) = 0;
};

class TweetFeed {
 public:
  virtual ~TweetFeed() = default;
  virtual StatusOr<std::vector<TweetPayload>> Search(
      const std::vector<std::string>& keywords, UnixSeconds since,
      UnixSeconds until, int64_t since_id) = 0;
};

class DirectNewsFeed : public NewsFeed {
 public:
  explicit DirectNewsFeed(const World& world) : client_(world) {}
  StatusOr<std::vector<ArticleHeader>> FetchLatest(
      UnixSeconds now, UnixSeconds older_than) override {
    return client_.FetchLatest(now, older_than);
  }

 private:
  NewsApiClient client_;
};

class DirectBodyFetcher : public BodyFetcher {
 public:
  explicit DirectBodyFetcher(const World& world) : scraper_(world) {}
  StatusOr<ScrapedBody> FetchBody(int64_t article_id) override;

 private:
  ArticleScraper scraper_;
};

class DirectTweetFeed : public TweetFeed {
 public:
  explicit DirectTweetFeed(const World& world) : client_(world) {}
  StatusOr<std::vector<TweetPayload>> Search(
      const std::vector<std::string>& keywords, UnixSeconds since,
      UnixSeconds until, int64_t since_id) override {
    return client_.Search(keywords, since, until, since_id);
  }

 private:
  TwitterClient client_;
};

/// Knobs for the hardened crawler's failure handling.
struct CrawlerOptions {
  RetryPolicy retry = [] {
    RetryPolicy p;
    p.max_attempts = 8;
    return p;
  }();
  CircuitBreakerOptions breaker;
  uint64_t retry_seed = 0x9e37ull;
};

/// The crawler of §4.1/§4.9: every `interval` of simulated time it pulls
/// new articles (headers + scraped bodies) and tweets and upserts them into
/// the store collections the pipeline reads.
///
/// Robustness properties:
///  - every upstream call runs under retry-with-backoff and a per-endpoint
///    circuit breaker; scraped bodies are integrity-checked and corrupt
///    payloads re-fetched;
///  - fetch cursors are persisted in the "crawl_state" collection after
///    each sub-phase, so a killed-and-restarted crawl resumes where it left
///    off; document writes are idempotent upserts keyed by article/tweet
///    id, so replayed work never duplicates documents;
///  - articles whose body scrape fails permanently are recorded in the
///    "dead_letter" collection and ingested with the header's first
///    paragraph as a degraded body (flagged `degraded: true`);
///  - a persistent upstream outage aborts the crawl gracefully: CrawlUntil
///    returns with a non-OK CrawlStats::status and all progress persisted,
///    and a later call resumes from the durable cursors.
class FeedCrawler {
 public:
  /// Perfect feeds and the real clock — the fault-free configuration.
  FeedCrawler(const World& world, store::Database& db);

  /// Injected feeds and clock (all must outlive the crawler). Resumes from
  /// any cursor state a previous crawler instance persisted into `db`.
  FeedCrawler(const World& world, store::Database& db, NewsFeed& news,
              BodyFetcher& scraper, TweetFeed& twitter, Clock& clock,
              CrawlerOptions options = {});

  /// Ingests everything up to `now` in 2-hour cycles (the paper's refresh
  /// interval); returns the number of (articles, tweets) added plus the
  /// failure-handling counters for this call.
  struct CrawlStats {
    size_t articles = 0;
    size_t tweets = 0;
    size_t cycles = 0;
    // Failure handling (this CrawlUntil call only).
    size_t retries = 0;             // failed retryable attempts
    size_t transient_failures = 0;  // kUnavailable attempts observed
    size_t rate_limited = 0;        // kResourceExhausted attempts observed
    size_t timeouts = 0;            // kDeadlineExceeded attempts observed
    size_t breaker_trips = 0;
    size_t corrupt_payloads = 0;    // bodies that failed the integrity check
    size_t duplicate_pages = 0;     // replayed pages detected and discarded
    size_t degraded_articles = 0;   // ingested with first_paragraph fallback
    size_t dead_lettered = 0;
    /// OK when the crawl reached `now`; otherwise the upstream condition
    /// that aborted it (progress up to that point is persisted).
    Status status = Status::OK();
  };
  CrawlStats CrawlUntil(UnixSeconds now);

  /// The paper's refresh interval.
  static constexpr int64_t kCycleSeconds = 2 * kSecondsPerHour;

  /// Store collections used for durability bookkeeping.
  static constexpr const char* kStateCollection = "crawl_state";
  static constexpr const char* kDeadLetterCollection = "dead_letter";

 private:
  void EnsureUsersLoaded();
  void LoadCursor();
  void PersistCursor();
  Status CrawlNewsCycle(UnixSeconds cycle_end, CrawlStats& stats);
  Status CrawlTweetCycle(UnixSeconds cycle_end, CrawlStats& stats);
  void DeadLetter(const ArticleHeader& header, const Status& status);

  const World* world_;
  store::Database* db_;
  // Owned defaults backing the two-argument constructor.
  std::unique_ptr<DirectNewsFeed> owned_news_;
  std::unique_ptr<DirectBodyFetcher> owned_scraper_;
  std::unique_ptr<DirectTweetFeed> owned_twitter_;
  std::unique_ptr<SystemClock> owned_clock_;
  NewsFeed* news_;
  BodyFetcher* scraper_;
  TweetFeed* twitter_;
  Clock* clock_;
  CrawlerOptions options_;
  Retrier retrier_;
  CircuitBreaker news_breaker_;
  CircuitBreaker scraper_breaker_;
  CircuitBreaker twitter_breaker_;
  // Durable cursor state, mirrored in the crawl_state collection:
  // `cursor_` is the last fully completed cycle boundary;
  // `news_done_until_` > cursor_ while a cycle's news phase is done but its
  // tweet phase is not; (`tweet_since_`, `tweet_since_id_`) is the
  // mid-phase tweet pagination position.
  UnixSeconds cursor_;
  UnixSeconds news_done_until_;
  UnixSeconds tweet_since_;
  int64_t tweet_since_id_;
  bool users_loaded_ = false;
};

}  // namespace newsdiff::datagen

#endif  // NEWSDIFF_DATAGEN_FEEDS_H_
