#ifndef NEWSDIFF_DATAGEN_FEEDS_H_
#define NEWSDIFF_DATAGEN_FEEDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/world.h"
#include "store/database.h"

namespace newsdiff::datagen {

/// API-shaped feed clients backed by the synthetic world — the simulated
/// counterparts of the paper's data-collection modules (§4.1): News River
/// API, NewsAPI (first paragraph only + scraper), and the Twitter API.
/// Each client serves documents in time order with the page limits the
/// real services impose, so the crawler exercises genuine pagination and
/// incremental-fetch logic.

/// A page of article headers as NewsAPI returns them: metadata plus only
/// the first paragraph of content (the paper notes NewsAPI truncates the
/// body, which is why the original system needed a scraper).
struct ArticleHeader {
  int64_t article_id = 0;
  std::string outlet;
  std::string title;
  std::string first_paragraph;
  UnixSeconds published = 0;
};

/// NewsAPI simulation: "the latest 100 news" per request.
class NewsApiClient {
 public:
  /// The client holds a reference to the world; it must outlive the client.
  explicit NewsApiClient(const World& world) : world_(&world) {}

  static constexpr size_t kPageLimit = 100;

  /// Latest articles published at or before `now`, newest first, at most
  /// kPageLimit. `older_than` (exclusive, 0 = disabled) pages further back.
  std::vector<ArticleHeader> FetchLatest(UnixSeconds now,
                                         UnixSeconds older_than = 0) const;

 private:
  const World* world_;
};

/// Article scraper simulation: resolves an article id to its full body
/// (the paper: "We developed a scrapper to obtain the entire content").
class ArticleScraper {
 public:
  explicit ArticleScraper(const World& world) : world_(&world) {}

  /// Full body text, or NotFound for an unknown id.
  StatusOr<std::string> FetchBody(int64_t article_id) const;

 private:
  const World* world_;
};

/// A tweet as the Twitter API returns it.
struct TweetPayload {
  int64_t tweet_id = 0;
  int64_t user_id = 0;
  std::string text;
  UnixSeconds created = 0;
  int64_t likes = 0;
  int64_t retweets = 0;
  int64_t author_followers = 0;
};

/// Twitter API simulation: keyword search over tweets in a time range.
class TwitterClient {
 public:
  explicit TwitterClient(const World& world) : world_(&world) {}

  static constexpr size_t kPageLimit = 100;

  /// Tweets created in (since, until] whose text contains any of
  /// `keywords` (empty = all tweets), oldest first, at most kPageLimit.
  /// `since_id` breaks ties among tweets sharing the `since` timestamp, so
  /// pagination never skips same-second tweets.
  std::vector<TweetPayload> Search(const std::vector<std::string>& keywords,
                                   UnixSeconds since, UnixSeconds until,
                                   int64_t since_id = -1) const;

 private:
  const World* world_;
};

/// The crawler of §4.1/§4.9: every `interval` of simulated time it pulls
/// new articles (headers + scraped bodies) and tweets and appends them to
/// the store collections the pipeline reads. Keeps fetch cursors so each
/// cycle only ingests new documents.
class FeedCrawler {
 public:
  FeedCrawler(const World& world, store::Database& db);

  /// Ingests everything up to `now` in 2-hour cycles (the paper's refresh
  /// interval); returns the number of (articles, tweets) added.
  struct CrawlStats {
    size_t articles = 0;
    size_t tweets = 0;
    size_t cycles = 0;
  };
  CrawlStats CrawlUntil(UnixSeconds now);

  /// The paper's refresh interval.
  static constexpr int64_t kCycleSeconds = 2 * kSecondsPerHour;

 private:
  void EnsureUsersLoaded();

  const World* world_;
  store::Database* db_;
  NewsApiClient news_api_;
  ArticleScraper scraper_;
  TwitterClient twitter_;
  UnixSeconds cursor_;
  bool users_loaded_ = false;
};

}  // namespace newsdiff::datagen

#endif  // NEWSDIFF_DATAGEN_FEEDS_H_
