#include "datagen/world.h"

#include <algorithm>
#include <cmath>

#include "store/value.h"

namespace newsdiff::datagen {
namespace {

constexpr const char* kOutlets[] = {
    "The Daily Chronicle", "Global Wire",      "Metro Herald",
    "The Evening Post",    "National Gazette", "The Observer Times",
};

/// Picks `count` distinct items from `pool` (count <= pool.size()).
std::vector<std::string> SampleDistinct(const std::vector<std::string>& pool,
                                        size_t count, Rng& rng) {
  std::vector<size_t> idx(pool.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.Shuffle(idx);
  count = std::min(count, pool.size());
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(pool[idx[i]]);
  return out;
}

/// Word-source mixture for one document.
struct WordMix {
  const std::vector<std::string>* event_keywords = nullptr;
  const Theme* theme = nullptr;
  double p_event = 0.0;
  double p_theme = 0.35;
  double p_entity = 0.05;
  // remainder: generic
};

std::string DrawWord(const WordMix& mix, Rng& rng) {
  double u = rng.NextDouble();
  if (mix.event_keywords != nullptr && !mix.event_keywords->empty() &&
      u < mix.p_event) {
    return (*mix.event_keywords)[rng.NextBelow(mix.event_keywords->size())];
  }
  u -= mix.p_event;
  if (mix.theme != nullptr && !mix.theme->words.empty() && u < mix.p_theme) {
    return mix.theme->words[rng.NextBelow(mix.theme->words.size())];
  }
  u -= mix.p_theme;
  if (mix.theme != nullptr && !mix.theme->entities.empty() &&
      u < mix.p_entity) {
    return mix.theme->entities[rng.NextBelow(mix.theme->entities.size())];
  }
  const auto& generic = GenericWords();
  return generic[rng.NextBelow(generic.size())];
}

std::string CapitalizeFirst(std::string s) {
  if (!s.empty() && s[0] >= 'a' && s[0] <= 'z') {
    s[0] = static_cast<char>(s[0] - 'a' + 'A');
  }
  return s;
}

/// Renders a sentence of `len` words from the mix, capitalised and
/// period-terminated.
std::string MakeSentence(const WordMix& mix, size_t len, Rng& rng) {
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    std::string w = DrawWord(mix, rng);
    if (i == 0) w = CapitalizeFirst(std::move(w));
    if (!out.empty()) out += ' ';
    out += w;
    if (i + 2 == len && rng.Bernoulli(0.15)) out += ',';
  }
  out += '.';
  return out;
}

/// Triangular burst: density peaks early in the interval.
UnixSeconds DrawBurstTime(UnixSeconds start, UnixSeconds end, Rng& rng) {
  double u = rng.NextDouble();
  double v = rng.NextDouble();
  double frac = std::min(u, v);  // density decreasing over the interval
  return start + static_cast<int64_t>(
                     frac * static_cast<double>(end - start));
}

int64_t DrawEngagement(double log_mean, double noise, Rng& rng) {
  double g = rng.Gaussian(log_mean, noise);
  double v = std::exp(g);
  if (v < 0.0) v = 0.0;
  if (v > 5e6) v = 5e6;
  return static_cast<int64_t>(v);
}

const char* const kRareTokens[] = {
    "w00t",   "yolo",   "smh",    "tbh",    "fomo",   "lowkey", "highkey",
    "sus",    "vibes",  "stan",   "based",  "deadass", "finna",  "bruh",
    "oof",    "yeet",   "bffr",   "hmu",    "imo",     "irl",
};

}  // namespace

int EncodeCountClass(int64_t count) {
  if (count < 100) return 0;
  if (count <= 1000) return 1;
  return 2;
}

int FollowerBucket7(int64_t followers) {
  if (followers < 100) return 0;
  if (followers < 300) return 1;
  if (followers < 1000) return 2;
  if (followers < 3000) return 3;
  if (followers < 10000) return 4;
  if (followers < 100000) return 5;
  return 6;
}

World GenerateWorld(const WorldOptions& options) {
  World world;
  world.options = options;
  Rng rng(options.seed);
  const UnixSeconds t0 = options.start_time;
  const UnixSeconds t1 = t0 + options.duration_days * kSecondsPerDay;

  // --- Users: log-normal follower counts, heavy tail. ---
  world.users.reserve(options.num_users);
  for (uint32_t i = 0; i < options.num_users; ++i) {
    UserProfile u;
    u.id = i;
    u.handle = "user_" + std::to_string(i);
    double lf = rng.Gaussian(4.2, 1.9);
    u.followers = static_cast<int64_t>(std::exp(lf));
    if (u.followers < 1) u.followers = 1;
    if (u.followers > 2000000) u.followers = 2000000;
    u.follower_class = EncodeCountClass(u.followers);
    u.follower_bucket = FollowerBucket7(u.followers);
    world.users.push_back(std::move(u));
  }

  // --- Planted news events. ---
  const auto& news_themes = NewsThemes();
  const auto& chatter_themes = ChatterThemes();
  int next_event_id = 0;
  for (size_t e = 0; e < options.num_news_events; ++e) {
    PlantedEvent ev;
    ev.id = next_event_id++;
    ev.theme = e % news_themes.size();  // cover every theme
    ev.chatter = false;
    ev.keywords = SampleDistinct(news_themes[ev.theme].words,
                                 6 + rng.NextBelow(5), rng);
    int64_t news_len = (3 + static_cast<int64_t>(rng.NextBelow(10))) *
                       kSecondsPerDay;
    int64_t latest_start = (t1 - t0) - news_len - 12 * kSecondsPerDay;
    ev.news_start =
        t0 + static_cast<int64_t>(rng.NextBelow(
                 static_cast<uint64_t>(std::max<int64_t>(latest_start, 1))));
    ev.news_end = ev.news_start + news_len;
    // Twitter echo starts within the paper's 5-day correlation window and
    // outlives the news cycle.
    ev.twitter_start = ev.news_start + static_cast<int64_t>(rng.NextBelow(
                           4 * kSecondsPerDay));
    ev.twitter_end = ev.news_end + (2 + static_cast<int64_t>(
                                        rng.NextBelow(9))) * kSecondsPerDay;
    if (ev.twitter_end > t1) ev.twitter_end = t1;
    ev.intensity = rng.Uniform(0.6, 1.8);
    // Engagement bases cluster around the Table-2 class centres with
    // jitter, so the event (content) is usually decisive while the
    // author/day effects tip the borderline tweets.
    {
      static constexpr double kCenters[3] = {3.2, 5.1, 6.7};
      size_t c = rng.Categorical({0.40, 0.40, 0.20});
      ev.virality = kCenters[c] + rng.Uniform(-0.6, 0.6);
    }
    world.events.push_back(std::move(ev));
  }

  // --- Planted chatter events (tweets only; Table 7 material). ---
  for (size_t e = 0; e < options.num_chatter_events; ++e) {
    PlantedEvent ev;
    ev.id = next_event_id++;
    ev.theme = e % chatter_themes.size();
    ev.chatter = true;
    ev.keywords = SampleDistinct(chatter_themes[ev.theme].words,
                                 6 + rng.NextBelow(5), rng);
    int64_t len = (10 + static_cast<int64_t>(rng.NextBelow(50))) *
                  kSecondsPerDay;
    if (len > (t1 - t0) - kSecondsPerDay) len = (t1 - t0) - kSecondsPerDay;
    ev.twitter_start = t0 + static_cast<int64_t>(rng.NextBelow(
                           static_cast<uint64_t>((t1 - t0) - len)));
    ev.twitter_end = ev.twitter_start + len;
    ev.intensity = rng.Uniform(0.5, 1.2);
    ev.virality = rng.Uniform(2.6, 5.2);
    world.events.push_back(std::move(ev));
  }

  // --- Articles. ---
  std::vector<const PlantedEvent*> news_events;
  double total_intensity = 0.0;
  for (const PlantedEvent& ev : world.events) {
    if (!ev.chatter) {
      news_events.push_back(&ev);
      total_intensity += ev.intensity;
    }
  }
  const size_t n_articles = options.num_articles;
  world.articles.reserve(n_articles);
  for (size_t a = 0; a < n_articles; ++a) {
    NewsArticle art;
    art.id = static_cast<int64_t>(a);
    art.outlet = kOutlets[rng.NextBelow(std::size(kOutlets))];
    bool event_driven =
        !news_events.empty() && rng.Bernoulli(options.event_article_fraction);
    WordMix mix;
    if (event_driven) {
      // Pick an event proportionally to intensity.
      double x = rng.NextDouble() * total_intensity;
      const PlantedEvent* chosen = news_events.back();
      for (const PlantedEvent* ev : news_events) {
        x -= ev->intensity;
        if (x <= 0.0) {
          chosen = ev;
          break;
        }
      }
      art.event_id = chosen->id;
      art.theme = chosen->theme;
      art.published = DrawBurstTime(chosen->news_start, chosen->news_end, rng);
      mix.event_keywords = &chosen->keywords;
      mix.p_event = 0.35;
      mix.theme = &news_themes[chosen->theme];
    } else {
      art.event_id = -1;
      art.theme = rng.NextBelow(news_themes.size());
      art.published =
          t0 + static_cast<int64_t>(rng.NextBelow(
                   static_cast<uint64_t>(t1 - t0)));
      mix.theme = &news_themes[art.theme];
    }
    art.title = MakeSentence(mix, 6 + rng.NextBelow(5), rng);
    size_t sentences = 6 + rng.NextBelow(10);
    for (size_t s = 0; s < sentences; ++s) {
      if (!art.body.empty()) art.body += ' ';
      art.body += MakeSentence(mix, 8 + rng.NextBelow(8), rng);
    }
    world.articles.push_back(std::move(art));
  }

  // --- Tweets. ---
  std::vector<const PlantedEvent*> all_events;
  double tweet_intensity = 0.0;
  for (const PlantedEvent& ev : world.events) {
    all_events.push_back(&ev);
    tweet_intensity += ev.intensity;
  }
  const size_t n_tweets = options.num_tweets;
  world.tweets.reserve(n_tweets);
  for (size_t i = 0; i < n_tweets; ++i) {
    Tweet tw;
    tw.id = static_cast<int64_t>(i);
    tw.user = static_cast<uint32_t>(rng.NextBelow(world.users.size()));
    const UserProfile& author = world.users[tw.user];
    bool event_driven =
        !all_events.empty() && rng.Bernoulli(options.event_tweet_fraction);
    WordMix mix;
    const PlantedEvent* chosen = nullptr;
    if (event_driven) {
      double x = rng.NextDouble() * tweet_intensity;
      chosen = all_events.back();
      for (const PlantedEvent* ev : all_events) {
        x -= ev->intensity;
        if (x <= 0.0) {
          chosen = ev;
          break;
        }
      }
      tw.event_id = chosen->id;
      tw.theme = chosen->theme;
      tw.chatter = chosen->chatter;
      tw.created =
          DrawBurstTime(chosen->twitter_start, chosen->twitter_end, rng);
      mix.event_keywords = &chosen->keywords;
      mix.p_event = 0.45;
      mix.theme = chosen->chatter ? &chatter_themes[chosen->theme]
                                  : &news_themes[chosen->theme];
    } else {
      tw.event_id = -1;
      bool chat = rng.Bernoulli(0.5);
      tw.chatter = chat;
      tw.theme = chat ? rng.NextBelow(chatter_themes.size())
                      : rng.NextBelow(news_themes.size());
      tw.created = t0 + static_cast<int64_t>(rng.NextBelow(
                            static_cast<uint64_t>(t1 - t0)));
      mix.theme = chat ? &chatter_themes[tw.theme] : &news_themes[tw.theme];
    }

    // Tweet text: 10-24 words; the first event keyword is the anchor and
    // appears with high probability so the burst has a clear main word.
    size_t len = 10 + rng.NextBelow(15);
    std::string text;
    if (chosen != nullptr && !chosen->keywords.empty() &&
        rng.Bernoulli(0.9)) {
      text = chosen->keywords[0];
    }
    for (size_t w = text.empty() ? 0 : 1; w < len; ++w) {
      if (!text.empty()) text += ' ';
      text += DrawWord(mix, rng);
    }
    if (rng.Bernoulli(options.rare_token_prob)) {
      text += ' ';
      text += kRareTokens[rng.NextBelow(std::size(kRareTokens))];
    }
    if (rng.Bernoulli(0.25) && mix.event_keywords != nullptr &&
        !mix.event_keywords->empty()) {
      text += " #" + (*mix.event_keywords)[rng.NextBelow(
                         mix.event_keywords->size())];
    }
    if (rng.Bernoulli(0.2)) {
      text += " https://news.example/" + std::to_string(tw.id);
    }
    tw.text = std::move(text);

    // Engagement: virality + influencer effect + day-of-week effect.
    double base = chosen != nullptr ? chosen->virality : rng.Uniform(2.2, 4.0);
    int dow = DayOfWeek(tw.created);
    double g_like = base + options.author_boost[author.follower_class] +
                    options.dow_boost[dow];
    tw.likes = DrawEngagement(g_like, options.like_noise, rng);
    double g_rt = options.retweet_virality_weight * base +
                  options.retweet_intercept +
                  options.retweet_author_boost[author.follower_class] +
                  options.dow_boost[dow];
    tw.retweets = DrawEngagement(g_rt, options.retweet_noise, rng);
    world.tweets.push_back(std::move(tw));
  }

  // Sort corpora by time, as a crawler writing to the store would.
  std::sort(world.articles.begin(), world.articles.end(),
            [](const NewsArticle& a, const NewsArticle& b) {
              if (a.published != b.published) return a.published < b.published;
              return a.id < b.id;
            });
  std::sort(world.tweets.begin(), world.tweets.end(),
            [](const Tweet& a, const Tweet& b) {
              if (a.created != b.created) return a.created < b.created;
              return a.id < b.id;
            });
  return world;
}

void World::LoadInto(store::Database& db) const {
  store::Collection& users_coll = db.GetOrCreate("users");
  for (const UserProfile& u : users) {
    users_coll.Insert(store::MakeObject({
        {"user_id", static_cast<int64_t>(u.id)},
        {"handle", u.handle},
        {"followers", u.followers},
    }));
  }
  store::Collection& news_coll = db.GetOrCreate("news");
  for (const NewsArticle& a : articles) {
    news_coll.Insert(store::MakeObject({
        {"article_id", a.id},
        {"outlet", a.outlet},
        {"title", a.title},
        {"body", a.body},
        {"published", a.published},
    }));
  }
  store::Collection& tweets_coll = db.GetOrCreate("tweets");
  for (const Tweet& t : tweets) {
    tweets_coll.Insert(store::MakeObject({
        {"tweet_id", t.id},
        {"user_id", static_cast<int64_t>(t.user)},
        {"text", t.text},
        {"created", t.created},
        {"likes", t.likes},
        {"retweets", t.retweets},
    }));
  }
}

std::vector<std::vector<std::string>> BackgroundSentences(size_t count,
                                                          uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::string>> sentences;
  sentences.reserve(count);
  const auto& news_themes = NewsThemes();
  const auto& chatter_themes = ChatterThemes();
  for (size_t i = 0; i < count; ++i) {
    // Each background sentence mixes one theme with generic vocabulary, so
    // theme words cluster in embedding space.
    bool chat = rng.Bernoulli(0.3);
    const Theme& theme = chat
        ? chatter_themes[rng.NextBelow(chatter_themes.size())]
        : news_themes[rng.NextBelow(news_themes.size())];
    WordMix mix;
    mix.theme = &theme;
    // Moderate thematic clustering: strong enough that same-theme words are
    // similar, weak enough that topic/event similarities stay in the
    // paper's 0.7-0.9 band instead of saturating at 1.0.
    mix.p_theme = 0.45;
    mix.p_entity = 0.0;
    size_t len = 8 + rng.NextBelow(10);
    std::vector<std::string> sent;
    sent.reserve(len);
    for (size_t w = 0; w < len; ++w) sent.push_back(DrawWord(mix, rng));
    sentences.push_back(std::move(sent));
  }
  return sentences;
}

}  // namespace newsdiff::datagen
