#include "embed/pvdbow.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"

namespace newsdiff::embed {
namespace {

constexpr size_t kUnigramTableSize = 1 << 18;

double SigmoidClamped(double x) {
  if (x > 6.0) return 1.0;
  if (x < -6.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

StatusOr<PvDbowResult> TrainPvDbow(
    const std::vector<std::vector<std::string>>& documents,
    const PvDbowOptions& options) {
  if (options.dimension == 0) {
    return Status::InvalidArgument("dimension must be positive");
  }
  if (documents.empty()) {
    return Status::InvalidArgument("no documents");
  }

  // Vocabulary with counts.
  std::unordered_map<std::string, uint64_t> counts;
  for (const auto& doc : documents) {
    for (const std::string& w : doc) ++counts[w];
  }
  std::vector<std::pair<std::string, uint64_t>> vocab;
  for (auto& [w, c] : counts) {
    if (c >= options.min_count) vocab.emplace_back(w, c);
  }
  if (vocab.empty()) {
    return Status::InvalidArgument("no words meet min_count");
  }
  std::sort(vocab.begin(), vocab.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::unordered_map<std::string, uint32_t> index;
  for (uint32_t i = 0; i < vocab.size(); ++i) index[vocab[i].first] = i;
  const size_t v = vocab.size();
  const size_t dim = options.dimension;

  // Unigram table (count^0.75).
  std::vector<uint32_t> unigram(kUnigramTableSize);
  {
    double norm = 0.0;
    for (const auto& e : vocab) norm += std::pow(e.second, 0.75);
    size_t i = 0;
    double cum = std::pow(vocab[0].second, 0.75) / norm;
    for (size_t t = 0; t < kUnigramTableSize; ++t) {
      unigram[t] = static_cast<uint32_t>(i);
      if (static_cast<double>(t) / kUnigramTableSize > cum && i + 1 < v) {
        ++i;
        cum += std::pow(vocab[i].second, 0.75) / norm;
      }
    }
  }

  Rng rng(options.seed);
  PvDbowResult result;
  result.doc_vectors.Resize(documents.size(), dim);
  for (double& x : result.doc_vectors.data()) {
    x = (rng.NextDouble() - 0.5) / static_cast<double>(dim);
  }
  la::Matrix word_out(v, dim);  // output word vectors, zero-init

  uint64_t total_tokens = 0;
  for (const auto& doc : documents) total_tokens += doc.size();
  const uint64_t total_steps =
      options.epochs * std::max<uint64_t>(total_tokens, 1);
  uint64_t steps = 0;

  std::vector<double> grad(dim);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t d = 0; d < documents.size(); ++d) {
      double* dv = result.doc_vectors.RowPtr(d);
      for (const std::string& w : documents[d]) {
        ++steps;
        auto it = index.find(w);
        if (it == index.end()) continue;
        double lr = options.learning_rate *
                    (1.0 - static_cast<double>(steps) /
                               static_cast<double>(total_steps + 1));
        lr = std::max(lr, options.min_learning_rate);
        std::fill(grad.begin(), grad.end(), 0.0);
        for (size_t neg = 0; neg <= options.negative_samples; ++neg) {
          uint32_t target;
          double label;
          if (neg == 0) {
            target = it->second;
            label = 1.0;
          } else {
            target = unigram[rng.NextBelow(kUnigramTableSize)];
            if (target == it->second) continue;
            label = 0.0;
          }
          double* out = word_out.RowPtr(target);
          double dot = 0.0;
          for (size_t i = 0; i < dim; ++i) dot += dv[i] * out[i];
          double g = (label - SigmoidClamped(dot)) * lr;
          for (size_t i = 0; i < dim; ++i) {
            grad[i] += g * out[i];
            out[i] += g * dv[i];
          }
        }
        for (size_t i = 0; i < dim; ++i) dv[i] += grad[i];
      }
    }
  }
  return result;
}

StatusOr<PvDbowResult> TrainPvDm(
    const std::vector<std::vector<std::string>>& documents,
    const PvDbowOptions& options) {
  if (options.dimension == 0) {
    return Status::InvalidArgument("dimension must be positive");
  }
  if (documents.empty()) {
    return Status::InvalidArgument("no documents");
  }

  std::unordered_map<std::string, uint64_t> counts;
  for (const auto& doc : documents) {
    for (const std::string& w : doc) ++counts[w];
  }
  std::vector<std::pair<std::string, uint64_t>> vocab;
  for (auto& [w, c] : counts) {
    if (c >= options.min_count) vocab.emplace_back(w, c);
  }
  if (vocab.empty()) {
    return Status::InvalidArgument("no words meet min_count");
  }
  std::sort(vocab.begin(), vocab.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::unordered_map<std::string, uint32_t> index;
  for (uint32_t i = 0; i < vocab.size(); ++i) index[vocab[i].first] = i;
  const size_t v = vocab.size();
  const size_t dim = options.dimension;
  constexpr size_t kWindow = 4;

  std::vector<uint32_t> unigram(kUnigramTableSize);
  {
    double norm = 0.0;
    for (const auto& e : vocab) norm += std::pow(e.second, 0.75);
    size_t i = 0;
    double cum = std::pow(vocab[0].second, 0.75) / norm;
    for (size_t t = 0; t < kUnigramTableSize; ++t) {
      unigram[t] = static_cast<uint32_t>(i);
      if (static_cast<double>(t) / kUnigramTableSize > cum && i + 1 < v) {
        ++i;
        cum += std::pow(vocab[i].second, 0.75) / norm;
      }
    }
  }

  Rng rng(options.seed);
  PvDbowResult result;
  result.doc_vectors.Resize(documents.size(), dim);
  for (double& x : result.doc_vectors.data()) {
    x = (rng.NextDouble() - 0.5) / static_cast<double>(dim);
  }
  la::Matrix word_in(v, dim);
  for (double& x : word_in.data()) {
    x = (rng.NextDouble() - 0.5) / static_cast<double>(dim);
  }
  la::Matrix word_out(v, dim);

  uint64_t total_tokens = 0;
  for (const auto& doc : documents) total_tokens += doc.size();
  const uint64_t total_steps =
      options.epochs * std::max<uint64_t>(total_tokens, 1);
  uint64_t steps = 0;

  std::vector<double> hidden(dim), grad(dim);
  std::vector<uint32_t> ids;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t d = 0; d < documents.size(); ++d) {
      double* dv = result.doc_vectors.RowPtr(d);
      ids.clear();
      for (const std::string& w : documents[d]) {
        auto it = index.find(w);
        if (it != index.end()) ids.push_back(it->second);
      }
      for (size_t pos = 0; pos < ids.size(); ++pos) {
        ++steps;
        double lr = options.learning_rate *
                    (1.0 - static_cast<double>(steps) /
                               static_cast<double>(total_steps + 1));
        lr = std::max(lr, options.min_learning_rate);
        // Hidden state: mean of doc vector and context word vectors.
        size_t lo = pos >= kWindow ? pos - kWindow : 0;
        size_t hi = std::min(ids.size() - 1, pos + kWindow);
        std::copy(dv, dv + dim, hidden.begin());
        size_t contributors = 1;
        for (size_t c = lo; c <= hi; ++c) {
          if (c == pos) continue;
          const double* wv = word_in.RowPtr(ids[c]);
          for (size_t i = 0; i < dim; ++i) hidden[i] += wv[i];
          ++contributors;
        }
        double inv = 1.0 / static_cast<double>(contributors);
        for (size_t i = 0; i < dim; ++i) hidden[i] *= inv;

        std::fill(grad.begin(), grad.end(), 0.0);
        for (size_t neg = 0; neg <= options.negative_samples; ++neg) {
          uint32_t target;
          double label;
          if (neg == 0) {
            target = ids[pos];
            label = 1.0;
          } else {
            target = unigram[rng.NextBelow(kUnigramTableSize)];
            if (target == ids[pos]) continue;
            label = 0.0;
          }
          double* out = word_out.RowPtr(target);
          double dot = 0.0;
          for (size_t i = 0; i < dim; ++i) dot += hidden[i] * out[i];
          double g = (label - SigmoidClamped(dot)) * lr;
          for (size_t i = 0; i < dim; ++i) {
            grad[i] += g * out[i];
            out[i] += g * hidden[i];
          }
        }
        // Distribute the hidden gradient to the doc vector and contexts.
        for (size_t i = 0; i < dim; ++i) dv[i] += grad[i] * inv;
        for (size_t c = lo; c <= hi; ++c) {
          if (c == pos) continue;
          double* wv = word_in.RowPtr(ids[c]);
          for (size_t i = 0; i < dim; ++i) wv[i] += grad[i] * inv;
        }
      }
    }
  }
  return result;
}

}  // namespace newsdiff::embed
