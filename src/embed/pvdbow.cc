#include "embed/pvdbow.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/rng.h"
#include "la/vector_ops.h"

namespace newsdiff::embed {
namespace {

constexpr size_t kUnigramTableSize = 1 << 18;
/// Upper bound on PV-DBOW shard replicas (each is a full copy of the
/// output weight matrix).
constexpr size_t kMaxPvDbowShards = 8;

double SigmoidClamped(double x) {
  if (x > 6.0) return 1.0;
  if (x < -6.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

/// Count-ranked vocabulary with a word -> id index, shared by the PV-DBOW
/// and PV-DM trainers.
struct Vocab {
  std::vector<std::pair<std::string, uint64_t>> entries;  // (word, count)
  std::unordered_map<std::string, uint32_t> index;
  size_t size() const { return entries.size(); }
};

Vocab BuildVocab(const std::vector<std::vector<std::string>>& documents,
                 size_t min_count) {
  std::unordered_map<std::string, uint64_t> counts;
  for (const auto& doc : documents) {
    for (const std::string& w : doc) ++counts[w];
  }
  Vocab vocab;
  for (auto& [w, c] : counts) {
    if (c >= min_count) vocab.entries.emplace_back(w, c);
  }
  std::sort(vocab.entries.begin(), vocab.entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  for (uint32_t i = 0; i < vocab.entries.size(); ++i) {
    vocab.index[vocab.entries[i].first] = i;
  }
  return vocab;
}

/// Negative-sampling table over count^0.75.
std::vector<uint32_t> BuildUnigramTable(const Vocab& vocab) {
  std::vector<uint32_t> unigram(kUnigramTableSize);
  const size_t v = vocab.size();
  double norm = 0.0;
  for (const auto& e : vocab.entries) norm += std::pow(e.second, 0.75);
  size_t i = 0;
  double cum = std::pow(vocab.entries[0].second, 0.75) / norm;
  for (size_t t = 0; t < kUnigramTableSize; ++t) {
    unigram[t] = static_cast<uint32_t>(i);
    if (static_cast<double>(t) / kUnigramTableSize > cum && i + 1 < v) {
      ++i;
      cum += std::pow(vocab.entries[i].second, 0.75) / norm;
    }
  }
  return unigram;
}

/// One PV-DBOW step: optimise `dv` to predict `word` against negatives
/// drawn from `rng`, updating `word_out` rows in place. `grad` is scratch.
void PvDbowStep(double* dv, uint32_t word, la::Matrix& word_out,
                const std::vector<uint32_t>& unigram, size_t dim,
                size_t negative_samples, double lr, Rng& rng,
                std::vector<double>& grad) {
  std::fill(grad.begin(), grad.end(), 0.0);
  for (size_t neg = 0; neg <= negative_samples; ++neg) {
    uint32_t target;
    double label;
    if (neg == 0) {
      target = word;
      label = 1.0;
    } else {
      target = unigram[rng.NextBelow(kUnigramTableSize)];
      if (target == word) continue;
      label = 0.0;
    }
    double* out = word_out.RowPtr(target);
    double g = (label - SigmoidClamped(la::DotN(dv, out, dim))) * lr;
    // grad reads `out` before it is updated, and none of grad/out/dv
    // alias, so the two axpys replay the legacy fused loop bitwise.
    la::AxpyN(grad.data(), out, g, dim);
    la::AxpyN(out, dv, g, dim);
  }
  la::AxpyN(dv, grad.data(), 1.0, dim);
}

}  // namespace

StatusOr<PvDbowResult> TrainPvDbow(
    const std::vector<std::vector<std::string>>& documents,
    const PvDbowOptions& options) {
  if (options.dimension == 0) {
    return Status::InvalidArgument("dimension must be positive");
  }
  if (documents.empty()) {
    return Status::InvalidArgument("no documents");
  }

  Vocab vocab = BuildVocab(documents, options.min_count);
  if (vocab.size() == 0) {
    return Status::InvalidArgument("no words meet min_count");
  }
  const size_t v = vocab.size();
  const size_t dim = options.dimension;
  const std::vector<uint32_t> unigram = BuildUnigramTable(vocab);

  // Doc-vector init consumes the base stream identically in both modes so
  // the sharded trainer differs from the legacy one only in epoch order.
  Rng rng(options.seed);
  PvDbowResult result;
  result.doc_vectors.Resize(documents.size(), dim);
  for (double& x : result.doc_vectors.data()) {
    x = (rng.NextDouble() - 0.5) / static_cast<double>(dim);
  }
  la::Matrix word_out(v, dim);  // output word vectors, zero-init

  const size_t num_shards =
      std::min(ResolveShards(options.parallelism, documents.size()),
               kMaxPvDbowShards);

  if (num_shards <= 1) {
    // Legacy sequential semantics: one RNG stream, per-step lr decay.
    uint64_t total_tokens = 0;
    for (const auto& doc : documents) total_tokens += doc.size();
    const uint64_t total_steps =
        options.epochs * std::max<uint64_t>(total_tokens, 1);
    uint64_t steps = 0;

    std::vector<double> grad(dim);
    for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
      for (size_t d = 0; d < documents.size(); ++d) {
        double* dv = result.doc_vectors.RowPtr(d);
        for (const std::string& w : documents[d]) {
          ++steps;
          auto it = vocab.index.find(w);
          if (it == vocab.index.end()) continue;
          double lr = options.learning_rate *
                      (1.0 - static_cast<double>(steps) /
                                 static_cast<double>(total_steps + 1));
          lr = std::max(lr, options.min_learning_rate);
          PvDbowStep(dv, it->second, word_out, unigram, dim,
                     options.negative_samples, lr, rng, grad);
        }
      }
    }
    return result;
  }

  // Sharded semantics: every epoch trains S fixed document shards against
  // replicas of the epoch-start weights; deltas merge in shard order. The
  // learning rate decays per epoch (constant within one), so no shard
  // needs another shard's step counter.
  Parallelism par = options.parallelism;
  par.shards = num_shards;
  std::vector<la::Matrix> replicas(num_shards);
  la::Matrix base(v, dim);
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    double lr = options.learning_rate *
                (1.0 - static_cast<double>(epoch) /
                           static_cast<double>(options.epochs));
    lr = std::max(lr, options.min_learning_rate);
    base = word_out;
    ParallelFor(par, documents.size(),
                [&](size_t shard, size_t begin, size_t end) {
      la::Matrix& wout = replicas[shard];
      wout = base;
      Rng shard_rng = ShardRng(
          options.seed, static_cast<uint64_t>(epoch) * num_shards + shard);
      std::vector<double> grad(dim);
      for (size_t d = begin; d < end; ++d) {
        double* dv = result.doc_vectors.RowPtr(d);
        for (const std::string& w : documents[d]) {
          auto it = vocab.index.find(w);
          if (it == vocab.index.end()) continue;
          PvDbowStep(dv, it->second, wout, unigram, dim,
                     options.negative_samples, lr, shard_rng, grad);
        }
      }
    });
    // word_out += sum of per-shard deltas, folded in shard order per
    // element. Sharding this merge over elements is itself map-style.
    ParallelFor(par, word_out.size(), [&](size_t, size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        double acc = word_out.data()[i];
        for (size_t s = 0; s < num_shards; ++s) {
          acc += replicas[s].data()[i] - base.data()[i];
        }
        word_out.data()[i] = acc;
      }
    });
  }
  return result;
}

StatusOr<PvDbowResult> TrainPvDm(
    const std::vector<std::vector<std::string>>& documents,
    const PvDbowOptions& options) {
  if (options.dimension == 0) {
    return Status::InvalidArgument("dimension must be positive");
  }
  if (documents.empty()) {
    return Status::InvalidArgument("no documents");
  }

  Vocab vocab = BuildVocab(documents, options.min_count);
  if (vocab.size() == 0) {
    return Status::InvalidArgument("no words meet min_count");
  }
  const size_t v = vocab.size();
  const size_t dim = options.dimension;
  constexpr size_t kWindow = 4;
  const std::vector<uint32_t> unigram = BuildUnigramTable(vocab);

  Rng rng(options.seed);
  PvDbowResult result;
  result.doc_vectors.Resize(documents.size(), dim);
  for (double& x : result.doc_vectors.data()) {
    x = (rng.NextDouble() - 0.5) / static_cast<double>(dim);
  }
  la::Matrix word_in(v, dim);
  for (double& x : word_in.data()) {
    x = (rng.NextDouble() - 0.5) / static_cast<double>(dim);
  }
  la::Matrix word_out(v, dim);

  uint64_t total_tokens = 0;
  for (const auto& doc : documents) total_tokens += doc.size();
  const uint64_t total_steps =
      options.epochs * std::max<uint64_t>(total_tokens, 1);
  uint64_t steps = 0;

  std::vector<double> hidden(dim), grad(dim);
  std::vector<uint32_t> ids;
  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (size_t d = 0; d < documents.size(); ++d) {
      double* dv = result.doc_vectors.RowPtr(d);
      ids.clear();
      for (const std::string& w : documents[d]) {
        auto it = vocab.index.find(w);
        if (it != vocab.index.end()) ids.push_back(it->second);
      }
      for (size_t pos = 0; pos < ids.size(); ++pos) {
        ++steps;
        double lr = options.learning_rate *
                    (1.0 - static_cast<double>(steps) /
                               static_cast<double>(total_steps + 1));
        lr = std::max(lr, options.min_learning_rate);
        // Hidden state: mean of doc vector and context word vectors.
        size_t lo = pos >= kWindow ? pos - kWindow : 0;
        size_t hi = std::min(ids.size() - 1, pos + kWindow);
        std::copy(dv, dv + dim, hidden.begin());
        size_t contributors = 1;
        for (size_t c = lo; c <= hi; ++c) {
          if (c == pos) continue;
          la::AxpyN(hidden.data(), word_in.RowPtr(ids[c]), 1.0, dim);
          ++contributors;
        }
        double inv = 1.0 / static_cast<double>(contributors);
        for (size_t i = 0; i < dim; ++i) hidden[i] *= inv;

        std::fill(grad.begin(), grad.end(), 0.0);
        for (size_t neg = 0; neg <= options.negative_samples; ++neg) {
          uint32_t target;
          double label;
          if (neg == 0) {
            target = ids[pos];
            label = 1.0;
          } else {
            target = unigram[rng.NextBelow(kUnigramTableSize)];
            if (target == ids[pos]) continue;
            label = 0.0;
          }
          double* out = word_out.RowPtr(target);
          double g =
              (label - SigmoidClamped(la::DotN(hidden.data(), out, dim))) * lr;
          la::AxpyN(grad.data(), out, g, dim);
          la::AxpyN(out, hidden.data(), g, dim);
        }
        // Distribute the hidden gradient to the doc vector and contexts.
        la::AxpyN(dv, grad.data(), inv, dim);
        for (size_t c = lo; c <= hi; ++c) {
          if (c == pos) continue;
          la::AxpyN(word_in.RowPtr(ids[c]), grad.data(), inv, dim);
        }
      }
    }
  }
  return result;
}

}  // namespace newsdiff::embed
