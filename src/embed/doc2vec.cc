#include "embed/doc2vec.h"

namespace newsdiff::embed {

std::vector<double> EmbedDocument(const std::vector<std::string>& tokens,
                                  const PretrainedStore& store,
                                  Doc2VecVariant variant,
                                  const EventWordWeights* event_vocabulary) {
  const size_t dim = store.dimension();
  std::vector<double> sum(dim, 0.0);
  size_t contributors = 0;
  for (const std::string& tok : tokens) {
    double event_weight = 1.0;
    if (event_vocabulary != nullptr) {
      auto it = event_vocabulary->find(tok);
      if (it == event_vocabulary->end()) continue;
      event_weight = it->second;
    }
    const std::vector<double>* vec = store.Get(tok);
    if (vec != nullptr) {
      double w = (variant == Doc2VecVariant::kSwm) ? event_weight : 1.0;
      for (size_t d = 0; d < dim; ++d) sum[d] += w * (*vec)[d];
      ++contributors;
    } else if (variant == Doc2VecVariant::kRnd) {
      std::vector<double> rnd = RandomVectorForToken(tok, dim);
      for (size_t d = 0; d < dim; ++d) sum[d] += rnd[d];
      ++contributors;
    }
  }
  if (contributors > 0) {
    double inv = 1.0 / static_cast<double>(contributors);
    for (double& v : sum) v *= inv;
  }
  return sum;
}

std::vector<double> EmbedKeywords(const std::vector<std::string>& keywords,
                                  const PretrainedStore& store) {
  return EmbedDocument(keywords, store, Doc2VecVariant::kSw, nullptr);
}

}  // namespace newsdiff::embed
