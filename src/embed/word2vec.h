#ifndef NEWSDIFF_EMBED_WORD2VEC_H_
#define NEWSDIFF_EMBED_WORD2VEC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace newsdiff::embed {

/// Training regime (§3.4): CBOW predicts the centre word from averaged
/// context vectors; skip-gram predicts context words from the centre word.
enum class Word2VecMode { kSkipGram, kCbow };

/// Word2Vec hyperparameters (negative-sampling objective).
struct Word2VecOptions {
  size_t dimension = 100;
  size_t window = 5;
  size_t negative_samples = 5;
  size_t epochs = 5;
  double learning_rate = 0.025;
  double min_learning_rate = 1e-4;
  /// Words with fewer total occurrences are dropped from the vocabulary.
  size_t min_count = 2;
  /// Frequent-word subsampling threshold (0 disables).
  double subsample = 1e-3;
  Word2VecMode mode = Word2VecMode::kSkipGram;
  uint64_t seed = 7;
};

/// Immutable word-vector table produced by training (or loaded from disk).
class WordVectors {
 public:
  WordVectors() : dimension_(0) {}
  WordVectors(size_t dimension,
              std::unordered_map<std::string, std::vector<double>> table)
      : dimension_(dimension), table_(std::move(table)) {}

  size_t dimension() const { return dimension_; }
  size_t size() const { return table_.size(); }

  bool Contains(const std::string& word) const {
    return table_.count(word) > 0;
  }

  /// Vector for `word`, or nullptr if absent.
  const std::vector<double>* Get(const std::string& word) const;

  /// Cosine similarity between two words; 0 if either is missing.
  double Similarity(const std::string& a, const std::string& b) const;

  /// The k nearest in-vocabulary words to `word` by cosine similarity
  /// (excluding `word` itself). Empty if `word` is unknown.
  std::vector<std::pair<std::string, double>> MostSimilar(
      const std::string& word, size_t k) const;

  /// Iteration access for serialisation.
  const std::unordered_map<std::string, std::vector<double>>& table() const {
    return table_;
  }

 private:
  size_t dimension_;
  std::unordered_map<std::string, std::vector<double>> table_;
};

/// Trains word vectors on tokenised sentences with stochastic gradient
/// descent over the negative-sampling objective. Deterministic for a fixed
/// seed (single-threaded by design).
StatusOr<WordVectors> TrainWord2Vec(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecOptions& options);

}  // namespace newsdiff::embed

#endif  // NEWSDIFF_EMBED_WORD2VEC_H_
