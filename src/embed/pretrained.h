#ifndef NEWSDIFF_EMBED_PRETRAINED_H_
#define NEWSDIFF_EMBED_PRETRAINED_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "embed/word2vec.h"

namespace newsdiff::embed {

/// A frozen word-embedding store — the stand-in for the pretrained
/// Google News word2vec model the paper uses (§4.9, "design choices").
///
/// In the original system the embedding model is trained once on a corpus
/// far larger than the collected datasets and never updated. We reproduce
/// that: the store is trained on a large synthetic *background* corpus
/// (disjoint from the evaluation data), then frozen. Tokens outside the
/// background vocabulary are out-of-vocabulary, which is what the RND
/// Doc2Vec variant exercises.
class PretrainedStore {
 public:
  /// Wraps already-trained vectors.
  explicit PretrainedStore(WordVectors vectors)
      : vectors_(std::move(vectors)) {}

  /// Trains the store from background sentences.
  static StatusOr<PretrainedStore> TrainFromBackground(
      const std::vector<std::vector<std::string>>& sentences,
      const Word2VecOptions& options);

  size_t dimension() const { return vectors_.dimension(); }
  size_t size() const { return vectors_.size(); }
  bool Contains(const std::string& word) const {
    return vectors_.Contains(word);
  }
  const std::vector<double>* Get(const std::string& word) const {
    return vectors_.Get(word);
  }
  const WordVectors& vectors() const { return vectors_; }

  /// Writes the store in the word2vec text format:
  ///   <count> <dim>\n
  ///   <word> <v1> ... <vdim>\n ...
  Status SaveText(const std::string& path) const;

  /// Loads a store previously written by SaveText.
  static StatusOr<PretrainedStore> LoadText(const std::string& path);

 private:
  WordVectors vectors_;
};

/// Deterministic pseudo-random vector in [-1, 1]^dim for an
/// out-of-vocabulary token, seeded from the token bytes — the RND_Doc2Vec
/// device of §4.7. The same token always yields the same vector.
std::vector<double> RandomVectorForToken(const std::string& token,
                                         size_t dimension);

}  // namespace newsdiff::embed

#endif  // NEWSDIFF_EMBED_PRETRAINED_H_
