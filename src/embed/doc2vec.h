#ifndef NEWSDIFF_EMBED_DOC2VEC_H_
#define NEWSDIFF_EMBED_DOC2VEC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "embed/pretrained.h"

namespace newsdiff::embed {

/// The three custom averaged document-embedding variants of §4.7.
enum class Doc2VecVariant {
  /// SW_Doc2Vec: only words found in the pretrained model contribute.
  kSw,
  /// RND_Doc2Vec: out-of-vocabulary words contribute a deterministic
  /// pseudo-random vector in [-1, 1]^dim.
  kRnd,
  /// SWM_Doc2Vec: in-vocabulary word vectors are multiplied by the word's
  /// magnitude in the event context before averaging.
  kSwm,
};

/// Per-word "magnitude in the context of the event": the MABED related-word
/// weight (the main word carries weight 1).
using EventWordWeights = std::unordered_map<std::string, double>;

/// Averages word vectors for `tokens` restricted to `event_vocabulary`
/// (the event's main + related words; pass nullptr to use all tokens),
/// following `variant`. Returns a zero vector when nothing contributes.
std::vector<double> EmbedDocument(
    const std::vector<std::string>& tokens, const PretrainedStore& store,
    Doc2VecVariant variant,
    const EventWordWeights* event_vocabulary = nullptr);

/// Averages the store vectors for a plain keyword list (no event
/// restriction, SW semantics). Used by the trending-news and correlation
/// modules to encode topic keywords (NewsTopic2Vec) and event terms
/// (NewsEvent2Vec / TwitterEvent2Vec) per §4.5-§4.6.
std::vector<double> EmbedKeywords(const std::vector<std::string>& keywords,
                                  const PretrainedStore& store);

}  // namespace newsdiff::embed

#endif  // NEWSDIFF_EMBED_DOC2VEC_H_
