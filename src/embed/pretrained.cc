#include "embed/pretrained.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/rng.h"
#include "common/strings.h"

namespace newsdiff::embed {

StatusOr<PretrainedStore> PretrainedStore::TrainFromBackground(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecOptions& options) {
  StatusOr<WordVectors> vectors = TrainWord2Vec(sentences, options);
  if (!vectors.ok()) return vectors.status();
  return PretrainedStore(std::move(vectors).value());
}

Status PretrainedStore::SaveText(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << vectors_.size() << ' ' << vectors_.dimension() << '\n';
  char buf[32];
  for (const auto& [word, vec] : vectors_.table()) {
    out << word;
    for (double v : vec) {
      std::snprintf(buf, sizeof(buf), " %.6g", v);
      out << buf;
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed for " + path);
  return Status::OK();
}

StatusOr<PretrainedStore> PretrainedStore::LoadText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  size_t count = 0, dim = 0;
  std::string header;
  if (!std::getline(in, header)) return Status::ParseError("empty file");
  {
    std::istringstream hs(header);
    if (!(hs >> count >> dim) || dim == 0) {
      return Status::ParseError("malformed header in " + path);
    }
  }
  std::unordered_map<std::string, std::vector<double>> table;
  table.reserve(count);
  std::string line;
  size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string word;
    if (!(ls >> word)) {
      return Status::ParseError(path + ":" + std::to_string(lineno));
    }
    std::vector<double> vec(dim);
    for (size_t d = 0; d < dim; ++d) {
      if (!(ls >> vec[d])) {
        return Status::ParseError(path + ":" + std::to_string(lineno) +
                                  ": short vector");
      }
    }
    table.emplace(std::move(word), std::move(vec));
  }
  if (table.size() != count) {
    return Status::ParseError("header count " + std::to_string(count) +
                              " != parsed " + std::to_string(table.size()));
  }
  return PretrainedStore(WordVectors(dim, std::move(table)));
}

std::vector<double> RandomVectorForToken(const std::string& token,
                                         size_t dimension) {
  Rng rng(Fnv1a64(token));
  std::vector<double> v(dimension);
  for (double& x : v) x = rng.Uniform(-1.0, 1.0);
  return v;
}

}  // namespace newsdiff::embed
