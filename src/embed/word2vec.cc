#include "embed/word2vec.h"

#include <algorithm>
#include <cmath>

#include "la/matrix.h"
#include "la/vector_ops.h"

namespace newsdiff::embed {
namespace {

constexpr size_t kUnigramTableSize = 1 << 20;
constexpr double kMaxExp = 6.0;

/// Precomputed logistic table, as in the reference implementation.
class SigmoidTable {
 public:
  SigmoidTable() {
    for (size_t i = 0; i < kSize; ++i) {
      double x = (static_cast<double>(i) / kSize * 2.0 - 1.0) * kMaxExp;
      table_[i] = 1.0 / (1.0 + std::exp(-x));
    }
  }
  double operator()(double x) const {
    if (x >= kMaxExp) return 1.0;
    if (x <= -kMaxExp) return 0.0;
    size_t i = static_cast<size_t>((x + kMaxExp) / (2.0 * kMaxExp) * kSize);
    if (i >= kSize) i = kSize - 1;
    return table_[i];
  }

 private:
  static constexpr size_t kSize = 4096;
  double table_[kSize];
};

struct VocabEntry {
  std::string word;
  uint64_t count;
};

}  // namespace

const std::vector<double>* WordVectors::Get(const std::string& word) const {
  auto it = table_.find(word);
  return it == table_.end() ? nullptr : &it->second;
}

double WordVectors::Similarity(const std::string& a,
                               const std::string& b) const {
  const std::vector<double>* va = Get(a);
  const std::vector<double>* vb = Get(b);
  if (va == nullptr || vb == nullptr) return 0.0;
  return la::CosineSimilarity(*va, *vb);
}

std::vector<std::pair<std::string, double>> WordVectors::MostSimilar(
    const std::string& word, size_t k) const {
  const std::vector<double>* v = Get(word);
  if (v == nullptr) return {};
  std::vector<std::pair<std::string, double>> scored;
  scored.reserve(table_.size());
  for (const auto& [w, vec] : table_) {
    if (w == word) continue;
    scored.emplace_back(w, la::CosineSimilarity(*v, vec));
  }
  size_t top = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  scored.resize(top);
  return scored;
}

StatusOr<WordVectors> TrainWord2Vec(
    const std::vector<std::vector<std::string>>& sentences,
    const Word2VecOptions& options) {
  if (options.dimension == 0) {
    return Status::InvalidArgument("dimension must be positive");
  }

  // --- Vocabulary with counts. ---
  std::unordered_map<std::string, uint64_t> raw_counts;
  uint64_t total_tokens = 0;
  for (const auto& sent : sentences) {
    for (const std::string& w : sent) {
      ++raw_counts[w];
      ++total_tokens;
    }
  }
  std::vector<VocabEntry> vocab;
  for (auto& [w, c] : raw_counts) {
    if (c >= options.min_count) vocab.push_back({w, c});
  }
  if (vocab.empty()) {
    return Status::InvalidArgument(
        "no words meet min_count; corpus too small");
  }
  std::sort(vocab.begin(), vocab.end(), [](const auto& a, const auto& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.word < b.word;
  });
  std::unordered_map<std::string, uint32_t> index;
  uint64_t kept_tokens = 0;
  for (uint32_t i = 0; i < vocab.size(); ++i) {
    index[vocab[i].word] = i;
    kept_tokens += vocab[i].count;
  }
  const size_t v = vocab.size();
  const size_t dim = options.dimension;

  // --- Unigram table for negative sampling (count^0.75). ---
  std::vector<uint32_t> unigram(kUnigramTableSize);
  {
    double norm = 0.0;
    for (const VocabEntry& e : vocab) norm += std::pow(e.count, 0.75);
    size_t i = 0;
    double cum = std::pow(vocab[0].count, 0.75) / norm;
    for (size_t t = 0; t < kUnigramTableSize; ++t) {
      unigram[t] = static_cast<uint32_t>(i);
      if (static_cast<double>(t) / kUnigramTableSize > cum &&
          i + 1 < v) {
        ++i;
        cum += std::pow(vocab[i].count, 0.75) / norm;
      }
    }
  }

  // --- Parameter matrices. ---
  Rng rng(options.seed);
  la::Matrix syn0(v, dim);  // input vectors
  la::Matrix syn1(v, dim);  // output vectors (stay zero-initialised)
  for (size_t i = 0; i < v; ++i) {
    double* row = syn0.RowPtr(i);
    for (size_t d = 0; d < dim; ++d) {
      row[d] = (rng.NextDouble() - 0.5) / static_cast<double>(dim);
    }
  }

  static const SigmoidTable sigmoid;
  const uint64_t total_steps =
      options.epochs * std::max<uint64_t>(kept_tokens, 1);
  uint64_t steps = 0;
  std::vector<double> neu1(dim), neu1e(dim);
  std::vector<uint32_t> sent_ids;

  for (size_t epoch = 0; epoch < options.epochs; ++epoch) {
    for (const auto& sent : sentences) {
      // Map to ids, apply subsampling.
      sent_ids.clear();
      for (const std::string& w : sent) {
        auto it = index.find(w);
        if (it == index.end()) continue;
        if (options.subsample > 0.0) {
          double f = static_cast<double>(vocab[it->second].count) /
                     static_cast<double>(kept_tokens);
          double keep = (std::sqrt(f / options.subsample) + 1.0) *
                        options.subsample / f;
          if (keep < 1.0 && rng.NextDouble() > keep) continue;
        }
        sent_ids.push_back(it->second);
      }
      for (size_t pos = 0; pos < sent_ids.size(); ++pos) {
        ++steps;
        double lr = options.learning_rate *
                    (1.0 - static_cast<double>(steps) /
                               static_cast<double>(total_steps + 1));
        lr = std::max(lr, options.min_learning_rate);
        size_t reduced = rng.NextBelow(options.window) ;
        size_t b = reduced;  // dynamic window shrink, as in word2vec.c
        size_t win = options.window - b;
        size_t lo = pos >= win ? pos - win : 0;
        size_t hi = std::min(sent_ids.size() - 1, pos + win);
        uint32_t center = sent_ids[pos];

        if (options.mode == Word2VecMode::kSkipGram) {
          for (size_t cpos = lo; cpos <= hi; ++cpos) {
            if (cpos == pos) continue;
            uint32_t context = sent_ids[cpos];
            double* in = syn0.RowPtr(context);
            std::fill(neu1e.begin(), neu1e.end(), 0.0);
            for (size_t neg = 0; neg <= options.negative_samples; ++neg) {
              uint32_t target;
              double label;
              if (neg == 0) {
                target = center;
                label = 1.0;
              } else {
                target = unigram[rng.NextBelow(kUnigramTableSize)];
                if (target == center) continue;
                label = 0.0;
              }
              double* out = syn1.RowPtr(target);
              double g = (label - sigmoid(la::DotN(in, out, dim))) * lr;
              la::AxpyN(neu1e.data(), out, g, dim);
              la::AxpyN(out, in, g, dim);
            }
            la::AxpyN(in, neu1e.data(), 1.0, dim);
          }
        } else {  // CBOW
          std::fill(neu1.begin(), neu1.end(), 0.0);
          size_t cw = 0;
          for (size_t cpos = lo; cpos <= hi; ++cpos) {
            if (cpos == pos) continue;
            la::AxpyN(neu1.data(), syn0.RowPtr(sent_ids[cpos]), 1.0, dim);
            ++cw;
          }
          if (cw == 0) continue;
          for (size_t d = 0; d < dim; ++d) neu1[d] /= static_cast<double>(cw);
          std::fill(neu1e.begin(), neu1e.end(), 0.0);
          for (size_t neg = 0; neg <= options.negative_samples; ++neg) {
            uint32_t target;
            double label;
            if (neg == 0) {
              target = center;
              label = 1.0;
            } else {
              target = unigram[rng.NextBelow(kUnigramTableSize)];
              if (target == center) continue;
              label = 0.0;
            }
            double* out = syn1.RowPtr(target);
            double g =
                (label - sigmoid(la::DotN(neu1.data(), out, dim))) * lr;
            la::AxpyN(neu1e.data(), out, g, dim);
            la::AxpyN(out, neu1.data(), g, dim);
          }
          for (size_t cpos = lo; cpos <= hi; ++cpos) {
            if (cpos == pos) continue;
            la::AxpyN(syn0.RowPtr(sent_ids[cpos]), neu1e.data(), 1.0, dim);
          }
        }
      }
    }
  }

  std::unordered_map<std::string, std::vector<double>> table;
  table.reserve(v);
  for (size_t i = 0; i < v; ++i) {
    table.emplace(vocab[i].word, syn0.Row(i));
  }
  return WordVectors(dim, std::move(table));
}

}  // namespace newsdiff::embed
