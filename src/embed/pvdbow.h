#ifndef NEWSDIFF_EMBED_PVDBOW_H_
#define NEWSDIFF_EMBED_PVDBOW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/status.h"
#include "la/matrix.h"

namespace newsdiff::embed {

/// Paragraph Vectors - Distributed Bag of Words (Le & Mikolov 2014).
///
/// The paper (§3.4, §4.9) describes PV-DM and PV-DBOW and *rejects* them:
/// trained only on the small collected corpus they "do not manage to
/// generalize the document representation", which is why the deployed
/// system averages frozen pretrained word vectors instead. This trainer
/// exists so the `ablation_pvdbow` benchmark can verify that choice: on the
/// laptop-scale corpus, PV-DBOW document vectors should classify audience
/// interest no better than the frozen-store Doc2Vec averages.
struct PvDbowOptions {
  size_t dimension = 100;
  size_t negative_samples = 5;
  size_t epochs = 10;
  double learning_rate = 0.025;
  double min_learning_rate = 1e-4;
  size_t min_count = 2;
  uint64_t seed = 23;
  /// Parallel training. With a resolved shard count of 1 (the default),
  /// training is the exact legacy sequential loop. With S > 1 shards,
  /// each epoch trains S fixed document shards concurrently: every shard
  /// draws negatives from its own RNG stream (ShardRng(seed, epoch * S +
  /// shard)) against a replica of the epoch-start output weights, and the
  /// per-shard weight deltas are merged in shard order. Results depend
  /// only on (seed, S) — never on thread count — so pin `shards` to
  /// compare runs across machines. Shard replicas cost S copies of the
  /// output matrix; the trainer caps S at 8.
  Parallelism parallelism;
};

struct PvDbowResult {
  /// One row per input document, in input order.
  la::Matrix doc_vectors;
};

/// Trains document vectors: for each document, its vector is optimised to
/// predict the document's own words against negative samples (the PV-DBOW
/// objective, without the optional word-vector training).
StatusOr<PvDbowResult> TrainPvDbow(
    const std::vector<std::vector<std::string>>& documents,
    const PvDbowOptions& options);

/// Paragraph Vectors - Distributed Memory (the PV-DM variant of §3.4):
/// the document vector is averaged with the context word vectors to
/// predict the centre word, so word order/context participates (unlike
/// PV-DBOW). Same options struct; `window` is fixed at 4.
StatusOr<PvDbowResult> TrainPvDm(
    const std::vector<std::vector<std::string>>& documents,
    const PvDbowOptions& options);

}  // namespace newsdiff::embed

#endif  // NEWSDIFF_EMBED_PVDBOW_H_
