#include "topic/coherence.h"

#include <cmath>

#include <gtest/gtest.h>

namespace newsdiff::topic {
namespace {

corpus::Corpus CooccurrenceCorpus() {
  corpus::Corpus corp;
  // "sun" and "moon" always co-occur; "sun" and "fork" never do.
  for (int i = 0; i < 10; ++i) corp.AddDocument({"sun", "moon", "sky"});
  for (int i = 0; i < 10; ++i) corp.AddDocument({"fork", "spoon", "plate"});
  return corp;
}

TEST(CoherenceTest, CoherentTopicScoresHigherThanIncoherent) {
  corpus::Corpus corp = CooccurrenceCorpus();
  double coherent = UMassCoherence({"sun", "moon", "sky"}, corp);
  double incoherent = UMassCoherence({"sun", "fork", "plate"}, corp);
  EXPECT_GT(coherent, incoherent);
}

TEST(CoherenceTest, PerfectCooccurrenceNearZero) {
  corpus::Corpus corp = CooccurrenceCorpus();
  // D(sun,moon)=10, D(moon)=10 -> log(11/10) > 0 per pair; close to 0.
  double c = UMassCoherence({"sun", "moon"}, corp);
  EXPECT_NEAR(c, std::log(11.0 / 10.0), 1e-12);
}

TEST(CoherenceTest, DisjointPairStronglyNegative) {
  corpus::Corpus corp = CooccurrenceCorpus();
  double c = UMassCoherence({"sun", "fork"}, corp);
  EXPECT_NEAR(c, std::log(1.0 / 10.0), 1e-12);
}

TEST(CoherenceTest, UnknownKeywordsSkipped) {
  corpus::Corpus corp = CooccurrenceCorpus();
  double with_unknown = UMassCoherence({"sun", "moon", "zzz"}, corp);
  double without = UMassCoherence({"sun", "moon"}, corp);
  EXPECT_DOUBLE_EQ(with_unknown, without);
  // Fewer than two known keywords -> 0.
  EXPECT_DOUBLE_EQ(UMassCoherence({"zzz", "yyy"}, corp), 0.0);
  EXPECT_DOUBLE_EQ(UMassCoherence({"sun"}, corp), 0.0);
}

TEST(CoherenceTest, MeanOverTopics) {
  corpus::Corpus corp = CooccurrenceCorpus();
  double a = UMassCoherence({"sun", "moon"}, corp);
  double b = UMassCoherence({"fork", "spoon"}, corp);
  double mean = MeanUMassCoherence({{"sun", "moon"}, {"fork", "spoon"}}, corp);
  EXPECT_NEAR(mean, (a + b) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(MeanUMassCoherence({}, corp), 0.0);
}

}  // namespace
}  // namespace newsdiff::topic
