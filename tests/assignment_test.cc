#include "core/assignment.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace newsdiff::core {
namespace {

TEST(AssignmentTest, EmptyAndInvalid) {
  la::Matrix empty;
  auto result = SolveAssignment(empty);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());

  la::Matrix wide(3, 2);  // rows > cols
  EXPECT_FALSE(SolveAssignment(wide).ok());
}

TEST(AssignmentTest, IdentityOnDiagonalMatrix) {
  // Cheapest on the diagonal.
  la::Matrix cost = la::Matrix::FromRows({
      {0.0, 5.0, 5.0},
      {5.0, 0.0, 5.0},
      {5.0, 5.0, 0.0},
  });
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<int>{0, 1, 2}));
}

TEST(AssignmentTest, AvoidsGreedyTrap) {
  // Greedy would give row0 -> col0 (cost 1) forcing row1 -> col1 (cost 10),
  // total 11; optimal is row0 -> col1 (2) + row1 -> col0 (3) = 5.
  la::Matrix cost = la::Matrix::FromRows({
      {1.0, 2.0},
      {3.0, 10.0},
  });
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<int>{1, 0}));
}

TEST(AssignmentTest, RectangularLeavesColumnsFree) {
  la::Matrix cost = la::Matrix::FromRows({
      {9.0, 1.0, 9.0, 9.0},
      {9.0, 9.0, 9.0, 1.0},
  });
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<int>{1, 3}));
}

TEST(AssignmentTest, NegativeCostsSupported) {
  la::Matrix cost = la::Matrix::FromRows({
      {-5.0, 0.0},
      {0.0, -5.0},
  });
  auto result = SolveAssignment(cost);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (std::vector<int>{0, 1}));
}

/// Property: the Hungarian result is never worse than brute force over all
/// permutations (exact equality of totals) for random small matrices.
class AssignmentBruteForceSweep : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(AssignmentBruteForceSweep, MatchesBruteForceOptimum) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 2 + rng.NextBelow(4);  // 2..5
    size_t m = n + rng.NextBelow(3);  // n..n+2
    la::Matrix cost = la::Matrix::Random(n, m, -3.0, 3.0, rng);
    auto result = SolveAssignment(cost);
    ASSERT_TRUE(result.ok());
    double total = 0.0;
    std::vector<bool> used(m, false);
    for (size_t r = 0; r < n; ++r) {
      int c = (*result)[r];
      ASSERT_GE(c, 0);
      ASSERT_LT(static_cast<size_t>(c), m);
      EXPECT_FALSE(used[static_cast<size_t>(c)]) << "column reused";
      used[static_cast<size_t>(c)] = true;
      total += cost(r, static_cast<size_t>(c));
    }
    // Brute force over column permutations.
    std::vector<size_t> cols(m);
    for (size_t c = 0; c < m; ++c) cols[c] = c;
    double best = 1e18;
    std::sort(cols.begin(), cols.end());
    do {
      double t = 0.0;
      for (size_t r = 0; r < n; ++r) t += cost(r, cols[r]);
      best = std::min(best, t);
    } while (std::next_permutation(cols.begin(), cols.end()));
    EXPECT_NEAR(total, best, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignmentBruteForceSweep,
                         ::testing::Values(11ull, 22ull, 33ull));

TEST(OptimalTrendingTest, NoEventClaimedTwice) {
  // Two topics both closest to event 0; greedy gives both to event 0, the
  // optimal matcher must spread them.
  std::unordered_map<std::string, std::vector<double>> table;
  table["a"] = {1.0, 0.0};
  table["b"] = {0.9, 0.1};
  table["c"] = {0.8, 0.2};
  embed::PretrainedStore store{embed::WordVectors(2, std::move(table))};

  auto topic_of = [](size_t id, std::vector<std::string> kws) {
    topic::Topic t;
    t.id = id;
    t.keywords = std::move(kws);
    t.weights.assign(t.keywords.size(), 1.0);
    return t;
  };
  auto event_of = [](const std::string& main_word,
                     std::vector<std::string> related) {
    event::Event ev;
    ev.main_word = main_word;
    ev.related_words = std::move(related);
    ev.related_weights.assign(ev.related_words.size(), 0.8);
    return ev;
  };
  std::vector<topic::Topic> topics = {topic_of(0, {"a"}), topic_of(1, {"b"})};
  std::vector<event::Event> events = {event_of("a", {}), event_of("c", {})};

  TrendingOptions opts;
  opts.min_similarity = 0.5;
  auto greedy = ExtractTrendingTopics(topics, events, store, opts);
  ASSERT_EQ(greedy.size(), 2u);
  EXPECT_EQ(greedy[0].news_event, greedy[1].news_event);  // both pick event 0

  auto optimal = ExtractTrendingTopicsOptimal(topics, events, store, opts);
  ASSERT_EQ(optimal.size(), 2u);
  EXPECT_NE(optimal[0].news_event, optimal[1].news_event);
}

TEST(OptimalTrendingTest, ThresholdStillApplies) {
  std::unordered_map<std::string, std::vector<double>> table;
  table["x"] = {1.0, 0.0};
  table["y"] = {0.0, 1.0};
  embed::PretrainedStore store{embed::WordVectors(2, std::move(table))};
  topic::Topic t;
  t.id = 0;
  t.keywords = {"x"};
  t.weights = {1.0};
  event::Event ev;
  ev.main_word = "y";
  TrendingOptions opts;
  opts.min_similarity = 0.7;
  EXPECT_TRUE(ExtractTrendingTopicsOptimal({t}, {ev}, store, opts).empty());
}

}  // namespace
}  // namespace newsdiff::core
