#include "datagen/world.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace newsdiff::datagen {
namespace {

WorldOptions SmallOptions(uint64_t seed = 5) {
  WorldOptions opts;
  opts.seed = seed;
  opts.num_users = 200;
  opts.num_articles = 300;
  opts.num_tweets = 800;
  return opts;
}

TEST(ThemesTest, BuiltInThemesWellFormed) {
  EXPECT_EQ(NewsThemes().size(), 12u);
  EXPECT_EQ(ChatterThemes().size(), 5u);
  for (const Theme& t : NewsThemes()) {
    EXPECT_FALSE(t.name.empty());
    EXPECT_GE(t.words.size(), 15u);
    EXPECT_FALSE(t.chatter);
    std::set<std::string> distinct(t.words.begin(), t.words.end());
    EXPECT_EQ(distinct.size(), t.words.size()) << t.name;
  }
  for (const Theme& t : ChatterThemes()) {
    EXPECT_TRUE(t.chatter);
  }
  EXPECT_GE(GenericWords().size(), 100u);
}

TEST(EncodeCountClassTest, Table2Boundaries) {
  EXPECT_EQ(EncodeCountClass(0), 0);
  EXPECT_EQ(EncodeCountClass(99), 0);
  EXPECT_EQ(EncodeCountClass(100), 1);
  EXPECT_EQ(EncodeCountClass(1000), 1);
  EXPECT_EQ(EncodeCountClass(1001), 2);
  EXPECT_EQ(EncodeCountClass(5000000), 2);
}

TEST(FollowerBucketTest, SevenBucketsMonotone) {
  int prev = -1;
  for (int64_t f : {10LL, 150LL, 500LL, 1500LL, 5000LL, 50000LL, 500000LL}) {
    int b = FollowerBucket7(f);
    EXPECT_GT(b, prev);
    EXPECT_GE(b, 0);
    EXPECT_LT(b, 7);
    prev = b;
  }
}

TEST(WorldTest, DeterministicForSeed) {
  World a = GenerateWorld(SmallOptions(9));
  World b = GenerateWorld(SmallOptions(9));
  ASSERT_EQ(a.tweets.size(), b.tweets.size());
  for (size_t i = 0; i < a.tweets.size(); ++i) {
    EXPECT_EQ(a.tweets[i].text, b.tweets[i].text);
    EXPECT_EQ(a.tweets[i].likes, b.tweets[i].likes);
  }
  ASSERT_EQ(a.articles.size(), b.articles.size());
  EXPECT_EQ(a.articles[0].body, b.articles[0].body);
}

TEST(WorldTest, DifferentSeedsDiffer) {
  World a = GenerateWorld(SmallOptions(1));
  World b = GenerateWorld(SmallOptions(2));
  EXPECT_NE(a.tweets[0].text, b.tweets[0].text);
}

TEST(WorldTest, CountsMatchOptions) {
  WorldOptions opts = SmallOptions();
  World world = GenerateWorld(opts);
  EXPECT_EQ(world.users.size(), opts.num_users);
  EXPECT_EQ(world.articles.size(), opts.num_articles);
  EXPECT_EQ(world.tweets.size(), opts.num_tweets);
  EXPECT_EQ(world.events.size(),
            opts.num_news_events + opts.num_chatter_events);
}

TEST(WorldTest, TimestampsWithinWindowAndSorted) {
  WorldOptions opts = SmallOptions();
  World world = GenerateWorld(opts);
  UnixSeconds t0 = opts.start_time;
  UnixSeconds t1 = t0 + opts.duration_days * kSecondsPerDay;
  for (size_t i = 0; i < world.tweets.size(); ++i) {
    EXPECT_GE(world.tweets[i].created, t0);
    EXPECT_LE(world.tweets[i].created, t1);
    if (i > 0) {
      EXPECT_LE(world.tweets[i - 1].created, world.tweets[i].created);
    }
  }
  for (size_t i = 1; i < world.articles.size(); ++i) {
    EXPECT_LE(world.articles[i - 1].published, world.articles[i].published);
  }
}

TEST(WorldTest, EventWindowsRespectCorrelationConstraint) {
  World world = GenerateWorld(SmallOptions());
  for (const PlantedEvent& ev : world.events) {
    if (ev.chatter) continue;
    EXPECT_GE(ev.twitter_start, ev.news_start);
    EXPECT_LE(ev.twitter_start, ev.news_start + 5 * kSecondsPerDay);
    EXPECT_GT(ev.news_end, ev.news_start);
    EXPECT_GT(ev.twitter_end, ev.twitter_start);
  }
}

TEST(WorldTest, UsersHaveConsistentEncodings) {
  World world = GenerateWorld(SmallOptions());
  for (const UserProfile& u : world.users) {
    EXPECT_GE(u.followers, 1);
    EXPECT_EQ(u.follower_class, EncodeCountClass(u.followers));
    EXPECT_EQ(u.follower_bucket, FollowerBucket7(u.followers));
  }
}

TEST(WorldTest, EventTweetsStayInTheirWindow) {
  World world = GenerateWorld(SmallOptions());
  for (const Tweet& t : world.tweets) {
    if (t.event_id < 0) continue;
    const PlantedEvent& ev = world.events[static_cast<size_t>(t.event_id)];
    EXPECT_GE(t.created, ev.twitter_start);
    EXPECT_LE(t.created, ev.twitter_end);
  }
}

TEST(WorldTest, ArticlesOnEventsStayInNewsWindow) {
  World world = GenerateWorld(SmallOptions());
  for (const NewsArticle& a : world.articles) {
    if (a.event_id < 0) continue;
    const PlantedEvent& ev = world.events[static_cast<size_t>(a.event_id)];
    EXPECT_FALSE(ev.chatter);  // articles never attach to chatter events
    EXPECT_GE(a.published, ev.news_start);
    EXPECT_LE(a.published, ev.news_end);
  }
}

TEST(WorldTest, InfluencersEarnMoreEngagement) {
  // The paper's first assumption: follower count drives engagement. Check
  // the generated data actually encodes it (medians by follower class).
  WorldOptions opts = SmallOptions();
  opts.num_tweets = 4000;
  World world = GenerateWorld(opts);
  std::vector<int64_t> low, high;
  for (const Tweet& t : world.tweets) {
    int cls = world.users[t.user].follower_class;
    if (cls == 0) low.push_back(t.likes);
    if (cls == 2) high.push_back(t.likes);
  }
  ASSERT_GT(low.size(), 50u);
  ASSERT_GT(high.size(), 50u);
  auto median = [](std::vector<int64_t>& v) {
    std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
    return v[v.size() / 2];
  };
  EXPECT_GT(median(high), median(low) * 2);
}

TEST(WorldTest, WeekendTweetsEarnMoreEngagement) {
  // The second assumption: day of week shifts engagement (dow_boost makes
  // Sat/Sun higher than Tue/Wed).
  WorldOptions opts = SmallOptions();
  opts.num_tweets = 6000;
  World world = GenerateWorld(opts);
  double weekend_sum = 0.0, midweek_sum = 0.0;
  size_t weekend_n = 0, midweek_n = 0;
  for (const Tweet& t : world.tweets) {
    int dow = DayOfWeek(t.created);
    double log_likes = std::log(1.0 + static_cast<double>(t.likes));
    if (dow >= 5) {
      weekend_sum += log_likes;
      ++weekend_n;
    } else if (dow == 1 || dow == 2) {
      midweek_sum += log_likes;
      ++midweek_n;
    }
  }
  ASSERT_GT(weekend_n, 100u);
  ASSERT_GT(midweek_n, 100u);
  EXPECT_GT(weekend_sum / weekend_n, midweek_sum / midweek_n);
}

TEST(WorldTest, LoadIntoStorePopulatesCollections) {
  World world = GenerateWorld(SmallOptions());
  store::Database db;
  world.LoadInto(db);
  ASSERT_NE(db.Get("users"), nullptr);
  ASSERT_NE(db.Get("news"), nullptr);
  ASSERT_NE(db.Get("tweets"), nullptr);
  EXPECT_EQ(db.Get("users")->size(), world.users.size());
  EXPECT_EQ(db.Get("news")->size(), world.articles.size());
  EXPECT_EQ(db.Get("tweets")->size(), world.tweets.size());
  // Spot-check one tweet document's fields.
  auto doc = db.Get("tweets")->FindOne(
      store::Filter().Eq("tweet_id", store::Value(world.tweets[0].id)));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("text")->AsString(), world.tweets[0].text);
  EXPECT_EQ(doc->Find("likes")->AsInt(), world.tweets[0].likes);
}

TEST(BackgroundSentencesTest, DeterministicAndWellFormed) {
  auto a = BackgroundSentences(50, 3);
  auto b = BackgroundSentences(50, 3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 50u);
  for (const auto& sent : a) {
    EXPECT_GE(sent.size(), 8u);
    for (const std::string& w : sent) EXPECT_FALSE(w.empty());
  }
  auto c = BackgroundSentences(50, 4);
  EXPECT_NE(a, c);
}

TEST(BackgroundSentencesTest, CoversThemeVocabulary) {
  auto sentences = BackgroundSentences(4000, 7);
  std::set<std::string> seen;
  for (const auto& sent : sentences) {
    for (const std::string& w : sent) seen.insert(w);
  }
  // Most theme words should occur in a large background sample.
  size_t covered = 0, total = 0;
  for (const Theme& t : NewsThemes()) {
    for (const std::string& w : t.words) {
      ++total;
      if (seen.count(w) > 0) ++covered;
    }
  }
  EXPECT_GT(static_cast<double>(covered) / static_cast<double>(total), 0.9);
}

/// Property sweep over seeds: class labels span all three Table-2 classes
/// and chatter events never get news articles.
class WorldSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WorldSeedSweep, EngagementClassesPopulated) {
  WorldOptions opts = SmallOptions(GetParam());
  opts.num_tweets = 3000;
  World world = GenerateWorld(opts);
  std::set<int> like_classes, retweet_classes;
  for (const Tweet& t : world.tweets) {
    like_classes.insert(EncodeCountClass(t.likes));
    retweet_classes.insert(EncodeCountClass(t.retweets));
  }
  EXPECT_EQ(like_classes.size(), 3u);
  EXPECT_EQ(retweet_classes.size(), 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorldSeedSweep,
                         ::testing::Values(1ull, 2021ull, 777ull));

}  // namespace
}  // namespace newsdiff::datagen
