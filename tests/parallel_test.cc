#include "common/parallel.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace newsdiff {
namespace {

TEST(ParallelShardBounds, CoversRangeDisjointly) {
  for (size_t range : {0u, 1u, 2u, 7u, 16u, 17u, 100u, 1000u}) {
    for (size_t shards : {1u, 2u, 3u, 16u, 64u}) {
      std::vector<int> hits(range, 0);
      size_t prev_end = 0;
      for (size_t s = 0; s < shards; ++s) {
        ShardRange r = ShardBounds(range, shards, s);
        EXPECT_EQ(r.begin, prev_end) << "range=" << range << " shard=" << s;
        EXPECT_LE(r.end, range);
        prev_end = r.end;
        for (size_t i = r.begin; i < r.end; ++i) ++hits[i];
      }
      EXPECT_EQ(prev_end, range) << "range=" << range << " shards=" << shards;
      for (size_t i = 0; i < range; ++i) EXPECT_EQ(hits[i], 1);
    }
  }
}

TEST(ParallelShardBounds, SizesDifferByAtMostOne) {
  ShardRange a = ShardBounds(10, 4, 0);
  ShardRange b = ShardBounds(10, 4, 3);
  EXPECT_EQ(a.size(), 3u);  // 10 = 3+3+2+2
  EXPECT_EQ(b.size(), 2u);
}

TEST(ParallelResolveShards, FollowsContract) {
  EXPECT_EQ(ResolveShards({}, 100), 1u);               // serial default
  EXPECT_EQ(ResolveShards({.threads = 8}, 100), kDefaultShards);
  EXPECT_EQ(ResolveShards({.threads = 8}, 5), 5u);     // clamped to range
  EXPECT_EQ(ResolveShards({.threads = 8, .shards = 4}, 100), 4u);
  EXPECT_EQ(ResolveShards({.threads = 1, .shards = 4}, 100), 4u);
  EXPECT_EQ(ResolveShards({.threads = 8}, 0), 0u);     // empty range
}

TEST(ParallelFor, EmptyRangeRunsNothing) {
  std::atomic<int> calls{0};
  ParallelFor({.threads = 8}, 0,
              [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanShardCount) {
  Parallelism par{.threads = 8, .shards = 16};
  std::vector<int> hits(3, 0);
  ParallelFor(par, 3, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ++hits[i];
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, VisitsEveryElementOnceAcrossThreadCounts) {
  constexpr size_t kN = 10007;
  for (size_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h = 0;
    ParallelFor({.threads = threads}, kN,
                [&](size_t, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) ++hits[i];
                });
    for (size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

TEST(ParallelReduce, BitwiseEqualAcrossThreadCountsWithPinnedShards) {
  // Sum of 10k doubles whose magnitudes vary enough that reassociation
  // changes the result; pinning shards must make every thread count agree
  // bitwise.
  constexpr size_t kN = 10000;
  std::vector<double> v(kN);
  Rng rng(7);
  for (double& x : v) x = (rng.NextDouble() - 0.5) * std::exp2(rng.NextBelow(30));

  auto reduce = [&](size_t threads) {
    Parallelism par{.threads = threads, .shards = 16};
    return ParallelReduce(
        par, kN, 0.0,
        [&](size_t, size_t begin, size_t end) {
          double acc = 0.0;
          for (size_t i = begin; i < end; ++i) acc += v[i];
          return acc;
        },
        [](double a, double b) { return a + b; });
  };

  const double serial = reduce(1);
  for (size_t threads : {2u, 4u, 8u}) {
    double parallel = reduce(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

TEST(ParallelFor, ExceptionFromOneShardPropagatesAndJoins) {
  Parallelism par{.threads = 4, .shards = 8};
  std::atomic<int> ran{0};
  auto boom = [&]() {
    ParallelFor(par, 8, [&](size_t shard, size_t, size_t) {
      ++ran;
      if (shard == 3) throw std::runtime_error("shard 3 failed");
    });
  };
  EXPECT_THROW(boom(), std::runtime_error);
  // Every shard still ran (the pool joined cleanly rather than abandoning
  // work mid-flight).
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelFor, LowestThrowingShardWinsDeterministically) {
  Parallelism par{.threads = 4, .shards = 8};
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      ParallelFor(par, 8, [&](size_t shard, size_t, size_t) {
        if (shard >= 2) throw std::runtime_error("shard " + std::to_string(shard));
      });
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "shard 2");
    }
  }
}

TEST(ParallelFor, PoolUsableAfterException) {
  Parallelism par{.threads = 4, .shards = 8};
  EXPECT_THROW(ParallelFor(par, 8,
                           [&](size_t, size_t, size_t) {
                             throw std::runtime_error("x");
                           }),
               std::runtime_error);
  std::atomic<size_t> sum{0};
  ParallelFor(par, 100, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ParallelFor, NestedCallRunsInlineInShardOrder) {
  Parallelism par{.threads = 4, .shards = 4};
  std::vector<std::vector<size_t>> inner_orders(4);
  std::atomic<bool> saw_region{false};
  ParallelFor(par, 4, [&](size_t shard, size_t, size_t) {
    if (InParallelRegion()) saw_region = true;
    // Nested ParallelFor must not re-enter the pool; it runs inline, so
    // the inner shard order is exactly 0,1,2,3 on this thread.
    ParallelFor(par, 4, [&](size_t inner, size_t, size_t) {
      inner_orders[shard].push_back(inner);
    });
  });
  EXPECT_TRUE(saw_region.load());
  EXPECT_FALSE(InParallelRegion());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(inner_orders[s], (std::vector<size_t>{0, 1, 2, 3}));
  }
}

TEST(ParallelFor, OversubscriptionBeyondHardwareThreads) {
  // 64 threads on any machine: shards must still each run exactly once
  // and the reduction must stay bitwise equal to serial.
  constexpr size_t kN = 5000;
  std::vector<double> v(kN);
  Rng rng(11);
  for (double& x : v) x = rng.NextDouble();
  auto sum_with = [&](size_t threads) {
    Parallelism par{.threads = threads, .shards = 16};
    return ParallelReduce(
        par, kN, 0.0,
        [&](size_t, size_t begin, size_t end) {
          return std::accumulate(v.begin() + begin, v.begin() + end, 0.0);
        },
        [](double a, double b) { return a + b; });
  };
  EXPECT_EQ(sum_with(1), sum_with(64));
}

TEST(ParallelShardRng, StreamsAreIndependentAndReproducible) {
  Rng a0 = ShardRng(23, 0);
  Rng a0_again = ShardRng(23, 0);
  Rng a1 = ShardRng(23, 1);
  Rng b0 = ShardRng(24, 0);
  uint64_t x = a0.NextU64();
  EXPECT_EQ(x, a0_again.NextU64());  // reproducible
  EXPECT_NE(x, a1.NextU64());        // distinct streams
  EXPECT_NE(x, b0.NextU64());        // distinct seeds
}

TEST(ParallelMisc, HardwareThreadsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

}  // namespace
}  // namespace newsdiff
