#include "event/tracker.h"

#include <gtest/gtest.h>

namespace newsdiff::event {
namespace {

Event MakeEvent(const std::string& main_word,
                std::vector<std::string> related, UnixSeconds start,
                UnixSeconds end) {
  Event ev;
  ev.main_word = main_word;
  ev.related_words = std::move(related);
  ev.related_weights.assign(ev.related_words.size(), 0.8);
  ev.start_time = start;
  ev.end_time = end;
  return ev;
}

TEST(TrackerTest, FirstUpdateCreatesTracks) {
  EventTracker tracker;
  auto ids = tracker.Update({MakeEvent("brexit", {"vote"}, 0, 100),
                             MakeEvent("tariff", {"trade"}, 50, 150)});
  EXPECT_EQ(ids, (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(tracker.tracks().size(), 2u);
  EXPECT_EQ(tracker.ActiveTracks().size(), 2u);
}

TEST(TrackerTest, SameMainWordOverlapContinuesTrack) {
  EventTracker tracker;
  tracker.Update({MakeEvent("brexit", {"vote"}, 0, 100)});
  auto ids = tracker.Update({MakeEvent("brexit", {"deal"}, 80, 200)});
  EXPECT_EQ(ids, (std::vector<int64_t>{0}));
  EXPECT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].observations, 2u);
  EXPECT_EQ(tracker.tracks()[0].latest.end_time, 200);
}

TEST(TrackerTest, RelatedWordLinkContinuesTrack) {
  EventTracker tracker;
  tracker.Update({MakeEvent("brexit", {"vote", "deal"}, 0, 100)});
  // New event whose main word was a related word of the old one.
  auto ids = tracker.Update({MakeEvent("vote", {"poll"}, 90, 150)});
  EXPECT_EQ(ids, (std::vector<int64_t>{0}));
}

TEST(TrackerTest, NoOverlapStartsNewTrack) {
  EventTracker tracker;
  tracker.Update({MakeEvent("brexit", {"vote"}, 0, 100)});
  auto ids = tracker.Update({MakeEvent("brexit", {"vote"}, 500, 600)});
  EXPECT_EQ(ids, (std::vector<int64_t>{1}));
  EXPECT_EQ(tracker.tracks().size(), 2u);
}

TEST(TrackerTest, DifferentWordsStartNewTrack) {
  EventTracker tracker;
  tracker.Update({MakeEvent("brexit", {"vote"}, 0, 100)});
  auto ids = tracker.Update({MakeEvent("coffee", {"espresso"}, 0, 100)});
  EXPECT_EQ(ids, (std::vector<int64_t>{1}));
}

TEST(TrackerTest, InactiveTracksReportedCorrectly) {
  EventTracker tracker;
  tracker.Update({MakeEvent("brexit", {"vote"}, 0, 100),
                  MakeEvent("tariff", {"trade"}, 0, 100)});
  tracker.Update({MakeEvent("brexit", {"vote"}, 50, 150)});
  auto active = tracker.ActiveTracks();
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0]->latest.main_word, "brexit");
  EXPECT_EQ(tracker.tracks().size(), 2u);
}

TEST(TrackerTest, OneObservationPerTrackPerRun) {
  EventTracker tracker;
  tracker.Update({MakeEvent("brexit", {"vote"}, 0, 100)});
  // Two matching events in one run: the second must open a new track.
  auto ids = tracker.Update({MakeEvent("brexit", {"deal"}, 50, 150),
                             MakeEvent("brexit", {"poll"}, 60, 160)});
  EXPECT_EQ(ids[0], 0);
  EXPECT_EQ(ids[1], 1);
}

TEST(TrackerTest, LongRunningStoryAccumulatesObservations) {
  EventTracker tracker;
  for (int run = 0; run < 5; ++run) {
    tracker.Update({MakeEvent("iran", {"sanction"}, run * 50,
                              run * 50 + 100)});
  }
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].observations, 5u);
}

}  // namespace
}  // namespace newsdiff::event
