#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dense.h"
#include "nn/loss.h"

namespace newsdiff::nn {
namespace {

/// Finite-difference gradient check: perturbs each input (and parameter)
/// coordinate and compares against the analytic backward pass, using the
/// scalar objective L = sum(output .* seed_weights).
void CheckGradients(Layer& layer, const la::Matrix& input, double tol) {
  Rng rng(12345);
  la::Matrix out = layer.Forward(input, /*training=*/true);
  la::Matrix seed = la::Matrix::Random(out.rows(), out.cols(), -1.0, 1.0, rng);
  la::Matrix grad_in = layer.Backward(seed);

  auto objective = [&](const la::Matrix& x) {
    la::Matrix y = layer.Forward(x, /*training=*/false);
    double s = 0.0;
    for (size_t i = 0; i < y.size(); ++i) {
      s += y.data()[i] * seed.data()[i];
    }
    return s;
  };

  const double eps = 1e-6;
  // Input gradients.
  la::Matrix x = input;
  for (size_t i = 0; i < x.size(); i += std::max<size_t>(1, x.size() / 50)) {
    double orig = x.data()[i];
    x.data()[i] = orig + eps;
    double up = objective(x);
    x.data()[i] = orig - eps;
    double down = objective(x);
    x.data()[i] = orig;
    double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(grad_in.data()[i], numeric, tol) << "input coord " << i;
  }

  // Parameter gradients (analytic grads were stored by the Backward above).
  for (Param& p : layer.Params()) {
    la::Matrix& value = *p.value;
    const la::Matrix& analytic = *p.grad;
    for (size_t i = 0; i < value.size();
         i += std::max<size_t>(1, value.size() / 40)) {
      double orig = value.data()[i];
      value.data()[i] = orig + eps;
      double up = objective(input);
      value.data()[i] = orig - eps;
      double down = objective(input);
      value.data()[i] = orig;
      double numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(analytic.data()[i], numeric, tol)
          << p.name << " coord " << i;
    }
  }
}

TEST(ActivationScalarsTest, Table1Values) {
  EXPECT_DOUBLE_EQ(ReluScalar(-2.0), 0.0);
  EXPECT_DOUBLE_EQ(ReluScalar(3.0), 3.0);
  EXPECT_DOUBLE_EQ(SigmoidScalar(0.0), 0.5);
  EXPECT_NEAR(SigmoidScalar(100.0), 1.0, 1e-12);
  EXPECT_NEAR(SigmoidScalar(-100.0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(TanhScalar(0.0), 0.0);
  EXPECT_NEAR(TanhScalar(1.0), std::tanh(1.0), 1e-15);
}

TEST(SoftmaxTest, RowsSumToOne) {
  la::Matrix logits = la::Matrix::FromRows({{1, 2, 3}, {-5, 0, 5}});
  la::Matrix p = Softmax(logits);
  for (size_t r = 0; r < p.rows(); ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < p.cols(); ++c) {
      EXPECT_GT(p(r, c), 0.0);
      sum += p(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // Ordering preserved.
  EXPECT_GT(p(0, 2), p(0, 1));
}

TEST(SoftmaxTest, NumericallyStableForHugeLogits) {
  la::Matrix logits = la::Matrix::FromRows({{1000.0, 1001.0}});
  la::Matrix p = Softmax(logits);
  EXPECT_TRUE(std::isfinite(p(0, 0)));
  EXPECT_NEAR(p(0, 0) + p(0, 1), 1.0, 1e-12);
}

TEST(DenseTest, ForwardKnownValues) {
  Rng rng(1);
  Dense dense(2, 2, rng);
  // Overwrite with known weights via Params().
  auto params = dense.Params();
  la::Matrix& w = *params[0].value;
  la::Matrix& b = *params[1].value;
  w = la::Matrix::FromRows({{1, 2}, {3, 4}});
  b = la::Matrix::FromRows({{10, 20}});
  la::Matrix x = la::Matrix::FromRows({{1, 1}});
  la::Matrix y = dense.Forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), 14.0);  // 1+3+10
  EXPECT_DOUBLE_EQ(y(0, 1), 26.0);  // 2+4+20
}

TEST(DenseTest, GradientCheck) {
  Rng rng(2);
  Dense dense(5, 4, rng);
  la::Matrix x = la::Matrix::Random(3, 5, -1.0, 1.0, rng);
  CheckGradients(dense, x, 1e-4);
}

TEST(ActivationTest, GradientCheckRelu) {
  Rng rng(3);
  Activation act(ActivationKind::kRelu);
  // Keep inputs away from the kink at 0.
  la::Matrix x = la::Matrix::Random(4, 6, 0.1, 1.0, rng);
  for (size_t i = 0; i < x.size(); i += 2) x.data()[i] *= -1.0;
  CheckGradients(act, x, 1e-4);
}

TEST(ActivationTest, GradientCheckSigmoidTanh) {
  Rng rng(4);
  Activation sigmoid(ActivationKind::kSigmoid);
  la::Matrix x = la::Matrix::Random(3, 5, -2.0, 2.0, rng);
  CheckGradients(sigmoid, x, 1e-4);
  Activation tanh_act(ActivationKind::kTanh);
  CheckGradients(tanh_act, x, 1e-4);
}

TEST(ActivationTest, Names) {
  EXPECT_EQ(Activation(ActivationKind::kRelu).Name(), "ReLU");
  EXPECT_EQ(Activation(ActivationKind::kSigmoid).Name(), "Sigmoid");
  EXPECT_EQ(Activation(ActivationKind::kTanh).Name(), "Tanh");
}

TEST(Conv1DTest, OutputShape) {
  Rng rng(5);
  Conv1D conv(10, 1, 3, 4, rng);
  EXPECT_EQ(conv.output_length(), 7u);
  la::Matrix x = la::Matrix::Random(2, 10, -1.0, 1.0, rng);
  la::Matrix y = conv.Forward(x, false);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 7u * 3u);
}

TEST(Conv1DTest, KnownConvolution) {
  Rng rng(6);
  Conv1D conv(4, 1, 1, 2, rng);
  auto params = conv.Params();
  *params[0].value = la::Matrix::FromRows({{1.0, -1.0}});  // difference kernel
  params[1].value->Fill(0.0);
  la::Matrix x = la::Matrix::FromRows({{1, 3, 6, 10}});
  la::Matrix y = conv.Forward(x, false);
  EXPECT_DOUBLE_EQ(y(0, 0), -2.0);
  EXPECT_DOUBLE_EQ(y(0, 1), -3.0);
  EXPECT_DOUBLE_EQ(y(0, 2), -4.0);
}

TEST(Conv1DTest, GradientCheck) {
  Rng rng(7);
  Conv1D conv(8, 2, 3, 3, rng);
  la::Matrix x = la::Matrix::Random(2, 16, -1.0, 1.0, rng);
  CheckGradients(conv, x, 1e-4);
}

TEST(MaxPoolTest, ForwardSelectsMaxima) {
  MaxPool1D pool(4, 1, 2);
  la::Matrix x = la::Matrix::FromRows({{1, 5, 3, 2}});
  la::Matrix y = pool.Forward(x, true);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(y(0, 1), 3.0);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  MaxPool1D pool(4, 1, 2);
  la::Matrix x = la::Matrix::FromRows({{1, 5, 3, 2}});
  pool.Forward(x, true);
  la::Matrix grad = la::Matrix::FromRows({{10.0, 20.0}});
  la::Matrix gx = pool.Backward(grad);
  EXPECT_DOUBLE_EQ(gx(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(gx(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(gx(0, 2), 20.0);
  EXPECT_DOUBLE_EQ(gx(0, 3), 0.0);
}

TEST(MaxPoolTest, MultiChannelLayout) {
  // 4 positions, 2 channels, pool 2: channels pooled independently.
  MaxPool1D pool(4, 2, 2);
  la::Matrix x(1, 8);
  // position-major, channel-minor: (p0c0,p0c1, p1c0,p1c1, ...)
  double vals[] = {1, 10, 2, 9, 3, 30, 4, 20};
  for (int i = 0; i < 8; ++i) x(0, i) = vals[i];
  la::Matrix y = pool.Forward(x, false);
  ASSERT_EQ(y.cols(), 4u);
  EXPECT_DOUBLE_EQ(y(0, 0), 2.0);   // max(p0c0, p1c0)
  EXPECT_DOUBLE_EQ(y(0, 1), 10.0);  // max(p0c1, p1c1)
  EXPECT_DOUBLE_EQ(y(0, 2), 4.0);
  EXPECT_DOUBLE_EQ(y(0, 3), 30.0);
}

TEST(MaxPoolTest, TruncatesTrailingPositions) {
  MaxPool1D pool(5, 1, 2);
  EXPECT_EQ(pool.output_length(), 2u);
  la::Matrix x = la::Matrix::FromRows({{1, 2, 3, 4, 99}});
  la::Matrix y = pool.Forward(x, false);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_DOUBLE_EQ(y(0, 1), 4.0);  // the 99 is dropped
}

TEST(LossTest, SoftmaxCrossEntropyKnownValue) {
  la::Matrix logits = la::Matrix::FromRows({{0.0, 0.0, 0.0}});
  LossResult lr = SoftmaxCrossEntropy(logits, {1});
  EXPECT_NEAR(lr.loss, std::log(3.0), 1e-12);
  // Gradient: softmax - onehot = 1/3 everywhere except label 1/3-1.
  EXPECT_NEAR(lr.grad(0, 0), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(lr.grad(0, 1), 1.0 / 3.0 - 1.0, 1e-12);
}

TEST(LossTest, SoftmaxCrossEntropyGradientCheck) {
  Rng rng(8);
  la::Matrix logits = la::Matrix::Random(3, 4, -1.0, 1.0, rng);
  std::vector<int> labels = {0, 3, 2};
  LossResult lr = SoftmaxCrossEntropy(logits, labels);
  const double eps = 1e-6;
  for (size_t i = 0; i < logits.size(); ++i) {
    la::Matrix up = logits, down = logits;
    up.data()[i] += eps;
    down.data()[i] -= eps;
    double numeric = (SoftmaxCrossEntropy(up, labels).loss -
                      SoftmaxCrossEntropy(down, labels).loss) /
                     (2 * eps);
    EXPECT_NEAR(lr.grad.data()[i], numeric, 1e-5);
  }
}

TEST(LossTest, BinaryCrossEntropyMatchesEquation12) {
  la::Matrix probs = la::Matrix::FromRows({{0.8}, {0.3}});
  LossResult lr = BinaryCrossEntropy(probs, {1, 0});
  double expected = -(std::log(0.8) + std::log(0.7)) / 2.0;
  EXPECT_NEAR(lr.loss, expected, 1e-12);
}

TEST(LossTest, MeanSquaredError) {
  la::Matrix out = la::Matrix::FromRows({{1.0, 2.0}});
  la::Matrix target = la::Matrix::FromRows({{0.0, 4.0}});
  LossResult lr = MeanSquaredError(out, target);
  EXPECT_NEAR(lr.loss, (1.0 + 4.0) / 2.0, 1e-12);
  EXPECT_NEAR(lr.grad(0, 0), 1.0, 1e-12);   // 2*(1-0)/2
  EXPECT_NEAR(lr.grad(0, 1), -2.0, 1e-12);  // 2*(2-4)/2
}

}  // namespace
}  // namespace newsdiff::nn
