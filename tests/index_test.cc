// Tests for the block-compressed inverted index (src/index): codec
// totality, cursor traversal, the exact-ranking contract against the
// brute-force reference, serialization round trips, every-byte-flip fuzz
// over the parser, and crash-at-every-op fault injection over IndexStore.
// Suite names carry the `Index` prefix: the asan/ubsan CI jobs select
// them by that regex.
#include "index/index.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/file_io.h"
#include "common/rng.h"
#include "corpus/corpus.h"
#include "datagen/faults.h"
#include "index/codec.h"
#include "index/postings.h"

namespace newsdiff::index {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------- codec --

TEST(IndexCodecTest, VarintRoundTrip) {
  std::string buf;
  const uint32_t values32[] = {0, 1, 127, 128, 300, 0xFFFFFFFFu};
  for (uint32_t v : values32) PutVarint32(&buf, v);
  const uint64_t values64[] = {0, 1, 1ull << 40, ~0ull};
  for (uint64_t v : values64) PutVarint64(&buf, v);
  ByteReader reader(buf);
  for (uint32_t want : values32) {
    uint32_t got = 0;
    ASSERT_TRUE(reader.ReadVarint32(&got).ok());
    EXPECT_EQ(got, want);
  }
  for (uint64_t want : values64) {
    uint64_t got = 0;
    ASSERT_TRUE(reader.ReadVarint64(&got).ok());
    EXPECT_EQ(got, want);
  }
  EXPECT_TRUE(reader.done());
}

TEST(IndexCodecTest, RejectsNonCanonicalAndTruncatedVarints) {
  {
    // Five bytes whose final byte overflows 32 bits.
    std::string buf("\xFF\xFF\xFF\xFF\x7F", 5);
    ByteReader reader(buf);
    uint32_t v = 0;
    EXPECT_FALSE(reader.ReadVarint32(&v).ok());
  }
  {
    // Continuation bit set on the last available byte.
    std::string buf("\x80", 1);
    ByteReader reader(buf);
    uint32_t v = 0;
    EXPECT_FALSE(reader.ReadVarint32(&v).ok());
  }
  {
    std::string buf;
    PutU32(&buf, 7);
    ByteReader reader(std::string_view(buf).substr(0, 3));
    uint32_t v = 0;
    EXPECT_FALSE(reader.ReadU32(&v).ok());
  }
}

TEST(IndexCodecTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  ByteReader reader(buf);
  std::string_view a, b;
  ASSERT_TRUE(reader.ReadLengthPrefixed(&a).ok());
  ASSERT_TRUE(reader.ReadLengthPrefixed(&b).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_TRUE(reader.done());
}

// ------------------------------------------------------------- fixtures --

/// A deterministic synthetic corpus with skewed document frequencies:
/// "common" terms appear nearly everywhere, "mid" terms in clusters, and
/// per-document rare terms; lengths vary so BM25 normalisation matters.
corpus::Corpus MakeCorpus(size_t num_docs, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> common = {"market", "bank", "rate"};
  const std::vector<std::string> mid = {"election", "storm", "striker",
                                        "vaccine", "merger", "tariff"};
  corpus::Corpus corpus;
  for (size_t d = 0; d < num_docs; ++d) {
    std::vector<std::string> tokens;
    const size_t length = 4 + rng.NextBelow(25);
    for (size_t t = 0; t < length; ++t) {
      const size_t bucket = rng.NextBelow(10);
      if (bucket < 5) {
        tokens.push_back(common[rng.NextBelow(common.size())]);
      } else if (bucket < 9) {
        tokens.push_back(mid[(d / 7 + rng.NextBelow(2)) % mid.size()]);
      } else {
        tokens.push_back("rare_" + std::to_string(rng.NextBelow(num_docs)));
      }
    }
    corpus.AddDocument(tokens, static_cast<UnixSeconds>(1000 + d),
                       static_cast<int64_t>(9000 + d));
  }
  return corpus;
}

std::vector<std::vector<std::string>> MakeQueries(size_t count,
                                                  uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> pool = {
      "market", "bank",    "rate",   "election", "storm",
      "striker", "vaccine", "merger", "tariff",   "rare_3",
      "rare_17", "absent_term"};
  std::vector<std::vector<std::string>> queries;
  for (size_t q = 0; q < count; ++q) {
    std::vector<std::string> terms;
    const size_t n = 1 + rng.NextBelow(4);
    for (size_t t = 0; t < n; ++t) {
      terms.push_back(pool[rng.NextBelow(pool.size())]);
    }
    queries.push_back(std::move(terms));
  }
  return queries;
}

void ExpectSameRanking(const std::vector<SearchResult>& got,
                       const std::vector<SearchResult>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << "rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << "rank " << i;  // bitwise
  }
}

// ----------------------------------------------------------- postings ----

TEST(IndexPostingsTest, CursorWalksMultipleBlocks) {
  IndexOptions options;
  options.block_size = 4;  // force several blocks
  corpus::Corpus corpus = MakeCorpus(60, 1);
  StatusOr<InvertedIndex> ix = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(ix.ok());
  const uint32_t term = ix->TermId("market");
  ASSERT_NE(term, corpus::kUnknownTerm);
  const PostingList& list = ix->Postings(term);
  ASSERT_GT(list.blocks.size(), 3u);

  // Next() enumerates exactly the documents containing the term,
  // ascending, with the right frequencies.
  PostingCursor cursor(&list);
  uint32_t prev = kInvalidDoc;
  size_t seen = 0;
  while (!cursor.exhausted()) {
    const uint32_t doc = cursor.doc();
    if (prev != kInvalidDoc) EXPECT_GT(doc, prev);
    uint32_t want_tf = 0;
    for (const corpus::TermCount& tc : corpus.doc(doc).counts) {
      if (tc.term == term) want_tf = tc.count;
    }
    EXPECT_EQ(cursor.freq(), want_tf);
    EXPECT_GT(want_tf, 0u);
    prev = doc;
    ++seen;
    cursor.Next();
  }
  EXPECT_EQ(seen, list.doc_count);
}

TEST(IndexPostingsTest, NextGeqSkipsAndAgreesWithLinearScan) {
  IndexOptions options;
  options.block_size = 4;
  corpus::Corpus corpus = MakeCorpus(80, 2);
  StatusOr<InvertedIndex> ix = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(ix.ok());
  const uint32_t term = ix->TermId("market");
  const PostingList& list = ix->Postings(term);

  // Collect the true posting docs once.
  std::vector<uint32_t> docs;
  for (PostingCursor c(&list); !c.exhausted(); c.Next()) {
    docs.push_back(c.doc());
  }
  for (uint32_t target = 0; target <= 81; target += 3) {
    PostingCursor c(&list);
    c.NextGeq(target);
    auto it = std::lower_bound(docs.begin(), docs.end(), target);
    if (it == docs.end()) {
      EXPECT_TRUE(c.exhausted()) << "target " << target;
    } else {
      ASSERT_FALSE(c.exhausted()) << "target " << target;
      EXPECT_EQ(c.doc(), *it) << "target " << target;
    }
  }
}

// -------------------------------------------------------- exact ranking --

TEST(IndexRankingTest, TopKMatchesBruteForceOnManyQueries) {
  IndexOptions options;
  corpus::Corpus corpus = MakeCorpus(400, 3);
  StatusOr<InvertedIndex> ix = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(ix.ok());
  for (const std::vector<std::string>& q : MakeQueries(120, 4)) {
    for (size_t k : {1u, 5u, 23u}) {
      ExpectSameRanking(ix->TopK(q, k),
                        BruteForceTopK(corpus, options, q, k));
    }
  }
}

TEST(IndexRankingTest, TopKMatchesBruteForceWithTinyBlocks) {
  // Small blocks exercise the block-max skipping machinery far harder.
  IndexOptions options;
  options.block_size = 3;
  corpus::Corpus corpus = MakeCorpus(150, 5);
  StatusOr<InvertedIndex> ix = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(ix.ok());
  for (const std::vector<std::string>& q : MakeQueries(60, 6)) {
    ExpectSameRanking(ix->TopK(q, 10),
                      BruteForceTopK(corpus, options, q, 10));
  }
}

TEST(IndexRankingTest, EdgeCases) {
  IndexOptions options;
  corpus::Corpus corpus = MakeCorpus(30, 7);
  StatusOr<InvertedIndex> ix = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(ix.ok());
  EXPECT_TRUE(ix->TopK({}, 10).empty());
  EXPECT_TRUE(ix->TopK({"absent_term"}, 10).empty());
  EXPECT_TRUE(ix->TopK({"market"}, 0).empty());
  // Duplicate query terms must not double-score.
  ExpectSameRanking(ix->TopK({"market", "market"}, 10),
                    ix->TopK({"market"}, 10));
}

TEST(IndexRankingTest, StatsShowPruning) {
  IndexOptions options;
  corpus::Corpus corpus = MakeCorpus(400, 8);
  StatusOr<InvertedIndex> ix = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(ix.ok());
  QueryStats stats;
  ix->TopK({"market", "bank", "rate"}, 5, &stats);
  EXPECT_EQ(stats.terms_matched, 3u);
  EXPECT_GT(stats.candidates, 0u);
  // With three near-ubiquitous terms and k=5, MaxScore must prune: far
  // fewer full scores than candidates.
  EXPECT_LT(stats.docs_scored, stats.candidates);
}

// ------------------------------------------------------- serialization ---

TEST(IndexSerializeTest, RoundTripPreservesEverything) {
  IndexOptions options;
  options.block_size = 8;
  corpus::Corpus corpus = MakeCorpus(90, 9);
  std::vector<double> labels;
  for (size_t d = 0; d < corpus.size(); ++d) {
    labels.push_back(static_cast<double>(d % 3));
  }
  StatusOr<InvertedIndex> built =
      InvertedIndex::Build(corpus, options, labels);
  ASSERT_TRUE(built.ok());

  std::string body;
  built->AppendTo(&body);
  StatusOr<InvertedIndex> parsed = InvertedIndex::Parse(body);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->num_docs(), built->num_docs());
  EXPECT_EQ(parsed->num_terms(), built->num_terms());
  EXPECT_EQ(parsed->block_size(), built->block_size());
  for (uint32_t d = 0; d < built->num_docs(); ++d) {
    EXPECT_EQ(parsed->doc(d).external_id, built->doc(d).external_id);
    EXPECT_EQ(parsed->doc(d).timestamp, built->doc(d).timestamp);
    EXPECT_EQ(parsed->doc(d).length, built->doc(d).length);
    EXPECT_EQ(parsed->doc(d).label, built->doc(d).label);
  }
  for (const std::vector<std::string>& q : MakeQueries(40, 10)) {
    ExpectSameRanking(parsed->TopK(q, 10), built->TopK(q, 10));
  }
  // Re-serialization is byte-identical (canonical encoding).
  std::string body2;
  parsed->AppendTo(&body2);
  EXPECT_EQ(body, body2);
}

TEST(IndexSerializeTest, EveryTruncationIsRejected) {
  IndexOptions options;
  corpus::Corpus corpus = MakeCorpus(25, 11);
  StatusOr<InvertedIndex> built = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(built.ok());
  std::string body;
  built->AppendTo(&body);
  for (size_t len = 0; len < body.size(); ++len) {
    StatusOr<InvertedIndex> parsed =
        InvertedIndex::Parse(std::string_view(body).substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len << " parsed";
  }
}

TEST(IndexSerializeTest, EveryByteFlipIsRejectedOrYieldsValidIndex) {
  // The parser must be total: any single corrupted byte either fails
  // parse cleanly or yields an index that still satisfies its invariants
  // (queries run without faulting and respect ranking order). It must
  // never crash, hang, or over-allocate.
  IndexOptions options;
  options.block_size = 4;
  corpus::Corpus corpus = MakeCorpus(30, 12);
  StatusOr<InvertedIndex> built = InvertedIndex::Build(corpus, options);
  ASSERT_TRUE(built.ok());
  std::string body;
  built->AppendTo(&body);
  const std::vector<std::string> probe = {"market", "bank", "rare_3"};
  size_t survived = 0;
  for (size_t i = 0; i < body.size(); ++i) {
    for (unsigned char mask : {0x01, 0xFF}) {
      std::string mutated = body;
      mutated[i] = static_cast<char>(mutated[i] ^ mask);
      StatusOr<InvertedIndex> parsed = InvertedIndex::Parse(mutated);
      if (!parsed.ok()) continue;
      ++survived;
      std::vector<SearchResult> hits = parsed->TopK(probe, 10);
      for (size_t r = 1; r < hits.size(); ++r) {
        EXPECT_TRUE(hits[r - 1].score > hits[r].score ||
                    (hits[r - 1].score == hits[r].score &&
                     hits[r - 1].doc < hits[r].doc));
      }
    }
  }
  // Flips landing in term names, doc metadata, or score payloads
  // legitimately re-parse (they change data, not structure); flips in the
  // posting blocks and framing must be caught. Both kinds exist in any
  // real body, so the sweep must see a substantial rejected share.
  const size_t total = 2 * body.size();
  EXPECT_GT(total - survived, total / 10);
  EXPECT_LT(survived, total);
}

// ------------------------------------------------------------ filenames --

TEST(IndexFileNameTest, RoundTripAndRejection) {
  EXPECT_EQ(IndexFileName(1), "INDEX-0000000001");
  EXPECT_EQ(IndexFileName(1234567890), "INDEX-1234567890");
  StatusOr<uint64_t> gen = ParseIndexFileName("INDEX-0000000042");
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(*gen, 42u);
  for (const char* bad :
       {"INDEX-", "INDEX-abc", "INDEX-00000001", "INDEX-00000000011",
        "index-0000000001", "MANIFEST-0000000001", "INDEX-000000001x", ""}) {
    EXPECT_FALSE(ParseIndexFileName(bad).ok()) << bad;
  }
}

// ------------------------------------------------------------ the store --

class IndexStoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("newsdiff_index_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir() const { return dir_.string(); }

  std::map<std::string, InvertedIndex> BuildIndexes(uint64_t seed) {
    IndexOptions options;
    corpus::Corpus corpus = MakeCorpus(40, seed);
    StatusOr<InvertedIndex> ix = InvertedIndex::Build(corpus, options);
    EXPECT_TRUE(ix.ok());
    std::map<std::string, InvertedIndex> out;
    out.emplace("news", std::move(*ix));
    return out;
  }

  fs::path dir_;
};

TEST_F(IndexStoreFixture, SaveLoadRoundTrip) {
  std::map<std::string, InvertedIndex> indexes = BuildIndexes(20);
  IndexStore store(DefaultFileIo(), dir());
  ASSERT_TRUE(store.Save(indexes).ok());
  EXPECT_EQ(store.generation(), 1u);

  std::map<std::string, InvertedIndex> loaded;
  IndexStore reader(DefaultFileIo(), dir());
  StatusOr<IndexLoadReport> report = reader.Load(&loaded);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_TRUE(report->damaged_skipped.empty());
  ASSERT_EQ(loaded.count("news"), 1u);
  ExpectSameRanking(loaded["news"].TopK({"market", "bank"}, 10),
                    indexes["news"].TopK({"market", "bank"}, 10));
}

TEST_F(IndexStoreFixture, EmptyDirLoadsGenerationZero) {
  std::map<std::string, InvertedIndex> loaded;
  IndexStore store(DefaultFileIo(), dir());
  StatusOr<IndexLoadReport> report = store.Load(&loaded);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->generation, 0u);
  EXPECT_TRUE(loaded.empty());
}

TEST_F(IndexStoreFixture, DamagedNewestFallsBackToOlderGeneration) {
  std::map<std::string, InvertedIndex> gen1 = BuildIndexes(21);
  std::map<std::string, InvertedIndex> gen2 = BuildIndexes(22);
  IndexStore store(DefaultFileIo(), dir(), /*retain=*/4);
  ASSERT_TRUE(store.Save(gen1).ok());
  ASSERT_TRUE(store.Save(gen2).ok());

  // Corrupt a byte in the middle of the newest generation file.
  const fs::path newest = dir_ / IndexFileName(2);
  StatusOr<std::string> bytes =
      DefaultFileIo().ReadFile(newest.string());
  ASSERT_TRUE(bytes.ok());
  (*bytes)[bytes->size() / 2] ^= 0x40;
  ASSERT_TRUE(DefaultFileIo().WriteFile(newest.string(), *bytes).ok());

  std::map<std::string, InvertedIndex> loaded;
  IndexStore reader(DefaultFileIo(), dir(), /*retain=*/4);
  StatusOr<IndexLoadReport> report = reader.Load(&loaded);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->generation, 1u);
  ASSERT_EQ(report->damaged_skipped.size(), 1u);
  EXPECT_EQ(report->damaged_skipped[0], IndexFileName(2));
  ExpectSameRanking(loaded["news"].TopK({"market"}, 5),
                    gen1["news"].TopK({"market"}, 5));
}

TEST_F(IndexStoreFixture, RetainPrunesOldGenerations) {
  std::map<std::string, InvertedIndex> indexes = BuildIndexes(23);
  IndexStore store(DefaultFileIo(), dir(), /*retain=*/2);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(store.Save(indexes).ok());
  EXPECT_EQ(store.generation(), 5u);
  StatusOr<std::vector<std::string>> names =
      DefaultFileIo().ListDir(dir());
  ASSERT_TRUE(names.ok());
  size_t generations = 0;
  for (const std::string& name : *names) {
    if (ParseIndexFileName(name).ok()) ++generations;
  }
  EXPECT_EQ(generations, 2u);
}

TEST_F(IndexStoreFixture, CrashAtEveryOpLeavesOldOrNewGenerationIntact) {
  std::map<std::string, InvertedIndex> gen1 = BuildIndexes(24);
  std::map<std::string, InvertedIndex> gen2 = BuildIndexes(25);

  // Count the ops a clean save of generation 2 performs.
  size_t total_ops = 0;
  {
    IndexStore seed_store(DefaultFileIo(), dir());
    ASSERT_TRUE(seed_store.Save(gen1).ok());
    datagen::StorageFaultOptions count_opts;
    datagen::FaultyFileIo counting(DefaultFileIo(), count_opts);
    IndexStore store(counting, dir());
    ASSERT_TRUE(store.Save(gen2).ok());
    total_ops = counting.counters().ops;
    fs::remove_all(dir_);
  }
  ASSERT_GT(total_ops, 0u);

  for (size_t crash = 0; crash < total_ops; ++crash) {
    fs::remove_all(dir_);
    IndexStore seed_store(DefaultFileIo(), dir());
    ASSERT_TRUE(seed_store.Save(gen1).ok());

    datagen::StorageFaultOptions crash_opts;
    crash_opts.crash_after_ops = crash;
    datagen::FaultyFileIo faulty(DefaultFileIo(), crash_opts);
    IndexStore store(faulty, dir());
    (void)store.Save(gen2);  // usually fails; that's the point

    // Recovery with a healthy disk must find an intact generation —
    // either the old one or, if the rename landed, the new one.
    std::map<std::string, InvertedIndex> loaded;
    IndexStore reader(DefaultFileIo(), dir());
    StatusOr<IndexLoadReport> report = reader.Load(&loaded);
    ASSERT_TRUE(report.ok())
        << "crash point " << crash << ": " << report.status().ToString();
    ASSERT_TRUE(report->generation == 1u || report->generation == 2u)
        << "crash point " << crash << " recovered generation "
        << report->generation;
    const std::map<std::string, InvertedIndex>& want =
        report->generation == 1u ? gen1 : gen2;
    ASSERT_EQ(loaded.count("news"), 1u) << "crash point " << crash;
    ExpectSameRanking(
        loaded["news"].TopK({"market", "bank"}, 10),
        want.at("news").TopK({"market", "bank"}, 10));
  }
}

}  // namespace
}  // namespace newsdiff::index
